#!/usr/bin/env bash
# Builds the aps-ffi cdylib, compiles the C smoke client against the
# hand-written header, and diffs its output byte-for-byte against the
# native Rust oracle. Any divergence between the C ABI and the native
# API fails here.
set -euo pipefail
cd "$(dirname "$0")/.."

CC="${CC:-cc}"
OUT=target/ffi-smoke
mkdir -p "$OUT"

echo "== building libaps_ffi (release) =="
cargo build --release -p aps-ffi

echo "== compiling examples/ffi_smoke.c with $CC =="
"$CC" -O2 -Wall -Wextra -Werror -std=c99 \
  -Iinclude \
  -o "$OUT/ffi_smoke" examples/ffi_smoke.c \
  -Ltarget/release -laps_ffi \
  -Wl,-rpath,"$PWD/target/release"

echo "== running C smoke client =="
LD_LIBRARY_PATH="$PWD/target/release${LD_LIBRARY_PATH:+:$LD_LIBRARY_PATH}" \
  "$OUT/ffi_smoke" > "$OUT/smoke.txt"

echo "== running native oracle =="
cargo run --release -q -p aps-ffi --example ffi_oracle > "$OUT/oracle.txt"

echo "== diffing =="
if ! diff -u "$OUT/oracle.txt" "$OUT/smoke.txt"; then
  echo "FFI smoke output diverges from the native oracle" >&2
  exit 1
fi
echo "ffi smoke: C ABI output is byte-identical to the native oracle ($(wc -l < "$OUT/smoke.txt") lines)"
