//! # adaptive-photonics — adaptive photonic scale-up domains
//!
//! A full Rust implementation of the theory, scheduling framework and
//! flow-level evaluation of *"When Light Bends to the Collective Will: A
//! Theory and Vision for Adaptive Photonic Scale-up Domains"* (HotNets
//! 2025): collective communication over a reconfigurable photonic
//! interconnect, where each step can either run on a static base topology
//! (paying congestion and multi-hop propagation) or trigger a fabric
//! reconfiguration to a perfectly matched topology (paying `α_r`).
//!
//! ## Quickstart
//!
//! ```
//! use adaptive_photonics::prelude::*;
//!
//! // A 16-GPU scale-up domain: 800 Gbps transceivers, unidirectional ring
//! // base, 10 µs reconfiguration delay.
//! let base = topology::builders::ring_unidirectional(16).unwrap();
//! let mut domain = ScaleupDomain::new(
//!     base,
//!     CostParams::paper_defaults(),
//!     ReconfigModel::constant(10e-6).unwrap(),
//! );
//!
//! // Plan a 64 MiB bandwidth-optimal AllReduce.
//! let coll = collectives::allreduce::halving_doubling::build(16, 64.0 * 1024.0 * 1024.0).unwrap();
//! let (switches, report) = domain.plan(&coll.schedule).unwrap();
//! let cmp = domain.compare(&coll.schedule).unwrap();
//!
//! assert_eq!(switches.len(), coll.schedule.num_steps());
//! assert!(cmp.speedup_vs_static() >= 1.0);
//! assert!(cmp.speedup_vs_bvn() >= 1.0);
//! assert!(report.total_s() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`topology`] | `aps-topology` | capacitated graphs, ring/torus/hypercube/co-prime builders, routing |
//! | [`matrix`] | `aps-matrix` | matchings, demand matrices, Hopcroft–Karp, BvN decomposition |
//! | [`flow`] | `aps-flow` | maximum concurrent flow: exact ring forms, Garg–Könemann FPTAS, degree proxy |
//! | [`par`] | `aps-par` | deterministic scoped worker pool (`APS_THREADS`) behind sweeps and trial batches |
//! | [`collectives`] | `aps-collectives` | AllReduce/All-to-All/AllGather/… as matching sequences + semantic verifier |
//! | [`cost`] | `aps-cost` | the α–β–δ cost model grounded in concurrent flow (Observation 2) |
//! | [`core`] | `aps-core` | the eq. (7) optimization: DP solver, policies, multi-base pools, sweeps |
//! | [`fabric`] | `aps-fabric` | circuit-switch & wavelength fabric device models with fault injection |
//! | [`sim`] | `aps-sim` | deterministic discrete-event fluid-flow simulator |

pub use aps_collectives as collectives;
pub use aps_core as core;
pub use aps_cost as cost;
pub use aps_fabric as fabric;
pub use aps_flow as flow;
pub use aps_matrix as matrix;
pub use aps_par as par;
pub use aps_sim as sim;
pub use aps_topology as topology;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use crate::collectives;
    pub use crate::topology;
    pub use aps_collectives::{Collective, CollectiveKind, Schedule, Step};
    pub use aps_core::{
        ConfigChoice, CostReport, PolicyComparison, ReconfigAccounting, ScaleupDomain,
        SwitchSchedule, SwitchingProblem,
    };
    pub use aps_cost::{CostParams, ReconfigModel};
    pub use aps_fabric::{BarrierModel, CircuitSwitch, Fabric, WavelengthFabric};
    pub use aps_flow::{ThetaCache, ThroughputSolver};
    pub use aps_matrix::{DemandMatrix, Matching};
    pub use aps_par::Pool;
    pub use aps_sim::{
        run_collective, run_tenants, run_trials, scenarios, RunConfig, SimReport, TenantReport,
        TenantSpec, Trial,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_wires_everything_together() {
        let base = topology::builders::ring_unidirectional(8).unwrap();
        let mut domain = ScaleupDomain::new(
            base,
            CostParams::paper_defaults(),
            ReconfigModel::constant(1e-6).unwrap(),
        );
        let c = collectives::alltoall::linear_shift(8, 1e6).unwrap();
        let cmp = domain.compare(&c.schedule).unwrap();
        assert!(cmp.opt_s > 0.0);
    }
}
