//! # adaptive-photonics — adaptive photonic scale-up domains
//!
//! A full Rust implementation of the theory, scheduling framework and
//! flow-level evaluation of *"When Light Bends to the Collective Will: A
//! Theory and Vision for Adaptive Photonic Scale-up Domains"* (HotNets
//! 2025): collective communication over a reconfigurable photonic
//! interconnect, where each step can either run on a static base topology
//! (paying congestion and multi-hop propagation) or trigger a fabric
//! reconfiguration to a perfectly matched topology (paying `α_r`).
//!
//! The front door is the typed [`Experiment`] builder: bind a **domain**
//! (base topology + cost model + `α_r` pricing), a **workload** (one
//! collective, a size-parameterized family, or a multi-tenant scenario)
//! and a **controller** (who decides, step by step, whether the fabric
//! bends), then `plan()`, `simulate()` or `sweep(grid)`.
//!
//! ## Quickstart
//!
//! ```
//! use adaptive_photonics::prelude::*;
//!
//! // A 16-GPU scale-up domain: 800 Gbps transceivers, unidirectional ring
//! // base, 10 µs reconfiguration delay.
//! let base = topology::builders::ring_unidirectional(16).unwrap();
//! let coll = collectives::allreduce::halving_doubling::build(16, 64.0 * 1024.0 * 1024.0).unwrap();
//!
//! let mut exp = Experiment::domain(base)
//!     .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!     .collective(&coll); // default controller: the eq. (7) DP optimum
//!
//! // Analytic plan + the classic policy comparison …
//! let plan = exp.plan().unwrap();
//! let cmp = exp.compare().unwrap();
//! assert_eq!(plan.switches.len(), coll.schedule.num_steps());
//! assert!((plan.report.total_s() - cmp.opt_s).abs() < 1e-15);
//! assert!(cmp.speedup_vs_static() >= 1.0);
//! assert!(cmp.speedup_vs_bvn() >= 1.0);
//!
//! // … and a fluid simulation with per-step decisions tagged in the trace.
//! let run = exp.simulate().unwrap();
//! assert_eq!(run.switches, plan.switches);
//! assert!(run.report.total_s() > 0.0);
//! ```
//!
//! ## Controllers
//!
//! Anything implementing [`core::controller::Controller`] can drive an
//! experiment; five ship with the workspace. Each example below prices a
//! 16 MiB AllReduce on a 16-GPU ring domain (`α_r = 10 µs`) and places
//! the controller in the `speedup_vs_static()` ordering.
//!
//! [`Static`](core::controller::Static) — never reconfigure; *defines*
//! the static baseline, so its speedup over static is exactly 1:
//!
//! ```
//! use adaptive_photonics::prelude::*;
//! # let base = topology::builders::ring_unidirectional(16).unwrap();
//! # let coll = collectives::allreduce::halving_doubling::build(16, 16.0 * 1024.0 * 1024.0).unwrap();
//! let mut exp = Experiment::domain(base)
//!     .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!     .collective(&coll)
//!     .controller(Static);
//! let (t, cmp) = (exp.plan().unwrap().report.total_s(), exp.compare().unwrap());
//! assert!((t - cmp.static_s).abs() < 1e-15);
//! assert!((cmp.static_s / t - 1.0).abs() < 1e-12); // speedup_vs_static == 1
//! ```
//!
//! [`AlwaysReconfigure`](core::controller::AlwaysReconfigure) — the naive
//! BvN schedule; in this large-message regime it beats static but not the
//! optimum:
//!
//! ```
//! use adaptive_photonics::prelude::*;
//! # let base = topology::builders::ring_unidirectional(16).unwrap();
//! # let coll = collectives::allreduce::halving_doubling::build(16, 16.0 * 1024.0 * 1024.0).unwrap();
//! let mut exp = Experiment::domain(base)
//!     .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!     .collective(&coll)
//!     .controller(AlwaysReconfigure);
//! let (t, cmp) = (exp.plan().unwrap().report.total_s(), exp.compare().unwrap());
//! assert!((t - cmp.bvn_s).abs() < 1e-15);
//! assert!(cmp.static_s / t > 1.0); // beats static here …
//! assert!(t >= cmp.opt_s); // … but never the optimum
//! ```
//!
//! [`Threshold`](core::controller::Threshold) — the §4 heuristic:
//! reconfigure when a step's standalone gain exceeds the worst-case
//! `α_r`; sits between static and the optimum:
//!
//! ```
//! use adaptive_photonics::prelude::*;
//! # let base = topology::builders::ring_unidirectional(16).unwrap();
//! # let coll = collectives::allreduce::halving_doubling::build(16, 16.0 * 1024.0 * 1024.0).unwrap();
//! let mut exp = Experiment::domain(base)
//!     .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!     .collective(&coll)
//!     .controller(Threshold);
//! let (t, cmp) = (exp.plan().unwrap().report.total_s(), exp.compare().unwrap());
//! assert!((t - cmp.threshold_s).abs() < 1e-15);
//! assert!(cmp.static_s / t >= 1.0 && t >= cmp.opt_s);
//! ```
//!
//! [`Greedy`](core::controller::Greedy) — online and myopic: runs each
//! step the cheapest way given the fabric's current configuration; a
//! strict improvement over static here, still bounded by the optimum:
//!
//! ```
//! use adaptive_photonics::prelude::*;
//! # let base = topology::builders::ring_unidirectional(16).unwrap();
//! # let coll = collectives::allreduce::halving_doubling::build(16, 16.0 * 1024.0 * 1024.0).unwrap();
//! let mut exp = Experiment::domain(base)
//!     .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!     .collective(&coll)
//!     .controller(Greedy);
//! let (t, cmp) = (exp.plan().unwrap().report.total_s(), exp.compare().unwrap());
//! assert!(cmp.static_s / t > 1.0); // speedup_vs_static > 1 in this regime
//! assert!(t >= cmp.opt_s);
//! ```
//!
//! [`DpPlanned`](core::controller::DpPlanned) — the exact eq. (7) optimum
//! (the default controller); its speedup over static is the Figure 1
//! bottom-row metric and dominates every other controller:
//!
//! ```
//! use adaptive_photonics::prelude::*;
//! # let base = topology::builders::ring_unidirectional(16).unwrap();
//! # let coll = collectives::allreduce::halving_doubling::build(16, 16.0 * 1024.0 * 1024.0).unwrap();
//! let mut exp = Experiment::domain(base)
//!     .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!     .collective(&coll)
//!     .controller(DpPlanned);
//! let (t, cmp) = (exp.plan().unwrap().report.total_s(), exp.compare().unwrap());
//! assert!((t - cmp.opt_s).abs() < 1e-15);
//! assert!(cmp.speedup_vs_static() >= cmp.static_s / cmp.bvn_s.max(cmp.threshold_s));
//! assert!(cmp.speedup_vs_static() >= 1.0 && cmp.speedup_vs_bvn() >= 1.0);
//! ```
//!
//! Multi-tenant mixes bind with [`Experiment::scenario`] (or
//! [`Experiment::tenants`]) and chain `plan()?.simulate()`; collective
//! *families* bind with [`Experiment::collective_family`] and drive the
//! Figure 1/2 heatmap sweeps via `sweep(grid)`.
//!
//! ## Streaming workloads
//!
//! Demand need not be materialized: anything implementing
//! [`collectives::Workload`] — a seeded traffic generator, an epoch-looped
//! training loop, a combinator chain, or a [`collectives::Schedule`]
//! cursor — binds
//! with [`Experiment::workload`] and streams its steps one at a time into
//! the adaptive executor, in O(1) schedule memory even for million-step
//! (or endless) runs:
//!
//! ```
//! use adaptive_photonics::prelude::*;
//! use adaptive_photonics::collectives::workload::generators::TrainingLoop;
//!
//! let base = topology::builders::ring_unidirectional(8).unwrap();
//! let mut exp = Experiment::domain(base)
//!     .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!     .controller(Greedy)
//!     .workload(TrainingLoop::new(8, 2, 1e6, 8e6, Some(3)).unwrap());
//! let run = exp.simulate().unwrap();          // streamed, decisions traced
//! let totals = exp.simulate_summary(usize::MAX).unwrap(); // O(1) report memory
//! assert_eq!(totals.steps, run.report.steps.len());
//! assert_eq!(totals.total_ps, run.report.total_ps);
//! ```
//!
//! Shipped generators ([`collectives::workload::generators`]): a
//! pipeline-parallel `TrainingLoop`, `ParameterServer` incast rounds,
//! seeded `RandomPermutations`, and `OnOffBursty` uniform traffic.
//! Combinators (`then`, `repeat`/`loop_epochs`, `interleave`, `scaled`,
//! `Overlay`) compose streams lazily. Online controllers stream
//! bit-identically to the materialized adaptive path (the controller
//! observes a two-step window); planning controllers degenerate to their
//! myopic window rule — `plan()` (finite streams) recovers the optimum.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`topology`] | `aps-topology` | capacitated graphs, ring/torus/hypercube/co-prime builders, routing |
//! | [`matrix`] | `aps-matrix` | matchings, demand matrices, Hopcroft–Karp, BvN decomposition |
//! | [`flow`] | `aps-flow` | maximum concurrent flow: exact ring forms, Garg–Könemann FPTAS, degree proxy |
//! | [`par`] | `aps-par` | deterministic scoped worker pool (`APS_THREADS`) behind sweeps and trial batches |
//! | [`collectives`] | `aps-collectives` | AllReduce/All-to-All/AllGather/… as matching sequences + semantic verifier |
//! | [`cost`] | `aps-cost` | the α–β–δ cost model grounded in concurrent flow (Observation 2) |
//! | [`core`] | `aps-core` | the eq. (7) optimization: the `Controller` trait, DP solver, policies, multi-base pools, sweeps |
//! | [`fabric`] | `aps-fabric` | circuit-switch & wavelength fabric device models with fault injection |
//! | [`sim`] | `aps-sim` | deterministic fluid simulator: scheduled & adaptive executors, multi-tenant scenarios |
//! | [`replay`] | `aps-replay` | deterministic replay: state hashing, replay records, divergence reports, snapshots |
//! | [`faas`] | `aps-faas` | fabric as a service: arrival processes, admission control, port partitions, SLO accounting |
//! | [`ablate`] | `aps-ablate` | declarative ablation plans: grid/LHS sampling, KPI tolerance gates, append-only CSV registry |
//! | [`experiment`] | (this crate) | the typed `Experiment` builder unifying plan / simulate / sweep / multi-tenant |
//!
//! ## Replay & determinism
//!
//! Every simulation is bit-identical given the same inputs; the
//! [`replay`] subsystem turns that promise into evidence. A streaming
//! experiment can **record** per-step hash frames, **verify** a stored
//! record against a fresh re-execution (divergences are localized to the
//! first bad step and field class), and **snapshot/resume** an endless
//! run without losing bit-parity:
//!
//! ```
//! use adaptive_photonics::prelude::*;
//! use adaptive_photonics::collectives::workload::generators::TrainingLoop;
//!
//! let base = topology::builders::ring_unidirectional(8).unwrap();
//! let workload = || TrainingLoop::new(8, 2, 1e6, 8e6, None).unwrap(); // endless
//! let exp = || {
//!     Experiment::domain(base.clone())
//!         .reconfig(ReconfigModel::constant(10e-6).unwrap())
//!         .controller(Greedy)
//!         .workload(workload())
//! };
//!
//! // Record 200 steps, then verify the record against a re-execution.
//! let mut rec = exp().record();
//! rec.simulate_summary(200).unwrap();
//! let record = rec.take_record().unwrap();
//! let report = exp().verify(&record).unwrap();
//! assert!(report.is_clean(), "{report}");
//!
//! // Snapshot at step 100, resume, and land on the same hash chain.
//! let mut first = exp().record();
//! first.simulate_summary(100).unwrap();
//! let snapshot = first.take_snapshot().unwrap();
//! let mut resumed = exp().resume_from(snapshot);
//! let summary = resumed.simulate_summary(200).unwrap();
//! assert_eq!(summary.steps, 200);
//! let tail = resumed.take_record().unwrap();
//! assert_eq!(tail.final_state, record.final_state); // bit-identical
//! ```

pub use aps_ablate as ablate;
pub use aps_collectives as collectives;
pub use aps_core as core;
pub use aps_cost as cost;
pub use aps_faas as faas;
pub use aps_fabric as fabric;
pub use aps_flow as flow;
pub use aps_matrix as matrix;
pub use aps_par as par;
pub use aps_replay as replay;
pub use aps_sim as sim;
pub use aps_topology as topology;

pub mod experiment;

pub use experiment::{
    collective_by_name, evaluate_ablation_cell, run_ablation, Experiment, ExperimentError, Plan,
    SimRun,
};

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use crate::collectives;
    pub use crate::experiment::{
        evaluate_ablation_cell, run_ablation, Experiment, ExperimentError, Plan, SimRun,
    };
    pub use crate::topology;
    pub use aps_ablate::{
        plans, run_plan, AblateError, AblationPlan, AblationReport, Aggregate, Check, Factor,
        FactorKey, FactorValue, KpiSpec, KpiValues, RegistryRow, Sampling, Tolerance, Verdict,
    };
    pub use aps_collectives::workload::{
        generators, materialize, Overlay, ScheduleStream, Workload, WorkloadCtx,
    };
    pub use aps_collectives::{Collective, CollectiveKind, Schedule, Step};
    pub use aps_core::controller::{
        AlwaysReconfigure, Controller, DpPlanned, Greedy, Static, StepObservation, Threshold,
    };
    pub use aps_core::sweep::{SweepCell, SweepGrid, SweepResult};
    pub use aps_core::{
        ConfigChoice, CostReport, PolicyComparison, ReconfigAccounting, ScaleupDomain,
        SwitchSchedule, SwitchingProblem,
    };
    pub use aps_cost::{CostParams, ReconfigModel};
    pub use aps_faas::{
        leximin_cmp, run_service, AdmissionPolicy, ArrivalProcess, FaasError, LatencyHistogram,
        MmppArrivals, PartitionAllocator, PoissonArrivals, ServiceConfig, ServiceReport,
        ServiceSummary, TenantClass, TenantSlo, TraceArrivals,
    };
    pub use aps_fabric::{BarrierModel, CircuitSwitch, Fabric, WavelengthFabric};
    pub use aps_flow::{ThetaCache, ThroughputSolver};
    pub use aps_matrix::{DemandMatrix, Matching};
    pub use aps_par::Pool;
    pub use aps_replay::{
        diff_records, DivergenceReport, FieldClass, Recorder, ReplayReader, ReplayRecord,
        ReplayWriter, Snapshot, StateHash,
    };
    pub use aps_sim::{
        execute_tenants, run_adaptive, run_scheduled, run_scheduled_workload, run_trial_batch,
        run_workload, run_workload_totals, scenarios, RunConfig, Scenario, SimReport,
        StreamPricing, StreamSummary, TenantReport, TenantSpec, Trial,
    };
    // Deprecated free-function shims, kept importable for downstream code
    // that still `#[allow(deprecated)]`s its way through a migration.
    #[allow(deprecated)]
    pub use aps_sim::{run_collective, run_tenants, run_trials};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_wires_everything_together() {
        let base = topology::builders::ring_unidirectional(8).unwrap();
        let c = collectives::alltoall::linear_shift(8, 1e6).unwrap();
        let mut exp = Experiment::domain(base)
            .reconfig(ReconfigModel::constant(1e-6).unwrap())
            .collective(&c);
        let cmp = exp.compare().unwrap();
        assert!(cmp.opt_s > 0.0);
        let run = exp.simulate().unwrap();
        assert_eq!(run.switches, exp.plan().unwrap().switches);
    }
}
