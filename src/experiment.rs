//! The workspace's front door: a typed [`Experiment`] builder that binds a
//! scale-up **domain** (base topology, cost model, reconfiguration
//! pricing) to a **workload** (one collective, a collective family, or a
//! multi-tenant scenario) and a **controller** (any
//! [`Controller`] implementation), then runs it:
//!
//! ```text
//! Experiment::domain(base)          one fixed collective:  .collective(&c)
//!     .reconfig(model)              a size-parameterized   .collective_family(build)
//!     .controller(Greedy)           family (sweeps):
//!     .…                            a shared fabric:       .scenario(s) / .tenants(n, v)
//!                                   a lazy demand stream:  .workload(w)
//! ```
//!
//! The workload choice is encoded in the type, so each experiment state
//! only offers the operations that make sense for it:
//!
//! | state | built by | terminal operations |
//! |---|---|---|
//! | [`Experiment<Single>`] | [`Experiment::collective`] | [`plan`](Experiment::plan), [`compare`](Experiment::compare), [`simulate`](Experiment::simulate) |
//! | [`Experiment<Family>`] | [`Experiment::collective_family`] | [`sweep`](Experiment::sweep) |
//! | [`Experiment<Shared>`] | [`Experiment::scenario`] / [`Experiment::tenants`] | [`plan`](Experiment::<Shared>::plan), [`simulate`](Experiment::<Shared>::simulate) |
//! | [`Experiment<Streaming>`] | [`Experiment::workload`] | [`plan`](Experiment::<Streaming>::plan) (finite), [`simulate`](Experiment::<Streaming>::simulate), [`simulate_summary`](Experiment::<Streaming>::simulate_summary) |
//! | [`Experiment<Service>`] | [`Experiment::service`] | [`run`](Experiment::<Service>::run), [`run_on`](Experiment::<Service>::run_on) |
//!
//! Every run is deterministic: controllers are required to be pure
//! functions of their observations, batch work runs on an
//! [`aps_par::Pool`] with chunked index assignment, and the simulator is
//! clocked in integer picoseconds — results are bit-identical at any
//! `APS_THREADS` setting.

use aps_ablate::{AblateError, AblationPlan, AblationReport, Cell, FactorKey, KpiValues};
use aps_collectives::workload::materialize;
use aps_collectives::{
    allreduce, alltoall, broadcast, Collective, CollectiveError, Schedule, ScheduleStream, Workload,
};
use aps_core::controller::{by_name, Controller, DpPlanned, Static};
use aps_core::sweep::{run_sweep_on, SweepGrid, SweepResult};
use aps_core::{
    CoreError, CostReport, PolicyComparison, ReconfigAccounting, ScaleupDomain, SwitchSchedule,
    SwitchingProblem,
};
use aps_cost::{CostParams, ReconfigModel};
use aps_faas::{run_service_recorded, AdmissionPolicy, FaasError, ServiceReport, TenantClass};
use aps_fabric::{CircuitSwitch, Fabric};
use aps_flow::ThroughputSolver;
use aps_matrix::Matching;
use aps_par::Pool;
use aps_replay::{diff_records, DivergenceReport, Recorder, ReplayRecord, Snapshot};
use aps_sim::record::RecordSink;
use aps_sim::{run_adaptive, RunConfig, Scenario, SimError, SimReport, TenantReport, TenantSpec};
use aps_topology::Topology;
use std::fmt;

/// Errors from experiment construction or execution.
///
/// Extend-only (`#[non_exhaustive]`): new workload kinds add variants
/// without breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// A planning/optimization error from `aps-core`.
    Core(CoreError),
    /// A simulation error from `aps-sim`.
    Sim(SimError),
    /// A collective-construction error.
    Collective(CollectiveError),
    /// The base topology is not a single circuit configuration, so the
    /// circuit-switch simulator cannot realize it (e.g. a bidirectional
    /// ring on single-transceiver ports). Planning and sweeping still
    /// work; only `simulate()` needs a circuit base.
    BaseNotACircuit,
    /// A planning operation needs the whole demand stream, but the bound
    /// workload reports no upper size bound (e.g.
    /// [`aps_collectives::workload::Workload::repeat_forever`]). Streaming
    /// simulation (`simulate`/`simulate_summary`) still works.
    UnboundedWorkload,
    /// An ablation-plan error: invalid plan/sampling, a cell naming an
    /// unknown controller or workload, or registry I/O.
    Ablation(AblateError),
    /// A fabric-as-a-service error: a structurally invalid tenant-class
    /// list, or a partition-allocator invariant violation.
    Service(FaasError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "planning failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::Collective(e) => write!(f, "collective construction failed: {e}"),
            Self::BaseNotACircuit => write!(
                f,
                "the base topology is not realizable as a single circuit configuration"
            ),
            Self::UnboundedWorkload => write!(
                f,
                "planning needs a finite workload, but the bound stream reports no upper \
                 size bound (simulate it instead, or bound it with repeat(n))"
            ),
            Self::Ablation(e) => write!(f, "ablation failed: {e}"),
            Self::Service(e) => write!(f, "service run failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::Collective(e) => Some(e),
            Self::Ablation(e) => Some(e),
            Self::Service(e) => Some(e),
            Self::BaseNotACircuit | Self::UnboundedWorkload => None,
        }
    }
}

impl From<FaasError> for ExperimentError {
    fn from(e: FaasError) -> Self {
        Self::Service(e)
    }
}

impl From<AblateError> for ExperimentError {
    fn from(e: AblateError) -> Self {
        Self::Ablation(e)
    }
}

impl From<CoreError> for ExperimentError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<CollectiveError> for ExperimentError {
    fn from(e: CollectiveError) -> Self {
        Self::Collective(e)
    }
}

/// Builder state: domain configured, workload not yet chosen.
pub struct Unbound(());

/// Workload state: one fixed collective schedule. The schedule is held
/// through its [`Workload`] face ([`ScheduleStream`]), so the single-
/// collective path and the streaming path share one demand
/// representation (pinned bit-equivalent by `tests/deprecated_compat.rs`).
pub struct Single {
    stream: ScheduleStream,
}

impl Single {
    fn schedule(&self) -> &Schedule {
        self.stream.schedule()
    }
}

/// Workload state: a message-size-parameterized collective family.
pub struct Family {
    build: Box<dyn Fn(f64) -> Result<Collective, CollectiveError> + Send + Sync>,
}

/// Workload state: several tenants sharing one fabric.
pub struct Shared {
    scenario: Scenario,
}

/// Workload state: an open-system service — tenant classes whose jobs
/// arrive, run on a port partition, and depart over simulated time.
pub struct Service {
    classes: Vec<TenantClass>,
    admission: AdmissionPolicy,
    max_jobs: Option<u64>,
    keep_job_reports: bool,
}

/// Workload state: a lazily-pulled demand stream (possibly unbounded).
pub struct Streaming {
    workload: Box<dyn Workload>,
    /// Attach an [`aps_replay::Recorder`] to simulation runs.
    record: bool,
    /// One-shot resume point for the next [`Experiment::<Streaming>::simulate_summary`].
    resume: Option<Snapshot>,
    /// The record of the last recorded run, until taken.
    last_record: Option<ReplayRecord>,
    /// The checkpoint of the last recorded summary run, until taken.
    last_snapshot: Option<Snapshot>,
}

/// The result of planning a single-collective experiment: the
/// controller's switch schedule and its cost-model pricing.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Per-step base/matched decisions.
    pub switches: SwitchSchedule,
    /// The eq. (7) cost breakdown of that schedule.
    pub report: CostReport,
}

/// The result of simulating a single-collective experiment: the schedule
/// the controller realized online and the fluid-simulator report, whose
/// trace carries one tagged [`aps_sim::TraceKind::Decision`] event per
/// step.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// The decisions the controller took, step by step.
    pub switches: SwitchSchedule,
    /// The simulator's timing report and event trace.
    pub report: SimReport,
}

/// A configured experiment; see the [module docs](self) for the grammar.
pub struct Experiment<W> {
    base: Topology,
    params: CostParams,
    reconfig: ReconfigModel,
    accounting: ReconfigAccounting,
    solver: ThroughputSolver,
    sim: RunConfig,
    pool: Pool,
    controller: Box<dyn Controller>,
    domain: Option<ScaleupDomain>,
    workload: W,
}

impl Experiment<Unbound> {
    /// Starts an experiment on a scale-up domain with `base` as its base
    /// topology. Defaults: paper §3.4 cost parameters, a constant 10 µs
    /// reconfiguration delay, conservative accounting, the exact
    /// forced-path θ solver, the [`DpPlanned`] controller and an
    /// `APS_THREADS`-sized pool — override any of them with the setters.
    pub fn domain(base: Topology) -> Self {
        let params = CostParams::paper_defaults();
        Experiment {
            base,
            params,
            reconfig: ReconfigModel::constant(10e-6).expect("valid default delay"),
            accounting: ReconfigAccounting::PaperConservative,
            solver: ThroughputSolver::ForcedPath,
            sim: RunConfig::with_params(params),
            pool: Pool::from_env(),
            controller: Box::new(DpPlanned),
            domain: None,
            workload: Unbound(()),
        }
    }

    /// Binds one fixed collective (by its schedule).
    pub fn collective(self, collective: &Collective) -> Experiment<Single> {
        self.schedule(&collective.schedule)
    }

    /// Binds one fixed collective schedule (for composite schedules that
    /// are not a single [`Collective`], e.g. a whole training iteration).
    /// Routes through the schedule's [`Workload`] impl, so this is
    /// exactly `workload(schedule.clone().into_workload())` with the
    /// full-problem planning semantics of the single-collective state.
    pub fn schedule(self, schedule: &Schedule) -> Experiment<Single> {
        self.with_workload(Single {
            stream: schedule.clone().into_workload(),
        })
    }

    /// Binds a lazily-pulled demand stream — any [`Workload`]: a seeded
    /// traffic generator, a training loop, a combinator chain, or a
    /// materialized schedule's cursor. Streaming experiments simulate
    /// online (the controller observes a two-step window; see
    /// [`aps_sim::stream`]) and never materialize the step vector, so
    /// unbounded workloads are fine; only [`Experiment::<Streaming>::plan`]
    /// requires a finite stream.
    pub fn workload(self, workload: impl Workload + 'static) -> Experiment<Streaming> {
        self.with_workload(Streaming {
            workload: Box::new(workload),
            record: false,
            resume: None,
            last_record: None,
            last_snapshot: None,
        })
    }

    /// Binds a message-size-parameterized collective family — the sweep
    /// workload: `build(bytes)` is invoked per grid row.
    pub fn collective_family<F>(self, build: F) -> Experiment<Family>
    where
        F: Fn(f64) -> Result<Collective, CollectiveError> + Send + Sync + 'static,
    {
        self.with_workload(Family {
            build: Box::new(build),
        })
    }

    /// Binds an open-system service: tenant classes whose jobs arrive
    /// via seeded arrival processes, are admitted onto port partitions,
    /// and depart when their demand runs dry. Defaults to the
    /// [`AdmissionPolicy::Reject`] policy, no job cap, and O(1)
    /// accounting — override with the [`Experiment::<Service>`] setters.
    pub fn service(self, classes: Vec<TenantClass>) -> Experiment<Service> {
        self.with_workload(Service {
            classes,
            admission: AdmissionPolicy::Reject,
            max_jobs: None,
            keep_job_reports: false,
        })
    }

    /// Binds a multi-tenant scenario sharing the fabric.
    pub fn scenario(self, scenario: Scenario) -> Experiment<Shared> {
        self.with_workload(Shared { scenario })
    }

    /// Binds an ad-hoc tenant mix on an `n`-port fabric.
    pub fn tenants(self, n: usize, tenants: Vec<TenantSpec>) -> Experiment<Shared> {
        self.with_workload(Shared {
            scenario: Scenario {
                name: "custom".into(),
                n,
                tenants,
            },
        })
    }

    fn with_workload<W>(self, workload: W) -> Experiment<W> {
        Experiment {
            base: self.base,
            params: self.params,
            reconfig: self.reconfig,
            accounting: self.accounting,
            solver: self.solver,
            sim: self.sim,
            pool: self.pool,
            controller: self.controller,
            domain: None,
            workload,
        }
    }
}

impl<W> Experiment<W> {
    /// Sets the α–β–δ cost parameters (also used by the simulator).
    pub fn params(mut self, params: CostParams) -> Self {
        self.params = params;
        self.sim.params = params;
        self.domain = None;
        self
    }

    /// Sets the reconfiguration delay model (`α_r`).
    pub fn reconfig(mut self, reconfig: ReconfigModel) -> Self {
        self.reconfig = reconfig;
        self.domain = None;
        self
    }

    /// Sets the reconfiguration accounting rule.
    pub fn accounting(mut self, accounting: ReconfigAccounting) -> Self {
        self.accounting = accounting;
        self.domain = None;
        self
    }

    /// Sets the θ (concurrent-flow) solver.
    pub fn solver(mut self, solver: ThroughputSolver) -> Self {
        self.solver = solver;
        self.domain = None;
        self
    }

    /// Sets the simulator configuration (barrier, compute model,
    /// reconfigure/compute overlap). Its embedded cost parameters become
    /// the experiment's.
    pub fn sim_config(mut self, cfg: RunConfig) -> Self {
        self.params = cfg.params;
        self.sim = cfg;
        self.domain = None;
        self
    }

    /// Sets the worker pool batch operations run on.
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the controller that decides, per step, whether the fabric
    /// bends to the collective. Defaults to [`DpPlanned`].
    pub fn controller(mut self, controller: impl Controller + 'static) -> Self {
        self.controller = Box::new(controller);
        self
    }

    /// The active controller's name.
    pub fn controller_name(&self) -> &str {
        self.controller.name()
    }

    /// Builds the θ-memoizing scale-up domain lazily; later calls reuse
    /// the cache. Returned separately from `&mut self` so callers can
    /// split-borrow the workload and controller fields alongside it.
    fn ensure_domain(&mut self) -> &mut ScaleupDomain {
        if self.domain.is_none() {
            self.domain = Some(
                ScaleupDomain::new(self.base.clone(), self.params, self.reconfig)
                    .with_solver(self.solver)
                    .with_accounting(self.accounting),
            );
        }
        self.domain.as_mut().expect("just built")
    }

    /// The circuit configuration realizing the base topology, when there
    /// is one.
    fn base_config(&self) -> Result<Matching, ExperimentError> {
        aps_core::problem::config_of_topology(&self.base).ok_or(ExperimentError::BaseNotACircuit)
    }
}

impl Experiment<Single> {
    /// Builds the eq. (7) problem instance for the bound collective —
    /// the hook for [`aps_core::explain`] and custom analyses.
    ///
    /// # Errors
    ///
    /// Fails when a step cannot be routed on the base topology.
    pub fn problem(&mut self) -> Result<SwitchingProblem, ExperimentError> {
        self.ensure_domain();
        let domain = self.domain.as_mut().expect("ensured");
        Ok(domain.problem(self.workload.schedule())?)
    }

    /// Lets the experiment's controller choose the switch schedule and
    /// prices it on the cost model.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction and planning errors.
    pub fn plan(&mut self) -> Result<Plan, ExperimentError> {
        self.ensure_domain();
        let domain = self.domain.as_mut().expect("ensured");
        let (switches, report) = domain.plan_with(self.workload.schedule(), &*self.controller)?;
        Ok(Plan { switches, report })
    }

    /// Prices the four classic policies (static, BvN, DP optimum,
    /// threshold) on the bound collective.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction errors.
    pub fn compare(&mut self) -> Result<PolicyComparison, ExperimentError> {
        self.ensure_domain();
        let domain = self.domain.as_mut().expect("ensured");
        Ok(domain.compare(self.workload.schedule())?)
    }

    /// Executes the collective on a fresh circuit-switch fabric with the
    /// controller deciding each step online; the trace carries one
    /// [`aps_sim::TraceKind::Decision`] event per step with the
    /// controller's rationale.
    ///
    /// # Errors
    ///
    /// Fails when the base topology is not a circuit configuration, plus
    /// any simulator error.
    pub fn simulate(&mut self) -> Result<SimRun, ExperimentError> {
        let base_config = self.base_config()?;
        let mut fabric = CircuitSwitch::new(base_config, self.reconfig);
        self.simulate_on(&mut fabric)
    }

    /// [`Experiment::simulate`] against a caller-supplied fabric (e.g. a
    /// [`aps_fabric::WavelengthFabric`], or a switch with injected
    /// faults). The fabric's current configuration is *not* reset; the
    /// base topology only defines where `ConfigChoice::Base` steps run.
    ///
    /// # Errors
    ///
    /// Fails when the base topology is not a circuit configuration, plus
    /// any simulator error.
    pub fn simulate_on(&mut self, fabric: &mut dyn Fabric) -> Result<SimRun, ExperimentError> {
        let base_config = self.base_config()?;
        let problem = self.problem()?;
        let (switches, report) = run_adaptive(
            fabric,
            &base_config,
            &problem,
            &*self.controller,
            self.accounting,
            &self.sim,
        )?;
        Ok(SimRun { switches, report })
    }
}

impl Experiment<Streaming> {
    /// The bound workload's name.
    pub fn workload_name(&self) -> &str {
        self.workload.workload.name()
    }

    /// Attaches a deterministic-replay recorder to subsequent simulation
    /// runs ([`simulate`](Experiment::<Streaming>::simulate),
    /// [`simulate_on`](Experiment::<Streaming>::simulate_on),
    /// [`simulate_summary`](Experiment::<Streaming>::simulate_summary)):
    /// each run hashes every committed step into a
    /// [`ReplayRecord`] retrievable with
    /// [`take_record`](Experiment::<Streaming>::take_record), and summary
    /// runs additionally capture a resumable
    /// [`Snapshot`] (see
    /// [`take_snapshot`](Experiment::<Streaming>::take_snapshot)).
    pub fn record(mut self) -> Self {
        self.workload.record = true;
        self
    }

    /// Arms the next [`simulate_summary`](Experiment::<Streaming>::simulate_summary)
    /// call to resume from `snapshot` instead of step 0 (one-shot: the
    /// snapshot is consumed by that run). Implies
    /// [`record`](Experiment::<Streaming>::record), so the resumed
    /// segment's hash chain continues the interrupted run's and the
    /// concatenated record is bit-identical to an uninterrupted one.
    pub fn resume_from(mut self, snapshot: Snapshot) -> Self {
        self.workload.resume = Some(snapshot);
        self.workload.record = true;
        self
    }

    /// The [`ReplayRecord`] of the most recent recorded run, if any
    /// (cleared by taking it). For a resumed run this covers the resumed
    /// segment's frames; its final state hash still covers the whole
    /// stream via the chained snapshot.
    pub fn take_record(&mut self) -> Option<ReplayRecord> {
        self.workload.last_record.take()
    }

    /// The [`Snapshot`] captured at the end of the most recent recorded
    /// [`simulate_summary`](Experiment::<Streaming>::simulate_summary)
    /// run, if any (cleared by taking it). Feed it back through
    /// [`resume_from`](Experiment::<Streaming>::resume_from) to continue
    /// the stream bit-identically.
    pub fn take_snapshot(&mut self) -> Option<Snapshot> {
        self.workload.last_snapshot.take()
    }

    /// Re-executes the experiment from scratch for `record.frames.len()`
    /// steps and diffs the fresh hashes against `record`, frame by frame.
    /// The returned [`DivergenceReport`] is clean for a faithful record
    /// and otherwise names the first diverging step and which field class
    /// (decision / rates / timing / accounting) broke.
    ///
    /// # Errors
    ///
    /// See [`Experiment::<Streaming>::simulate`].
    pub fn verify(&mut self, record: &ReplayRecord) -> Result<DivergenceReport, ExperimentError> {
        let base_config = self.base_config()?;
        self.workload.workload.reset();
        let pricing = self.stream_pricing();
        let mut fabric = CircuitSwitch::new(base_config, self.reconfig);
        let mut recorder = Recorder::new(
            self.workload.workload.n(),
            self.controller.name(),
            self.workload.workload.name(),
        );
        aps_sim::run_workload_segment(
            &mut fabric,
            &self.base,
            &mut *self.workload.workload,
            &*self.controller,
            pricing,
            &self.sim,
            None,
            record.frames.len(),
            Some(&mut recorder),
        )?;
        Ok(diff_records(record, &recorder.into_record()))
    }

    /// Rewinds and drains the stream (≤ `limit` steps) into a
    /// materialized [`Schedule`] — the bridge to offline analyses.
    ///
    /// # Errors
    ///
    /// Fails when the stream exceeds `limit` steps or yields a malformed
    /// step.
    pub fn materialize(&mut self, limit: usize) -> Result<Schedule, ExperimentError> {
        self.workload.workload.reset();
        Ok(materialize(&mut *self.workload.workload, limit)?)
    }

    /// Materializes the (finite) stream and lets the experiment's
    /// controller choose and price a switch schedule over the whole
    /// problem — planning needs every step at once, so this is only
    /// available when the workload reports an exact upper size bound.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::UnboundedWorkload`] for unbounded streams;
    /// otherwise problem-construction and planning errors.
    pub fn plan(&mut self) -> Result<Plan, ExperimentError> {
        self.workload.workload.reset();
        let Some(limit) = self.workload.workload.size_hint().1 else {
            return Err(ExperimentError::UnboundedWorkload);
        };
        self.ensure_domain();
        let domain = self.domain.as_mut().expect("ensured");
        let (switches, report) =
            domain.plan_workload(&mut *self.workload.workload, limit, &*self.controller)?;
        Ok(Plan { switches, report })
    }

    /// Executes the stream on a fresh circuit-switch fabric with the
    /// controller deciding each pulled step online (two-step observation
    /// window; see [`aps_sim::stream`]). The workload is rewound first,
    /// so repeated calls replay identically. Online controllers produce
    /// runs bit-identical to the materialized adaptive path; planning
    /// controllers degenerate to their myopic window rule.
    ///
    /// # Errors
    ///
    /// Fails when the base topology is not a circuit configuration, plus
    /// any simulator or θ pricing error.
    pub fn simulate(&mut self) -> Result<SimRun, ExperimentError> {
        let base_config = self.base_config()?;
        let mut fabric = CircuitSwitch::new(base_config, self.reconfig);
        self.simulate_on(&mut fabric)
    }

    /// [`Experiment::<Streaming>::simulate`] against a caller-supplied
    /// fabric.
    ///
    /// # Errors
    ///
    /// See [`Experiment::<Streaming>::simulate`].
    pub fn simulate_on(&mut self, fabric: &mut dyn Fabric) -> Result<SimRun, ExperimentError> {
        // Normalize the non-circuit-base failure to the same variant the
        // sibling simulate paths return (the streaming executor would
        // otherwise surface it as a SimError).
        self.base_config()?;
        self.workload.workload.reset();
        let pricing = self.stream_pricing();
        let mut recorder = self.recorder();
        let (switches, report) = aps_sim::run_workload_recorded(
            fabric,
            &self.base,
            &mut *self.workload.workload,
            &*self.controller,
            pricing,
            &self.sim,
            recorder.as_mut().map(|r| r as &mut dyn RecordSink),
        )?;
        if let Some(r) = recorder {
            self.workload.last_record = Some(r.into_record());
        }
        Ok(SimRun { switches, report })
    }

    /// Streams up to `max_steps` steps with O(1) total memory — per-step
    /// reports and traces fold into an [`aps_sim::StreamSummary`] — the
    /// entry for million-step and endless workloads. `max_steps` is an
    /// absolute stream index: a run resumed (via
    /// [`resume_from`](Experiment::<Streaming>::resume_from)) from a
    /// 5 000-step snapshot with `max_steps = 10_000` executes 5 000 more
    /// steps and its summary covers all 10 000.
    ///
    /// # Errors
    ///
    /// See [`Experiment::<Streaming>::simulate`].
    pub fn simulate_summary(
        &mut self,
        max_steps: usize,
    ) -> Result<aps_sim::StreamSummary, ExperimentError> {
        self.workload.workload.reset();
        let base_config = self.base_config()?;
        let pricing = self.stream_pricing();
        let mut fabric = CircuitSwitch::new(base_config, self.reconfig);
        let resume = self.workload.resume.take();
        let mut recorder = match (&resume, self.workload.record) {
            (Some(s), _) => Some(Recorder::resume(
                s.chain,
                self.workload.workload.n(),
                self.controller.name(),
                self.workload.workload.name(),
            )),
            (None, true) => self.recorder(),
            (None, false) => None,
        };
        let (summary, checkpoint) = aps_sim::run_workload_segment(
            &mut fabric,
            &self.base,
            &mut *self.workload.workload,
            &*self.controller,
            pricing,
            &self.sim,
            resume.as_ref().map(|s| &s.checkpoint),
            max_steps,
            recorder.as_mut().map(|r| r as &mut dyn RecordSink),
        )?;
        if let Some(r) = recorder {
            self.workload.last_snapshot = Some(Snapshot {
                checkpoint,
                chain: r.chain(),
            });
            self.workload.last_record = Some(r.into_record());
        }
        Ok(summary)
    }

    fn stream_pricing(&self) -> aps_sim::StreamPricing {
        aps_sim::StreamPricing {
            reconfig: self.reconfig,
            accounting: self.accounting,
            solver: self.solver,
        }
    }

    /// A fresh recorder tagged with this experiment's metadata, when
    /// recording is enabled.
    fn recorder(&self) -> Option<Recorder> {
        self.workload.record.then(|| {
            Recorder::new(
                self.workload.workload.n(),
                self.controller.name(),
                self.workload.workload.name(),
            )
        })
    }
}

impl Experiment<Family> {
    /// Sweeps the family over an `α_r × message-size` grid, pricing the
    /// four classic policies per cell (the engine behind the paper's
    /// Figure 1/2 heatmaps). Runs on the experiment's pool; results are
    /// bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates collective construction and routing errors.
    pub fn sweep(&self, grid: &SweepGrid) -> Result<SweepResult, ExperimentError> {
        Ok(run_sweep_on(
            &self.pool,
            &self.base,
            |m| (self.workload.build)(m),
            self.params,
            grid,
            self.accounting,
            self.solver,
        )?)
    }
}

impl Experiment<Shared> {
    /// The scenario as currently configured (switch schedules included).
    pub fn scenario(&self) -> &Scenario {
        &self.workload.scenario
    }

    /// Lets the experiment's controller plan every tenant's switch
    /// schedule on its own partition (in parallel on the experiment's
    /// pool), replacing the scenario's current schedules. Returns `self`
    /// so a run can be chained: `exp.plan()?.simulate()`.
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn plan(&mut self) -> Result<&mut Self, ExperimentError> {
        self.workload.scenario.plan_configured(
            &self.pool,
            &*self.controller,
            self.params,
            self.reconfig,
            self.accounting,
            self.solver,
        )?;
        Ok(self)
    }

    /// Executes all tenants on one shared fabric (FCFS controller
    /// arbitration, fault isolation); one result per tenant, in input
    /// order.
    ///
    /// # Errors
    ///
    /// Returns a top-level error only for structural problems
    /// (overlapping tenant ports); per-tenant failures land in the inner
    /// results.
    pub fn simulate(&self) -> Result<Vec<Result<TenantReport, SimError>>, ExperimentError> {
        Ok(self.workload.scenario.run(self.reconfig, &self.sim)?)
    }

    /// [`simulate`](Experiment::<Shared>::simulate) against a
    /// caller-supplied fabric — heterogeneous media
    /// (`aps_sim::scenarios::hetero`) or pre-faulted devices. The
    /// fabric's configuration is reset to the scenario's initial state;
    /// faults and the device clock are left as the caller set them.
    ///
    /// # Errors
    ///
    /// As [`simulate`](Experiment::<Shared>::simulate), plus a dimension
    /// mismatch when the fabric's port count differs from the
    /// scenario's.
    pub fn simulate_on(
        &self,
        fabric: &mut dyn Fabric,
    ) -> Result<Vec<Result<TenantReport, SimError>>, ExperimentError> {
        Ok(self.workload.scenario.run_on(fabric, &self.sim)?)
    }
}

impl Experiment<Service> {
    /// Sets the admission policy (default: [`AdmissionPolicy::Reject`]).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.workload.admission = policy;
        self
    }

    /// Caps the number of offered arrivals — the safety valve for
    /// unbounded arrival processes.
    pub fn max_jobs(mut self, jobs: u64) -> Self {
        self.workload.max_jobs = Some(jobs);
        self
    }

    /// Keeps every job's full [`aps_faas::ServiceJobRecord`] in the
    /// report. Off by default so million-job traces stay O(1).
    pub fn keep_job_reports(mut self) -> Self {
        self.workload.keep_job_reports = true;
        self
    }

    /// Runs the service on a fresh circuit-switch fabric realizing the
    /// base topology. Arrival processes reset on entry, so repeated
    /// calls replay bit-identically.
    ///
    /// # Errors
    ///
    /// Fails when the base topology is not a circuit configuration, or
    /// on a structurally invalid class list.
    pub fn run(&mut self) -> Result<ServiceReport, ExperimentError> {
        let base_config = self.base_config()?;
        let mut fabric = CircuitSwitch::new(base_config, self.reconfig);
        self.run_on(&mut fabric)
    }

    /// [`run`](Experiment::<Service>::run) against a caller-supplied
    /// fabric (e.g. a switch with injected faults), with an optional
    /// replay [`RecordSink`] observing every committed step.
    ///
    /// # Errors
    ///
    /// See [`run`](Experiment::<Service>::run).
    pub fn run_on(&mut self, fabric: &mut dyn Fabric) -> Result<ServiceReport, ExperimentError> {
        self.run_recorded(fabric, None)
    }

    /// [`run_on`](Experiment::<Service>::run_on) with a replay sink.
    ///
    /// # Errors
    ///
    /// See [`run`](Experiment::<Service>::run).
    pub fn run_recorded(
        &mut self,
        fabric: &mut dyn Fabric,
        sink: Option<&mut dyn RecordSink>,
    ) -> Result<ServiceReport, ExperimentError> {
        let cfg = aps_faas::ServiceConfig {
            run: self.sim,
            admission: self.workload.admission,
            max_jobs: self.workload.max_jobs,
            keep_job_reports: self.workload.keep_job_reports,
        };
        Ok(run_service_recorded(
            fabric,
            &mut self.workload.classes,
            &cfg,
            sink,
        )?)
    }
}

// ---------------------------------------------------------------------------
// Ablation bridge: plan cells → Experiment runs → KPI vectors.
// ---------------------------------------------------------------------------

/// Runs an [`AblationPlan`] by evaluating every cell through the
/// [`Experiment`] builder on `pool` — the concrete executor behind
/// `perfgate ablate` and the nightly sweep.
///
/// Cell evaluation ([`evaluate_ablation_cell`]) is a pure function of the
/// cell, and the cell list is a pure function of the plan, so the report
/// (and every registry row derived from it) is bit-identical at any
/// `APS_THREADS` setting.
///
/// # Errors
///
/// Plan validation/sampling errors, plus the first failing cell in
/// cell-index order.
pub fn run_ablation(pool: &Pool, plan: &AblationPlan) -> Result<AblationReport, ExperimentError> {
    aps_ablate::run_plan(pool, plan, evaluate_ablation_cell)
}

/// Evaluates one plan cell into its KPI vector.
///
/// Factor semantics (unset factors fall back to the experiment defaults):
///
/// * `workload` (required) — a collective family (`hd-allreduce`,
///   `ring-allreduce`, `alltoall`, `broadcast`) simulated alone on a
///   unidirectional ring of `ports` GPUs, or a named `aps-sim` scenario
///   (`mixed-collectives`, `skewed-tenants`, `staggered-arrivals`) on its
///   own fixed fabric (the `ports` factor is ignored).
/// * `controller` — an [`aps_core::controller::by_name`] name; `static`
///   means *no adaptation*: the collective runs entirely on base, and a
///   scenario keeps its built-in per-tenant switch policies.
/// * `alpha_r_s`, `message_bytes`, `alpha_s`, `delta_s`, `bandwidth_gbps`
///   — the cost regime.
///
/// The `speedup_vs_static` KPI divides the matching static baseline's
/// completion time by the cell's, so `static` cells report exactly 1.
/// All simulation runs inside the cell use [`Pool::serial`]; outer
/// parallelism belongs to [`run_ablation`]'s pool.
///
/// # Errors
///
/// [`ExperimentError::Ablation`] with an [`AblateError::Cell`] payload
/// for unknown names or invalid parameters; simulation errors are also
/// folded into the cell error so the failing cell is identifiable.
pub fn evaluate_ablation_cell(cell: &Cell) -> Result<KpiValues, ExperimentError> {
    const MIB: f64 = 1024.0 * 1024.0;
    let fail = |reason: String| {
        ExperimentError::Ablation(AblateError::Cell {
            cell: cell.index,
            reason,
        })
    };

    let workload = cell
        .name(FactorKey::Workload)
        .ok_or_else(|| fail("cell has no workload factor".into()))?;
    let controller_name = cell.name(FactorKey::Controller).unwrap_or("opt");
    let controller = by_name(controller_name)
        .ok_or_else(|| fail(format!("unknown controller '{controller_name}'")))?;
    let alpha_r = cell.num(FactorKey::AlphaR).unwrap_or(10e-6);
    let bytes = cell.num(FactorKey::MessageBytes).unwrap_or(MIB);
    let ports = cell.num(FactorKey::Ports).unwrap_or(16.0) as usize;
    let defaults = CostParams::paper_defaults();
    let params = CostParams::new(
        cell.num(FactorKey::Alpha).unwrap_or(defaults.alpha_s),
        cell.num(FactorKey::BandwidthGbps).unwrap_or(800.0),
        cell.num(FactorKey::Delta).unwrap_or(defaults.delta_s),
    )
    .map_err(|e| fail(format!("invalid cost parameters: {e}")))?;
    let reconfig = ReconfigModel::constant(alpha_r)
        .map_err(|e| fail(format!("invalid alpha_r {alpha_r}: {e}")))?;

    if let Some(scenario) = aps_sim::scenarios::by_name(workload, bytes) {
        // Shared-fabric path. The baseline keeps the scenario's built-in
        // per-tenant switch policies; any other controller re-plans every
        // tenant's schedule on its own partition.
        let run =
            |ctl: Option<&'static dyn Controller>| -> Result<Vec<TenantReport>, ExperimentError> {
                let base = aps_topology::builders::ring_unidirectional(scenario.n)
                    .map_err(|e| fail(format!("bad scenario fabric: {e}")))?;
                let mut e = Experiment::domain(base)
                    .params(params)
                    .reconfig(reconfig)
                    .pool(Pool::serial())
                    .scenario(scenario.clone());
                if let Some(c) = ctl {
                    e = e.controller(c);
                    e.plan()
                        .map_err(|err| fail(format!("planning failed: {err}")))?;
                    return collect_tenants(e.simulate(), &fail);
                }
                collect_tenants(e.simulate(), &fail)
            };
        let adapted = run(if controller_name == "static" {
            None
        } else {
            Some(controller)
        })?;
        let completion = tenant_completion_ps(&adapted);
        let speedup = if controller_name == "static" {
            1.0
        } else {
            tenant_completion_ps(&run(None)?) / completion
        };
        let busy: f64 = adapted.iter().map(|t| t.report.total_ps as f64).sum();
        let reconfig_total: f64 = adapted
            .iter()
            .flat_map(|t| &t.report.steps)
            .map(|s| s.reconfig_ps as f64)
            .sum();
        Ok(KpiValues {
            speedup_vs_static: speedup,
            completion_ps: completion,
            reconfig_fraction: if busy > 0.0 {
                reconfig_total / busy
            } else {
                0.0
            },
            arbitration_ps: adapted.iter().map(|t| t.arbitration_ps() as f64).sum(),
        })
    } else {
        // Single-collective path on a unidirectional ring of `ports` GPUs.
        let collective = collective_by_name(workload, ports, bytes)
            .ok_or_else(|| fail(format!("unknown workload '{workload}'")))?
            .map_err(|e| fail(format!("cannot build {workload} on {ports} ports: {e}")))?;
        let run = |ctl: &'static dyn Controller| -> Result<SimRun, ExperimentError> {
            let base = aps_topology::builders::ring_unidirectional(ports)
                .map_err(|e| fail(format!("bad base topology: {e}")))?;
            Experiment::domain(base)
                .params(params)
                .reconfig(reconfig)
                .pool(Pool::serial())
                .controller(ctl)
                .collective(&collective)
                .simulate()
                .map_err(|e| fail(format!("simulation failed: {e}")))
        };
        let adapted = run(controller)?;
        let completion = adapted.report.total_ps as f64;
        let speedup = if controller_name == "static" {
            1.0
        } else {
            run(&Static)?.report.total_ps as f64 / completion
        };
        let reconfig_total: f64 = adapted
            .report
            .steps
            .iter()
            .map(|s| s.reconfig_ps as f64)
            .sum();
        Ok(KpiValues {
            speedup_vs_static: speedup,
            completion_ps: completion,
            reconfig_fraction: if completion > 0.0 {
                reconfig_total / completion
            } else {
                0.0
            },
            arbitration_ps: 0.0,
        })
    }
}

/// The collective families resolvable by a stable name — the lookup the
/// ablation bridge and the C ABI (`aps-ffi`) share: `hd-allreduce`,
/// `ring-allreduce`, `alltoall`, `broadcast`. Returns `None` for an
/// unknown family, `Some(Err)` when the family rejects `(n, bytes)`.
pub fn collective_by_name(
    name: &str,
    n: usize,
    bytes: f64,
) -> Option<Result<Collective, CollectiveError>> {
    match name {
        "hd-allreduce" => Some(allreduce::halving_doubling::build(n, bytes)),
        "ring-allreduce" => Some(allreduce::ring::build(n, bytes)),
        "alltoall" => Some(alltoall::linear_shift(n, bytes)),
        "broadcast" => Some(broadcast::binomial(n, 0, bytes)),
        _ => None,
    }
}

/// Flattens the per-tenant results, folding the first tenant failure (or
/// structural error) into the cell error.
fn collect_tenants(
    reports: Result<Vec<Result<TenantReport, SimError>>, ExperimentError>,
    fail: &dyn Fn(String) -> ExperimentError,
) -> Result<Vec<TenantReport>, ExperimentError> {
    reports
        .map_err(|e| fail(format!("scenario failed: {e}")))?
        .into_iter()
        .map(|r| r.map_err(|e| fail(format!("tenant failed: {e}"))))
        .collect()
}

/// Completion of a shared-fabric run: the last tenant's finish time.
fn tenant_completion_ps(tenants: &[TenantReport]) -> f64 {
    tenants.iter().map(|t| t.finish_ps).max().unwrap_or(0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_core::controller::{shipped, AlwaysReconfigure, Greedy};
    use aps_cost::units::MIB;
    use aps_sim::{scenarios, TraceKind};
    use aps_topology::builders;

    fn exp() -> Experiment<Unbound> {
        Experiment::domain(builders::ring_unidirectional(16).unwrap())
            .reconfig(ReconfigModel::constant(10e-6).unwrap())
    }

    #[test]
    fn plan_matches_the_raw_domain_path() {
        let c = allreduce::halving_doubling::build(16, 16.0 * MIB).unwrap();
        let plan = exp().collective(&c).plan().unwrap();
        let mut domain = ScaleupDomain::new(
            builders::ring_unidirectional(16).unwrap(),
            CostParams::paper_defaults(),
            ReconfigModel::constant(10e-6).unwrap(),
        );
        let (switches, report) = domain.plan(&c.schedule).unwrap();
        assert_eq!(plan.switches, switches);
        assert_eq!(plan.report, report);
    }

    #[test]
    fn controllers_order_as_expected() {
        let c = allreduce::halving_doubling::build(16, 16.0 * MIB).unwrap();
        let mut e = exp().collective(&c);
        let cmp = e.compare().unwrap();
        let opt = e.plan().unwrap().report.total_s();
        assert!((opt - cmp.opt_s).abs() < 1e-15);
        for ctl in shipped() {
            let t = exp()
                .collective(&c)
                .controller(ctl)
                .plan()
                .unwrap()
                .report
                .total_s();
            assert!(opt <= t + 1e-15, "{} beat the optimum", ctl.name());
        }
    }

    #[test]
    fn simulate_tags_decisions_and_matches_plan_for_static_controllers() {
        let c = allreduce::halving_doubling::build(16, 4.0 * MIB).unwrap();
        for controller in [&Static as &dyn Controller, &AlwaysReconfigure, &Greedy] {
            let mut e = exp().collective(&c).controller(controller);
            let plan = e.plan().unwrap();
            let run = e.simulate().unwrap();
            assert_eq!(run.switches, plan.switches, "{}", controller.name());
            let decisions = run
                .report
                .trace
                .iter()
                .filter(|ev| matches!(ev.kind, TraceKind::Decision { .. }))
                .count();
            assert_eq!(decisions, c.schedule.num_steps());
            assert!(run.report.total_s() > 0.0);
        }
    }

    #[test]
    fn family_sweep_matches_the_engine() {
        let grid = SweepGrid::small();
        let e = exp().collective_family(|m| allreduce::halving_doubling::build(16, m));
        let r = e.sweep(&grid).unwrap();
        let engine = run_sweep_on(
            &Pool::from_env(),
            &builders::ring_unidirectional(16).unwrap(),
            |m| allreduce::halving_doubling::build(16, m),
            CostParams::paper_defaults(),
            &grid,
            ReconfigAccounting::PaperConservative,
            ThroughputSolver::ForcedPath,
        )
        .unwrap();
        assert_eq!(r.cells, engine.cells);
    }

    #[test]
    fn shared_fabric_plan_then_simulate() {
        let scenario = scenarios::mixed_collectives(4.0 * MIB);
        let mut e = Experiment::domain(builders::ring_unidirectional(32).unwrap())
            .reconfig(ReconfigModel::constant(10e-6).unwrap())
            .scenario(scenario.clone());
        let reports = e.plan().unwrap().simulate().unwrap();
        assert_eq!(reports.len(), scenario.tenants.len());

        // Same as the raw scenario path.
        let mut want = scenario;
        want.plan(
            &Pool::from_env(),
            CostParams::paper_defaults(),
            ReconfigModel::constant(10e-6).unwrap(),
        )
        .unwrap();
        let raw = want
            .run(
                ReconfigModel::constant(10e-6).unwrap(),
                &RunConfig::paper_defaults(),
            )
            .unwrap();
        for (a, b) in reports.iter().zip(&raw) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn shared_plan_honors_accounting_override() {
        // The Shared path must route .accounting() into per-tenant
        // planning exactly like plan_configured does.
        let reconfig = ReconfigModel::constant(10e-6).unwrap();
        let mut e = Experiment::domain(builders::ring_unidirectional(24).unwrap())
            .reconfig(reconfig)
            .accounting(ReconfigAccounting::PhysicalDiff)
            .scenario(scenarios::skewed_tenants(4.0 * MIB));
        e.plan().unwrap();

        let mut want = scenarios::skewed_tenants(4.0 * MIB);
        want.plan_configured(
            &Pool::from_env(),
            &aps_core::controller::DpPlanned,
            CostParams::paper_defaults(),
            reconfig,
            ReconfigAccounting::PhysicalDiff,
            ThroughputSolver::ForcedPath,
        )
        .unwrap();
        for (a, b) in e.scenario().tenants.iter().zip(&want.tenants) {
            assert_eq!(a.switch_schedule, b.switch_schedule, "{}", a.name);
        }
    }

    #[test]
    fn ablation_bridge_evaluates_collectives_and_scenarios() {
        use aps_ablate::{AblationPlan, Factor, FactorKey, Sampling};
        let plan = AblationPlan {
            name: "bridge-test".into(),
            seed: 0,
            sampling: Sampling::FullGrid,
            factors: vec![
                Factor::names(FactorKey::Workload, ["hd-allreduce", "mixed-collectives"]),
                Factor::names(FactorKey::Controller, ["static", "greedy"]),
                Factor::nums(FactorKey::AlphaR, [1e-6]),
                Factor::nums(FactorKey::MessageBytes, [1024.0 * 1024.0]),
                Factor::nums(FactorKey::Ports, [8.0]),
            ],
            kpis: vec![],
        };
        let report = run_ablation(&Pool::serial(), &plan).unwrap();
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert!(r.kpis.completion_ps >= 1.0, "{}", r.cell.factors_string());
            assert!(
                (0.0..=1.0).contains(&r.kpis.reconfig_fraction),
                "{}",
                r.cell.factors_string()
            );
            if r.cell.name(FactorKey::Controller) == Some("static") {
                assert_eq!(r.kpis.speedup_vs_static, 1.0);
            }
            if r.cell.name(FactorKey::Workload) == Some("hd-allreduce") {
                assert_eq!(r.kpis.arbitration_ps, 0.0);
            }
        }
        // Bit-identity across pool sizes, down to the registry bytes.
        let other = run_ablation(&Pool::new(3), &plan).unwrap();
        assert_eq!(
            aps_ablate::rows_csv(&report.registry_rows("t")).unwrap(),
            aps_ablate::rows_csv(&other.registry_rows("t")).unwrap()
        );
    }

    #[test]
    fn ablation_bridge_rejects_unknown_names() {
        use aps_ablate::{Cell, FactorValue};
        let cell = Cell {
            index: 5,
            values: vec![(
                FactorKey::Workload,
                FactorValue::Name("no-such-workload".into()),
            )],
        };
        let err = evaluate_ablation_cell(&cell).unwrap_err();
        assert!(matches!(
            err,
            ExperimentError::Ablation(AblateError::Cell { cell: 5, .. })
        ));
        let cell = Cell {
            index: 0,
            values: vec![
                (FactorKey::Workload, FactorValue::Name("alltoall".into())),
                (
                    FactorKey::Controller,
                    FactorValue::Name("no-such-controller".into()),
                ),
            ],
        };
        assert!(evaluate_ablation_cell(&cell).is_err());
    }

    #[test]
    fn bidirectional_base_plans_but_cannot_simulate() {
        let c = allreduce::halving_doubling::build(8, MIB).unwrap();
        let mut e = Experiment::domain(builders::ring_bidirectional(8).unwrap())
            .reconfig(ReconfigModel::constant(1e-6).unwrap())
            .collective(&c);
        assert!(e.plan().is_ok());
        assert!(matches!(
            e.simulate(),
            Err(ExperimentError::BaseNotACircuit)
        ));
    }
}
