//! Golden-file test for the ablation registry CSV format.
//!
//! Registry rows are append-only across history: a row written today must
//! still mean the same thing — same header, same factor canonicalization,
//! same float formatting, same KPI order — when a later commit appends
//! next to it. This pins the exact bytes of a canonical small plan's rows
//! against a committed fixture. Any intentional format change must bump
//! [`REGISTRY_SCHEMA_VERSION`](aps_ablate::REGISTRY_SCHEMA_VERSION) and
//! regenerate the fixture (run with `UPDATE_GOLDEN=1`).

use adaptive_photonics::prelude::*;
use aps_ablate::{parse_rows, rows_csv, Sampling, REGISTRY_SCHEMA_VERSION};

const GOLDEN_PATH: &str = "tests/fixtures/ablation_registry_golden.csv";

/// A small but representative plan: both collective and multi-tenant
/// scenario workloads, a static and an adaptive controller, two α_r
/// regimes — 8 cells, cheap enough for a debug-build test run.
fn canonical_plan() -> AblationPlan {
    AblationPlan {
        name: "golden".into(),
        seed: 3,
        sampling: Sampling::FullGrid,
        factors: vec![
            Factor::names(FactorKey::Workload, ["hd-allreduce", "mixed-collectives"]),
            Factor::names(FactorKey::Controller, ["static", "greedy"]),
            Factor::nums(FactorKey::AlphaR, [1e-6, 1e-4]),
            Factor::nums(FactorKey::Ports, [8.0]),
            Factor::nums(FactorKey::MessageBytes, [65536.0]),
        ],
        kpis: vec![],
    }
}

fn canonical_rows_csv() -> String {
    let report = run_ablation(&Pool::new(2), &canonical_plan()).unwrap();
    rows_csv(&report.registry_rows("golden")).unwrap()
}

#[test]
fn registry_csv_bytes_match_the_committed_golden_file() {
    let csv = canonical_rows_csv();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &csv).expect("write golden fixture");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        csv, golden,
        "registry bytes drifted from {GOLDEN_PATH}; if the change is \
         intentional, bump REGISTRY_SCHEMA_VERSION and regenerate with \
         UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_parses_and_keys_are_coherent() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden fixture");
    let rows = parse_rows(&golden).expect("golden fixture parses");
    let plan_hash = canonical_plan().plan_hash();
    // 8 cells × 4 KPIs, all keyed by the same commit + today's plan hash.
    assert_eq!(rows.len(), 8 * 4);
    for row in &rows {
        assert_eq!(row.commit, "golden");
        assert_eq!(row.plan, "golden");
        assert_eq!(
            row.plan_hash, plan_hash,
            "plan hash drifted — the committed plan no longer matches the \
             fixture (schema_version {REGISTRY_SCHEMA_VERSION})"
        );
        assert!(row.value.is_finite());
    }
    // Cells 0..8, each contributing every KPI exactly once.
    for cell in 0..8 {
        let kpis: Vec<&str> = rows
            .iter()
            .filter(|r| r.cell == cell)
            .map(|r| r.kpi.as_str())
            .collect();
        assert_eq!(kpis, aps_ablate::KPI_NAMES.to_vec(), "cell {cell}");
    }
}
