//! Golden-file test for the `bench_<name>.json` report schema.
//!
//! `perfgate compare` diffs reports *byte for byte* (modulo the two
//! runtime meta lines), so any drift in the hand-rolled serializer —
//! key order, indentation, float formatting, escaping — silently changes
//! what the CI gate compares. This test pins the rendered bytes of a
//! canonical report exercising every `Json` variant against a committed
//! fixture: a serializer edit must consciously regenerate the golden file
//! (run with `UPDATE_GOLDEN=1`) and bump `SCHEMA_VERSION`.

use aps_bench::output::{bench_report, strip_runtime_meta, BenchMeta, Json};

const GOLDEN_PATH: &str = "tests/fixtures/bench_golden.json";

/// A small report touching every serializer feature: nested objects,
/// scalar and structured arrays, empty containers, whole and fractional
/// floats, integers, booleans, and escaped strings.
fn canonical_report() -> String {
    let meta = BenchMeta {
        name: "golden".into(),
        seed: 42,
        threads: 2,
        wall_s: 0.125,
    };
    let data = Json::obj([
        ("figure", Json::Str("golden".into())),
        ("n", Json::UInt(16)),
        ("enabled", Json::Bool(true)),
        ("axis", Json::nums([1.0, 0.5, 1e-7, 1024.0])),
        ("empty_arr", Json::Arr(vec![])),
        ("empty_obj", Json::Obj(vec![])),
        ("escaped", Json::Str("quote\" backslash\\ tab\t".into())),
        (
            "cells",
            Json::Arr(vec![
                Json::obj([
                    ("name", Json::Str("a".into())),
                    ("t_s", Json::Num(0.0012207031)),
                ]),
                Json::obj([("name", Json::Str("b".into())), ("t_s", Json::Num(3.0))]),
            ]),
        ),
    ]);
    bench_report(&meta, data).render()
}

#[test]
fn bench_report_bytes_match_the_committed_golden_file() {
    let rendered = canonical_report();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden fixture");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "bench report serialization drifted from {GOLDEN_PATH}; if the change is \
         intentional, bump SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_strips_to_a_stable_deterministic_core() {
    // The perfgate view of the fixture: stripping the runtime meta keys
    // removes exactly the `threads` and `wall_s` lines and nothing else.
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden fixture");
    let stripped = strip_runtime_meta(&golden);
    assert_eq!(golden.lines().count(), stripped.lines().count() + 2);
    assert!(!stripped.contains("\"threads\""));
    assert!(!stripped.contains("\"wall_s\""));
    assert!(stripped.contains("\"schema_version\""));
    assert!(stripped.contains("\"seed\""));
}
