//! Fault-injection integration tests: degraded fabrics end to end.
//!
//! The fabric device models expose the failure modes a real photonic
//! deployment would see — stuck ports (a circuit the controller cannot
//! move), slow controllers, and degraded tunable lasers. These tests drive
//! whole collectives through such fabrics and check that the system either
//! completes with the predicted slowdown or fails loudly with a precise
//! error, never silently wrong.

use adaptive_photonics::prelude::*;
use aps_cost::units::MIB;
use aps_sim::{ComputeModel, SimError, TraceKind};

fn ring(n: usize) -> Matching {
    Matching::shift(n, 1).unwrap()
}

/// Asserts every `ReconfigStart` is preceded by a `Decision` stamped at
/// or before it, returning how many reconfigurations the trace carried.
fn assert_decisions_precede_reconfigs(trace: &[aps_sim::TraceEvent]) -> usize {
    let mut last_decision_at = None;
    let mut reconfigs = 0;
    for ev in trace {
        match ev.kind {
            TraceKind::Decision { .. } => last_decision_at = Some(ev.at),
            TraceKind::ReconfigStart { .. } => {
                let decided = last_decision_at.expect("decision before reconfig");
                assert!(
                    decided <= ev.at,
                    "decision at {decided} after its reconfiguration at {}",
                    ev.at
                );
                reconfigs += 1;
            }
            _ => {}
        }
    }
    reconfigs
}

#[test]
fn stuck_port_on_static_schedule_is_harmless() {
    // A static schedule never asks the fabric to move: a stuck port on the
    // ring configuration changes nothing.
    let n = 8;
    let coll = collectives::allreduce::ring::build(n, MIB).unwrap();
    let cfg = RunConfig::paper_defaults();
    let ss = SwitchSchedule::all_base(coll.schedule.num_steps());
    let healthy = {
        let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
        run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap()
    };
    let degraded = {
        let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
        f.stick_port(3).unwrap();
        run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap()
    };
    assert_eq!(healthy.total_ps, degraded.total_ps);
}

#[test]
fn stuck_port_breaks_matched_steps_loudly() {
    // Reconfiguring around a stuck port can disconnect a pair; the
    // simulator must report exactly which step and pair failed.
    let n = 4;
    let coll = collectives::alltoall::xor_exchange(n, 4096.0).unwrap();
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
    f.stick_port(0).unwrap();
    let err = run_scheduled(
        &mut f,
        &ring(n),
        &coll.schedule,
        &SwitchSchedule::all_matched(coll.schedule.num_steps()),
        &RunConfig::paper_defaults(),
    )
    .unwrap_err();
    match err {
        SimError::Unroutable { step, src, dst } => {
            assert!(src != dst);
            assert!(step < coll.schedule.num_steps());
        }
        other => panic!("expected Unroutable, got {other}"),
    }
}

#[test]
fn unsticking_restores_the_plan() {
    let n = 4;
    let coll = collectives::alltoall::xor_exchange(n, 4096.0).unwrap();
    let ss = SwitchSchedule::all_matched(coll.schedule.num_steps());
    let cfg = RunConfig::paper_defaults();
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
    f.stick_port(0).unwrap();
    assert!(run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).is_err());
    // Repair the port, restore the base configuration, and rewind the
    // device clock so a fresh simulation run (which restarts at t = 0) can
    // drive the same device.
    f.unstick_port(0);
    let now = 1_000_000_000; // after the failed attempt's reconfigurations
    f.request(&ring(n), now).unwrap();
    assert_eq!(f.current(), &ring(n));
    f.reset_clock();
    let report = run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap();
    assert!(report.total_ps > 0);
}

#[test]
fn controller_slowdown_scales_reconfig_time_only() {
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let ss = SwitchSchedule::all_matched(coll.schedule.num_steps());
    let cfg = RunConfig::paper_defaults();
    let run_with = |slow: f64| {
        let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(2e-6).unwrap());
        f.set_slowdown(slow);
        run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap()
    };
    let fast = run_with(1.0);
    let slow = run_with(4.0);
    let extra = slow.total_s() - fast.total_s();
    // 5 physical reconfigurations (the xor(1)→xor(1) boundary is free),
    // each slowed from 2 µs to 8 µs.
    assert!((extra - 5.0 * 6e-6).abs() < 1e-9, "extra {extra}");
    assert_eq!(fast.transfer_s(), slow.transfer_s());
}

#[test]
fn degraded_laser_slows_only_steps_that_retune_it() {
    let n = 8;
    let coll = collectives::broadcast::binomial(n, 0, MIB).unwrap();
    let s = coll.schedule.num_steps();
    let cfg = RunConfig::paper_defaults();
    let run_with = |bad_port: Option<usize>| {
        let mut f = WavelengthFabric::uniform(ring(n), 1e-6).unwrap();
        if let Some(p) = bad_port {
            f.set_port_tuning(p, 100e-6).unwrap();
        }
        run_scheduled(
            &mut f,
            &ring(n),
            &coll.schedule,
            &SwitchSchedule::all_matched(s),
            &cfg,
        )
        .unwrap()
    };
    let healthy = run_with(None);
    // Port 0 is the broadcast root: it retunes in step 0 (and whenever its
    // circuit changes); the degraded laser must show up.
    let degraded = run_with(Some(0));
    assert!(degraded.total_ps > healthy.total_ps);
    // A port that never changes its circuit across the matched schedule
    // would not matter — but in a binomial broadcast every port eventually
    // participates, so pick the last-joining port and check the slowdown is
    // smaller than for the root.
    let late = run_with(Some(n - 1));
    assert!(late.total_ps <= degraded.total_ps);
}

#[test]
fn decisions_precede_reconfigs_on_a_repaired_switch_under_overlap() {
    // A stuck-then-repaired port with a slowed controller and
    // reconfigure/compute overlap: each step's fabric request fires while
    // the GPUs still compute, but the Decision event that caused it must
    // already be in the trace, stamped at or before the ReconfigStart.
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let cfg = RunConfig {
        compute: Some(ComputeModel { per_byte_s: 1e-9 }),
        overlap_reconfig_with_compute: true,
        ..RunConfig::paper_defaults()
    };
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(5e-6).unwrap());
    f.set_slowdown(4.0);
    f.stick_port(2).unwrap();
    f.unstick_port(2);
    let run = Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(ReconfigModel::constant(5e-6).unwrap())
        .sim_config(cfg)
        .controller(AlwaysReconfigure)
        .collective(&coll)
        .simulate_on(&mut f)
        .unwrap();
    let reconfigs = assert_decisions_precede_reconfigs(&run.report.trace);
    assert!(reconfigs > 0, "overlap run must reconfigure");
}

#[test]
fn decisions_precede_reconfigs_on_a_degraded_laser_under_overlap() {
    // Same ordering invariant on the wavelength fabric with one slow
    // laser: degraded per-port tuning stretches ReconfigStart→Done but
    // must never reorder a reconfiguration ahead of its decision.
    let n = 8;
    let coll = collectives::broadcast::binomial(n, 0, MIB).unwrap();
    let cfg = RunConfig {
        compute: Some(ComputeModel { per_byte_s: 1e-9 }),
        overlap_reconfig_with_compute: true,
        ..RunConfig::paper_defaults()
    };
    let mut f = WavelengthFabric::uniform(ring(n), 1e-6).unwrap();
    f.set_port_tuning(0, 100e-6).unwrap();
    let run = Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(ReconfigModel::constant(1e-6).unwrap())
        .sim_config(cfg)
        .controller(Greedy)
        .collective(&coll)
        .simulate_on(&mut f)
        .unwrap();
    assert_decisions_precede_reconfigs(&run.report.trace);
    // Every step carries exactly one decision, even on a degraded device.
    let decisions = run
        .report
        .trace
        .iter()
        .filter(|ev| matches!(ev.kind, TraceKind::Decision { .. }))
        .count();
    assert_eq!(decisions, coll.schedule.num_steps());
}

// ---------------------------------------------------------------------
// Multi-tenant fault isolation: a degraded partition must stay contained.
// ---------------------------------------------------------------------

fn matched_tenant(name: &str, ports: Vec<usize>, bytes: f64) -> TenantSpec {
    let n = ports.len();
    let coll = collectives::alltoall::xor_exchange(n, bytes).unwrap();
    let steps = coll.schedule.num_steps();
    TenantSpec {
        name: name.into(),
        ports,
        base_config: Matching::shift(n, 1).unwrap(),
        schedule: coll.schedule,
        switch_schedule: SwitchSchedule::all_matched(steps),
        arrival_s: 0.0,
    }
}

fn tenant_fabric(n: usize, tenants: &[TenantSpec], alpha_r: f64) -> CircuitSwitch {
    // The scenario machinery owns the union-of-bases construction.
    aps_sim::scenarios::Scenario {
        name: "fault-injection".into(),
        n,
        tenants: tenants.to_vec(),
    }
    .fabric(ReconfigModel::constant(alpha_r).unwrap())
    .unwrap()
}

#[test]
fn one_tenants_stuck_port_does_not_corrupt_the_other_tenants_report() {
    // Tenant A's partition has a stuck port that disconnects its matched
    // steps; tenant B shares only the fabric controller. B's report must
    // be byte-for-byte what it is on a healthy fabric, and A must fail
    // with a tenant-tagged error naming it.
    let a = matched_tenant("victim", (0..4).collect(), 4096.0);
    let b = matched_tenant("bystander", (4..8).collect(), 4096.0);
    let cfg = RunConfig::paper_defaults();

    let healthy_b = {
        let mut fab = tenant_fabric(8, &[a.clone(), b.clone()], 1e-6);
        let reports = execute_tenants(&mut fab, &[a.clone(), b.clone()], &cfg).unwrap();
        assert!(reports[0].is_ok() && reports[1].is_ok());
        reports[1].clone().unwrap()
    };

    let mut fab = tenant_fabric(8, &[a.clone(), b.clone()], 1e-6);
    fab.stick_port(0).unwrap(); // port 0 belongs to tenant A
    let reports = execute_tenants(&mut fab, &[a, b], &cfg).unwrap();

    // The failing tenant fails loudly, tagged with its identity…
    match reports[0].as_ref().unwrap_err() {
        SimError::Tenant {
            tenant: 0,
            name,
            source,
        } => {
            assert_eq!(name, "victim");
            assert!(matches!(**source, SimError::Unroutable { .. }), "{source}");
        }
        other => panic!("expected tenant-tagged Unroutable, got {other}"),
    }
    // …and the bystander is never corrupted: every step still moves the
    // same flows over the same circuits in the same time. Only the
    // arbitration waits may change — and only downward, because a dead
    // tenant stops contending for the controller.
    let degraded_b = reports[1].as_ref().unwrap();
    assert_eq!(degraded_b.report.steps.len(), healthy_b.report.steps.len());
    for (d, h) in degraded_b.report.steps.iter().zip(&healthy_b.report.steps) {
        assert_eq!(d.transfer_ps, h.transfer_ps);
        assert_eq!(d.ports_changed, h.ports_changed);
        assert_eq!(d.max_hops, h.max_hops);
        assert!(d.arbitration_ps <= h.arbitration_ps);
    }
    assert!(degraded_b.arbitration_ps() <= healthy_b.arbitration_ps());
    assert!(degraded_b.finish_ps <= healthy_b.finish_ps);
}

#[test]
fn stuck_port_on_an_idle_partition_is_harmless_to_all_tenants() {
    // Ports 8..12 belong to no tenant; sticking one changes nothing.
    let a = matched_tenant("a", (0..4).collect(), 4096.0);
    let b = matched_tenant("b", (4..8).collect(), 4096.0);
    let cfg = RunConfig::paper_defaults();
    let run = |stick: Option<usize>| {
        let mut fab = tenant_fabric(12, &[a.clone(), b.clone()], 1e-6);
        if let Some(p) = stick {
            fab.stick_port(p).unwrap();
        }
        execute_tenants(&mut fab, &[a.clone(), b.clone()], &cfg).unwrap()
    };
    let healthy = run(None);
    let degraded = run(Some(9));
    for (h, d) in healthy.iter().zip(degraded.iter()) {
        assert_eq!(h.as_ref().unwrap(), d.as_ref().unwrap());
    }
}

#[test]
fn fabric_stats_track_degradation() {
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let ss = SwitchSchedule::all_matched(coll.schedule.num_steps());
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(2e-6).unwrap());
    run_scheduled(
        &mut f,
        &ring(n),
        &coll.schedule,
        &ss,
        &RunConfig::paper_defaults(),
    )
    .unwrap();
    let stats = f.stats();
    assert_eq!(stats.reconfigurations, 5);
    assert!(stats.ports_retargeted >= 5 * n - n);
    assert!(stats.busy_ps > 0);
}

#[test]
fn duplicate_tenant_ports_error_instead_of_panicking() {
    // A user-built spec whose port list maps two local circuits onto the
    // same global port must surface a typed error from `global_base`,
    // not a panic (the executor's partition validation is not on this
    // path).
    let mut spec = matched_tenant("dup-ports", (0..4).collect(), 4096.0);
    spec.ports = vec![0, 1, 2, 1];
    assert!(matches!(
        spec.global_base(),
        Err(SimError::ConfigConflict { .. })
    ));
}

#[test]
fn oversized_base_config_errors_instead_of_indexing_out_of_bounds() {
    // A base configuration spanning more local ranks than the tenant owns
    // ports used to index past the port list; now it is a typed
    // dimension mismatch.
    let mut spec = matched_tenant("oversized", (0..4).collect(), 4096.0);
    spec.base_config = Matching::shift(6, 1).unwrap();
    assert!(matches!(
        spec.global_base(),
        Err(SimError::DimensionMismatch {
            fabric: 4,
            collective: 6
        })
    ));
}

#[test]
fn overlapping_tenant_bases_error_instead_of_panicking() {
    // Two tenants claiming an overlapping port range: their base rings
    // collide on the shared ports, so the scenario's union-of-bases
    // construction must refuse with a typed error — and so must every
    // entry point layered on it.
    let a = matched_tenant("left", (0..4).collect(), 4096.0);
    let b = matched_tenant("right", (2..6).collect(), 4096.0);
    let scenario = aps_sim::scenarios::Scenario {
        name: "overlap".into(),
        n: 8,
        tenants: vec![a, b],
    };
    assert!(matches!(
        scenario.initial_config(),
        Err(SimError::ConfigConflict { .. })
    ));
    assert!(matches!(
        scenario.fabric(ReconfigModel::constant(1e-6).unwrap()),
        Err(SimError::ConfigConflict { .. })
    ));
    assert!(matches!(
        scenario.run(
            ReconfigModel::constant(1e-6).unwrap(),
            &RunConfig::paper_defaults()
        ),
        Err(SimError::ConfigConflict { .. })
    ));
}
