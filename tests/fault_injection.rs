//! Fault-injection integration tests: degraded fabrics end to end.
//!
//! The fabric device models expose the failure modes a real photonic
//! deployment would see — stuck ports (a circuit the controller cannot
//! move), slow controllers, and degraded tunable lasers. These tests drive
//! whole collectives through such fabrics and check that the system either
//! completes with the predicted slowdown or fails loudly with a precise
//! error, never silently wrong.

use adaptive_photonics::prelude::*;
use aps_cost::units::MIB;
use aps_sim::{ComputeModel, SimError, TraceKind};

fn ring(n: usize) -> Matching {
    Matching::shift(n, 1).unwrap()
}

/// Asserts every `ReconfigStart` is preceded by a `Decision` stamped at
/// or before it, returning how many reconfigurations the trace carried.
fn assert_decisions_precede_reconfigs(trace: &[aps_sim::TraceEvent]) -> usize {
    let mut last_decision_at = None;
    let mut reconfigs = 0;
    for ev in trace {
        match ev.kind {
            TraceKind::Decision { .. } => last_decision_at = Some(ev.at),
            TraceKind::ReconfigStart { .. } => {
                let decided = last_decision_at.expect("decision before reconfig");
                assert!(
                    decided <= ev.at,
                    "decision at {decided} after its reconfiguration at {}",
                    ev.at
                );
                reconfigs += 1;
            }
            _ => {}
        }
    }
    reconfigs
}

#[test]
fn stuck_port_on_static_schedule_is_harmless() {
    // A static schedule never asks the fabric to move: a stuck port on the
    // ring configuration changes nothing.
    let n = 8;
    let coll = collectives::allreduce::ring::build(n, MIB).unwrap();
    let cfg = RunConfig::paper_defaults();
    let ss = SwitchSchedule::all_base(coll.schedule.num_steps());
    let healthy = {
        let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
        run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap()
    };
    let degraded = {
        let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
        f.stick_port(3).unwrap();
        run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap()
    };
    assert_eq!(healthy.total_ps, degraded.total_ps);
}

#[test]
fn stuck_port_breaks_matched_steps_loudly() {
    // Reconfiguring around a stuck port can disconnect a pair; the
    // simulator must report exactly which step and pair failed.
    let n = 4;
    let coll = collectives::alltoall::xor_exchange(n, 4096.0).unwrap();
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
    f.stick_port(0).unwrap();
    let err = run_scheduled(
        &mut f,
        &ring(n),
        &coll.schedule,
        &SwitchSchedule::all_matched(coll.schedule.num_steps()),
        &RunConfig::paper_defaults(),
    )
    .unwrap_err();
    match err {
        SimError::Unroutable { step, src, dst } => {
            assert!(src != dst);
            assert!(step < coll.schedule.num_steps());
        }
        other => panic!("expected Unroutable, got {other}"),
    }
}

#[test]
fn unsticking_restores_the_plan() {
    let n = 4;
    let coll = collectives::alltoall::xor_exchange(n, 4096.0).unwrap();
    let ss = SwitchSchedule::all_matched(coll.schedule.num_steps());
    let cfg = RunConfig::paper_defaults();
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(1e-6).unwrap());
    f.stick_port(0).unwrap();
    assert!(run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).is_err());
    // Repair the port, restore the base configuration, and rewind the
    // device clock so a fresh simulation run (which restarts at t = 0) can
    // drive the same device.
    f.unstick_port(0);
    let now = 1_000_000_000; // after the failed attempt's reconfigurations
    f.request(&ring(n), now).unwrap();
    assert_eq!(f.current(), &ring(n));
    f.reset_clock();
    let report = run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap();
    assert!(report.total_ps > 0);
}

#[test]
fn controller_slowdown_scales_reconfig_time_only() {
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let ss = SwitchSchedule::all_matched(coll.schedule.num_steps());
    let cfg = RunConfig::paper_defaults();
    let run_with = |slow: f64| {
        let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(2e-6).unwrap());
        f.set_slowdown(slow);
        run_scheduled(&mut f, &ring(n), &coll.schedule, &ss, &cfg).unwrap()
    };
    let fast = run_with(1.0);
    let slow = run_with(4.0);
    let extra = slow.total_s() - fast.total_s();
    // 5 physical reconfigurations (the xor(1)→xor(1) boundary is free),
    // each slowed from 2 µs to 8 µs.
    assert!((extra - 5.0 * 6e-6).abs() < 1e-9, "extra {extra}");
    assert_eq!(fast.transfer_s(), slow.transfer_s());
}

#[test]
fn degraded_laser_slows_only_steps_that_retune_it() {
    let n = 8;
    let coll = collectives::broadcast::binomial(n, 0, MIB).unwrap();
    let s = coll.schedule.num_steps();
    let cfg = RunConfig::paper_defaults();
    let run_with = |bad_port: Option<usize>| {
        let mut f = WavelengthFabric::uniform(ring(n), 1e-6).unwrap();
        if let Some(p) = bad_port {
            f.set_port_tuning(p, 100e-6).unwrap();
        }
        run_scheduled(
            &mut f,
            &ring(n),
            &coll.schedule,
            &SwitchSchedule::all_matched(s),
            &cfg,
        )
        .unwrap()
    };
    let healthy = run_with(None);
    // Port 0 is the broadcast root: it retunes in step 0 (and whenever its
    // circuit changes); the degraded laser must show up.
    let degraded = run_with(Some(0));
    assert!(degraded.total_ps > healthy.total_ps);
    // A port that never changes its circuit across the matched schedule
    // would not matter — but in a binomial broadcast every port eventually
    // participates, so pick the last-joining port and check the slowdown is
    // smaller than for the root.
    let late = run_with(Some(n - 1));
    assert!(late.total_ps <= degraded.total_ps);
}

#[test]
fn decisions_precede_reconfigs_on_a_repaired_switch_under_overlap() {
    // A stuck-then-repaired port with a slowed controller and
    // reconfigure/compute overlap: each step's fabric request fires while
    // the GPUs still compute, but the Decision event that caused it must
    // already be in the trace, stamped at or before the ReconfigStart.
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let cfg = RunConfig {
        compute: Some(ComputeModel { per_byte_s: 1e-9 }),
        overlap_reconfig_with_compute: true,
        ..RunConfig::paper_defaults()
    };
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(5e-6).unwrap());
    f.set_slowdown(4.0);
    f.stick_port(2).unwrap();
    f.unstick_port(2);
    let run = Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(ReconfigModel::constant(5e-6).unwrap())
        .sim_config(cfg)
        .controller(AlwaysReconfigure)
        .collective(&coll)
        .simulate_on(&mut f)
        .unwrap();
    let reconfigs = assert_decisions_precede_reconfigs(&run.report.trace);
    assert!(reconfigs > 0, "overlap run must reconfigure");
}

#[test]
fn decisions_precede_reconfigs_on_a_degraded_laser_under_overlap() {
    // Same ordering invariant on the wavelength fabric with one slow
    // laser: degraded per-port tuning stretches ReconfigStart→Done but
    // must never reorder a reconfiguration ahead of its decision.
    let n = 8;
    let coll = collectives::broadcast::binomial(n, 0, MIB).unwrap();
    let cfg = RunConfig {
        compute: Some(ComputeModel { per_byte_s: 1e-9 }),
        overlap_reconfig_with_compute: true,
        ..RunConfig::paper_defaults()
    };
    let mut f = WavelengthFabric::uniform(ring(n), 1e-6).unwrap();
    f.set_port_tuning(0, 100e-6).unwrap();
    let run = Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(ReconfigModel::constant(1e-6).unwrap())
        .sim_config(cfg)
        .controller(Greedy)
        .collective(&coll)
        .simulate_on(&mut f)
        .unwrap();
    assert_decisions_precede_reconfigs(&run.report.trace);
    // Every step carries exactly one decision, even on a degraded device.
    let decisions = run
        .report
        .trace
        .iter()
        .filter(|ev| matches!(ev.kind, TraceKind::Decision { .. }))
        .count();
    assert_eq!(decisions, coll.schedule.num_steps());
}

// ---------------------------------------------------------------------
// Multi-tenant fault isolation: a degraded partition must stay contained.
// ---------------------------------------------------------------------

fn matched_tenant(name: &str, ports: Vec<usize>, bytes: f64) -> TenantSpec {
    let n = ports.len();
    let coll = collectives::alltoall::xor_exchange(n, bytes).unwrap();
    let steps = coll.schedule.num_steps();
    TenantSpec {
        name: name.into(),
        ports,
        base_config: Matching::shift(n, 1).unwrap(),
        schedule: coll.schedule,
        switch_schedule: SwitchSchedule::all_matched(steps),
        arrival_s: 0.0,
    }
}

fn tenant_fabric(n: usize, tenants: &[TenantSpec], alpha_r: f64) -> CircuitSwitch {
    // The scenario machinery owns the union-of-bases construction.
    aps_sim::scenarios::Scenario {
        name: "fault-injection".into(),
        n,
        tenants: tenants.to_vec(),
    }
    .fabric(ReconfigModel::constant(alpha_r).unwrap())
    .unwrap()
}

#[test]
fn one_tenants_stuck_port_does_not_corrupt_the_other_tenants_report() {
    // Tenant A's partition has a stuck port that disconnects its matched
    // steps; tenant B shares only the fabric controller. B's report must
    // be byte-for-byte what it is on a healthy fabric, and A must fail
    // with a tenant-tagged error naming it.
    let a = matched_tenant("victim", (0..4).collect(), 4096.0);
    let b = matched_tenant("bystander", (4..8).collect(), 4096.0);
    let cfg = RunConfig::paper_defaults();

    let healthy_b = {
        let mut fab = tenant_fabric(8, &[a.clone(), b.clone()], 1e-6);
        let reports = execute_tenants(&mut fab, &[a.clone(), b.clone()], &cfg).unwrap();
        assert!(reports[0].is_ok() && reports[1].is_ok());
        reports[1].clone().unwrap()
    };

    let mut fab = tenant_fabric(8, &[a.clone(), b.clone()], 1e-6);
    fab.stick_port(0).unwrap(); // port 0 belongs to tenant A
    let reports = execute_tenants(&mut fab, &[a, b], &cfg).unwrap();

    // The failing tenant fails loudly, tagged with its identity…
    match reports[0].as_ref().unwrap_err() {
        SimError::Tenant {
            tenant: 0,
            name,
            source,
        } => {
            assert_eq!(name, "victim");
            assert!(matches!(**source, SimError::Unroutable { .. }), "{source}");
        }
        other => panic!("expected tenant-tagged Unroutable, got {other}"),
    }
    // …and the bystander is never corrupted: every step still moves the
    // same flows over the same circuits in the same time. Only the
    // arbitration waits may change — and only downward, because a dead
    // tenant stops contending for the controller.
    let degraded_b = reports[1].as_ref().unwrap();
    assert_eq!(degraded_b.report.steps.len(), healthy_b.report.steps.len());
    for (d, h) in degraded_b.report.steps.iter().zip(&healthy_b.report.steps) {
        assert_eq!(d.transfer_ps, h.transfer_ps);
        assert_eq!(d.ports_changed, h.ports_changed);
        assert_eq!(d.max_hops, h.max_hops);
        assert!(d.arbitration_ps <= h.arbitration_ps);
    }
    assert!(degraded_b.arbitration_ps() <= healthy_b.arbitration_ps());
    assert!(degraded_b.finish_ps <= healthy_b.finish_ps);
}

#[test]
fn stuck_port_on_an_idle_partition_is_harmless_to_all_tenants() {
    // Ports 8..12 belong to no tenant; sticking one changes nothing.
    let a = matched_tenant("a", (0..4).collect(), 4096.0);
    let b = matched_tenant("b", (4..8).collect(), 4096.0);
    let cfg = RunConfig::paper_defaults();
    let run = |stick: Option<usize>| {
        let mut fab = tenant_fabric(12, &[a.clone(), b.clone()], 1e-6);
        if let Some(p) = stick {
            fab.stick_port(p).unwrap();
        }
        execute_tenants(&mut fab, &[a.clone(), b.clone()], &cfg).unwrap()
    };
    let healthy = run(None);
    let degraded = run(Some(9));
    for (h, d) in healthy.iter().zip(degraded.iter()) {
        assert_eq!(h.as_ref().unwrap(), d.as_ref().unwrap());
    }
}

#[test]
fn fabric_stats_track_degradation() {
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let ss = SwitchSchedule::all_matched(coll.schedule.num_steps());
    let mut f = CircuitSwitch::new(ring(n), ReconfigModel::constant(2e-6).unwrap());
    run_scheduled(
        &mut f,
        &ring(n),
        &coll.schedule,
        &ss,
        &RunConfig::paper_defaults(),
    )
    .unwrap();
    let stats = f.stats();
    assert_eq!(stats.reconfigurations, 5);
    assert!(stats.ports_retargeted >= 5 * n - n);
    assert!(stats.busy_ps > 0);
}

#[test]
fn duplicate_tenant_ports_error_instead_of_panicking() {
    // A user-built spec whose port list maps two local circuits onto the
    // same global port must surface a typed error from `global_base`,
    // not a panic (the executor's partition validation is not on this
    // path).
    let mut spec = matched_tenant("dup-ports", (0..4).collect(), 4096.0);
    spec.ports = vec![0, 1, 2, 1];
    assert!(matches!(
        spec.global_base(),
        Err(SimError::ConfigConflict { .. })
    ));
}

#[test]
fn oversized_base_config_errors_instead_of_indexing_out_of_bounds() {
    // A base configuration spanning more local ranks than the tenant owns
    // ports used to index past the port list; now it is a typed
    // dimension mismatch.
    let mut spec = matched_tenant("oversized", (0..4).collect(), 4096.0);
    spec.base_config = Matching::shift(6, 1).unwrap();
    assert!(matches!(
        spec.global_base(),
        Err(SimError::DimensionMismatch {
            fabric: 4,
            collective: 6
        })
    ));
}

// ---------------------------------------------------------------------
// Seeded failure storms on heterogeneous fabrics (scenarios::hetero).
// ---------------------------------------------------------------------

use aps_sim::scenarios::hetero::{self, FabricKind, FailureStorm};

/// The first seed whose correlated flap run lands entirely inside
/// `range` on an `n`-port fabric. Deterministic: the storm is a pure
/// function of `(seed, n)`.
fn seed_with_victims_in(n: usize, range: std::ops::Range<usize>) -> u64 {
    (0..10_000u64)
        .find(|&s| {
            let v = FailureStorm::new(s).victims(n);
            !v.is_empty() && v.iter().all(|&p| range.contains(&p))
        })
        .expect("a seed exists in the first 10k")
}

#[test]
fn correlated_flap_storm_isolates_victims_per_tenant() {
    // A flap storm aimed at the optical tenant of the hybrid mix: that
    // tenant must fail loudly with its own identity, the all-electrical
    // tenant must keep its exact healthy timing (its crossbar neither
    // flaps nor slows), and the boundary tenant completes — degraded,
    // never corrupted.
    let scenario = hetero::hybrid_mix(MIB);
    let cfg = RunConfig::paper_defaults();
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    let initial = Matching::shift(32, 1).unwrap();

    let healthy = {
        let mut fab = hetero::build_fabric(FabricKind::Hybrid, initial.clone(), reconfig).unwrap();
        scenario.run_on(fab.as_mut(), &cfg).unwrap()
    };

    let seed = seed_with_victims_in(32, 24..32); // opt-shuffle's partition
    let storm = FailureStorm::new(seed);
    let mut fab =
        hetero::build_fabric_stormy(FabricKind::Hybrid, initial, reconfig, Some(storm)).unwrap();
    let stormy = scenario.run_on(fab.as_mut(), &cfg).unwrap();

    // The victim fails tenant-tagged; the flap storm cannot take down
    // the whole scenario.
    match stormy[2].as_ref().unwrap_err() {
        SimError::Tenant {
            tenant: 2,
            name,
            source,
        } => {
            assert_eq!(name, "opt-shuffle");
            assert!(matches!(**source, SimError::Unroutable { .. }), "{source}");
        }
        other => panic!("expected tenant-tagged Unroutable, got {other}"),
    }

    // The electrical tenant's data plane is untouched, step for step:
    // the flaps hit the wrong ports and the photonic slowdown hits the
    // wrong medium. Its stalls may shift either way — queueing behind
    // the shared controller stretches when the boundary tenant's
    // photonic reconfigurations slow and shrinks once the dead optical
    // tenant stops contending — but every picosecond of them is
    // queueing, never its own switching: the crossbar reconfigures for
    // free under the storm exactly as it does healthy.
    let (h_elec, s_elec) = (healthy[0].as_ref().unwrap(), stormy[0].as_ref().unwrap());
    for (h, s) in h_elec.report.steps.iter().zip(&s_elec.report.steps) {
        assert_eq!(h.transfer_ps, s.transfer_ps);
        assert_eq!(h.reconfig_ps, h.arbitration_ps);
        assert_eq!(s.reconfig_ps, s.arbitration_ps);
    }

    // The boundary tenant straddles the media split: the storm's
    // transceiver degradation stretches its photonic reconfigurations,
    // but its data plane stays exact.
    let (h_bnd, s_bnd) = (healthy[1].as_ref().unwrap(), stormy[1].as_ref().unwrap());
    assert!(s_bnd.finish_ps >= h_bnd.finish_ps);
    for (h, s) in h_bnd.report.steps.iter().zip(&s_bnd.report.steps) {
        assert_eq!(h.transfer_ps, s.transfer_ps);
        assert!(s.reconfig_ps >= h.reconfig_ps);
    }

    // Trace causality survives the storm: the boundary tenant still
    // reconfigures (storm-stretched, not suppressed), and every
    // ReconfigStart is closed by a ReconfigDone stamped no earlier.
    let mut starts = 0usize;
    let mut open_at = None;
    for ev in &s_bnd.report.trace {
        match ev.kind {
            TraceKind::ReconfigStart { ports } => {
                assert!(ports > 0);
                starts += 1;
                open_at = Some(ev.at);
            }
            TraceKind::ReconfigDone => {
                let at = open_at.take().expect("ReconfigDone without a start");
                assert!(ev.at >= at, "reconfiguration finished before it began");
            }
            _ => {}
        }
    }
    assert!(starts > 0, "boundary tenant must still reconfigure");
    assert!(open_at.is_none(), "every ReconfigStart is closed");
}

#[test]
fn healed_storm_fabric_reruns_to_goodput_one() {
    // Fabric-as-a-service on a stormy hybrid device: while the storm
    // holds, matched jobs crossing the flapped ports fail and goodput
    // drops below one. Heal the storm, rewind the clock, rerun the same
    // offered load — every job completes.
    use aps_core::ConfigChoice;
    use aps_faas::{AdmissionPolicy, PoissonArrivals, TenantClass};
    use aps_fabric::HybridFabric;
    use aps_sim::ServiceSwitching;

    let n = 16;
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    let initial = Matching::shift(n, 1).unwrap();
    let seed = seed_with_victims_in(n, 8..16); // the optical half
    let storm = FailureStorm::new(seed);

    let coll = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let schedule = coll.schedule;
    let class = |sched: collectives::Schedule| {
        TenantClass::new(
            "storm-riders",
            n,
            Matching::shift(n, 1).unwrap(),
            ServiceSwitching::Uniform(ConfigChoice::Matched),
            Box::new(PoissonArrivals::new(1000.0, Some(12), 3).unwrap()),
            Box::new(move |_id: u64| -> Box<dyn collectives::Workload> {
                Box::new(collectives::workload::ScheduleStream::new(sched.clone()))
            }),
        )
    };
    // Queued admission: arrivals that land while the fabric is busy wait
    // instead of bouncing ports-busy, so on a healthy device every
    // offered job is eventually admitted and goodput can reach one.
    let mut service = Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(reconfig)
        .service(vec![class(schedule)])
        .admission(AdmissionPolicy::Queue { capacity: 16 });

    let mut fabric = HybridFabric::split(initial.clone(), n / 2, reconfig).unwrap();
    storm.apply_hybrid(&mut fabric).unwrap();
    let stormy = service.run_on(&mut fabric).unwrap().summary;
    let t = &stormy.tenants[0];
    assert_eq!(t.offered, 12);
    assert!(t.failed > 0, "storm must fail matched jobs");
    assert!(t.goodput() < 1.0);

    // Heal: unstick the flapped ports, lift the slowdown, restore the
    // base configuration and rewind the device clock.
    storm.heal_hybrid(&mut fabric);
    fabric
        .load_state(&aps_fabric::FabricState {
            config: initial,
            busy_until: 0,
        })
        .unwrap();
    fabric.reset_clock();
    let healed = service.run_on(&mut fabric).unwrap().summary;
    let t = &healed.tenants[0];
    assert_eq!(t.offered, 12);
    assert_eq!(t.failed, 0);
    assert_eq!(t.completed, t.admitted);
    assert!((t.goodput() - 1.0).abs() < f64::EPSILON);
    assert!(healed.makespan_ps > 0);
}

#[test]
fn decisions_precede_reconfigs_under_transceiver_ageing_storm() {
    // The wavelength-bank storm degrades transceivers (no flaps), so
    // every tenant completes — slower, since aged tuning stretches every
    // matched step's reconfiguration on the critical path (no compute to
    // hide it behind).
    let scenario = hetero::multi_wavelength(MIB);
    let cfg = RunConfig::paper_defaults();
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    let initial = Matching::shift(24, 1).unwrap();
    // Age transceivers inside the band-hopper's partition (ports 8..24),
    // the tenant whose cross-band hops dominate the makespan.
    let storm = FailureStorm::new(seed_with_victims_in(24, 8..24));

    let run = |storm: Option<FailureStorm>| {
        let mut fab = hetero::build_fabric_stormy(
            FabricKind::WavelengthBank,
            initial.clone(),
            reconfig,
            storm,
        )
        .unwrap();
        scenario
            .run_on(fab.as_mut(), &cfg)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<_>>()
    };
    let healthy = run(None);
    let stormy = run(Some(storm));
    for (h, s) in healthy.iter().zip(&stormy) {
        assert!(
            s.finish_ps >= h.finish_ps,
            "ageing never speeds a tenant up"
        );
    }
    // Degradation is visible somewhere: the storm's victims slow at
    // least one tenant down.
    assert!(
        stormy.iter().map(|t| t.finish_ps).max() > healthy.iter().map(|t| t.finish_ps).max(),
        "storm must cost time"
    );

    // The causality invariant rides the adaptive path — scheduled
    // scenario replay never consults a controller, so drive a live
    // controller over the same aged bank, with reconfigure/compute
    // overlap on to stress the event ordering, and check every
    // storm-stretched reconfiguration is still preceded by its decision.
    let coll = collectives::alltoall::linear_shift(24, MIB).unwrap();
    let mut aged =
        hetero::build_fabric_stormy(FabricKind::WavelengthBank, initial, reconfig, Some(storm))
            .unwrap();
    let run = Experiment::domain(topology::builders::ring_unidirectional(24).unwrap())
        .reconfig(reconfig)
        .sim_config(RunConfig {
            compute: Some(ComputeModel { per_byte_s: 1e-9 }),
            overlap_reconfig_with_compute: true,
            ..RunConfig::paper_defaults()
        })
        .controller(AlwaysReconfigure)
        .collective(&coll)
        .simulate_on(aged.as_mut())
        .unwrap();
    let reconfigs = assert_decisions_precede_reconfigs(&run.report.trace);
    assert!(reconfigs > 0, "the adaptive run must reconfigure");
}

#[test]
fn overlapping_tenant_bases_error_instead_of_panicking() {
    // Two tenants claiming an overlapping port range: their base rings
    // collide on the shared ports, so the scenario's union-of-bases
    // construction must refuse with a typed error — and so must every
    // entry point layered on it.
    let a = matched_tenant("left", (0..4).collect(), 4096.0);
    let b = matched_tenant("right", (2..6).collect(), 4096.0);
    let scenario = aps_sim::scenarios::Scenario {
        name: "overlap".into(),
        n: 8,
        tenants: vec![a, b],
    };
    assert!(matches!(
        scenario.initial_config(),
        Err(SimError::ConfigConflict { .. })
    ));
    assert!(matches!(
        scenario.fabric(ReconfigModel::constant(1e-6).unwrap()),
        Err(SimError::ConfigConflict { .. })
    ));
    assert!(matches!(
        scenario.run(
            ReconfigModel::constant(1e-6).unwrap(),
            &RunConfig::paper_defaults()
        ),
        Err(SimError::ConfigConflict { .. })
    ));
}
