//! Streaming-workload acceptance suite: parity with the materialized
//! path, O(1)-memory million-step execution, and cross-thread generator
//! determinism.
//!
//! 1. **Parity** — simulating a `Schedule` through its `Workload` impl is
//!    bit-identical to the materialized adaptive path for every online
//!    controller (decisions, rationales, trace, timing).
//! 2. **Scale** — a ≥1,000,000-step repeated workload runs under the
//!    streaming adaptive executor without materializing the step vector:
//!    a counting wrapper shows steps are pulled one at a time, exactly as
//!    demanded, and the O(1) `StreamSummary` report carries the totals.
//! 3. **Determinism** — seeded generators replay bit-identically when
//!    driven from `aps-par` pools of any width (the PR 2 `APS_THREADS`
//!    guarantee extended to workloads).

use adaptive_photonics::prelude::*;
use aps_collectives::workload::generators::{OnOffBursty, RandomPermutations, TrainingLoop};

fn domain(n: usize) -> Experiment<adaptive_photonics::experiment::Unbound> {
    Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
}

#[test]
fn schedule_via_workload_is_bit_identical_to_materialized_simulation() {
    let n = 16;
    for schedule in [
        collectives::allreduce::halving_doubling::build(n, 4.0 * 1024.0 * 1024.0)
            .unwrap()
            .schedule,
        collectives::alltoall::linear_shift(n, 1024.0 * 1024.0)
            .unwrap()
            .schedule,
    ] {
        for ctl in [
            &Static as &dyn Controller,
            &AlwaysReconfigure,
            &Threshold,
            &Greedy,
        ] {
            let via_schedule = domain(n)
                .schedule(&schedule)
                .controller(ctl)
                .simulate()
                .unwrap();
            let mut streaming = domain(n)
                .workload(schedule.clone().into_workload())
                .controller(ctl);
            let via_workload = streaming.simulate().unwrap();
            assert_eq!(
                via_schedule.switches,
                via_workload.switches,
                "{}",
                ctl.name()
            );
            assert_eq!(via_schedule.report, via_workload.report, "{}", ctl.name());
            // The streaming run replays identically (reset-on-entry).
            let again = streaming.simulate().unwrap();
            assert_eq!(via_workload.report, again.report, "{}", ctl.name());
        }
    }
}

#[test]
fn streaming_plan_matches_schedule_plan() {
    let n = 16;
    let schedule = collectives::allreduce::halving_doubling::build(n, 16.0 * 1024.0 * 1024.0)
        .unwrap()
        .schedule;
    let want = domain(n).schedule(&schedule).plan().unwrap();
    let got = domain(n)
        .workload(schedule.clone().into_workload())
        .plan()
        .unwrap();
    assert_eq!(want.switches, got.switches);
    assert_eq!(want.report, got.report);
    // Unbounded streams refuse to plan but still simulate.
    let mut endless = domain(n).workload(schedule.into_workload().repeat_forever());
    assert!(matches!(
        endless.plan(),
        Err(ExperimentError::UnboundedWorkload)
    ));
    let summary = endless.simulate_summary(64).unwrap();
    assert_eq!(summary.steps, 64);
}

/// Wraps a workload and counts every pull, so tests can assert demand is
/// consumed incrementally — never materialized ahead of execution.
struct Counting<W> {
    inner: W,
    pulled: usize,
}

impl<W: Workload> Workload for Counting<W> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step> {
        self.pulled += 1;
        self.inner.next_step(ctx)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
    fn reset(&mut self) {
        self.inner.reset();
        self.pulled = 0;
    }
}

#[test]
fn million_step_workload_streams_without_materializing() {
    // 500,000 epochs of a 2-step schedule: 1,000,000 steps. The schedule
    // allocation is the 2-step epoch alone — the stream holds O(1) state
    // (a cursor + epoch counter) no matter how long it runs — and the
    // totals runner keeps the report O(1) too (a single StepReport
    // scratch folded into a StreamSummary).
    let n = 4;
    let step = Step {
        matching: Matching::shift(n, 1).unwrap(),
        bytes_per_pair: 1024.0,
    };
    let epoch = Schedule::new(
        n,
        CollectiveKind::Composite,
        "micro-epoch",
        vec![step.clone(), step],
    )
    .unwrap();
    let total_steps = 1_000_000usize;
    let mut counting = Counting {
        inner: epoch.into_workload().repeat(total_steps / 2),
        pulled: 0,
    };
    assert_eq!(counting.size_hint(), (total_steps, Some(total_steps)));

    let base = topology::builders::ring_unidirectional(n).unwrap();
    let reconfig = ReconfigModel::constant(1e-6).unwrap();
    let mut fabric = CircuitSwitch::new(Matching::shift(n, 1).unwrap(), reconfig);
    let summary = run_workload_totals(
        &mut fabric,
        &base,
        &mut counting,
        &Static,
        StreamPricing::new(reconfig),
        &RunConfig::paper_defaults(),
        usize::MAX,
    )
    .unwrap();
    assert_eq!(summary.steps, total_steps);
    assert_eq!(summary.matched_steps, 0);
    assert_eq!(summary.reconfig_events, 0);
    assert!(summary.total_s() > 0.0);
    // Exactly one pull per executed step plus the exhaustion probe — the
    // executor never read ahead.
    assert_eq!(counting.pulled, total_steps + 1);

    // Lazy in the strong sense: a capped run pulls only what it executes,
    // leaving the rest of the stream untouched.
    counting.reset();
    let mut fabric = CircuitSwitch::new(Matching::shift(n, 1).unwrap(), reconfig);
    let capped = run_workload_totals(
        &mut fabric,
        &base,
        &mut counting,
        &Static,
        StreamPricing::new(reconfig),
        &RunConfig::paper_defaults(),
        1000,
    )
    .unwrap();
    assert_eq!(capped.steps, 1000);
    assert_eq!(counting.pulled, 1000);
    assert_eq!(
        counting.size_hint(),
        (total_steps - 1000, Some(total_steps - 1000))
    );
}

#[test]
fn generators_are_bit_identical_across_pool_widths() {
    // Materialize each seeded generator on pools of several widths; the
    // streams are pure functions of their seeds, so every worker
    // assignment yields the same bytes.
    let seeds: Vec<u64> = (0..8).collect();
    let run = |threads: usize| -> Vec<Vec<Step>> {
        Pool::new(threads).map(&seeds, |_, &seed| {
            let mut steps = Vec::new();
            let mut perms = RandomPermutations::new(8, 1e6, Some(16), seed).unwrap();
            let mut bursty = OnOffBursty::new(8, 1e6, 2, 3, Some(16), seed).unwrap();
            let mut train = TrainingLoop::new(8, 2, 1e5, 1e6, Some(1)).unwrap();
            for w in [&mut perms as &mut dyn Workload, &mut bursty, &mut train] {
                let mut i = 0;
                while let Some(s) = w.next_step(&WorkloadCtx::at(i)) {
                    steps.push(s);
                    i += 1;
                }
            }
            steps
        })
    };
    let serial = run(1);
    for threads in [2, 4] {
        assert_eq!(serial, run(threads), "threads = {threads}");
    }
}
