//! End-to-end regime assertions for the paper's figures (§3.4): the
//! qualitative claims that define a successful reproduction, checked on a
//! reduced grid so they run in CI time.

use aps_bench::figures::{panel, run_panel, Panel};
use aps_core::analysis::{classify, Regime};
use aps_core::sweep::{SweepCell, SweepGrid};

fn grid() -> SweepGrid {
    SweepGrid::paper_default()
}

#[test]
fn fig1_top_row_speedup_grows_with_delay_and_shrinks_with_size() {
    // "significant performance gains over BvN schedules appear when
    // reconfiguration delay is high or message sizes are small".
    for p in [Panel::A, Panel::C, Panel::D] {
        let r = run_panel(&panel(p), 32, &grid()).unwrap();
        let v = r.map(SweepCell::speedup_vs_bvn);
        let (rows, cols) = (v.len(), v[0].len());
        // Monotone (weakly) along columns: higher α_r → larger speedup.
        for row in &v {
            for c in 1..cols {
                assert!(row[c] >= row[c - 1] - 1e-9, "{p:?}: {row:?}");
            }
        }
        // The small-message/high-delay corner is a large win; the
        // large-message/low-delay corner is ~1 (OPT may shave a hair off
        // BvN when a step's matching coincides with the base ring).
        assert!(v[0][cols - 1] > 50.0, "{p:?}");
        assert!(
            v[rows - 1][0] >= 1.0 - 1e-9 && v[rows - 1][0] < 1.05,
            "{p:?}"
        );
    }
}

#[test]
fn fig1_bottom_row_speedup_grows_with_size_and_shrinks_with_delay() {
    // "substantial speedup [over the static ring] when reconfiguration
    // delay is low and message sizes are large".
    for p in [Panel::E, Panel::G, Panel::H] {
        let r = run_panel(&panel(p), 32, &grid()).unwrap();
        let v = r.map(SweepCell::speedup_vs_static);
        let (rows, cols) = (v.len(), v[0].len());
        // Monotone (weakly) down columns: larger messages → larger speedup.
        for (row, (below, above)) in v.windows(2).map(|w| (&w[0], &w[1])).enumerate() {
            for (c, (lo, hi)) in below.iter().zip(above).enumerate() {
                assert!(hi >= &(lo - 1e-9), "{p:?} row {} col {c}", row + 1);
            }
        }
        // The large-message/low-delay corner is a big win (≈ n/2 for the
        // AllReduce panels); the small-message/high-delay corner is ~1.
        assert!(v[rows - 1][0] > 4.0, "{p:?}");
        assert!(
            v[0][cols - 1] >= 1.0 - 1e-9 && v[0][cols - 1] < 1.05,
            "{p:?}"
        );
    }
}

#[test]
fn fig1b_higher_alpha_dampens_small_message_gains() {
    // Panels 1a vs 1b: with α = 10 µs the per-step overhead dominates tiny
    // messages, so the OPT-vs-BvN gains shrink relative to α = 100 ns.
    let a = run_panel(&panel(Panel::A), 32, &grid()).unwrap();
    let b = run_panel(&panel(Panel::B), 32, &grid()).unwrap();
    let va = a.map(SweepCell::speedup_vs_bvn);
    let vb = b.map(SweepCell::speedup_vs_bvn);
    // Small-message, high-delay corner.
    assert!(vb[0][5] < va[0][5]);
}

#[test]
fn fig2_transitional_regime_exists() {
    // "there is also a transitional regime — visible as the diagonal — where
    // our optimized schedules outperform both static and naive BvN".
    let r = run_panel(&panel(Panel::A), 64, &grid()).unwrap();
    let mut mixed_cells = Vec::new();
    for (ri, row) in r.cells.iter().enumerate() {
        for (ci, cell) in row.iter().enumerate() {
            if classify(cell, 0.01) == Regime::MixedWins {
                assert!(cell.speedup_vs_best_of_both() > 1.01);
                mixed_cells.push((ri, ci));
            }
        }
    }
    assert!(
        !mixed_cells.is_empty(),
        "no transitional cells found — the diagonal regime is missing"
    );
    // The mixed cells sit between the static and BvN regions: for each,
    // larger messages at the same α_r lean BvN and smaller lean static.
    for &(ri, ci) in &mixed_cells {
        if ri + 1 < r.cells.len() {
            assert_ne!(
                classify(&r.cells[ri + 1][ci], 0.01),
                Regime::StaticOptimal,
                "cell above a mixed cell should not be static-optimal"
            );
        }
        if ri > 0 {
            assert_ne!(
                classify(&r.cells[ri - 1][ci], 0.01),
                Regime::BvnOptimal,
                "cell below a mixed cell should not be BvN-optimal"
            );
        }
    }
}

#[test]
fn regime_map_is_monotone_along_the_axes() {
    // Sanity on the phase structure: scanning a row left→right (increasing
    // α_r), once the static regime starts it never reverts to BvN.
    let r = run_panel(&panel(Panel::A), 32, &grid()).unwrap();
    for row in &r.cells {
        let mut seen_static = false;
        for cell in row {
            match classify(cell, 0.01) {
                Regime::StaticOptimal => seen_static = true,
                Regime::BvnOptimal => {
                    assert!(!seen_static, "BvN regime after static regime in a row")
                }
                Regime::MixedWins => {}
            }
        }
    }
}
