//! Compatibility pins for the deprecated free-function entrypoints.
//!
//! The PR that introduced `Experiment`/`Controller` kept the five old
//! free functions — `run_collective`, `run_trials`, `run_tenants`,
//! `run_sweep`, `plan_schedules_on` — as `#[deprecated]` shims delegating
//! to the new API. This suite is their only sanctioned caller: it asserts
//! they still compile, still run, and still produce bit-identical results
//! to the paths they delegate to, so downstream code can migrate on its
//! own schedule.

#![allow(deprecated)]

use adaptive_photonics::prelude::*;
use aps_core::sweep::{plan_jobs_on, plan_schedules_on, run_sweep, run_sweep_on, PlanJob};
use aps_cost::units::MIB;

fn ring_config(n: usize) -> Matching {
    Matching::shift(n, 1).unwrap()
}

#[test]
fn run_collective_matches_run_scheduled() {
    let n = 8;
    let c = collectives::allreduce::halving_doubling::build(n, MIB).unwrap();
    let cfg = RunConfig::paper_defaults();
    let ss = SwitchSchedule::all_matched(c.schedule.num_steps());
    let reconfig = ReconfigModel::constant(5e-6).unwrap();
    let mut f1 = CircuitSwitch::new(ring_config(n), reconfig);
    let mut f2 = CircuitSwitch::new(ring_config(n), reconfig);
    let old = run_collective(&mut f1, &ring_config(n), &c.schedule, &ss, &cfg).unwrap();
    let new = run_scheduled(&mut f2, &ring_config(n), &c.schedule, &ss, &cfg).unwrap();
    assert_eq!(old, new);
}

#[test]
fn run_trials_matches_run_trial_batch() {
    let n = 8;
    let c = collectives::allreduce::halving_doubling::build(n, 4.0 * MIB).unwrap();
    let trials: Vec<Trial> = [true, false]
        .into_iter()
        .map(|matched| Trial {
            base_config: ring_config(n),
            reconfig: ReconfigModel::constant(5e-6).unwrap(),
            schedule: c.schedule.clone(),
            switch_schedule: if matched {
                SwitchSchedule::all_matched(c.schedule.num_steps())
            } else {
                SwitchSchedule::all_base(c.schedule.num_steps())
            },
            config: RunConfig::paper_defaults(),
        })
        .collect();
    let old = run_trials(&Pool::serial(), &trials).unwrap();
    let new = run_trial_batch(&Pool::serial(), &trials).unwrap();
    assert_eq!(old, new);
}

#[test]
fn run_tenants_matches_execute_tenants() {
    let scenario = scenarios::skewed_tenants(MIB);
    let cfg = RunConfig::paper_defaults();
    let reconfig = ReconfigModel::constant(5e-6).unwrap();
    let mut f1 = scenario.fabric(reconfig).unwrap();
    let mut f2 = scenario.fabric(reconfig).unwrap();
    let old = run_tenants(&mut f1, &scenario.tenants, &cfg).unwrap();
    let new = execute_tenants(&mut f2, &scenario.tenants, &cfg).unwrap();
    for (a, b) in old.iter().zip(&new) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
}

#[test]
fn run_sweep_matches_run_sweep_on_and_experiment() {
    let n = 8;
    let base = topology::builders::ring_unidirectional(n).unwrap();
    let grid = SweepGrid::small();
    let old = run_sweep(
        &base,
        |m| collectives::allreduce::halving_doubling::build(n, m),
        CostParams::paper_defaults(),
        &grid,
        ReconfigAccounting::PaperConservative,
        ThroughputSolver::ForcedPath,
    )
    .unwrap();
    let new = run_sweep_on(
        &Pool::from_env(),
        &base,
        |m| collectives::allreduce::halving_doubling::build(n, m),
        CostParams::paper_defaults(),
        &grid,
        ReconfigAccounting::PaperConservative,
        ThroughputSolver::ForcedPath,
    )
    .unwrap();
    assert_eq!(old.cells, new.cells);
    let exp = Experiment::domain(base)
        .collective_family(move |m| collectives::allreduce::halving_doubling::build(n, m))
        .sweep(&grid)
        .unwrap();
    assert_eq!(old.cells, exp.cells);
}

#[test]
fn experiment_schedule_is_bit_equivalent_to_its_workload_route() {
    // `Experiment::schedule` stays, but its demand now lives behind the
    // schedule's `Workload` impl. This pins the two front-door routes —
    // the materialized `.schedule(&s)` binder and the streaming
    // `.workload(s.into_workload())` binder — bit-equivalent: same plan,
    // and (for an online controller) the same simulated run byte for
    // byte.
    let n = 16;
    let s = collectives::allreduce::halving_doubling::build(n, 8.0 * MIB)
        .unwrap()
        .schedule;
    let base = || topology::builders::ring_unidirectional(n).unwrap();
    let reconfig = ReconfigModel::constant(10e-6).unwrap();

    let mut via_schedule = Experiment::domain(base()).reconfig(reconfig).schedule(&s);
    let mut via_workload = Experiment::domain(base())
        .reconfig(reconfig)
        .workload(s.clone().into_workload());
    let plan_a = via_schedule.plan().unwrap();
    let plan_b = via_workload.plan().unwrap();
    assert_eq!(plan_a.switches, plan_b.switches);
    assert_eq!(plan_a.report, plan_b.report);

    let mut sim_a = Experiment::domain(base())
        .reconfig(reconfig)
        .schedule(&s)
        .controller(Greedy);
    let mut sim_b = Experiment::domain(base())
        .reconfig(reconfig)
        .workload(s.into_workload())
        .controller(Greedy);
    let run_a = sim_a.simulate().unwrap();
    let run_b = sim_b.simulate().unwrap();
    assert_eq!(run_a.switches, run_b.switches);
    assert_eq!(run_a.report, run_b.report);
}

#[test]
fn plan_schedules_on_matches_plan_jobs_on() {
    let jobs: Vec<PlanJob> = [(8usize, 4.0 * MIB), (16, 64.0 * MIB)]
        .into_iter()
        .map(|(n, bytes)| PlanJob {
            base: topology::builders::ring_unidirectional(n).unwrap(),
            schedule: collectives::allreduce::halving_doubling::build(n, bytes)
                .unwrap()
                .schedule,
        })
        .collect();
    let params = CostParams::paper_defaults();
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    let old = plan_schedules_on(&Pool::serial(), &jobs, params, reconfig).unwrap();
    let new = plan_jobs_on(
        &Pool::serial(),
        &jobs,
        &DpPlanned,
        params,
        reconfig,
        ReconfigAccounting::PaperConservative,
        ThroughputSolver::ForcedPath,
    )
    .unwrap();
    assert_eq!(old, new);
}
