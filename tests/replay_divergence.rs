//! Divergence-report precision: a corrupted record names exactly the
//! first diverging step and the right field class, and clean records
//! verify clean for every shipped controller × every shipped generator.

use adaptive_photonics::collectives::workload::generators::{
    OnOffBursty, ParameterServer, RandomPermutations, TrainingLoop,
};
use adaptive_photonics::prelude::*;
use adaptive_photonics::replay::{Frame, ReplayRecord};

const N: usize = 8;

fn exp(workload: impl Workload + 'static) -> Experiment<adaptive_photonics::experiment::Streaming> {
    Experiment::domain(topology::builders::ring_unidirectional(N).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
        .controller(Greedy)
        .workload(workload)
}

fn training() -> TrainingLoop {
    TrainingLoop::new(N, 2, 1e6, 8e6, Some(4)).unwrap()
}

fn recorded_training_record() -> ReplayRecord {
    let mut e = exp(training()).record();
    e.simulate_summary(usize::MAX).unwrap();
    e.take_record().unwrap()
}

/// Re-derives a frame's digest for one field class after perturbing the
/// underlying value is overkill for a hash record — flipping the stored
/// digest *is* the corruption, exactly what bit-rot or a diverging
/// re-execution produces.
fn corrupt(record: &ReplayRecord, frame: usize, f: impl FnOnce(&mut Frame)) -> ReplayRecord {
    let mut r = record.clone();
    f(&mut r.frames[frame]);
    r
}

#[test]
fn corrupted_decision_is_localized() {
    let record = recorded_training_record();
    assert!(record.frames.len() >= 8);
    let bad = corrupt(&record, 5, |f| f.decision ^= 1);
    let mut e = exp(training());
    let report = e.verify(&bad).unwrap();
    let d = report.first.expect("must diverge");
    assert_eq!(d.frame, 5);
    assert_eq!(d.step, record.frames[5].step);
    assert_eq!(d.class, FieldClass::Decision);
}

#[test]
fn corrupted_rate_is_localized() {
    let record = recorded_training_record();
    let bad = corrupt(&record, 3, |f| f.rates ^= 0xDEAD_BEEF);
    let report = exp(training()).verify(&bad).unwrap();
    let d = report.first.expect("must diverge");
    assert_eq!((d.frame, d.class), (3, FieldClass::Rates));
}

#[test]
fn corrupted_accounting_total_is_localized() {
    let record = recorded_training_record();
    let last = record.frames.len() - 1;
    let bad = corrupt(&record, last, |f| {
        f.accounting = f.accounting.wrapping_add(1)
    });
    let report = exp(training()).verify(&bad).unwrap();
    let d = report.first.expect("must diverge");
    assert_eq!((d.frame, d.class), (last, FieldClass::Accounting));
    // Every frame before the corrupted one still matched.
    assert!(report.to_string().contains("accounting class"), "{report}");
}

#[test]
fn corrupted_timing_and_trace_are_localized() {
    let record = recorded_training_record();
    let bad = corrupt(&record, 2, |f| f.timing ^= 1);
    let d = exp(training()).verify(&bad).unwrap().first.unwrap();
    assert_eq!((d.frame, d.class), (2, FieldClass::Timing));

    // Trace-event divergence (e.g. reordered events) classifies as timing.
    let bad = corrupt(&record, 4, |f| f.trace ^= 1);
    let d = exp(training()).verify(&bad).unwrap().first.unwrap();
    assert_eq!((d.frame, d.class), (4, FieldClass::Timing));
}

#[test]
fn earliest_of_several_corruptions_wins() {
    let record = recorded_training_record();
    let mut bad = corrupt(&record, 6, |f| f.rates ^= 1);
    bad.frames[1].timing ^= 1;
    let d = exp(training()).verify(&bad).unwrap().first.unwrap();
    assert_eq!((d.frame, d.class), (1, FieldClass::Timing));
}

#[test]
fn every_controller_and_generator_verifies_clean() {
    // No false positives: a faithful record of every shipped controller ×
    // every shipped generator re-executes to the identical hash chain.
    type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload>>;
    let workloads: Vec<(&str, WorkloadFactory)> = vec![
        ("training-loop", Box::new(|| Box::new(training()))),
        (
            "parameter-server",
            Box::new(|| Box::new(ParameterServer::new(N, 2, 2e6, Some(6)).unwrap())),
        ),
        (
            "random-permutations",
            Box::new(|| Box::new(RandomPermutations::new(N, 4e6, Some(10), 7).unwrap())),
        ),
        (
            "on-off-bursty",
            Box::new(|| Box::new(OnOffBursty::new(N, 2e6, 3, 2, Some(12), 11).unwrap())),
        ),
    ];
    for controller in adaptive_photonics::core::controller::shipped() {
        for (name, make) in &workloads {
            let mut rec = Experiment::domain(topology::builders::ring_unidirectional(N).unwrap())
                .reconfig(ReconfigModel::constant(10e-6).unwrap())
                .controller(controller)
                .workload(make())
                .record();
            rec.simulate_summary(usize::MAX).unwrap();
            let record = rec.take_record().unwrap();
            assert!(!record.frames.is_empty(), "{name} recorded nothing");

            let mut fresh = Experiment::domain(topology::builders::ring_unidirectional(N).unwrap())
                .reconfig(ReconfigModel::constant(10e-6).unwrap())
                .controller(controller)
                .workload(make());
            let report = fresh.verify(&record).unwrap();
            assert!(
                report.is_clean(),
                "{} × {name}: {report}",
                controller.name()
            );
        }
    }
}

#[test]
fn records_from_the_full_report_path_also_verify_clean() {
    // `simulate()` (full per-step reports) and `verify` (totals path)
    // must hash identically — the synthesized Decision events make the
    // two faces bit-compatible.
    let mut e = exp(training()).record();
    e.simulate().unwrap();
    let record = e.take_record().unwrap();
    let report = exp(training()).verify(&record).unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn wrong_controller_or_workload_diverges() {
    let record = recorded_training_record();

    // A different controller reads the same stream but decides
    // differently somewhere — verify must not report clean.
    let mut other = Experiment::domain(topology::builders::ring_unidirectional(N).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
        .controller(AlwaysReconfigure)
        .workload(training());
    let report = other.verify(&record).unwrap();
    assert!(!report.is_clean());

    // A shorter workload re-executes fewer steps: length divergence.
    let mut shorter = exp(TrainingLoop::new(N, 2, 1e6, 8e6, Some(2)).unwrap());
    let report = shorter.verify(&record).unwrap();
    assert!(!report.is_clean());
    assert!(report.reexec_len < report.recorded_len);
}
