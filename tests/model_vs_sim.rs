//! Cross-validation: the analytic cost model (eq. 3/4/7) against the
//! discrete-event fluid-flow simulator.
//!
//! For uniform-volume steps, max-min fair sharing drains the bottleneck
//! link's flows at exactly `cap/load`, so the simulated transfer time equals
//! the analytic `β·m/θ` — simulator and model must agree *exactly* (up to
//! picosecond rounding). For skewed patterns max-min can only finish
//! earlier, so the model is a certified upper bound.

use adaptive_photonics::prelude::*;
use aps_core::policies::{schedule_for, Policy};
use aps_cost::units::MIB;
use aps_flow::solver::ThetaCache;

fn model_and_sim(
    n: usize,
    coll: &Collective,
    policy: Policy,
    alpha_r: f64,
) -> (f64, f64, SwitchSchedule) {
    let base = topology::builders::ring_unidirectional(n).unwrap();
    let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
    let problem = SwitchingProblem::build(
        &base,
        &coll.schedule,
        &mut cache,
        CostParams::paper_defaults(),
        ReconfigModel::constant(alpha_r).unwrap(),
    )
    .unwrap();
    // The simulator is physical: compare under PhysicalDiff accounting.
    let acc = ReconfigAccounting::PhysicalDiff;
    let switches = schedule_for(&problem, policy, acc).unwrap();
    let model = aps_core::evaluate(&problem, &switches, acc)
        .unwrap()
        .total_s();

    let ring = Matching::shift(n, 1).unwrap();
    let mut fabric = CircuitSwitch::new(ring.clone(), ReconfigModel::constant(alpha_r).unwrap());
    let sim = run_scheduled(
        &mut fabric,
        &ring,
        &coll.schedule,
        &switches,
        &RunConfig::paper_defaults(),
    )
    .unwrap()
    .total_s();
    (model, sim, switches)
}

#[test]
fn uniform_collectives_match_exactly() {
    // Ring allreduce and linear-shift All-to-All: every step loads all ring
    // links equally → max-min equals the concurrent-flow bound.
    let n = 16;
    for coll in [
        collectives::allreduce::ring::build(n, MIB).unwrap(),
        collectives::alltoall::linear_shift(n, MIB).unwrap(),
    ] {
        for policy in [Policy::StaticBase, Policy::AlwaysMatched, Policy::Optimal] {
            let (model, sim, sched) = model_and_sim(n, &coll, policy, 5e-6);
            let rel = (sim - model).abs() / model;
            assert!(
                rel < 1e-6,
                "{} under {:?} ({}): model {model}, sim {sim}",
                coll.schedule.algorithm(),
                policy,
                sched.compact()
            );
        }
    }
}

#[test]
fn simulator_never_exceeds_the_model() {
    // Skewed patterns (xor exchanges wrap asymmetrically on the ring): the
    // model upper-bounds the fluid simulation.
    let n = 16;
    for coll in [
        collectives::allreduce::halving_doubling::build(n, MIB).unwrap(),
        collectives::allreduce::swing::build(n, MIB).unwrap(),
        collectives::allreduce::recursive_doubling::build(n, MIB).unwrap(),
        collectives::alltoall::xor_exchange(n, MIB).unwrap(),
        collectives::alltoall::bruck(n, MIB).unwrap(),
    ] {
        for policy in [Policy::StaticBase, Policy::AlwaysMatched, Policy::Optimal] {
            let (model, sim, sched) = model_and_sim(n, &coll, policy, 5e-6);
            assert!(
                sim <= model * (1.0 + 1e-9),
                "{} under {:?} ({}): sim {sim} exceeds model {model}",
                coll.schedule.algorithm(),
                policy,
                sched.compact()
            );
            // And the model is not wildly loose: within 2x here.
            assert!(
                sim >= model * 0.5,
                "{} under {:?}: sim {sim} unexpectedly far below model {model}",
                coll.schedule.algorithm(),
                policy
            );
        }
    }
}

#[test]
fn matched_execution_is_exact_for_every_collective() {
    // On matched configurations every flow has a dedicated circuit: the
    // simulator must reproduce α + δ + β·m per step exactly, for every
    // algorithm including the skewed ones.
    let n = 16;
    for coll in [
        collectives::allreduce::halving_doubling::build(n, 4.0 * MIB).unwrap(),
        collectives::allreduce::swing::build(n, 4.0 * MIB).unwrap(),
        collectives::broadcast::binomial(n, 3, 4.0 * MIB).unwrap(),
    ] {
        let (model, sim, _) = model_and_sim(n, &coll, Policy::AlwaysMatched, 2e-6);
        let rel = (sim - model).abs() / model;
        assert!(
            rel < 1e-6,
            "{}: model {model} vs sim {sim}",
            coll.schedule.algorithm()
        );
    }
}

#[test]
fn wavelength_fabric_prices_partial_reconfigurations_cheaper() {
    // Broadcast's early steps involve 2–4 ports; on a wavelength fabric the
    // unchanged ports keep carrying traffic, so an all-matched broadcast
    // reconfigures faster than on a whole-fabric circuit switch with the
    // same per-event delay... but, more importantly here, it must still
    // satisfy the semantics and the timing must be deterministic.
    let n = 16;
    let coll = collectives::broadcast::binomial(n, 0, MIB).unwrap();
    let ring = Matching::shift(n, 1).unwrap();
    let s = coll.schedule.num_steps();
    let run = |tuning: f64| {
        let mut f = WavelengthFabric::uniform(ring.clone(), tuning).unwrap();
        run_scheduled(
            &mut f,
            &ring,
            &coll.schedule,
            &SwitchSchedule::all_matched(s),
            &RunConfig::paper_defaults(),
        )
        .unwrap()
        .total_s()
    };
    let fast = run(1e-6);
    let slow = run(20e-6);
    assert!(slow > fast);
    assert!((slow - fast - s as f64 * 19e-6).abs() < 1e-9);
    // Determinism: repeated runs agree bit-for-bit.
    assert_eq!(run(1e-6), run(1e-6));
}
