//! Fabric-as-a-service integration tests: the open-system engine end to
//! end.
//!
//! Pins the three tentpole guarantees. (1) **Lockstep parity**: a
//! service trace where every job arrives at t = 0 and nothing departs
//! mid-run reproduces the closed-system `execute_tenants` path
//! byte-for-byte — outcomes *and* replay record frames — at any
//! `APS_THREADS` (the CI matrix runs this suite at 1 and 4). (2)
//! **O(1) accounting**: a 1,000,000-job arrival trace folds into a
//! `ServiceSummary` without materializing anything per job, with a
//! counting arrival wrapper proving demand is pulled exactly once per
//! job. (3) **Fault isolation**: admission and reclaim survive failure
//! storms — stuck ports and mid-job link flaps fail the victim job but
//! release its partition exactly once, and a second release is a typed
//! error.

use adaptive_photonics::prelude::*;
use aps_cost::units::{Picos, MIB};
use aps_faas::ServiceJobRecord;
use aps_sim::service::{ServiceExecutor, ServiceJobSpec, ServiceSwitching};
use aps_sim::{execute_tenants_recorded, SimError};
use std::cell::Cell;
use std::rc::Rc;

fn spec_tenant(name: &str, ports: Vec<usize>, bytes: f64, matched: bool) -> TenantSpec {
    let n = ports.len();
    let schedule = collectives::allreduce::halving_doubling::build(n, bytes)
        .unwrap()
        .schedule;
    let steps = schedule.num_steps();
    TenantSpec {
        name: name.into(),
        ports,
        base_config: Matching::shift(n, 1).unwrap(),
        schedule,
        switch_schedule: if matched {
            SwitchSchedule::all_matched(steps)
        } else {
            SwitchSchedule::all_base(steps)
        },
        arrival_s: 0.0,
    }
}

/// One service class per tenant: a single job arriving at t = 0 carrying
/// the tenant's schedule and switch plan.
fn class_of(t: &TenantSpec) -> TenantClass {
    let schedule = t.schedule.clone();
    TenantClass::new(
        t.name.clone(),
        t.ports.len(),
        t.base_config.clone(),
        ServiceSwitching::Schedule(t.switch_schedule.clone()),
        Box::new(TraceArrivals::new(vec![0])),
        Box::new(move |_id: u64| -> Box<dyn Workload> {
            Box::new(ScheduleStream::new(schedule.clone()))
        }),
    )
}

fn union_fabric(n: usize, tenants: &[TenantSpec]) -> CircuitSwitch {
    aps_sim::scenarios::Scenario {
        name: "faas-differential".into(),
        n,
        tenants: tenants.to_vec(),
    }
    .fabric(ReconfigModel::constant(5e-6).unwrap())
    .unwrap()
}

#[test]
fn all_at_t0_service_matches_execute_tenants_bitwise() {
    // Three tenant classes on contiguous ascending partitions, so the
    // deterministic lowest-ports-first allocator reproduces the closed
    // system's port assignment, and job ids (admission order) reproduce
    // its tenant indices.
    let tenants = vec![
        spec_tenant("a", (0..8).collect(), MIB, true),
        spec_tenant("b", (8..12).collect(), 4.0 * MIB, false),
        spec_tenant("c", (12..16).collect(), 2.0 * MIB, true),
    ];
    let cfg = RunConfig::paper_defaults();

    let mut closed_rec = Recorder::new(16, "service", "mix");
    let mut fab = union_fabric(16, &tenants);
    let closed = execute_tenants_recorded(&mut fab, &tenants, &cfg, Some(&mut closed_rec)).unwrap();

    let mut open_rec = Recorder::new(16, "service", "mix");
    let mut fab = union_fabric(16, &tenants);
    let mut classes: Vec<TenantClass> = tenants.iter().map(class_of).collect();
    let service_cfg = aps_faas::ServiceConfig {
        run: cfg,
        admission: AdmissionPolicy::Reject,
        max_jobs: None,
        keep_job_reports: true,
    };
    let open =
        aps_faas::run_service_recorded(&mut fab, &mut classes, &service_cfg, Some(&mut open_rec))
            .unwrap();

    // Outcomes match byte-for-byte: finish times and full per-step
    // reports, per tenant.
    assert_eq!(open.jobs.len(), tenants.len());
    for record in &open.jobs {
        let t = record.outcome.id as usize;
        let want = closed[t].as_ref().unwrap();
        assert_eq!(record.outcome.name, want.name);
        assert_eq!(record.outcome.start_ps, want.arrival_ps);
        assert_eq!(record.outcome.finish_ps, want.finish_ps, "tenant {t}");
        assert_eq!(
            record.outcome.report.as_ref().unwrap(),
            &want.report,
            "tenant {t} report"
        );
    }
    let slowest = closed
        .iter()
        .map(|r| r.as_ref().unwrap().finish_ps)
        .max()
        .unwrap();
    assert_eq!(open.summary.makespan_ps, slowest);

    // And the replay record agrees frame by frame — same step order,
    // same decisions, same rates, same state hash chain.
    let closed_record = closed_rec.into_record();
    let open_record = open_rec.into_record();
    assert_eq!(closed_record.final_state, open_record.final_state);
    assert_eq!(closed_record.frames, open_record.frames);
    let diff = diff_records(&closed_record, &open_record);
    assert!(diff.is_clean(), "{diff}");
}

/// Counts arrival pulls through a shared cell, so the test can prove the
/// engine consumed the trace incrementally — one pull per job.
struct CountingArrivals<A> {
    inner: A,
    pulled: Rc<Cell<usize>>,
}

impl<A: ArrivalProcess> ArrivalProcess for CountingArrivals<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn next_gap_ps(&mut self) -> Option<u64> {
        self.pulled.set(self.pulled.get() + 1);
        self.inner.next_gap_ps()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[test]
fn million_job_trace_folds_in_o1() {
    // One million jobs, each one step on a 2-port partition, pushed
    // through the service with O(1) accounting: no per-job records, no
    // materialized queues — just the SLO fold.
    let jobs = 1_000_000u64;
    let pulled = Rc::new(Cell::new(0usize));
    let built = Rc::new(Cell::new(0usize));
    let step_schedule = Schedule::new(
        2,
        CollectiveKind::Composite,
        "micro",
        vec![Step {
            matching: Matching::shift(2, 1).unwrap(),
            bytes_per_pair: 1024.0,
        }],
    )
    .unwrap();
    let built_in = Rc::clone(&built);
    let mut classes = [TenantClass::new(
        "micro",
        2,
        Matching::shift(2, 1).unwrap(),
        ServiceSwitching::Uniform(ConfigChoice::Base),
        Box::new(CountingArrivals {
            inner: TraceArrivals::new(vec![0; jobs as usize]),
            pulled: Rc::clone(&pulled),
        }),
        Box::new(move |_id: u64| -> Box<dyn Workload> {
            built_in.set(built_in.get() + 1);
            Box::new(ScheduleStream::new(step_schedule.clone()))
        }),
    )];
    // Backpressure: the full-at-t0 trace stalls its source instead of
    // overflowing the bounded queue, so all million jobs eventually run.
    let cfg = aps_faas::ServiceConfig {
        admission: AdmissionPolicy::Backpressure { capacity: 4 },
        ..aps_faas::ServiceConfig::paper_defaults()
    };
    let mut fab = CircuitSwitch::new(
        Matching::shift(2, 1).unwrap(),
        ReconfigModel::constant(1e-6).unwrap(),
    );
    let report = aps_faas::run_service(&mut fab, &mut classes, &cfg).unwrap();

    let t = &report.summary.tenants[0];
    assert_eq!(t.offered, jobs);
    assert_eq!(t.completed, jobs);
    assert_eq!(t.rejected(), 0);
    assert_eq!(report.summary.steps.steps, jobs as usize);
    assert!(report.summary.makespan_ps > 0);
    // O(1) in the strong sense: nothing was materialized per job …
    assert!(report.jobs.is_empty());
    // … and demand was pulled exactly once per job (plus the exhaustion
    // probe on the arrival trace), never read ahead.
    assert_eq!(built.get(), jobs as usize);
    assert_eq!(pulled.get(), jobs as usize + 1);
    // The streaming quantile fold saw every completion.
    assert_eq!(t.completion.count(), jobs);
    assert!(t.completion.p50_ps().unwrap() <= t.completion.p99_ps().unwrap());
    assert_eq!(report.summary.fairness_vector(), vec![1.0]);
}

#[test]
fn stuck_port_storm_fails_jobs_but_recycles_their_partitions() {
    // A stuck port for the whole run. Every job wants the whole fabric
    // and needs a reconfiguration, so every job fails — but each one
    // must still be *admitted*, which is only possible if the previous
    // victim's whole-fabric partition was released on departure. After
    // the port heals, the identical storm completes cleanly.
    let schedule = collectives::allreduce::halving_doubling::build(4, MIB)
        .unwrap()
        .schedule;
    let mk_classes = {
        let schedule = schedule.clone();
        move || {
            let schedule = schedule.clone();
            [TenantClass::new(
                "storm",
                4,
                Matching::shift(4, 1).unwrap(),
                ServiceSwitching::Uniform(ConfigChoice::Matched),
                Box::new(TraceArrivals::new(vec![0, 0, 0])),
                Box::new(move |_id: u64| -> Box<dyn Workload> {
                    Box::new(ScheduleStream::new(schedule.clone()))
                }) as Box<dyn aps_faas::JobDemand>,
            )]
        }
    };
    let cfg = aps_faas::ServiceConfig {
        admission: AdmissionPolicy::Queue { capacity: 8 },
        ..aps_faas::ServiceConfig::paper_defaults()
    };
    let mut fab = CircuitSwitch::new(Matching::empty(4), ReconfigModel::constant(1e-6).unwrap());
    fab.stick_port(0).unwrap();
    let report = aps_faas::run_service(&mut fab, &mut mk_classes(), &cfg).unwrap();

    let storm = &report.summary.tenants[0];
    assert_eq!(storm.offered, 3);
    assert_eq!(
        storm.admitted, 3,
        "each failed job released the whole fabric for the next"
    );
    assert_eq!(storm.failed, 3);
    assert_eq!(storm.completed, 0);
    assert_eq!(storm.goodput(), 0.0);
    assert_eq!(report.summary.fairness_vector(), vec![0.0]);

    // Heal the port and replay the identical storm: everyone completes.
    fab.unstick_port(0);
    fab.reset_clock();
    let healed = aps_faas::run_service(&mut fab, &mut mk_classes(), &cfg).unwrap();
    let storm = &healed.summary.tenants[0];
    assert_eq!(storm.completed, 3);
    assert_eq!(storm.failed, 0);
    assert!((storm.goodput() - 1.0).abs() < 1e-12);
}

#[test]
fn mid_job_link_flap_isolates_the_job_and_frees_its_ports_exactly_once() {
    // Drive the executor and allocator directly so the fault can strike
    // *mid-job*: the victim completes its first step, then its link
    // flaps (a port sticks), its next step fails, and it departs as
    // failed after 1 of 2 steps. Its partition is reclaimed exactly once
    // — a second reclaim is the typed double-reclaim error — and after
    // the flap heals, a fresh job on the same ports completes.
    // Two steps over *different* matchings, so the second step needs a
    // reconfiguration that the flapped port blocks.
    let schedule = Schedule::new(
        4,
        CollectiveKind::Composite,
        "alternating-shifts",
        vec![
            Step {
                matching: Matching::shift(4, 1).unwrap(),
                bytes_per_pair: 1024.0 * 1024.0,
            },
            Step {
                matching: Matching::shift(4, 2).unwrap(),
                bytes_per_pair: 1024.0 * 1024.0,
            },
        ],
    )
    .unwrap();
    let steps = schedule.num_steps();
    let spec = |sched: &Schedule| ServiceJobSpec {
        name: "flappy".into(),
        ports: vec![0, 1, 2, 3],
        base_config: Matching::shift(4, 1).unwrap(),
        workload: Box::new(ScheduleStream::new(sched.clone())),
        switching: ServiceSwitching::Uniform(ConfigChoice::Matched),
    };
    let mut fab = CircuitSwitch::new(Matching::empty(4), ReconfigModel::constant(1e-6).unwrap());
    let mut exec = ServiceExecutor::new(4, RunConfig::paper_defaults(), false);
    let mut alloc = PartitionAllocator::new(4);

    let handle = alloc.try_alloc(4).unwrap();
    let adm = exec.admit(0, spec(&schedule), 0).unwrap();
    assert!(adm.has_work);
    assert!(
        exec.execute_next(&mut fab, None).is_none(),
        "step 1 commits"
    );

    fab.stick_port(0).unwrap(); // the mid-job flap
    let dep = exec
        .execute_next(&mut fab, None)
        .expect("the failing step departs the job");
    assert!(dep.failed);
    let out = exec.remove(dep.slot).unwrap();
    assert_eq!(out.steps, 1, "one committed step before the flap");
    assert!(matches!(
        out.error,
        Some(SimError::Fabric(_) | SimError::Unroutable { .. })
    ));

    // Exactly-once reclaim: the first succeeds, the second is typed.
    assert_eq!(alloc.reclaim(handle).unwrap(), 4);
    assert_eq!(
        alloc.reclaim(handle),
        Err(FaasError::DoubleReclaim {
            slot: handle.slot(),
            generation: handle.generation(),
        })
    );

    // The flap heals; the same ports serve the next job to completion.
    fab.unstick_port(0);
    fab.reset_clock();
    let healed = alloc.try_alloc(4).unwrap();
    assert_ne!(healed.generation(), handle.generation());
    let adm = exec.admit(1, spec(&schedule), 0).unwrap();
    let mut finish: Option<Picos> = None;
    for _ in 0..64 {
        if let Some(dep) = exec.execute_next(&mut fab, None) {
            assert!(!dep.failed);
            finish = Some(dep.finish_ps);
            break;
        }
    }
    let out = exec.remove(adm.slot).unwrap();
    assert_eq!(Some(out.finish_ps), finish);
    assert!(out.error.is_none());
    assert_eq!(out.steps, steps);
    assert_eq!(alloc.reclaim(healed).unwrap(), 4);
}

#[test]
fn experiment_service_typestate_runs_end_to_end() {
    let mk_classes = || {
        vec![
            TenantClass::new(
                "poisson",
                4,
                Matching::shift(4, 1).unwrap(),
                ServiceSwitching::Uniform(ConfigChoice::Matched),
                Box::new(PoissonArrivals::new(1.0e6, Some(10), 42).unwrap()),
                Box::new(|_id: u64| -> Box<dyn Workload> {
                    Box::new(ScheduleStream::new(
                        collectives::allreduce::halving_doubling::build(4, MIB)
                            .unwrap()
                            .schedule,
                    ))
                }) as Box<dyn aps_faas::JobDemand>,
            ),
            TenantClass::new(
                "bursty",
                2,
                Matching::shift(2, 1).unwrap(),
                ServiceSwitching::Uniform(ConfigChoice::Base),
                Box::new(MmppArrivals::new([4.0e6, 0.2e6], [2e-6, 2e-6], Some(10), 7).unwrap()),
                Box::new(|_id: u64| -> Box<dyn Workload> {
                    Box::new(ScheduleStream::new(
                        collectives::allreduce::ring::build(2, MIB / 2.0)
                            .unwrap()
                            .schedule,
                    ))
                }) as Box<dyn aps_faas::JobDemand>,
            ),
        ]
    };
    let base = topology::builders::ring_unidirectional(8).unwrap();
    let run = |classes| {
        Experiment::domain(base.clone())
            .reconfig(ReconfigModel::constant(5e-6).unwrap())
            .service(classes)
            .admission(AdmissionPolicy::Backpressure { capacity: 4 })
            .keep_job_reports()
            .run()
            .unwrap()
    };
    let report = run(mk_classes());
    assert_eq!(report.summary.class_names, vec!["poisson", "bursty"]);
    assert_eq!(report.summary.offered(), 20);
    assert_eq!(report.summary.completed(), 20);
    assert_eq!(report.jobs.len(), 20);
    assert!(report.summary.makespan_s() > 0.0);
    for ServiceJobRecord { outcome, .. } in &report.jobs {
        assert!(outcome.error.is_none());
        assert!(outcome.finish_ps >= outcome.start_ps);
    }
    // The whole pipeline — arrivals, admission, allocation, execution —
    // replays bit-identically.
    assert_eq!(report, run(mk_classes()));

    // Structural failures surface through the typed experiment error.
    let err = Experiment::domain(base.clone())
        .service(Vec::new())
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        ExperimentError::Service(FaasError::NoClasses)
    ));
}
