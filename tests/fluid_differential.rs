//! Differential tests: the event-driven fluid engine vs the seed
//! from-scratch engine.
//!
//! The event engine (`aps_sim::fluid::simulate_flows`) re-solves max-min
//! rates only for the sharing components a completion touched; the seed
//! engine (`aps_sim::fluid::reference::simulate_flows_reference`) re-runs
//! the full progressive-filling solver every round. On every input the two
//! must agree — the contract is 1e-9 relative, and the engines are in fact
//! designed to agree *bit for bit* (see the invariants in `fluid.rs`'s
//! module docs), which is what these tests pin.
//!
//! The randomized cases use the compat `proptest` shim: a failing case
//! prints its base seed and replays with `PROPTEST_SEED=<seed>`.

use aps_sim::fluid::reference::simulate_flows_reference;
use aps_sim::fluid::{max_min_rates, simulate_flows, FlowSpec};
use proptest::prelude::*;

/// Strategy: link capacities plus a set of flows over them. Paths are
/// random in-order link subsequences, so sharing components of every shape
/// appear: disjoint singletons, chains, and fully merged sets. A slice of
/// degenerate flows (zero bytes / empty path) rides along.
fn arb_network() -> impl Strategy<Value = (Vec<f64>, Vec<FlowSpec>)> {
    (2usize..10).prop_flat_map(|links| {
        let caps = proptest::collection::vec(0.5f64..100.0, links);
        let flows = proptest::collection::vec(
            (
                0.0f64..1e6,
                proptest::sample::subsequence((0..links).collect::<Vec<usize>>(), 0..5),
            ),
            1..14,
        );
        (caps, flows).prop_map(|(caps, raw)| {
            let specs = raw
                .into_iter()
                .map(|(bytes, path)| FlowSpec { bytes, path })
                .collect();
            (caps, specs)
        })
    })
}

fn assert_engines_agree(caps: &[f64], specs: &[FlowSpec]) {
    let event = simulate_flows(caps, specs);
    let reference = simulate_flows_reference(caps, specs);
    assert_eq!(event.len(), reference.len());
    for (i, (e, r)) in event.iter().zip(&reference).enumerate() {
        let rel = (e - r).abs() / r.abs().max(1e-300);
        assert!(
            rel <= 1e-9,
            "flow {i}: event {e} vs reference {r} (rel {rel})"
        );
        assert_eq!(
            e.to_bits(),
            r.to_bits(),
            "flow {i}: event {e} and reference {r} differ in the last bit"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn event_engine_matches_reference_on_random_flow_sets((caps, specs) in arb_network()) {
        assert_engines_agree(&caps, &specs);
    }

    #[test]
    fn engines_agree_on_equal_volume_flows((caps, specs) in arb_network()) {
        // The per-step pattern the executor produces: one shared volume.
        let specs: Vec<FlowSpec> = specs
            .into_iter()
            .map(|s| FlowSpec { bytes: 4096.0, path: s.path })
            .collect();
        assert_engines_agree(&caps, &specs);
    }

    #[test]
    fn equal_volume_step_time_is_beta_m_l(
        n in 4usize..12,
        m in 1.0f64..1e7,
        shifts in proptest::collection::vec(1usize..11, 1..6),
    ) {
        // Hand-checked oracle: equal-volume flows over a unidirectional
        // ring, one flow per node per shift pattern. The worst link load L
        // (= Σ of the shift distances) pins the step time at β·m·L with
        // β = 1/cap: every flow crossing the worst link drains at cap/L
        // for the whole step.
        let cap = 1e11f64;
        let mut specs = Vec::new();
        let mut load = vec![0usize; n];
        for &k in &shifts {
            let k = (k % (n - 1)) + 1; // 1..n-1, never the identity
            for src in 0..n {
                let path: Vec<usize> = (0..k).map(|h| (src + h) % n).collect();
                for &l in &path {
                    load[l] += 1;
                }
                specs.push(FlowSpec { bytes: m, path });
            }
        }
        let worst = *load.iter().max().unwrap() as f64;
        let finish = simulate_flows(&vec![cap; n], &specs);
        let makespan = finish.iter().fold(0.0f64, |a, &b| a.max(b));
        let expect = m * worst / cap; // = β·m·L
        let rel = (makespan - expect).abs() / expect;
        prop_assert!(rel < 1e-9, "makespan {makespan} vs β·m·L {expect} (rel {rel})");
        assert_engines_agree(&vec![cap; n], &specs);
    }

    #[test]
    fn recycled_scratch_matches_fresh_scratch_across_random_sequences(
        nets in proptest::collection::vec(arb_network(), 2..6),
    ) {
        // The arena contract: one long-lived `FluidScratch` recycled
        // across an arbitrary sequence of simulations (the executor's
        // steady-state pattern) is bit-identical to a fresh scratch per
        // call — no state leaks across steps of any shape sequence
        // (growing, shrinking, degenerate).
        use aps_sim::fluid::simulate_flows_scratch;
        use aps_sim::FluidScratch;

        let mut recycled = FluidScratch::new();
        for (round, (caps, specs)) in nets.iter().enumerate() {
            recycled.load_specs(specs);
            simulate_flows_scratch(caps, &mut recycled);
            let fresh = simulate_flows(caps, specs);
            for (i, want) in fresh.iter().enumerate() {
                prop_assert_eq!(
                    recycled.finish_of(i).to_bits(),
                    want.to_bits(),
                    "round {}: recycled scratch diverged on flow {}",
                    round,
                    i
                );
            }
            prop_assert_eq!(recycled.index_builds(), round as u64 + 1);
        }
    }

    #[test]
    fn cached_rates_equal_fresh_progressive_filling((caps, specs) in arb_network()) {
        // Cross-check the solver itself: the public progressive-filling
        // allocation never oversubscribes a link, on any random instance.
        let paths: Vec<&[usize]> = specs.iter().map(|s| s.path.as_slice()).collect();
        let rates = max_min_rates(&caps, &paths);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = rates
                .iter()
                .zip(&paths)
                .filter(|(_, p)| p.contains(&l))
                .map(|(r, _)| r)
                .sum();
            prop_assert!(used <= cap * (1.0 + 1e-9), "link {l}: {used} > {cap}");
        }
    }
}

#[test]
fn hand_checked_oracle_uniform_alltoall_shift() {
    // 8-node ring, the xor-exchange-style worst case: a single shift(4)
    // step — every flow 4 hops, every link load 4 → step time 4·m/cap.
    let n = 8;
    let m = 1.0e6;
    let cap = 1e11;
    let specs: Vec<FlowSpec> = (0..n)
        .map(|src| FlowSpec {
            bytes: m,
            path: (0..4).map(|h| (src + h) % n).collect(),
        })
        .collect();
    let finish = simulate_flows(&vec![cap; n], &specs);
    for f in &finish {
        assert!((f - 4.0 * m / cap).abs() / (4.0 * m / cap) < 1e-12);
    }
    assert_engines_agree(&vec![cap; n], &specs);
}

#[test]
fn engines_agree_through_the_executor_trial_batch() {
    // End to end: whole collectives through the executor, batched on the
    // worker pool — the batch is bit-identical at any APS_THREADS setting
    // (CI's test-matrix job runs this file at APS_THREADS=1 and 4).
    use adaptive_photonics::prelude::*;
    use aps_cost::ReconfigModel;

    let trials: Vec<Trial> = [8usize, 12]
        .into_iter()
        .flat_map(|n| {
            [1e3, 1e6, 64.0 * 1024.0 * 1024.0]
                .into_iter()
                .flat_map(move |bytes| {
                    let schedule = collectives::alltoall::linear_shift(n, bytes)
                        .unwrap()
                        .schedule;
                    let steps = schedule.num_steps();
                    [
                        SwitchSchedule::all_base(steps),
                        SwitchSchedule::all_matched(steps),
                    ]
                    .into_iter()
                    .map(move |switch_schedule| Trial {
                        base_config: Matching::shift(n, 1).unwrap(),
                        reconfig: ReconfigModel::constant(5e-6).unwrap(),
                        schedule: schedule.clone(),
                        switch_schedule,
                        config: RunConfig::paper_defaults(),
                    })
                })
        })
        .collect();
    let from_env = run_trial_batch(&Pool::from_env(), &trials).unwrap();
    let serial = run_trial_batch(&Pool::serial(), &trials).unwrap();
    assert_eq!(from_env, serial);
}
