//! Observation 1, end to end: every collective algorithm's step sequence is
//! a BvN decomposition of its aggregate demand — and the constructive
//! Birkhoff decomposition of that aggregate exists and reconstructs it.

use adaptive_photonics::prelude::*;
use aps_matrix::bvn;

fn all_collectives(n: usize, m: f64) -> Vec<Collective> {
    let mut v = vec![
        collectives::allreduce::ring::build(n, m).unwrap(),
        collectives::alltoall::linear_shift(n, m).unwrap(),
        collectives::alltoall::bruck(n, m).unwrap(),
        collectives::allgather::ring(n, m).unwrap(),
        collectives::reduce_scatter::ring(n, m).unwrap(),
        collectives::broadcast::binomial(n, 0, m).unwrap(),
        collectives::barrier::dissemination(n).unwrap(),
    ];
    if n.is_power_of_two() {
        v.extend([
            collectives::allreduce::recursive_doubling::build(n, m).unwrap(),
            collectives::allreduce::halving_doubling::build(n, m).unwrap(),
            collectives::allreduce::swing::build(n, m).unwrap(),
            collectives::alltoall::xor_exchange(n, m).unwrap(),
            collectives::allgather::recursive_doubling(n, m).unwrap(),
            collectives::reduce_scatter::recursive_halving(n, m).unwrap(),
        ]);
    }
    v
}

#[test]
fn every_collective_verifies_semantically() {
    for n in [4, 6, 8, 16] {
        for c in all_collectives(n, 4096.0) {
            c.check().unwrap_or_else(|e| {
                panic!(
                    "{} (n={n}) failed verification: {e}",
                    c.schedule.algorithm()
                )
            });
        }
    }
}

#[test]
fn steps_reconstruct_the_aggregate_demand() {
    // The schedule's own (volume, matching) pairs are a decomposition of
    // the aggregate demand matrix — Observation 1 by construction, checked
    // numerically.
    let n = 8;
    for c in all_collectives(n, 1e6) {
        let aggregate = c.schedule.aggregate_demand().unwrap();
        let terms: Vec<(f64, &Matching)> = c
            .schedule
            .steps()
            .iter()
            .map(|s| (s.bytes_per_pair, &s.matching))
            .collect();
        let rebuilt = DemandMatrix::from_matchings(n, &terms).unwrap();
        assert!(
            rebuilt.approx_eq(&aggregate, 1e-9),
            "{}",
            c.schedule.algorithm()
        );
    }
}

#[test]
fn birkhoff_decomposition_of_aggregates_reconstructs() {
    // The *forward* direction computed by demand-aware schedulers: strict
    // Birkhoff on the (doubly balanced) aggregates of the symmetric
    // collectives.
    let n = 8;
    for c in [
        collectives::allreduce::ring::build(n, 1e6).unwrap(),
        collectives::allreduce::halving_doubling::build(n, 1e6).unwrap(),
        collectives::allreduce::swing::build(n, 1e6).unwrap(),
        collectives::alltoall::linear_shift(n, 1e6).unwrap(),
    ] {
        let aggregate = c.schedule.aggregate_demand().unwrap();
        assert!(
            aggregate.is_doubly_balanced(1e-6),
            "{} aggregate not balanced",
            c.schedule.algorithm()
        );
        let d = bvn::decompose(&aggregate, 1e-6).unwrap();
        assert!(
            d.reconstruct().unwrap().approx_eq(&aggregate, 1e-3),
            "{} reconstruction failed (residual {})",
            c.schedule.algorithm(),
            d.residual
        );
        // Birkhoff bound on the number of extracted matchings.
        assert!(d.terms.len() <= (n - 1) * (n - 1) + 1);
    }
}

#[test]
fn bvn_term_count_never_beats_the_algorithm_by_construction() {
    // For All-to-All, the aggregate is the uniform matrix whose minimal BvN
    // decomposition has exactly n−1 terms — the same as the linear-shift
    // algorithm's step count. The constructive decomposition cannot do
    // better.
    let n = 8;
    let c = collectives::alltoall::linear_shift(n, 1e6).unwrap();
    let aggregate = c.schedule.aggregate_demand().unwrap();
    let d = bvn::decompose(&aggregate, 1e-6).unwrap();
    assert!(d.terms.len() >= n - 1);
    assert_eq!(c.schedule.num_steps(), n - 1);
}

#[test]
fn temporal_structure_is_what_bvn_misses() {
    // §3.2's caveat, as a concrete check: the BvN terms of halving-doubling
    // lose the volume *ordering* (m/2, m/4, …), which the schedule retains;
    // aggregated per-matching the volumes agree, step-wise they differ.
    let n = 8;
    let m = 1024.0;
    let c = collectives::allreduce::halving_doubling::build(n, m).unwrap();
    let vols: Vec<f64> = c
        .schedule
        .steps()
        .iter()
        .map(|s| s.bytes_per_pair)
        .collect();
    // RS and AG phases traverse the same matchings with different volumes:
    // any per-matching aggregation (what a demand matrix keeps) must merge
    // steps 0 and 5, 1 and 4, 2 and 3 — destroying the dependency order.
    assert_eq!(vols[0], vols[5]);
    assert_eq!(vols[1], vols[4]);
    assert_ne!(vols[0], vols[1]);
    let agg = c.schedule.aggregate_demand().unwrap();
    // Each xor-mask pair (i, i^mask) communicates m/2 + … across both
    // phases, e.g. pair (0, 4) carries 2·(m/2)/... in aggregate — the
    // matrix cannot tell which step carried what.
    assert!(agg.get(0, 4) > 0.0);
}
