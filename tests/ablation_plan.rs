//! Integration tests for the ablation registry: sampler determinism and
//! stratification (property-based), committed-plan shape checks, and
//! bit-identical executor output across pool sizes.
//!
//! The nightly plan is only *shape*-checked here — 216 simulator cells
//! belong in the scheduled release-build workflow, not in `cargo test`.

use adaptive_photonics::prelude::*;
use aps_ablate::{plans, rows_csv, Cell, Levels, Sampling};
use aps_core::controller::by_name;
use proptest::prelude::*;

/// A fixed 3-factor design: one log-range and two discrete factors with
/// co-prime level counts, so stratum→level rounding gets exercised.
fn demo_factors() -> Vec<Factor> {
    vec![
        Factor::log_range(FactorKey::AlphaR, 1e-7, 1e-2),
        Factor::names(FactorKey::Controller, ["static", "opt", "greedy"]),
        Factor::nums(FactorKey::Ports, [8.0, 16.0]),
    ]
}

fn demo_plan(seed: u64, cells: usize) -> AblationPlan {
    AblationPlan {
        name: "prop-demo".into(),
        seed,
        sampling: Sampling::LatinHypercube { cells },
        factors: demo_factors(),
        kpis: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lhs_sampling_is_a_pure_function_of_the_plan(seed in any::<u64>(), k in 1usize..64) {
        let a = demo_plan(seed, k).cells().unwrap();
        let b = demo_plan(seed, k).cells().unwrap();
        prop_assert_eq!(a.len(), k);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lhs_continuous_factors_hit_every_stratum_once(seed in any::<u64>(), k in 1usize..48) {
        let cells = demo_plan(seed, k).cells().unwrap();
        // α_r is log-range sampled: exactly one cell must land in each of
        // the k geometric strata of [lo, hi).
        let (lo, hi) = (1e-7f64, 1e-2f64);
        let mut counts = vec![0usize; k];
        for cell in &cells {
            let v = cell.num(FactorKey::AlphaR).unwrap();
            prop_assert!(v >= lo && v <= hi, "α_r {v} escaped [{lo}, {hi}]");
            let s = ((v / lo).ln() / (hi / lo).ln() * k as f64).floor() as usize;
            counts[s.min(k - 1)] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == 1), "strata counts {counts:?}");
    }

    #[test]
    fn lhs_discrete_factors_stay_balanced(seed in any::<u64>(), k in 1usize..48) {
        let cells = demo_plan(seed, k).cells().unwrap();
        // 3 controller levels over k strata: level counts may differ by
        // at most one stratum-block (⌈k/3⌉ vs ⌊k/3⌋).
        let levels = ["static", "opt", "greedy"];
        let mut counts = vec![0usize; levels.len()];
        for cell in &cells {
            let name = cell.name(FactorKey::Controller).unwrap();
            let i = levels.iter().position(|l| *l == name).expect("known level");
            counts[i] += 1;
        }
        let (lo, hi) = (k / levels.len(), k.div_ceil(levels.len()));
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                c >= lo.min(1) && c <= hi,
                "level {} drew {c} of {k} cells (expected within [{lo}, {hi}])",
                levels[i]
            );
        }
    }
}

#[test]
fn pr_smoke_execution_is_bit_identical_across_pool_sizes() {
    let plan = plans::pr_smoke();
    let serial = run_ablation(&Pool::new(1), &plan).unwrap();
    let parallel = run_ablation(&Pool::new(3), &plan).unwrap();
    let a = rows_csv(&serial.registry_rows("threads")).unwrap();
    let b = rows_csv(&parallel.registry_rows("threads")).unwrap();
    assert_eq!(
        a, b,
        "registry rows diverged between 1 and 3 worker threads"
    );
    assert!(
        serial.pass(),
        "committed pr-smoke gates must pass:\n{}",
        serial.render_text()
    );
}

#[test]
fn nightly_plan_shape_is_committed_not_executed() {
    let plan = plans::nightly();
    let cells = plan.cells().unwrap();
    assert!(
        cells.len() >= 200,
        "nightly must stay a broad sweep (got {} cells)",
        cells.len()
    );
    assert!(matches!(plan.sampling, Sampling::LatinHypercube { .. }));
    // Every cell carries every factor, controllers resolve against the
    // shipped set, and port counts stay powers of two (halving-doubling
    // requires them).
    for cell in &cells {
        for factor in &plan.factors {
            assert!(
                cell.values.iter().any(|(k, _)| *k == factor.key),
                "cell {} is missing factor {}",
                cell.index,
                factor.key
            );
        }
        let controller = cell.name(FactorKey::Controller).unwrap();
        assert!(
            by_name(controller).is_some(),
            "unknown controller '{controller}' in the nightly plan"
        );
        let ports = cell.num(FactorKey::Ports).unwrap() as usize;
        assert!(ports.is_power_of_two(), "ports {ports} not a power of two");
    }
}

#[test]
fn committed_plans_resolve_by_name_and_hash_stably() {
    for plan in plans::all() {
        let found = plans::by_name(&plan.name).expect("committed plan resolves");
        assert_eq!(found.plan_hash(), plan.plan_hash());
    }
    assert!(plans::by_name("no-such-plan").is_none());
}

#[test]
fn full_grid_rejects_continuous_factors() {
    let plan = AblationPlan {
        name: "bad-grid".into(),
        seed: 0,
        sampling: Sampling::FullGrid,
        factors: vec![Factor::log_range(FactorKey::AlphaR, 1e-7, 1e-2)],
        kpis: vec![],
    };
    assert!(matches!(
        plan.cells(),
        Err(AblateError::GridNeedsDiscreteLevels { .. })
    ));
}

#[test]
fn evaluator_reports_the_failing_cell() {
    // An unknown workload must surface as a cell-indexed error, not a
    // panic, so a misconfigured nightly sweep names its broken cell.
    let cell = Cell {
        index: 41,
        values: vec![(
            FactorKey::Workload,
            aps_ablate::FactorValue::Name("no-such-workload".into()),
        )],
    };
    let err = evaluate_ablation_cell(&cell).unwrap_err();
    assert!(
        err.to_string().contains("41"),
        "error should name cell 41: {err}"
    );
}

#[test]
fn levels_expose_their_raw_values() {
    let f = Factor::nums(FactorKey::Ports, [8.0, 16.0]);
    match &f.levels {
        Levels::Discrete(values) => assert_eq!(values.len(), 2),
        Levels::LogRange { .. } => panic!("nums() built a log range"),
    }
}
