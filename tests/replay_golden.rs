//! Golden-file test for the `"APSR"` replay record format.
//!
//! A replay record is only useful if a record written today still parses
//! (and hashes identically) tomorrow: the format is the contract between
//! a recording run and every later verification. This test pins the
//! exact bytes of a canonical recorded run against a committed fixture —
//! any change to the frame layout, the canonical field encoding, or the
//! FNV chaining must consciously bump
//! [`FORMAT_VERSION`](adaptive_photonics::replay::FORMAT_VERSION) and
//! regenerate the golden file (run with `UPDATE_GOLDEN=1`).

use adaptive_photonics::collectives::workload::generators::TrainingLoop;
use adaptive_photonics::prelude::*;
use adaptive_photonics::replay::{ReplayReader, ReplayRecord, FORMAT_VERSION, MAGIC};

const GOLDEN_PATH: &str = "tests/fixtures/replay_golden.bin";

/// A small but representative run: 8 ports, two microbatches, one epoch
/// of the pipeline-parallel training loop under the greedy controller —
/// it exercises base and matched decisions, reconfigurations, and
/// compute phases.
fn canonical_record() -> ReplayRecord {
    let mut exp = Experiment::domain(topology::builders::ring_unidirectional(8).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
        .controller(Greedy)
        .workload(TrainingLoop::new(8, 2, 1e6, 8e6, Some(1)).unwrap())
        .record();
    exp.simulate_summary(usize::MAX).unwrap();
    exp.take_record().unwrap()
}

#[test]
fn replay_record_bytes_match_the_committed_golden_file() {
    let bytes = canonical_record().to_bytes();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &bytes).expect("write golden fixture");
    }
    let golden = std::fs::read(GOLDEN_PATH)
        .expect("golden fixture missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        bytes, golden,
        "replay record bytes drifted from {GOLDEN_PATH}; if the change is \
         intentional, bump FORMAT_VERSION and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_parses_and_verifies_clean() {
    let golden = std::fs::read(GOLDEN_PATH).expect("golden fixture");
    assert_eq!(&golden[..4], &MAGIC);
    assert_eq!(
        u16::from_le_bytes([golden[4], golden[5]]),
        FORMAT_VERSION,
        "fixture written by a different format version"
    );
    let record = ReplayReader::parse(&golden).expect("golden fixture parses");
    assert_eq!(record.n, 8);
    assert_eq!(record.controller, "greedy");
    assert!(!record.frames.is_empty());

    // The committed record still verifies clean against today's
    // simulator — the strongest cross-version determinism pin we have.
    let mut exp = Experiment::domain(topology::builders::ring_unidirectional(8).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
        .controller(Greedy)
        .workload(TrainingLoop::new(8, 2, 1e6, 8e6, Some(1)).unwrap());
    let report = exp.verify(&record).unwrap();
    assert!(report.is_clean(), "{report}");
}
