//! Property-based tests of the scheduling core: the DP solver is pinned to
//! exhaustive enumeration on random instances, and the optimal policy
//! dominates every baseline across randomly drawn workloads and parameters.

use adaptive_photonics::prelude::*;
use aps_core::brute::optimize_exhaustive;
use aps_core::policies::{evaluate_policy, Policy};
use aps_core::{dp, evaluate};
use aps_cost::steptable::StepCosts;
use proptest::prelude::*;

/// A random synthetic problem: per-step volumes, θ ∈ (0, 1], hops, on a
/// synthetic 8-node domain. Building instances directly (instead of through
/// a topology) lets proptest explore θ/ℓ combinations no ring produces.
fn arb_problem() -> impl Strategy<Value = SwitchingProblem> {
    let step = (
        1.0f64..1e9,  // bytes
        0.01f64..1.0, // theta_base
        1usize..32,   // ell_base
        0usize..7,    // shift distance for the matching
    );
    (proptest::collection::vec(step, 1..12), 0.0f64..1e-3).prop_map(|(raw, alpha_r)| {
        let n = 8;
        let steps: Vec<StepCosts> = raw
            .into_iter()
            .map(|(bytes, theta, ell, k)| StepCosts {
                matching: Matching::shift(n, k + 1).unwrap(),
                bytes,
                theta_base: theta,
                ell_base: ell,
            })
            .collect();
        SwitchingProblem {
            n,
            params: CostParams::paper_defaults(),
            reconfig: ReconfigModel::constant(alpha_r).unwrap(),
            base_config: Some(Matching::shift(n, 1).unwrap()),
            steps,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dp_equals_exhaustive(problem in arb_problem()) {
        for acc in [ReconfigAccounting::PaperConservative, ReconfigAccounting::PhysicalDiff] {
            let (_, dp_report) = dp::optimize(&problem, acc).unwrap();
            let (_, bf_report) = optimize_exhaustive(&problem, acc).unwrap();
            let (d, b) = (dp_report.total_s(), bf_report.total_s());
            prop_assert!((d - b).abs() <= 1e-12 + 1e-9 * b, "dp {d} vs brute {b} ({acc:?})");
        }
    }

    #[test]
    fn optimal_dominates_all_policies(problem in arb_problem()) {
        let acc = ReconfigAccounting::PaperConservative;
        let opt = evaluate_policy(&problem, Policy::Optimal, acc).unwrap().total_s();
        for policy in Policy::ALL {
            let t = evaluate_policy(&problem, policy, acc).unwrap().total_s();
            prop_assert!(opt <= t + 1e-15, "opt {opt} beaten by {} at {t}", policy.name());
        }
    }

    #[test]
    fn objective_components_are_consistent(problem in arb_problem()) {
        let acc = ReconfigAccounting::PaperConservative;
        let s = problem.num_steps();
        for schedule in [SwitchSchedule::all_base(s), SwitchSchedule::all_matched(s)] {
            let r = evaluate(&problem, &schedule, acc).unwrap();
            // s·α latency term.
            prop_assert!((r.latency_s - s as f64 * problem.params.alpha_s).abs() < 1e-15);
            // Total is the sum of its parts.
            let sum = r.latency_s + r.propagation_s + r.transmission_s + r.reconfig_s;
            prop_assert!((r.total_s() - sum).abs() < 1e-18);
            // Event counting matches the schedule's own count.
            prop_assert_eq!(r.reconfig_events, schedule.reconfig_events());
        }
    }

    #[test]
    fn optimal_cost_is_monotone_in_reconfig_delay(problem in arb_problem()) {
        // Raising α_r can never make the optimum faster.
        let acc = ReconfigAccounting::PaperConservative;
        let mut cheap = problem.clone();
        cheap.reconfig = ReconfigModel::constant(0.0).unwrap();
        let mut costly = problem.clone();
        costly.reconfig = ReconfigModel::constant(1e-2).unwrap();
        let t_mid = dp::optimize(&problem, acc).unwrap().1.total_s();
        let t_cheap = dp::optimize(&cheap, acc).unwrap().1.total_s();
        let t_costly = dp::optimize(&costly, acc).unwrap().1.total_s();
        prop_assert!(t_cheap <= t_mid + 1e-15);
        prop_assert!(t_mid <= t_costly + 1e-15);
    }

    #[test]
    fn physical_accounting_never_costs_more_than_paper(problem in arb_problem()) {
        // PhysicalDiff ⊆ PaperConservative charges: for any fixed schedule
        // the physical pricing is at most the conservative one (with a
        // constant-delay model).
        let s = problem.num_steps();
        for schedule in [SwitchSchedule::all_base(s), SwitchSchedule::all_matched(s)] {
            let paper = evaluate(&problem, &schedule, ReconfigAccounting::PaperConservative)
                .unwrap()
                .total_s();
            let phys = evaluate(&problem, &schedule, ReconfigAccounting::PhysicalDiff)
                .unwrap()
                .total_s();
            prop_assert!(phys <= paper + 1e-15);
        }
    }
}

#[test]
fn threshold_heuristic_gap_is_bounded_on_real_collectives() {
    // Not a property of the heuristic in general (it can be fooled), but on
    // the paper's workloads the gap stays modest; this pins the measured
    // behavior so regressions in the heuristic are visible.
    let n = 32;
    let base = topology::builders::ring_unidirectional(n).unwrap();
    let mut worst: f64 = 1.0;
    for m in [1e3, 1e5, 1e7, 1e9] {
        for alpha_r in [1e-7, 1e-5, 1e-3] {
            let coll = collectives::allreduce::halving_doubling::build(n, m).unwrap();
            let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
            let p = SwitchingProblem::build(
                &base,
                &coll.schedule,
                &mut cache,
                CostParams::paper_defaults(),
                ReconfigModel::constant(alpha_r).unwrap(),
            )
            .unwrap();
            let acc = ReconfigAccounting::PaperConservative;
            let opt = evaluate_policy(&p, Policy::Optimal, acc).unwrap().total_s();
            let th = evaluate_policy(&p, Policy::Threshold, acc)
                .unwrap()
                .total_s();
            worst = worst.max(th / opt);
        }
    }
    assert!(worst < 1.5, "threshold heuristic gap grew to {worst}x");
}
