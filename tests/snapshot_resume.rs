//! Snapshot/resume bit-parity: an endless training loop checkpointed
//! mid-run and resumed must walk the exact same hash chain as an
//! uninterrupted run — and the tenant executor's recording feed must be
//! just as reproducible.

use adaptive_photonics::collectives::workload::generators::TrainingLoop;
use adaptive_photonics::prelude::*;
use adaptive_photonics::replay::{diff_records, Recorder, ReplayRecord};
use adaptive_photonics::sim::execute_tenants_recorded;

const N: usize = 8;
const TOTAL: usize = 10_000;
const HALF: usize = 5_000;

fn endless() -> TrainingLoop {
    TrainingLoop::new(N, 2, 1e6, 8e6, None).unwrap()
}

fn exp(
    controller: impl Controller + 'static,
) -> Experiment<adaptive_photonics::experiment::Streaming> {
    Experiment::domain(topology::builders::ring_unidirectional(N).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
        .controller(controller)
        .workload(endless())
}

#[test]
fn endless_run_snapshots_and_resumes_bit_identically() {
    // Uninterrupted: 10k steps of an endless stream, recorded.
    let mut whole = exp(Greedy).record();
    let whole_summary = whole.simulate_summary(TOTAL).unwrap();
    assert_eq!(whole_summary.steps, TOTAL);
    let whole_record = whole.take_record().unwrap();
    assert_eq!(whole_record.frames.len(), TOTAL);

    // Interrupted: snapshot at 5k, resume to 10k.
    let mut head = exp(Greedy).record();
    let head_summary = head.simulate_summary(HALF).unwrap();
    assert_eq!(head_summary.steps, HALF);
    let snapshot = head.take_snapshot().unwrap();
    assert_eq!(snapshot.steps_done(), HALF);
    let head_record = head.take_record().unwrap();

    let mut tail = exp(Greedy).resume_from(snapshot);
    let tail_summary = tail.simulate_summary(TOTAL).unwrap();
    let tail_record = tail.take_record().unwrap();

    // The resumed summary covers the whole stream and equals the
    // uninterrupted one field for field.
    assert_eq!(tail_summary, whole_summary);

    // Hash-chain bit-parity: head frames ++ tail frames == whole frames.
    assert_eq!(tail_record.final_state, whole_record.final_state);
    let stitched: Vec<_> = head_record
        .frames
        .iter()
        .chain(&tail_record.frames)
        .copied()
        .collect();
    assert_eq!(stitched, whole_record.frames);

    // And the stitched record verifies clean against a re-execution.
    let stitched_record = ReplayRecord {
        frames: stitched,
        final_state: tail_record.final_state,
        ..whole_record.clone()
    };
    let report = diff_records(&whole_record, &stitched_record);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn snapshot_timing_does_not_leak_into_the_chain() {
    // Snapshots at several cut points all converge to the same final
    // hash — checkpointing is invisible to the simulation.
    let mut whole = exp(DpPlanned).record();
    whole.simulate_summary(600).unwrap();
    let want = whole.take_record().unwrap().final_state;

    for cut in [1, 17, 299, 599] {
        let mut head = exp(DpPlanned).record();
        head.simulate_summary(cut).unwrap();
        let snapshot = head.take_snapshot().unwrap();
        let mut tail = exp(DpPlanned).resume_from(snapshot);
        tail.simulate_summary(600).unwrap();
        assert_eq!(
            tail.take_record().unwrap().final_state,
            want,
            "cut at {cut}"
        );
    }
}

fn record_tenant_run() -> (ReplayRecord, Vec<String>) {
    let scenario = scenarios::mixed_collectives(2.0 * 1024.0 * 1024.0);
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    let mut fabric = scenario.fabric(reconfig).unwrap();
    let mut recorder = Recorder::new(scenario.n, "scheduled", &scenario.name);
    let reports = execute_tenants_recorded(
        &mut fabric,
        &scenario.tenants,
        &RunConfig::paper_defaults(),
        Some(&mut recorder),
    )
    .unwrap();
    let names = scenario.tenants.iter().map(|t| t.name.clone()).collect();
    for r in &reports {
        r.as_ref().unwrap();
    }
    (recorder.into_record(), names)
}

#[test]
fn tenant_executor_records_reproducibly() {
    let (a, names) = record_tenant_run();
    let (b, _) = record_tenant_run();
    assert_eq!(a, b);
    assert!(!a.frames.is_empty());

    // Frames interleave several tenants in global execution order and
    // carry their tenant tags.
    let tenants: std::collections::BTreeSet<u32> = a.frames.iter().map(|f| f.tenant).collect();
    assert!(tenants.len() > 1, "expected interleaved tenants");
    assert!(tenants.iter().all(|t| (*t as usize) < names.len()));

    // A flipped decision in one tenant's frame is localized with its
    // tenant tag intact.
    let mut bad = a.clone();
    bad.frames[7].decision ^= 1;
    let report = diff_records(&bad, &b);
    let d = report.first.expect("must diverge");
    assert_eq!(d.frame, 7);
    assert_eq!(d.class, FieldClass::Decision);
    assert_eq!(d.tenant, a.frames[7].tenant);
}
