//! Multi-wavelength fabric: a bank of λ lanes with per-λ retune costs.
//!
//! The paper's wavelength-routed design (§3.1) assumes one tunable laser
//! per port sweeping a single continuum. Real dense-WDM transceivers
//! tune over a *bank* of discrete wavelength bands, and locking onto a
//! band is not uniformly priced: hops into distant bands need longer
//! thermal settling than staying within the current band's comb. This
//! model makes that structure explicit:
//!
//! * the AWGR core assigns circuit `p → d` the wavelength index
//!   `(d − p) mod n`, folded into one of `W` bands (`mod W`);
//! * a TX port whose new circuit lands in a **different** band pays that
//!   band's retune cost (`retune_s[band]` — per-λ pricing);
//! * a changed circuit **within** the same band pays only the fast
//!   intra-band hop (`intra_band_s`);
//! * the fabric is ready when the slowest retuning port locks
//!   (synchronous steps, like [`crate::WavelengthFabric`]).
//!
//! Transceiver degradation — the ageing-laser fault the failure storms
//! inject — is a per-port multiplier on every retune
//! ([`WavelengthBankFabric::degrade_port`]).
//!
//! ```
//! use aps_fabric::{Fabric, WavelengthBankFabric};
//! use aps_matrix::Matching;
//!
//! // 8 ports, 4 bands: band k costs (k+1) µs to lock, 100 ns in-band.
//! let retune = vec![1e-6, 2e-6, 3e-6, 4e-6];
//! let mut f = WavelengthBankFabric::new(
//!     Matching::shift(8, 1).unwrap(), retune, 100e-9).unwrap();
//!
//! // shift(1) → shift(2): every port hops from band 1 to band 2, so the
//! // fabric locks after retune_s[2] = 3 µs.
//! let out = f.request(&Matching::shift(8, 2).unwrap(), 0).unwrap();
//! assert_eq!(out.ready_at, 3_000_000);
//!
//! // shift(2) → shift(6): (6 mod 4) is band 2 again — intra-band hop.
//! let out = f.request(&Matching::shift(8, 6).unwrap(), out.ready_at).unwrap();
//! assert_eq!(out.ready_at - 3_000_000, 100_000);
//! ```

use crate::error::FabricError;
use crate::{Fabric, FabricState, ReconfigOutcome};
use aps_cost::units::{secs_to_picos, Picos};
use aps_matrix::Matching;

/// A wavelength-bank fabric: an AWGR core plus per-port transceivers
/// tuning over `W` discrete bands with per-λ retune costs. See the
/// [module docs](self) for the cost rule.
#[derive(Debug)]
pub struct WavelengthBankFabric {
    current: Matching,
    /// Per-band lock-on cost in seconds (`len` = number of bands).
    retune_s: Vec<f64>,
    /// Cost of a destination change within the same band.
    intra_band_s: f64,
    /// Per-port retune multiplier (≥ 1.0 models an ageing laser).
    degradation: Vec<f64>,
    busy_until: Picos,
}

impl WavelengthBankFabric {
    /// Creates a bank fabric with `retune_s[k]` pricing a lock onto band
    /// `k` and `intra_band_s` pricing same-band destination changes.
    ///
    /// # Errors
    ///
    /// Rejects an empty bank and negative or non-finite costs.
    pub fn new(
        initial: Matching,
        retune_s: Vec<f64>,
        intra_band_s: f64,
    ) -> Result<Self, FabricError> {
        if retune_s.is_empty() {
            return Err(FabricError::EmptyWavelengthBank);
        }
        for &t in retune_s.iter().chain(std::iter::once(&intra_band_s)) {
            if !t.is_finite() || t < 0.0 {
                return Err(FabricError::BadTuningDelay(t));
            }
        }
        let n = initial.n();
        Ok(Self {
            current: initial,
            retune_s,
            intra_band_s,
            degradation: vec![1.0; n],
            busy_until: 0,
        })
    }

    /// A geometric retune ladder: band `k` of `bands` costs
    /// `alpha_r_s · (k + 1) / bands`, with a fast intra-band hop of
    /// `alpha_r_s / (8 · bands)` — the default pricing the heterogeneous
    /// scenario pack and benches use, derived from one α_r knob.
    ///
    /// # Errors
    ///
    /// Rejects zero bands and invalid α_r.
    pub fn ladder(initial: Matching, alpha_r_s: f64, bands: usize) -> Result<Self, FabricError> {
        if bands == 0 {
            return Err(FabricError::EmptyWavelengthBank);
        }
        if !alpha_r_s.is_finite() || alpha_r_s < 0.0 {
            return Err(FabricError::BadTuningDelay(alpha_r_s));
        }
        let retune = (0..bands)
            .map(|k| alpha_r_s * (k + 1) as f64 / bands as f64)
            .collect();
        Self::new(initial, retune, alpha_r_s / (8.0 * bands as f64))
    }

    /// Number of wavelength bands in the bank.
    pub fn bands(&self) -> usize {
        self.retune_s.len()
    }

    /// The band circuit `p → d` uses: the AWGR wavelength index
    /// `(d − p) mod n`, folded modulo the bank size.
    pub fn band_of(&self, p: usize, d: usize) -> usize {
        let n = self.current.n();
        ((d + n - p) % n) % self.retune_s.len()
    }

    /// Degrades one port's transceiver: every subsequent retune of that
    /// port is stretched by `factor` (the ageing-laser fault).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ports and factors below 1 or non-finite.
    pub fn degrade_port(&mut self, port: usize, factor: f64) -> Result<(), FabricError> {
        if port >= self.current.n() {
            return Err(FabricError::PortOutOfRange {
                port,
                n: self.current.n(),
            });
        }
        if !factor.is_finite() || factor < 1.0 {
            return Err(FabricError::BadTuningDelay(factor));
        }
        self.degradation[port] = factor;
        Ok(())
    }

    /// Restores one port's transceiver to nominal speed.
    pub fn heal_port(&mut self, port: usize) {
        if let Some(d) = self.degradation.get_mut(port) {
            *d = 1.0;
        }
    }

    /// Rewinds the device clock to `t = 0` (keeping configuration, bank
    /// pricing and degradations) for reuse across simulation runs.
    pub fn reset_clock(&mut self) {
        self.busy_until = 0;
    }

    /// The settle time of port `p` moving from its current circuit to
    /// `next` (`None` = laser off, free).
    fn port_settle_s(&self, p: usize, next: Option<usize>) -> f64 {
        let Some(d_new) = next else { return 0.0 };
        let base = match self.current.dst_of(p) {
            Some(d_old) if self.band_of(p, d_old) == self.band_of(p, d_new) => self.intra_band_s,
            _ => self.retune_s[self.band_of(p, d_new)],
        };
        base * self.degradation[p]
    }
}

impl Fabric for WavelengthBankFabric {
    fn n(&self) -> usize {
        self.current.n()
    }

    fn current(&self) -> &Matching {
        &self.current
    }

    fn busy_until(&self) -> Picos {
        self.busy_until
    }

    fn load_state(&mut self, state: &FabricState) -> Result<(), FabricError> {
        if state.config.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: state.config.n(),
            });
        }
        self.current = state.config.clone();
        self.busy_until = state.busy_until;
        Ok(())
    }

    fn request(&mut self, target: &Matching, now: Picos) -> Result<ReconfigOutcome, FabricError> {
        if target.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: target.n(),
            });
        }
        if now < self.busy_until {
            return Err(FabricError::Busy {
                until: self.busy_until,
            });
        }
        let slowest = (0..self.current.n())
            .filter(|&p| self.current.dst_of(p) != target.dst_of(p))
            .map(|p| self.port_settle_s(p, target.dst_of(p)))
            .fold(0.0f64, f64::max);
        let ports_changed = self.current.tx_ports_changed(target);
        let ready_at = now + secs_to_picos(slowest);
        self.current.clone_from(target);
        self.busy_until = ready_at;
        Ok(ReconfigOutcome {
            ready_at,
            ports_changed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift(n: usize, k: usize) -> Matching {
        Matching::shift(n, k).unwrap()
    }

    fn bank(n: usize) -> WavelengthBankFabric {
        WavelengthBankFabric::new(shift(n, 1), vec![1e-6, 2e-6, 3e-6, 4e-6], 100e-9).unwrap()
    }

    #[test]
    fn cross_band_hop_pays_the_target_band_cost() {
        let mut f = bank(8);
        // shift(1) → shift(3): band 1 → band 3, cost retune_s[3] = 4 µs.
        let out = f.request(&shift(8, 3), 0).unwrap();
        assert_eq!(out.ready_at, secs_to_picos(4e-6));
        assert_eq!(out.ports_changed, 8);
    }

    #[test]
    fn intra_band_hop_is_fast() {
        let mut f = bank(8);
        // shift(1) → shift(5): 5 mod 4 = band 1 = current band.
        let out = f.request(&shift(8, 5), 0).unwrap();
        assert_eq!(out.ready_at, secs_to_picos(100e-9));
    }

    #[test]
    fn unchanged_ports_do_not_retune() {
        let initial = Matching::from_pairs(8, &[(0, 1), (2, 5)]).unwrap();
        let target = Matching::from_pairs(8, &[(0, 3), (2, 5)]).unwrap();
        let mut f = WavelengthBankFabric::new(initial, vec![1e-6, 2e-6], 10e-9).unwrap();
        f.degrade_port(2, 1000.0).unwrap(); // unchanged port: irrelevant
        let out = f.request(&target, 0).unwrap();
        // 0→3 is wavelength 3 → band 1; 0→1 was wavelength 1 → band 1:
        // same band, intra-band hop.
        assert_eq!(out.ready_at, secs_to_picos(10e-9));
        assert_eq!(out.ports_changed, 1);
    }

    #[test]
    fn degraded_port_gates_the_whole_step() {
        let mut f = bank(8);
        f.degrade_port(5, 10.0).unwrap();
        let out = f.request(&shift(8, 2), 0).unwrap();
        // Band 2 costs 3 µs; port 5 is 10× slower.
        assert_eq!(out.ready_at, secs_to_picos(30e-6));
        f.heal_port(5);
        let out = f.request(&shift(8, 3), out.ready_at).unwrap();
        assert_eq!(out.ready_at - secs_to_picos(30e-6), secs_to_picos(4e-6));
    }

    #[test]
    fn laser_off_is_free() {
        let initial = Matching::from_pairs(8, &[(0, 1)]).unwrap();
        let mut f = WavelengthBankFabric::new(initial, vec![1e-6], 10e-9).unwrap();
        let out = f.request(&Matching::empty(8), 0).unwrap();
        assert_eq!(out.ready_at, 0);
        assert_eq!(out.ports_changed, 1);
    }

    #[test]
    fn ladder_prices_bands_linearly() {
        let f = WavelengthBankFabric::ladder(shift(8, 1), 8e-6, 4).unwrap();
        assert_eq!(f.bands(), 4);
        assert_eq!(f.retune_s, vec![2e-6, 4e-6, 6e-6, 8e-6]);
        assert_eq!(f.intra_band_s, 0.25e-6);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            WavelengthBankFabric::new(shift(4, 1), vec![], 0.0),
            Err(FabricError::EmptyWavelengthBank)
        ));
        assert!(WavelengthBankFabric::new(shift(4, 1), vec![-1.0], 0.0).is_err());
        assert!(WavelengthBankFabric::new(shift(4, 1), vec![1e-6], f64::NAN).is_err());
        assert!(WavelengthBankFabric::ladder(shift(4, 1), 1e-6, 0).is_err());
        let mut f = bank(8);
        assert!(f.degrade_port(9, 2.0).is_err());
        assert!(f.degrade_port(1, 0.5).is_err());
        assert!(matches!(
            f.request(&shift(4, 1), 0),
            Err(FabricError::DimensionMismatch { .. })
        ));
        let out = f.request(&shift(8, 2), 0).unwrap();
        assert!(matches!(
            f.request(&shift(8, 3), out.ready_at - 1),
            Err(FabricError::Busy { .. })
        ));
    }

    #[test]
    fn state_roundtrip() {
        let mut f = bank(8);
        f.request(&shift(8, 2), 0).unwrap();
        let state = f.save_state();
        let mut g = bank(8);
        g.load_state(&state).unwrap();
        assert_eq!(g.current(), f.current());
        assert_eq!(g.busy_until(), f.busy_until());
    }
}
