//! # aps-fabric — programmable photonic interconnect device models
//!
//! The paper's architecture (§3.1): `n` GPUs, each with one
//! electrical-to-optical transceiver, attached to an `n`-port photonic
//! interconnect that establishes direct optical circuits between port pairs.
//! Two realizations are modelled, matching the two designs the paper
//! sketches:
//!
//! * [`switch::CircuitSwitch`] — a centrally-programmed circuit switch
//!   (PipSwitch-style): reconfiguration delay follows a pluggable
//!   [`aps_cost::ReconfigModel`] (constant `α_r` or per-port affine).
//! * [`wavelength::WavelengthFabric`] — a passive wavelength-routed fabric
//!   with tunable transceivers: no central controller, reconfiguration time
//!   is the slowest *retuned* port.
//!
//! Two heterogeneous variants extend them for the paper's mixed-fabric
//! scenarios:
//!
//! * [`hybrid::HybridFabric`] — a composite fabric routing a designated
//!   port subset through a zero-reconfiguration electrical crossbar while
//!   the rest pays full photonic switching cost.
//! * [`wavelength_bank::WavelengthBankFabric`] — a dense-WDM bank of
//!   discrete wavelength bands with per-λ lock-on costs and fast
//!   intra-band hops.
//!
//! Both implement the [`Fabric`] trait the simulator drives. Fault injection
//! (stuck ports, slow tuning) lets tests exercise degraded-fabric behavior,
//! mirroring smoltcp-style fault options.
//!
//! A fabric configuration is simply an [`aps_matrix::Matching`] over ports:
//! TX port `i` lights a circuit to RX port `j`. The same type describes
//! collective steps, which is Observation 1's point made physical.

pub mod barrier;
pub mod error;
pub mod hybrid;
pub mod switch;
pub mod transceiver;
pub mod wavelength;
pub mod wavelength_bank;

pub use barrier::BarrierModel;
pub use error::FabricError;
pub use hybrid::HybridFabric;
pub use switch::CircuitSwitch;
pub use wavelength::WavelengthFabric;
pub use wavelength_bank::WavelengthBankFabric;

use aps_cost::units::Picos;
use aps_matrix::Matching;

/// The per-run mutable device state a checkpoint must capture to resume a
/// simulation bit-identically: the configuration currently carrying
/// traffic and when the controller frees. Static device properties (delay
/// model, injected faults, statistics) are deliberately *not* part of the
/// state — a restored run keeps whatever device it is restored onto.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricState {
    /// The configuration carrying traffic at capture time.
    pub config: Matching,
    /// The device-clock instant until which the controller is busy.
    pub busy_until: Picos,
}

/// Result of asking a fabric to reconfigure. The configuration actually
/// achieved (which differs from the target only under fault injection) is
/// not carried here — after [`Fabric::request`] returns it *is*
/// [`Fabric::current`], so callers read it from the device and the outcome
/// stays `Copy` (the simulator's zero-allocation hot path depends on
/// reconfiguration requests not cloning matchings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigOutcome {
    /// When the new configuration carries traffic.
    pub ready_at: Picos,
    /// Number of TX ports whose circuit changed.
    pub ports_changed: usize,
}

/// A reconfigurable photonic interconnect.
pub trait Fabric {
    /// Port count.
    fn n(&self) -> usize;

    /// The configuration currently carrying traffic.
    fn current(&self) -> &Matching;

    /// Requests a reconfiguration to `target` at time `now`; returns when
    /// the fabric is ready and what it actually achieved.
    ///
    /// # Errors
    ///
    /// Implementations reject dimension mismatches and overlapping requests.
    fn request(&mut self, target: &Matching, now: Picos) -> Result<ReconfigOutcome, FabricError>;

    /// When the controller is free again: requests before this instant are
    /// rejected with [`FabricError::Busy`]. This is the arbitration hook
    /// multi-tenant executors use to queue behind an in-flight
    /// reconfiguration instead of failing (see `aps-sim`'s tenant
    /// executor).
    fn busy_until(&self) -> Picos;

    /// Captures the mutable device state a deterministic checkpoint needs
    /// ([`Fabric::current`] + [`Fabric::busy_until`]); restore it with
    /// [`Fabric::load_state`].
    fn save_state(&self) -> FabricState {
        FabricState {
            config: self.current().clone(),
            busy_until: self.busy_until(),
        }
    }

    /// Restores state captured by [`Fabric::save_state`], so a fresh (or
    /// reset) device resumes exactly where the captured one stood. Faults
    /// and statistics are untouched: the state describes the *run*, not
    /// the device.
    ///
    /// # Errors
    ///
    /// Rejects a configuration whose port count differs from the fabric's.
    fn load_state(&mut self, state: &FabricState) -> Result<(), FabricError>;

    /// [`Fabric::request`] deferred past any in-flight reconfiguration:
    /// the request is issued at `max(now, busy_until())` and that granted
    /// instant is returned alongside the outcome. This is how a shared
    /// fabric arbitrates between tenants — first come, first served.
    ///
    /// # Errors
    ///
    /// Propagates every error except [`FabricError::Busy`], which the
    /// deferral prevents.
    fn request_when_free(
        &mut self,
        target: &Matching,
        now: Picos,
    ) -> Result<(Picos, ReconfigOutcome), FabricError> {
        let granted = now.max(self.busy_until());
        self.request(target, granted).map(|o| (granted, o))
    }
}
