//! GPU synchronization barrier latency models.
//!
//! §3.1: "all GPUs are within a single scale-up domain, and thus have fast
//! access to a shared memory … This allows the GPUs to rapidly synchronize
//! e.g., using a barrier, before a particular step during a collective."
//! The simulator charges this latency at every step boundary so the
//! synchronous-reconfiguration assumption is visible, not hidden inside α.

/// How long an `n`-way barrier takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BarrierModel {
    /// Shared-memory flag: a constant latency regardless of `n` (DGX-class
    /// NVLink-attached memory).
    Constant {
        /// The latency in seconds.
        latency_s: f64,
    },
    /// Tree/dissemination barrier: `⌈log₂ n⌉ · per_round_s`.
    LogDepth {
        /// Per-round latency in seconds.
        per_round_s: f64,
    },
    /// Free synchronization (fold the barrier into α, as the paper does).
    None,
}

impl BarrierModel {
    /// Barrier latency for `n` participants, seconds.
    pub fn latency_s(&self, n: usize) -> f64 {
        match *self {
            BarrierModel::Constant { latency_s } => latency_s,
            BarrierModel::LogDepth { per_round_s } => {
                if n <= 1 {
                    0.0
                } else {
                    let rounds = usize::BITS as usize - (n - 1).leading_zeros() as usize;
                    per_round_s * rounds as f64
                }
            }
            BarrierModel::None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_n() {
        let b = BarrierModel::Constant { latency_s: 3e-7 };
        assert_eq!(b.latency_s(2), 3e-7);
        assert_eq!(b.latency_s(1024), 3e-7);
    }

    #[test]
    fn log_depth_scales() {
        let b = BarrierModel::LogDepth { per_round_s: 1e-7 };
        assert_eq!(b.latency_s(1), 0.0);
        assert!((b.latency_s(2) - 1e-7).abs() < 1e-18);
        assert!((b.latency_s(64) - 6e-7).abs() < 1e-18);
        assert!((b.latency_s(65) - 7e-7).abs() < 1e-18);
    }

    #[test]
    fn none_is_free() {
        assert_eq!(BarrierModel::None.latency_s(64), 0.0);
    }
}
