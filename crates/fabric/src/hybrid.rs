//! Hybrid electrical + optical fabric.
//!
//! The paper's heterogeneous-deployment sketch (§4): real scale-up
//! domains will not be all-optical on day one — a pod keeps a
//! conventional electrical crossbar next to the photonic core, and
//! circuits land on whichever medium serves them. This model composes
//! the two: every port is tagged electrical or optical, a circuit whose
//! **both** endpoints are electrical is switched by the crossbar at zero
//! reconfiguration cost, and every other circuit goes through the
//! photonic core priced by the attached [`ReconfigModel`]. A request
//! that touches both media is ready when the slower side is (the step
//! engine's synchronous-step semantics).
//!
//! The two degenerate taggings are useful on their own: all ports
//! electrical ([`HybridFabric::electrical`]) is the zero-reconfig
//! baseline benches compare against, and zero electrical ports behaves
//! exactly like a [`crate::CircuitSwitch`].
//!
//! Fault injection mirrors the circuit switch: [`HybridFabric::stick_port`]
//! freezes a TX port's circuit (a flapped link), and
//! [`HybridFabric::set_optical_slowdown`] stretches the photonic side's
//! delays (a degraded controller). Both are the hooks
//! `aps-sim::scenarios::hetero` failure storms drive.
//!
//! ```
//! use aps_fabric::{Fabric, HybridFabric};
//! use aps_cost::ReconfigModel;
//! use aps_matrix::Matching;
//!
//! // 8 ports, the lower 4 electrical; 5 µs photonic reconfiguration.
//! let model = ReconfigModel::constant(5e-6).unwrap();
//! let mut f = HybridFabric::split(Matching::empty(8), 4, model).unwrap();
//!
//! // A purely electrical retarget (ports 0–3 among themselves) is free.
//! let elec = Matching::from_pairs(8, &[(0, 2), (2, 0)]).unwrap();
//! assert_eq!(f.request(&elec, 100).unwrap().ready_at, 100);
//!
//! // Touching an optical port pays the photonic delay.
//! let opt = Matching::from_pairs(8, &[(0, 2), (2, 0), (4, 6)]).unwrap();
//! assert_eq!(f.request(&opt, 100).unwrap().ready_at, 100 + 5_000_000);
//! ```

use crate::error::FabricError;
use crate::switch::FabricStats;
use crate::{Fabric, FabricState, ReconfigOutcome};
use aps_cost::units::{secs_to_picos, Picos};
use aps_cost::ReconfigModel;
use aps_matrix::Matching;
use std::collections::HashSet;

/// A composite fabric: an electrical crossbar over a subset of the ports
/// next to a photonic core over all of them. See the [module docs](self)
/// for the routing rule.
#[derive(Debug)]
pub struct HybridFabric {
    current: Matching,
    /// `electrical[p]` — port `p` hangs off the crossbar.
    electrical: Vec<bool>,
    optical_model: ReconfigModel,
    optical_slowdown: f64,
    busy_until: Picos,
    stuck: HashSet<usize>,
    stats: FabricStats,
}

impl HybridFabric {
    /// Creates a hybrid fabric where ports `0..electrical_below` are
    /// electrical and the rest optical — the common "one crossbar next
    /// to one photonic core" partition.
    ///
    /// # Errors
    ///
    /// Rejects `electrical_below` beyond the port count.
    pub fn split(
        initial: Matching,
        electrical_below: usize,
        optical_model: ReconfigModel,
    ) -> Result<Self, FabricError> {
        let n = initial.n();
        if electrical_below > n {
            return Err(FabricError::PortOutOfRange {
                port: electrical_below,
                n,
            });
        }
        let electrical = (0..n).map(|p| p < electrical_below).collect();
        Ok(Self::with_flags(initial, electrical, optical_model))
    }

    /// Creates a hybrid fabric from an explicit electrical port list.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ports.
    pub fn with_ports(
        initial: Matching,
        electrical_ports: &[usize],
        optical_model: ReconfigModel,
    ) -> Result<Self, FabricError> {
        let n = initial.n();
        let mut electrical = vec![false; n];
        for &p in electrical_ports {
            if p >= n {
                return Err(FabricError::PortOutOfRange { port: p, n });
            }
            electrical[p] = true;
        }
        Ok(Self::with_flags(initial, electrical, optical_model))
    }

    /// An all-electrical crossbar: every reconfiguration is free. The
    /// zero-reconfig baseline of the heterogeneous benches.
    pub fn electrical(initial: Matching) -> Self {
        let n = initial.n();
        // The optical model is unreachable (no optical ports); any valid
        // model will do.
        let model = ReconfigModel::constant(0.0).expect("zero delay is valid");
        Self::with_flags(initial, vec![true; n], model)
    }

    fn with_flags(initial: Matching, electrical: Vec<bool>, optical_model: ReconfigModel) -> Self {
        Self {
            current: initial,
            electrical,
            optical_model,
            optical_slowdown: 1.0,
            busy_until: 0,
            stuck: HashSet::new(),
            stats: FabricStats::default(),
        }
    }

    /// Is `p → d` an electrical circuit (both endpoints on the crossbar)?
    fn is_electrical_circuit(&self, p: usize, d: usize) -> bool {
        self.electrical[p] && self.electrical[d]
    }

    /// Number of electrical ports.
    pub fn electrical_ports(&self) -> usize {
        self.electrical.iter().filter(|&&e| e).count()
    }

    /// Freezes a TX port: subsequent reconfigurations leave its circuit
    /// unchanged (a flapped link whose transceiver lost lock).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ports.
    pub fn stick_port(&mut self, port: usize) -> Result<(), FabricError> {
        if port >= self.current.n() {
            return Err(FabricError::PortOutOfRange {
                port,
                n: self.current.n(),
            });
        }
        self.stuck.insert(port);
        Ok(())
    }

    /// Clears a stuck port.
    pub fn unstick_port(&mut self, port: usize) {
        self.stuck.remove(&port);
    }

    /// Multiplies the photonic side's reconfiguration delays (≥ 1.0
    /// models a degraded optical controller); the crossbar is unaffected.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive factors.
    pub fn set_optical_slowdown(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad slowdown {factor}");
        self.optical_slowdown = factor;
    }

    /// Statistics so far (reconfigurations that moved at least one port).
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Rewinds the device clock to `t = 0` (keeping configuration,
    /// faults and statistics) for reuse across simulation runs.
    pub fn reset_clock(&mut self) {
        self.busy_until = 0;
    }

    /// The configuration reachable from `current` under the stuck ports:
    /// stuck TX ports keep their circuit; target circuits whose RX is
    /// thereby occupied are dropped (same rule as the circuit switch).
    fn achievable(&self, target: &Matching) -> Matching {
        if self.stuck.is_empty() {
            return target.clone();
        }
        let n = self.current.n();
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n);
        let mut used_rx: HashSet<usize> = HashSet::new();
        for &p in &self.stuck {
            if let Some(d) = self.current.dst_of(p) {
                pairs.push((p, d));
                used_rx.insert(d);
            }
        }
        for (s, d) in target.pairs() {
            if self.stuck.contains(&s) || used_rx.contains(&d) {
                continue;
            }
            pairs.push((s, d));
            used_rx.insert(d);
        }
        Matching::from_pairs(n, &pairs).expect("achievable config is a valid matching")
    }

    /// Counts the changed TX ports whose old or new circuit needs the
    /// photonic core. A port is optical-changed unless both its outgoing
    /// circuits (before and after) are crossbar circuits.
    fn optical_ports_changed(&self, next: &Matching) -> usize {
        (0..self.current.n())
            .filter(|&p| {
                let before = self.current.dst_of(p);
                let after = next.dst_of(p);
                if before == after {
                    return false;
                }
                let elec_before = before.is_none_or(|d| self.is_electrical_circuit(p, d));
                let elec_after = after.is_none_or(|d| self.is_electrical_circuit(p, d));
                !(elec_before && elec_after)
            })
            .count()
    }
}

impl Fabric for HybridFabric {
    fn n(&self) -> usize {
        self.current.n()
    }

    fn current(&self) -> &Matching {
        &self.current
    }

    fn busy_until(&self) -> Picos {
        self.busy_until
    }

    fn load_state(&mut self, state: &FabricState) -> Result<(), FabricError> {
        if state.config.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: state.config.n(),
            });
        }
        self.current = state.config.clone();
        self.busy_until = state.busy_until;
        Ok(())
    }

    fn request(&mut self, target: &Matching, now: Picos) -> Result<ReconfigOutcome, FabricError> {
        if target.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: target.n(),
            });
        }
        if now < self.busy_until {
            return Err(FabricError::Busy {
                until: self.busy_until,
            });
        }
        let achieved = self.achievable(target);
        let ports_changed = self.current.tx_ports_changed(&achieved);
        let optical_changed = self.optical_ports_changed(&achieved);
        // The crossbar is instantaneous; only photonic movement costs.
        let delay = if optical_changed > 0 {
            secs_to_picos(self.optical_model.delay_s(optical_changed) * self.optical_slowdown)
        } else {
            0
        };
        if self.stuck.is_empty() {
            self.current.clone_from(&achieved);
        } else {
            self.current = achieved;
        }
        let ready_at = now + delay;
        if ports_changed > 0 {
            self.stats.reconfigurations += 1;
            self.stats.busy_ps += delay;
            self.stats.ports_retargeted += ports_changed;
        }
        self.busy_until = ready_at;
        Ok(ReconfigOutcome {
            ready_at,
            ports_changed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift(n: usize, k: usize) -> Matching {
        Matching::shift(n, k).unwrap()
    }

    fn model() -> ReconfigModel {
        ReconfigModel::constant(5e-6).unwrap()
    }

    #[test]
    fn electrical_circuits_reconfigure_for_free() {
        let mut f = HybridFabric::split(Matching::empty(8), 4, model()).unwrap();
        let elec = Matching::from_pairs(8, &[(0, 2), (2, 0), (1, 3), (3, 1)]).unwrap();
        let out = f.request(&elec, 1000).unwrap();
        assert_eq!(out.ready_at, 1000);
        assert_eq!(out.ports_changed, 4);
        assert_eq!(f.current(), &elec);
    }

    #[test]
    fn optical_circuits_pay_the_photonic_delay() {
        let mut f = HybridFabric::split(Matching::empty(8), 4, model()).unwrap();
        let opt = Matching::from_pairs(8, &[(4, 6), (6, 4)]).unwrap();
        let out = f.request(&opt, 0).unwrap();
        assert_eq!(out.ready_at, 5_000_000);
    }

    #[test]
    fn boundary_circuits_are_optical() {
        // TX electrical, RX optical: still needs the photonic core.
        let mut f = HybridFabric::split(Matching::empty(8), 4, model()).unwrap();
        let cross = Matching::from_pairs(8, &[(0, 5)]).unwrap();
        let out = f.request(&cross, 0).unwrap();
        assert_eq!(out.ready_at, 5_000_000);
    }

    #[test]
    fn mixed_request_gated_by_the_optical_side_with_per_port_pricing() {
        // Per-port model: only the optically-changed ports are billed.
        let per_port = ReconfigModel::per_port(1e-6, 1e-6).unwrap();
        let mut f = HybridFabric::split(Matching::empty(8), 4, per_port).unwrap();
        // Two electrical moves (free) + one optical move (fixed + 1 port).
        let target = Matching::from_pairs(8, &[(0, 2), (2, 0), (4, 6)]).unwrap();
        let out = f.request(&target, 0).unwrap();
        assert_eq!(out.ports_changed, 3);
        assert_eq!(out.ready_at, secs_to_picos(1e-6 + 1e-6));
    }

    #[test]
    fn all_electrical_is_always_free() {
        let mut f = HybridFabric::electrical(shift(8, 1));
        for k in 2..6 {
            let out = f.request(&shift(8, k), 10 * k as u64).unwrap();
            assert_eq!(out.ready_at, 10 * k as u64);
        }
        assert_eq!(f.electrical_ports(), 8);
    }

    #[test]
    fn no_electrical_ports_matches_circuit_switch_pricing() {
        use crate::CircuitSwitch;
        let mut h = HybridFabric::split(shift(8, 1), 0, model()).unwrap();
        let mut s = CircuitSwitch::new(shift(8, 1), model());
        let a = h.request(&shift(8, 3), 42).unwrap();
        let b = s.request(&shift(8, 3), 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(h.current(), s.current());
    }

    #[test]
    fn stuck_port_keeps_circuit_and_heals() {
        let mut f = HybridFabric::split(shift(8, 1), 4, model()).unwrap();
        f.stick_port(0).unwrap();
        let out = f.request(&shift(8, 2), 0).unwrap();
        assert_eq!(f.current().dst_of(0), Some(1));
        f.unstick_port(0);
        f.request(&shift(8, 2), out.ready_at).unwrap();
        assert_eq!(f.current(), &shift(8, 2));
    }

    #[test]
    fn optical_slowdown_stretches_only_the_photonic_side() {
        let mut f = HybridFabric::split(Matching::empty(8), 4, model()).unwrap();
        f.set_optical_slowdown(3.0);
        let elec = Matching::from_pairs(8, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(f.request(&elec, 0).unwrap().ready_at, 0);
        let opt = Matching::from_pairs(8, &[(0, 1), (1, 0), (4, 5), (5, 4)]).unwrap();
        let out = f.request(&opt, 0).unwrap();
        assert_eq!(out.ready_at, secs_to_picos(15e-6));
    }

    #[test]
    fn busy_and_dimension_validation() {
        let mut f = HybridFabric::split(shift(8, 1), 4, model()).unwrap();
        assert!(matches!(
            f.request(&shift(4, 1), 0),
            Err(FabricError::DimensionMismatch { .. })
        ));
        let out = f.request(&shift(8, 3), 0).unwrap();
        assert!(matches!(
            f.request(&shift(8, 2), out.ready_at - 1),
            Err(FabricError::Busy { .. })
        ));
        assert!(HybridFabric::split(shift(4, 1), 5, model()).is_err());
        assert!(HybridFabric::with_ports(shift(4, 1), &[4], model()).is_err());
        assert!(f.stick_port(9).is_err());
    }

    #[test]
    fn state_roundtrip() {
        let mut f = HybridFabric::split(shift(8, 1), 4, model()).unwrap();
        f.request(&shift(8, 3), 0).unwrap();
        let state = f.save_state();
        let mut g = HybridFabric::split(shift(8, 1), 4, model()).unwrap();
        g.load_state(&state).unwrap();
        assert_eq!(g.current(), f.current());
        assert_eq!(g.busy_until(), f.busy_until());
    }
}
