//! Electrical-to-optical transceiver model (TeraPhy-class, §3.1).

use std::fmt;

/// A chip-to-chip optical transceiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transceiver {
    /// Line rate in gigabits per second.
    pub bandwidth_gbps: f64,
}

/// Error for invalid transceiver parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BadTransceiver(pub f64);

impl fmt::Display for BadTransceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transceiver bandwidth {} Gbps must be positive and finite",
            self.0
        )
    }
}

impl std::error::Error for BadTransceiver {}

impl Transceiver {
    /// The paper's evaluation default: 800 Gbps (§3.4).
    pub const PAPER_DEFAULT_GBPS: f64 = 800.0;

    /// Creates a transceiver.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite rates.
    pub fn new(bandwidth_gbps: f64) -> Result<Self, BadTransceiver> {
        if bandwidth_gbps <= 0.0 || !bandwidth_gbps.is_finite() {
            return Err(BadTransceiver(bandwidth_gbps));
        }
        Ok(Self { bandwidth_gbps })
    }

    /// Bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / 8.0
    }

    /// Seconds to serialize `bytes` at the full line rate.
    pub fn serialize_s(&self, bytes: f64) -> f64 {
        bytes / self.bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default() {
        let t = Transceiver::new(Transceiver::PAPER_DEFAULT_GBPS).unwrap();
        assert_eq!(t.bytes_per_sec(), 1e11);
        // 1 MiB at 800 Gbps ≈ 10.49 µs.
        assert!((t.serialize_s(1048576.0) - 1.048576e-5).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(Transceiver::new(0.0).is_err());
        assert!(Transceiver::new(-800.0).is_err());
        assert!(Transceiver::new(f64::INFINITY).is_err());
    }
}
