//! Centrally-programmed photonic circuit switch.

use crate::error::FabricError;
use crate::{Fabric, FabricState, ReconfigOutcome};
use aps_cost::units::{secs_to_picos, Picos};
use aps_cost::ReconfigModel;
use aps_matrix::Matching;
use std::collections::HashSet;

/// Aggregate statistics for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FabricStats {
    /// Reconfigurations performed (no-ops excluded).
    pub reconfigurations: usize,
    /// Total picoseconds spent reconfiguring.
    pub busy_ps: Picos,
    /// Total TX ports retargeted across all reconfigurations.
    pub ports_retargeted: usize,
}

/// A PipSwitch-style programmable circuit switch: one controller applies the
/// whole target configuration; the delay follows the attached
/// [`ReconfigModel`].
///
/// Fault injection: [`CircuitSwitch::stick_port`] freezes a TX port on its
/// current circuit (the controller "fails" to move it), and
/// [`CircuitSwitch::set_slowdown`] stretches every reconfiguration — both
/// are observable through the post-request [`Fabric::current`]
/// configuration and timing.
#[derive(Debug)]
pub struct CircuitSwitch {
    current: Matching,
    model: ReconfigModel,
    busy_until: Picos,
    slowdown: f64,
    stuck: HashSet<usize>,
    stats: FabricStats,
}

impl CircuitSwitch {
    /// Creates a switch with an initial configuration (e.g. the base ring).
    pub fn new(initial: Matching, model: ReconfigModel) -> Self {
        Self {
            current: initial,
            model,
            busy_until: 0,
            slowdown: 1.0,
            stuck: HashSet::new(),
            stats: FabricStats::default(),
        }
    }

    /// Freezes a TX port: subsequent reconfigurations leave its circuit
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ports.
    pub fn stick_port(&mut self, port: usize) -> Result<(), FabricError> {
        if port >= self.current.n() {
            return Err(FabricError::PortOutOfRange {
                port,
                n: self.current.n(),
            });
        }
        self.stuck.insert(port);
        Ok(())
    }

    /// Clears a stuck port.
    pub fn unstick_port(&mut self, port: usize) {
        self.stuck.remove(&port);
    }

    /// Multiplies all reconfiguration delays (≥ 1.0 models a degraded
    /// controller).
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive factors.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad slowdown {factor}");
        self.slowdown = factor;
    }

    /// Statistics so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Rewinds the device clock to `t = 0` (keeping the current
    /// configuration, faults and statistics) so the same device model can
    /// serve another simulation run, which restarts its own clock.
    pub fn reset_clock(&mut self) {
        self.busy_until = 0;
    }

    /// Computes the configuration reachable from `current` given the stuck
    /// ports: stuck TX ports keep their circuit; any target circuit whose RX
    /// is thereby occupied is dropped.
    fn achievable(&self, target: &Matching) -> Matching {
        if self.stuck.is_empty() {
            return target.clone();
        }
        let n = self.current.n();
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n);
        let mut used_rx: HashSet<usize> = HashSet::new();
        // Stuck ports claim their existing circuits first.
        for &p in &self.stuck {
            if let Some(d) = self.current.dst_of(p) {
                pairs.push((p, d));
                used_rx.insert(d);
            }
        }
        for (s, d) in target.pairs() {
            if self.stuck.contains(&s) || used_rx.contains(&d) {
                continue;
            }
            pairs.push((s, d));
            used_rx.insert(d);
        }
        Matching::from_pairs(n, &pairs).expect("achievable config is a valid matching")
    }
}

impl Fabric for CircuitSwitch {
    fn n(&self) -> usize {
        self.current.n()
    }

    fn current(&self) -> &Matching {
        &self.current
    }

    fn busy_until(&self) -> Picos {
        self.busy_until
    }

    fn load_state(&mut self, state: &FabricState) -> Result<(), FabricError> {
        if state.config.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: state.config.n(),
            });
        }
        self.current = state.config.clone();
        self.busy_until = state.busy_until;
        Ok(())
    }

    fn request(&mut self, target: &Matching, now: Picos) -> Result<ReconfigOutcome, FabricError> {
        if target.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: target.n(),
            });
        }
        if now < self.busy_until {
            return Err(FabricError::Busy {
                until: self.busy_until,
            });
        }
        // Fault-free requests (the hot path) adopt the target in place via
        // `clone_from`, so a steady-state reconfiguration allocates nothing.
        let ports_changed = if self.stuck.is_empty() {
            let ports_changed = self.current.tx_ports_changed(target);
            self.current.clone_from(target);
            ports_changed
        } else {
            let achieved = self.achievable(target);
            let ports_changed = self.current.tx_ports_changed(&achieved);
            self.current = achieved;
            ports_changed
        };
        let delay = secs_to_picos(self.model.delay_s(ports_changed) * self.slowdown);
        let ready_at = now + delay;
        if ports_changed > 0 {
            self.stats.reconfigurations += 1;
            self.stats.busy_ps += delay;
            self.stats.ports_retargeted += ports_changed;
        }
        self.busy_until = ready_at;
        Ok(ReconfigOutcome {
            ready_at,
            ports_changed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift(n: usize, k: usize) -> Matching {
        Matching::shift(n, k).unwrap()
    }

    #[test]
    fn constant_delay_reconfiguration() {
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::constant(5e-6).unwrap());
        let out = sw.request(&shift(8, 3), 1000).unwrap();
        assert_eq!(out.ready_at, 1000 + 5_000_000);
        assert_eq!(out.ports_changed, 8);
        assert_eq!(sw.current(), &shift(8, 3));
        assert_eq!(sw.stats().reconfigurations, 1);
    }

    #[test]
    fn noop_reconfiguration_is_free() {
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::constant(5e-6).unwrap());
        let out = sw.request(&shift(8, 1), 42).unwrap();
        assert_eq!(out.ready_at, 42);
        assert_eq!(out.ports_changed, 0);
        assert_eq!(sw.stats().reconfigurations, 0);
    }

    #[test]
    fn busy_rejection() {
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::constant(1e-6).unwrap());
        let out = sw.request(&shift(8, 2), 0).unwrap();
        assert!(matches!(
            sw.request(&shift(8, 3), out.ready_at - 1),
            Err(FabricError::Busy { .. })
        ));
        assert!(sw.request(&shift(8, 3), out.ready_at).is_ok());
    }

    #[test]
    fn per_port_delay_scales() {
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::per_port(1e-6, 1e-7).unwrap());
        // shift(1) → xor(4): all 8 TX ports move.
        let out = sw.request(&Matching::xor(8, 4).unwrap(), 0).unwrap();
        assert_eq!(out.ready_at, secs_to_picos(1e-6 + 8.0 * 1e-7));
    }

    #[test]
    fn stuck_port_keeps_circuit_and_drops_conflicts() {
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::constant(1e-6).unwrap());
        sw.stick_port(0).unwrap();
        // Target shift(2): port 0 should go 0→2 but stays 0→1; port 7's
        // target 7→1 conflicts with the stuck circuit's RX 1 and is dropped.
        let out = sw.request(&shift(8, 2), 0).unwrap();
        assert_eq!(sw.current().dst_of(0), Some(1));
        assert_eq!(sw.current().dst_of(7), None);
        assert_eq!(sw.current().dst_of(3), Some(5));
        // Recovery: unstick and reconfigure fully.
        sw.unstick_port(0);
        sw.request(&shift(8, 2), out.ready_at).unwrap();
        assert_eq!(sw.current(), &shift(8, 2));
    }

    #[test]
    fn slowdown_stretches_delay() {
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::constant(1e-6).unwrap());
        sw.set_slowdown(3.0);
        let out = sw.request(&shift(8, 5), 0).unwrap();
        assert_eq!(out.ready_at, secs_to_picos(3e-6));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::constant(1e-6).unwrap());
        assert!(matches!(
            sw.request(&shift(4, 1), 0),
            Err(FabricError::DimensionMismatch {
                fabric: 8,
                target: 4
            })
        ));
    }

    #[test]
    fn request_when_free_defers_instead_of_failing() {
        use crate::Fabric;
        let mut sw = CircuitSwitch::new(shift(8, 1), ReconfigModel::constant(1e-6).unwrap());
        let out = sw.request(&shift(8, 2), 0).unwrap();
        assert_eq!(sw.busy_until(), out.ready_at);
        // A second tenant arriving mid-reconfiguration queues behind it.
        let (granted, out2) = sw
            .request_when_free(&shift(8, 3), out.ready_at / 2)
            .unwrap();
        assert_eq!(granted, out.ready_at);
        assert_eq!(out2.ready_at, out.ready_at + secs_to_picos(1e-6));
        // A request after the fabric freed is granted immediately.
        let (granted, _) = sw
            .request_when_free(&shift(8, 4), out2.ready_at + 7)
            .unwrap();
        assert_eq!(granted, out2.ready_at + 7);
    }

    #[test]
    fn stick_port_validation() {
        let mut sw = CircuitSwitch::new(shift(4, 1), ReconfigModel::constant(1e-6).unwrap());
        assert!(matches!(
            sw.stick_port(9),
            Err(FabricError::PortOutOfRange { port: 9, n: 4 })
        ));
    }
}
