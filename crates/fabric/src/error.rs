//! Error types for fabric device models.

use aps_cost::units::Picos;
use std::fmt;

/// Errors produced by fabric device models.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// The target configuration's port count does not match the fabric's.
    DimensionMismatch {
        /// Fabric port count.
        fabric: usize,
        /// Target configuration port count.
        target: usize,
    },
    /// A reconfiguration was requested while a previous one is in flight.
    Busy {
        /// When the in-flight reconfiguration completes.
        until: Picos,
    },
    /// A port index was out of range.
    PortOutOfRange {
        /// The offending port.
        port: usize,
        /// The port count.
        n: usize,
    },
    /// A per-port tuning delay was negative or non-finite.
    BadTuningDelay(f64),
    /// A wavelength-bank fabric was built with zero wavelength bands.
    EmptyWavelengthBank,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { fabric, target } => {
                write!(
                    f,
                    "fabric has {fabric} ports but target configuration has {target}"
                )
            }
            Self::Busy { until } => {
                write!(f, "fabric busy reconfiguring until t={until} ps")
            }
            Self::PortOutOfRange { port, n } => {
                write!(f, "port {port} out of range for {n}-port fabric")
            }
            Self::BadTuningDelay(v) => {
                write!(f, "tuning delay {v} must be finite and non-negative")
            }
            Self::EmptyWavelengthBank => {
                write!(f, "wavelength bank needs at least one band")
            }
        }
    }
}

impl std::error::Error for FabricError {}
