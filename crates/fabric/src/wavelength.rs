//! Passive wavelength-routed fabric with tunable transceivers.
//!
//! The paper's §3.1 alternative: "if the transceivers are capable of tuning
//! the wavelength of the light they emit, a passive wavelength switching
//! photonic interconnect can establish direct paths between pairs of ports,
//! without requiring a central controller." Reconfiguration here is
//! *per-port*: only transceivers whose destination changes retune, and the
//! fabric is ready when the slowest of them locks — there is no fixed
//! controller overhead.

use crate::error::FabricError;
use crate::{Fabric, FabricState, ReconfigOutcome};
use aps_cost::units::{secs_to_picos, Picos};
use aps_matrix::Matching;

/// A wavelength-switched fabric: an AWGR-style passive core plus one tunable
/// transceiver per port.
#[derive(Debug)]
pub struct WavelengthFabric {
    current: Matching,
    /// Per-port tuning time in seconds.
    tuning_s: Vec<f64>,
    busy_until: Picos,
}

impl WavelengthFabric {
    /// Creates a fabric with a uniform per-port tuning time.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite tuning times.
    pub fn uniform(initial: Matching, tuning_s: f64) -> Result<Self, FabricError> {
        let n = initial.n();
        Self::with_per_port(initial, vec![tuning_s; n])
    }

    /// Creates a fabric with per-port tuning times (heterogeneous lasers).
    ///
    /// # Errors
    ///
    /// Rejects a tuning vector of the wrong length or invalid entries.
    pub fn with_per_port(initial: Matching, tuning_s: Vec<f64>) -> Result<Self, FabricError> {
        if tuning_s.len() != initial.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: initial.n(),
                target: tuning_s.len(),
            });
        }
        for &t in &tuning_s {
            if !t.is_finite() || t < 0.0 {
                return Err(FabricError::BadTuningDelay(t));
            }
        }
        Ok(Self {
            current: initial,
            tuning_s,
            busy_until: 0,
        })
    }

    /// Degrades one port's laser to a slower tuning time (fault injection).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ports and invalid times.
    pub fn set_port_tuning(&mut self, port: usize, tuning_s: f64) -> Result<(), FabricError> {
        if port >= self.current.n() {
            return Err(FabricError::PortOutOfRange {
                port,
                n: self.current.n(),
            });
        }
        if !tuning_s.is_finite() || tuning_s < 0.0 {
            return Err(FabricError::BadTuningDelay(tuning_s));
        }
        self.tuning_s[port] = tuning_s;
        Ok(())
    }

    /// Rewinds the device clock to `t = 0` (keeping configuration and
    /// per-port tuning times) for reuse across simulation runs.
    pub fn reset_clock(&mut self) {
        self.busy_until = 0;
    }
}

impl Fabric for WavelengthFabric {
    fn n(&self) -> usize {
        self.current.n()
    }

    fn current(&self) -> &Matching {
        &self.current
    }

    fn busy_until(&self) -> Picos {
        self.busy_until
    }

    fn load_state(&mut self, state: &FabricState) -> Result<(), FabricError> {
        if state.config.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: state.config.n(),
            });
        }
        self.current = state.config.clone();
        self.busy_until = state.busy_until;
        Ok(())
    }

    fn request(&mut self, target: &Matching, now: Picos) -> Result<ReconfigOutcome, FabricError> {
        if target.n() != self.current.n() {
            return Err(FabricError::DimensionMismatch {
                fabric: self.current.n(),
                target: target.n(),
            });
        }
        if now < self.busy_until {
            return Err(FabricError::Busy {
                until: self.busy_until,
            });
        }
        // Only ports whose destination wavelength changes retune; the
        // slowest retuning port gates readiness (synchronous steps).
        let slowest = (0..self.current.n())
            .filter(|&p| self.current.dst_of(p) != target.dst_of(p))
            .map(|p| self.tuning_s[p])
            .fold(0.0f64, f64::max);
        let ports_changed = self.current.tx_ports_changed(target);
        let ready_at = now + secs_to_picos(slowest);
        self.current.clone_from(target);
        self.busy_until = ready_at;
        Ok(ReconfigOutcome {
            ready_at,
            ports_changed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift(n: usize, k: usize) -> Matching {
        Matching::shift(n, k).unwrap()
    }

    #[test]
    fn uniform_tuning_time_gates_readiness() {
        let mut f = WavelengthFabric::uniform(shift(8, 1), 2e-6).unwrap();
        let out = f.request(&shift(8, 3), 100).unwrap();
        assert_eq!(out.ready_at, 100 + 2_000_000);
        assert_eq!(out.ports_changed, 8);
    }

    #[test]
    fn unchanged_ports_do_not_retune() {
        // Move only port 0: from (0→1,2→3) to (0→5,2→3). Port 2 keeps its
        // wavelength, so even a slow port-2 laser doesn't matter.
        let initial = Matching::from_pairs(8, &[(0, 1), (2, 3)]).unwrap();
        let target = Matching::from_pairs(8, &[(0, 5), (2, 3)]).unwrap();
        let mut f = WavelengthFabric::uniform(initial, 1e-6).unwrap();
        f.set_port_tuning(2, 1.0).unwrap();
        let out = f.request(&target, 0).unwrap();
        assert_eq!(out.ready_at, secs_to_picos(1e-6));
        assert_eq!(out.ports_changed, 1);
    }

    #[test]
    fn slow_laser_fault_gates_everyone() {
        let mut f = WavelengthFabric::uniform(shift(8, 1), 1e-6).unwrap();
        f.set_port_tuning(5, 50e-6).unwrap();
        let out = f.request(&shift(8, 2), 0).unwrap();
        assert_eq!(out.ready_at, secs_to_picos(50e-6));
    }

    #[test]
    fn noop_is_instant() {
        let mut f = WavelengthFabric::uniform(shift(8, 1), 1e-6).unwrap();
        let out = f.request(&shift(8, 1), 7).unwrap();
        assert_eq!(out.ready_at, 7);
        assert_eq!(out.ports_changed, 0);
    }

    #[test]
    fn validation() {
        assert!(WavelengthFabric::uniform(shift(4, 1), -1.0).is_err());
        assert!(WavelengthFabric::with_per_port(shift(4, 1), vec![1e-6; 3]).is_err());
        let mut f = WavelengthFabric::uniform(shift(4, 1), 1e-6).unwrap();
        assert!(f.set_port_tuning(9, 1e-6).is_err());
        assert!(f.set_port_tuning(1, f64::NAN).is_err());
        assert!(matches!(
            f.request(&shift(8, 1), 0),
            Err(FabricError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn busy_rejection() {
        let mut f = WavelengthFabric::uniform(shift(8, 1), 1e-6).unwrap();
        let out = f.request(&shift(8, 2), 0).unwrap();
        assert!(matches!(
            f.request(&shift(8, 3), out.ready_at / 2),
            Err(FabricError::Busy { .. })
        ));
    }
}
