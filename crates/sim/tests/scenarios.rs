//! Determinism and shape invariants of the named scenario generators.
//!
//! The bench harness gates on scenario reports byte-for-byte, so the
//! generators themselves must be pure functions of their arguments: two
//! calls with the same volume must produce structurally identical
//! scenarios, and every scenario must satisfy the partition invariants the
//! tenant executor validates at run time.

use aps_cost::units::MIB;
use aps_cost::ReconfigModel;
use aps_par::Pool;
use aps_sim::harness::{run_scenario_trials, ScenarioTrial};
use aps_sim::{scenarios, RunConfig, Scenario, TenantSpec};

fn assert_tenants_identical(a: &TenantSpec, b: &TenantSpec) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.ports, b.ports);
    assert_eq!(a.base_config, b.base_config);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.switch_schedule, b.switch_schedule);
    assert_eq!(a.arrival_s, b.arrival_s);
}

#[test]
fn generators_are_deterministic_across_invocations() {
    for bytes in [8.0 * 1024.0, MIB, 64.0 * MIB] {
        for (a, b) in scenarios::all(bytes).iter().zip(&scenarios::all(bytes)) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.n, b.n);
            assert_eq!(a.tenants.len(), b.tenants.len());
            for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
                assert_tenants_identical(ta, tb);
            }
            assert_eq!(a.initial_config().unwrap(), b.initial_config().unwrap());
        }
    }
}

#[test]
fn identical_trial_sets_produce_identical_outcomes() {
    // The full path the bench takes: same volume → same ScenarioTrial set
    // → byte-identical tenant reports, at several thread counts.
    let trials = |bytes: f64| -> Vec<ScenarioTrial> {
        scenarios::all(bytes)
            .into_iter()
            .map(|scenario| ScenarioTrial {
                scenario,
                reconfig: ReconfigModel::constant(5e-6).unwrap(),
                config: RunConfig::paper_defaults(),
            })
            .collect()
    };
    let first = run_scenario_trials(&Pool::serial(), &trials(MIB)).unwrap();
    for pool in [Pool::serial(), Pool::new(2), Pool::new(4)] {
        let again = run_scenario_trials(&pool, &trials(MIB)).unwrap();
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(&again) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
            }
        }
    }
}

fn check_shape(s: &Scenario) {
    assert!(!s.tenants.is_empty(), "{}: no tenants", s.name);
    let mut owner = vec![false; s.n];
    for t in &s.tenants {
        assert!(
            !t.ports.is_empty(),
            "{}/{}: empty partition",
            s.name,
            t.name
        );
        for &p in &t.ports {
            assert!(p < s.n, "{}/{}: port {p} out of range", s.name, t.name);
            assert!(
                !owner[p],
                "{}/{}: port {p} owned by two tenants",
                s.name, t.name
            );
            owner[p] = true;
        }
        // Local shapes agree: base config, collective and switch schedule
        // all cover the partition.
        assert_eq!(t.base_config.n(), t.ports.len(), "{}/{}", s.name, t.name);
        assert_eq!(t.schedule.n(), t.ports.len(), "{}/{}", s.name, t.name);
        assert!(
            t.schedule.num_steps() > 0,
            "{}/{}: empty schedule",
            s.name,
            t.name
        );
        assert_eq!(
            t.switch_schedule.len(),
            t.schedule.num_steps(),
            "{}/{}",
            s.name,
            t.name
        );
        assert!(t.arrival_s >= 0.0, "{}/{}", s.name, t.name);
    }
    // The initial configuration respects the partition: every circuit
    // stays inside one tenant's ports.
    let config = config_owner_check(s);
    assert_eq!(config.n(), s.n, "{}", s.name);
}

fn config_owner_check(s: &Scenario) -> aps_matrix::Matching {
    let mut owner: Vec<Option<usize>> = vec![None; s.n];
    for (i, t) in s.tenants.iter().enumerate() {
        for &p in &t.ports {
            owner[p] = Some(i);
        }
    }
    let config = s.initial_config().unwrap();
    for (src, dst) in config.pairs() {
        assert_eq!(
            owner[src], owner[dst],
            "{}: circuit {src}→{dst} crosses partitions",
            s.name
        );
        assert!(
            owner[src].is_some(),
            "{}: circuit on idle port {src}",
            s.name
        );
    }
    config
}

#[test]
fn every_named_scenario_is_well_shaped() {
    for bytes in [64.0 * 1024.0, 4.0 * MIB] {
        let all = scenarios::all(bytes);
        assert_eq!(all.len(), 3);
        let names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["mixed-collectives", "skewed-tenants", "staggered-arrivals"]
        );
        for s in &all {
            check_shape(s);
        }
    }
}

#[test]
fn shapes_survive_controller_planning() {
    // Planning replaces switch schedules; the structural invariants must
    // hold afterwards for every shipped controller.
    use aps_core::controller::shipped;
    use aps_cost::CostParams;
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    for ctl in shipped() {
        for mut s in scenarios::all(MIB) {
            s.plan_with(&Pool::serial(), ctl, CostParams::paper_defaults(), reconfig)
                .unwrap();
            check_shape(&s);
        }
    }
}
