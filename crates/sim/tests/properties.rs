//! Property-based tests for the simulator: determinism, monotonicity in
//! every cost parameter, and lower bounds from conservation.

use aps_collectives::{CollectiveKind, Schedule, Step};
use aps_core::SwitchSchedule;
use aps_cost::{CostParams, ReconfigModel};
use aps_fabric::{BarrierModel, CircuitSwitch};
use aps_matrix::Matching;
use aps_sim::{run_scheduled, RunConfig};
use proptest::prelude::*;

/// Strategy: a random schedule of shift steps over `n ∈ [3, 12]`.
fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (
        3usize..12,
        proptest::collection::vec((1usize..11, 1.0f64..1e7), 1..10),
    )
        .prop_map(|(n, raw)| {
            let steps = raw
                .into_iter()
                .map(|(k, bytes)| Step {
                    matching: Matching::shift(n, (k % (n - 1)) + 1).unwrap(),
                    bytes_per_pair: bytes,
                })
                .collect();
            Schedule::new(n, CollectiveKind::Composite, "random-shifts", steps).unwrap()
        })
}

fn simulate(schedule: &Schedule, switches: &SwitchSchedule, cfg: &RunConfig, alpha_r: f64) -> f64 {
    let n = schedule.n();
    let ring = Matching::shift(n, 1).unwrap();
    let mut fab = CircuitSwitch::new(ring.clone(), ReconfigModel::constant(alpha_r).unwrap());
    run_scheduled(&mut fab, &ring, schedule, switches, cfg)
        .expect("simulation")
        .total_s()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulation_is_deterministic(schedule in arb_schedule()) {
        let cfg = RunConfig::paper_defaults();
        let sw = SwitchSchedule::all_base(schedule.num_steps());
        prop_assert_eq!(
            simulate(&schedule, &sw, &cfg, 1e-6).to_bits(),
            simulate(&schedule, &sw, &cfg, 1e-6).to_bits()
        );
    }

    #[test]
    fn total_bounded_below_by_serialization(schedule in arb_schedule()) {
        // No schedule can beat pure transmission at full bandwidth plus the
        // per-step α.
        let cfg = RunConfig::paper_defaults();
        for sw in [
            SwitchSchedule::all_base(schedule.num_steps()),
            SwitchSchedule::all_matched(schedule.num_steps()),
        ] {
            let t = simulate(&schedule, &sw, &cfg, 0.0);
            let floor: f64 = schedule
                .steps()
                .iter()
                .map(|s| cfg.params.alpha_s + s.bytes_per_pair * cfg.params.beta_s_per_byte)
                .sum();
            prop_assert!(t >= floor - 1e-12, "sim {t} below serialization floor {floor}");
        }
    }

    #[test]
    fn matched_total_is_exact(schedule in arb_schedule()) {
        // All-matched: every step is α + δ + β·m plus α_r per physical
        // reconfiguration — computable in closed form.
        let cfg = RunConfig::paper_defaults();
        let alpha_r = 3e-6;
        let t = simulate(&schedule, &SwitchSchedule::all_matched(schedule.num_steps()), &cfg, alpha_r);
        let mut expect = 0.0;
        let ring = Matching::shift(schedule.n(), 1).unwrap();
        let mut current = ring.clone();
        for s in schedule.steps() {
            expect += cfg.params.alpha_s + cfg.params.delta_s
                + s.bytes_per_pair * cfg.params.beta_s_per_byte;
            if current != s.matching {
                expect += alpha_r;
                current = s.matching.clone();
            }
        }
        prop_assert!((t - expect).abs() < 1e-9 * (1.0 + expect), "sim {t} vs closed form {expect}");
    }

    #[test]
    fn barrier_and_alpha_r_are_monotone(schedule in arb_schedule()) {
        let base = RunConfig::paper_defaults();
        let with_barrier = RunConfig {
            barrier: BarrierModel::Constant { latency_s: 1e-6 },
            ..base
        };
        let sw = SwitchSchedule::all_matched(schedule.num_steps());
        let t0 = simulate(&schedule, &sw, &base, 1e-6);
        let t1 = simulate(&schedule, &sw, &with_barrier, 1e-6);
        let t2 = simulate(&schedule, &sw, &base, 1e-4);
        prop_assert!(t1 >= t0);
        prop_assert!(t2 >= t0);
    }

    #[test]
    fn faster_links_never_slow_the_collective(schedule in arb_schedule()) {
        let slow = RunConfig {
            params: CostParams::new(100e-9, 400.0, 100e-9).unwrap(),
            ..RunConfig::paper_defaults()
        };
        let fast = RunConfig {
            params: CostParams::new(100e-9, 1600.0, 100e-9).unwrap(),
            ..RunConfig::paper_defaults()
        };
        let sw = SwitchSchedule::all_base(schedule.num_steps());
        prop_assert!(
            simulate(&schedule, &sw, &fast, 1e-6) <= simulate(&schedule, &sw, &slow, 1e-6) + 1e-12
        );
    }
}
