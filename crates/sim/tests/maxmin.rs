//! Property tests for the max-min fair allocation invariants.
//!
//! The fluid engine's rate allocator must produce *the* max-min fair
//! point, which is characterized by three properties tested here on
//! randomized instances:
//!
//! 1. **feasibility** — no link carries more than its capacity;
//! 2. **max-min optimality / Pareto efficiency** — every flow with a
//!    positive rate crosses a saturated link on which it is among the
//!    fastest flows. No flow can raise its rate without lowering the rate
//!    of a flow that is no faster, which in particular implies the
//!    allocation is Pareto-efficient;
//! 3. **order independence** — the allocation is a function of the flow
//!    *set*, not the flow *order*: permuting the input permutes the rates.

use aps_sim::fluid::{max_min_rates, FlowSpec};
use proptest::prelude::*;

/// Random capacities and flows (in-order link subsequences, possibly
/// empty) over 2–9 links.
fn arb_network() -> impl Strategy<Value = (Vec<f64>, Vec<FlowSpec>)> {
    (2usize..10).prop_flat_map(|links| {
        let caps = proptest::collection::vec(0.5f64..100.0, links);
        let flows = proptest::collection::vec(
            proptest::sample::subsequence((0..links).collect::<Vec<usize>>(), 1..5),
            1..12,
        );
        (caps, flows).prop_map(|(caps, raw)| {
            let specs = raw
                .into_iter()
                .map(|path| FlowSpec { bytes: 1.0, path })
                .collect();
            (caps, specs)
        })
    })
}

fn rates_of(caps: &[f64], specs: &[FlowSpec]) -> Vec<f64> {
    let paths: Vec<&[usize]> = specs.iter().map(|s| s.path.as_slice()).collect();
    max_min_rates(caps, &paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_link_is_oversubscribed((caps, specs) in arb_network()) {
        let rates = rates_of(&caps, &specs);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = rates
                .iter()
                .zip(&specs)
                .filter(|(_, s)| s.path.contains(&l))
                .map(|(r, _)| r)
                .sum();
            prop_assert!(
                used <= cap * (1.0 + 1e-9),
                "link {l}: {used} exceeds capacity {cap}"
            );
        }
    }

    #[test]
    fn every_flow_has_a_bottleneck_it_is_fastest_on((caps, specs) in arb_network()) {
        // The max-min optimality certificate: each flow crosses a link
        // that is (a) saturated and (b) carries no strictly faster flow.
        // Raising this flow's rate therefore requires lowering some flow
        // that is no faster — the allocation is max-min fair, hence
        // Pareto-efficient.
        let rates = rates_of(&caps, &specs);
        for (i, s) in specs.iter().enumerate() {
            let mut certified = false;
            for &l in &s.path {
                let used: f64 = rates
                    .iter()
                    .zip(&specs)
                    .filter(|(_, t)| t.path.contains(&l))
                    .map(|(r, _)| r)
                    .sum();
                let fastest = rates
                    .iter()
                    .zip(&specs)
                    .filter(|(_, t)| t.path.contains(&l))
                    .map(|(r, _)| *r)
                    .fold(0.0f64, f64::max);
                let saturated = used >= caps[l] * (1.0 - 1e-9);
                if saturated && rates[i] >= fastest * (1.0 - 1e-9) {
                    certified = true;
                    break;
                }
            }
            prop_assert!(
                certified,
                "flow {i} (rate {}) has no saturated bottleneck it is fastest on",
                rates[i]
            );
        }
    }

    #[test]
    fn rates_are_independent_of_flow_insertion_order(
        (caps, specs) in arb_network(),
        rot in 1usize..11,
    ) {
        // The allocation is unique, so any permutation of the flow list
        // yields the permuted rates. Rotations compose with the strategy's
        // random sets to cover arbitrary reorderings across cases.
        let rates = rates_of(&caps, &specs);
        let rot = rot % specs.len().max(1);
        let mut rotated = specs.clone();
        rotated.rotate_left(rot);
        let rotated_rates = rates_of(&caps, &rotated);
        for i in 0..specs.len() {
            let a = rates[i];
            let b = rotated_rates[(i + specs.len() - rot) % specs.len()];
            let rel = (a - b).abs() / a.abs().max(1e-300);
            prop_assert!(
                rel <= 1e-9,
                "flow {i}: rate {a} in input order vs {b} rotated (rel {rel})"
            );
        }
    }

    #[test]
    fn departures_never_lower_the_minimum_rate((caps, specs) in arb_network()) {
        // Individual rates are *not* monotone under departures (a
        // departure can speed up a neighbor that then claims more of a
        // shared link elsewhere) — but the leximin order only improves
        // when the feasible set grows, so the slowest survivor is never
        // slower than the old minimum. This is exactly why the event
        // engine re-solves whole sharing components instead of patching
        // rates locally.
        if specs.len() < 2 {
            return;
        }
        let rates = rates_of(&caps, &specs);
        let old_min = rates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let mut without_last = specs.clone();
        without_last.pop();
        let after = rates_of(&caps, &without_last);
        let new_min = after.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        prop_assert!(
            new_min >= old_min * (1.0 - 1e-9),
            "minimum rate dropped from {old_min} to {new_min} after a departure"
        );
    }
}

#[test]
fn bottleneck_certificate_on_a_hand_checked_instance() {
    // Flow 0 spans both links; flows 1 and 2 sit on one link each.
    // Link 0 (cap 30, 2 users) binds flows 0 and 1 at 15; flow 2 then
    // takes the rest of link 1 (cap 100): 85.
    let caps = [30.0, 100.0];
    let specs = [
        FlowSpec {
            bytes: 1.0,
            path: vec![0, 1],
        },
        FlowSpec {
            bytes: 1.0,
            path: vec![0],
        },
        FlowSpec {
            bytes: 1.0,
            path: vec![1],
        },
    ];
    let rates = rates_of(&caps, &specs);
    assert!((rates[0] - 15.0).abs() < 1e-12);
    assert!((rates[1] - 15.0).abs() < 1e-12);
    assert!((rates[2] - 85.0).abs() < 1e-12);
}
