//! The arena regression test: a steady-state streaming step performs
//! **zero heap allocations**.
//!
//! A counting `#[global_allocator]` wraps the system allocator, and the
//! test measures by *two-run delta*: the same endless [`TrainingLoop`] is
//! driven through [`run_workload_totals`] twice on fresh, identical
//! setups — once for `K` steps, once for `K + EXTRA` steps. Everything up
//! to step `K` (arena warm-up, θ-cache misses, workload construction) is
//! a bitwise-identical prefix of both runs, so the difference in
//! allocation counts is exactly the heap traffic of the `EXTRA`
//! steady-state steps — which must be zero.
//!
//! Everything lives in one `#[test]` so no concurrent test can perturb
//! the counter, and the counter itself is *thread-scoped*: only the test
//! thread opts in, so allocations made by libtest's harness machinery on
//! its own threads (which run concurrently with the measured region)
//! never reach it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use aps_collectives::workload::generators::TrainingLoop;
use aps_core::controller::{AlwaysReconfigure, Controller, Greedy, Static};
use aps_cost::units::MIB;
use aps_cost::ReconfigModel;
use aps_fabric::CircuitSwitch;
use aps_matrix::Matching;
use aps_sim::stream::{run_workload_totals, StreamPricing, StreamSummary};
use aps_sim::RunConfig;
use aps_topology::builders;

/// Counts every allocation-path call (alloc, alloc_zeroed, realloc);
/// frees are not interesting here.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Opt-in switch: only the thread that flipped this on contributes to
    /// [`ALLOCS`]. Const-initialized TLS never allocates on first access,
    /// so reading it from inside the global allocator cannot recurse.
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

/// Counts one allocation-path call iff the current thread opted in.
/// `try_with` (not `with`) so late allocations during TLS teardown are
/// silently untracked instead of panicking inside the allocator.
#[inline]
fn count_if_tracked() {
    if TRACK.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracked();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const N: usize = 8;
/// Warm-up budget: several full epochs, so every distinct matching has a
/// θ-cache entry and every arena buffer has hit its high-water mark.
const WARMUP: usize = 200;
/// The steady-state stretch whose allocation delta must be zero.
const EXTRA: usize = 100_000;

/// Runs `steps` of the endless training loop under `controller` on a
/// fresh fabric, returning the summary and the allocation count the run
/// spent.
fn run(steps: usize, controller: &dyn Controller) -> (StreamSummary, u64) {
    let base = builders::ring_unidirectional(N).unwrap();
    let ring = Matching::shift(N, 1).unwrap();
    let reconfig = ReconfigModel::constant(5e-6).unwrap();
    let mut fabric = CircuitSwitch::new(ring, reconfig);
    let mut workload = TrainingLoop::new(N, 4, MIB, 4.0 * MIB, None).unwrap();
    let pricing = StreamPricing::new(reconfig);
    let cfg = RunConfig::paper_defaults();
    let before = allocs();
    let summary = run_workload_totals(
        &mut fabric,
        &base,
        &mut workload,
        controller,
        pricing,
        &cfg,
        steps,
    )
    .unwrap();
    (summary, allocs() - before)
}

#[test]
fn steady_state_step_allocates_nothing() {
    // One test fn, and only this thread feeds the counter.
    TRACK.with(|t| t.set(true));
    for (name, controller) in [
        ("static", &Static as &dyn Controller),
        ("always-reconfigure", &AlwaysReconfigure),
        ("greedy", &Greedy),
    ] {
        let (short, allocs_short) = run(WARMUP, controller);
        let (long, allocs_long) = run(WARMUP + EXTRA, controller);
        assert_eq!(short.steps, WARMUP, "{name}: short run executed");
        assert_eq!(long.steps, WARMUP + EXTRA, "{name}: long run executed");
        // The long run strictly extends the short one.
        assert!(long.total_ps > short.total_ps, "{name}: stream advanced");
        let delta = allocs_long - allocs_short;
        assert_eq!(
            delta, 0,
            "{name}: {EXTRA} steady-state steps performed {delta} heap \
             allocations (want 0); warm-up spent {allocs_short}"
        );
    }
}
