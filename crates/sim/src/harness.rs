//! Multi-trial simulation harness.
//!
//! Ablations and validation studies run the simulator many times — per
//! workload, per policy, per fault scenario, per compute model. Every trial
//! is independent (each owns its fabric), so the batch is evaluated on an
//! [`aps_par::Pool`] with deterministic result ordering: `reports[i]`
//! always belongs to `trials[i]`, at any `APS_THREADS` setting, and the
//! simulator itself is deterministic, so a batch's output is bit-identical
//! across thread counts.

use crate::error::SimError;
use crate::exec::{run_scheduled, RunConfig};
use crate::report::SimReport;
use aps_collectives::Schedule;
use aps_core::SwitchSchedule;
use aps_cost::ReconfigModel;
use aps_fabric::CircuitSwitch;
use aps_matrix::Matching;
use aps_par::Pool;

/// One self-contained simulator run: the harness builds a fresh
/// [`CircuitSwitch`] starting at `base_config` with `reconfig` pricing, and
/// executes `schedule` under `switch_schedule`.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Circuit configuration realizing the base topology (also the
    /// fabric's initial state).
    pub base_config: Matching,
    /// Reconfiguration pricing of the fabric.
    pub reconfig: ReconfigModel,
    /// The collective to execute.
    pub schedule: Schedule,
    /// Per-step base/matched choices.
    pub switch_schedule: SwitchSchedule,
    /// Simulation parameters.
    pub config: RunConfig,
}

impl Trial {
    /// Runs this trial alone on a fresh fabric.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run(&self) -> Result<SimReport, SimError> {
        let mut fabric = CircuitSwitch::new(self.base_config.clone(), self.reconfig);
        run_scheduled(
            &mut fabric,
            &self.base_config,
            &self.schedule,
            &self.switch_schedule,
            &self.config,
        )
    }
}

/// Runs every trial on `pool`; `reports[i]` corresponds to `trials[i]`.
///
/// # Errors
///
/// All trials are evaluated; when several fail, the error of the lowest
/// trial index is returned.
pub fn run_trial_batch(pool: &Pool, trials: &[Trial]) -> Result<Vec<SimReport>, SimError> {
    pool.try_map(trials, |_, trial| trial.run())
}

/// Runs every trial on `pool`; `reports[i]` corresponds to `trials[i]`.
///
/// # Errors
///
/// See [`run_trial_batch`].
#[deprecated(since = "0.2.0", note = "use `run_trial_batch`")]
pub fn run_trials(pool: &Pool, trials: &[Trial]) -> Result<Vec<SimReport>, SimError> {
    run_trial_batch(pool, trials)
}

/// One multi-tenant simulator run: a [`crate::Scenario`] on a fresh fabric with
/// `reconfig` pricing (see [`crate::scenarios`]).
#[derive(Debug, Clone)]
pub struct ScenarioTrial {
    /// The workload mix.
    pub scenario: crate::scenarios::Scenario,
    /// Reconfiguration pricing of the shared fabric.
    pub reconfig: ReconfigModel,
    /// Simulation parameters.
    pub config: RunConfig,
}

impl ScenarioTrial {
    /// Runs this scenario alone on a fresh fabric.
    ///
    /// # Errors
    ///
    /// Propagates structural errors; per-tenant failures land in the inner
    /// results.
    pub fn run(&self) -> Result<Vec<Result<crate::TenantReport, SimError>>, SimError> {
        self.scenario.run(self.reconfig, &self.config)
    }
}

/// Runs every scenario trial on `pool`; `outcomes[i]` corresponds to
/// `trials[i]`, bit-identically at any thread count (each multi-tenant run
/// is a pure, deterministic function of its trial).
///
/// # Errors
///
/// All trials are evaluated; when several fail *structurally*, the error
/// of the lowest trial index is returned. Per-tenant failures do not fail
/// the batch.
pub fn run_scenario_trials(
    pool: &Pool,
    trials: &[ScenarioTrial],
) -> Result<Vec<Vec<Result<crate::TenantReport, SimError>>>, SimError> {
    pool.try_map(trials, |_, trial| trial.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_core::ConfigChoice;

    fn trials(n: usize) -> Vec<Trial> {
        let base_config = Matching::shift(n, 1).unwrap();
        let reconfig = ReconfigModel::constant(5e-6).unwrap();
        [1e3, 1e6, 1e8]
            .into_iter()
            .flat_map(|bytes| {
                let base_config = base_config.clone();
                let schedule = allreduce::halving_doubling::build(n, bytes)
                    .unwrap()
                    .schedule;
                let steps = schedule.num_steps();
                [
                    SwitchSchedule::all_base(steps),
                    SwitchSchedule::all_matched(steps),
                ]
                .into_iter()
                .map(move |switch_schedule| Trial {
                    base_config: base_config.clone(),
                    reconfig,
                    schedule: schedule.clone(),
                    switch_schedule,
                    config: RunConfig::paper_defaults(),
                })
            })
            .collect()
    }

    #[test]
    fn batch_matches_individual_runs_in_order() {
        let ts = trials(8);
        let batch = run_trial_batch(&Pool::new(4), &ts).unwrap();
        assert_eq!(batch.len(), ts.len());
        for (t, r) in ts.iter().zip(&batch) {
            assert_eq!(r, &t.run().unwrap());
        }
        // Matched runs reconfigure, base runs never do — order preserved.
        assert_eq!(batch[0].reconfig_events(), 0);
        assert!(batch[1].reconfig_events() > 0);
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let ts = trials(8);
        let serial = run_trial_batch(&Pool::serial(), &ts).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(serial, run_trial_batch(&Pool::new(threads), &ts).unwrap());
        }
    }

    #[test]
    fn scenario_batch_is_deterministic_and_ordered() {
        let trials: Vec<ScenarioTrial> = [1e6, 4e6]
            .into_iter()
            .flat_map(|bytes| {
                crate::scenarios::all(bytes)
                    .into_iter()
                    .map(|scenario| ScenarioTrial {
                        scenario,
                        reconfig: ReconfigModel::constant(5e-6).unwrap(),
                        config: RunConfig::paper_defaults(),
                    })
            })
            .collect();
        let serial = run_scenario_trials(&Pool::serial(), &trials).unwrap();
        assert_eq!(serial.len(), trials.len());
        for (t, outcome) in trials.iter().zip(&serial) {
            assert_eq!(outcome.len(), t.scenario.tenants.len());
            let solo = t.run().unwrap();
            for (a, b) in outcome.iter().zip(&solo) {
                assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
        }
        for threads in [2, 4] {
            let parallel = run_scenario_trials(&Pool::new(threads), &trials).unwrap();
            for (a, b) in serial.iter().zip(&parallel) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
                }
            }
        }
    }

    #[test]
    fn first_failing_trial_by_index_is_reported() {
        let mut ts = trials(8);
        // Make trials 1 and 3 fail with a length mismatch; index 1 wins.
        ts[3].switch_schedule = SwitchSchedule::new(vec![ConfigChoice::Base]);
        ts[1].switch_schedule = SwitchSchedule::new(vec![ConfigChoice::Base; 2]);
        let err = run_trial_batch(&Pool::new(4), &ts).unwrap_err();
        assert!(
            matches!(err, SimError::ScheduleLengthMismatch { got: 2, .. }),
            "{err}"
        );
    }
}
