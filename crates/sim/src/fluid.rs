//! Event-driven max-min fair fluid flow engine.
//!
//! Flows are fluids: each flow has a path and a remaining volume, link
//! capacity is shared by progressive filling (the classic max-min fair
//! allocation), and rates change only at flow completions — a textbook
//! flow-level network model. For a set of equal-volume flows whose worst
//! link has normalized load `L`, every flow crossing that link drains at
//! `cap/L` for the whole step, so the step's transfer time equals the
//! analytic `β·m·L` — the simulator-side face of the paper's
//! concurrent-flow congestion factor.
//!
//! ## The event engine
//!
//! The seed engine re-ran the full progressive-filling solver over *all*
//! links and *all* active flows after every completion —
//! `O(completions × bottlenecks × (links + flows·hops))`. This engine is
//! event-driven instead:
//!
//! * **completion events** drive the clock: each round advances time to
//!   the earliest candidate drain. Simultaneous completions are handled
//!   deterministically with stable flow-id ordering — the active list is
//!   kept ascending, completions are collected in that order, and the
//!   per-component solver freezes flows in the same order — so results
//!   are identical on every run and at any `APS_THREADS` setting. (A
//!   *persistent* event queue would buy nothing here: bit-identity with
//!   the seed arithmetic, below, requires re-materializing every flow's
//!   remaining volume — and hence every candidate event — each round.);
//! * rates are recomputed **incrementally**: when flows finish, only the
//!   links whose user sets changed — the connected sharing component(s) of
//!   the departed flows — are re-solved. Flows in untouched components keep
//!   their cached rates and bottleneck levels. This removes the solver —
//!   the `bottlenecks × (links + flows·hops)` factor — from the per-event
//!   cost for everything the completion didn't touch.
//!
//! ## Incremental-recompute invariants
//!
//! The component-level caching is exact, not approximate, because the
//! max-min allocation decomposes over the connected components of the
//! flow/link sharing graph:
//!
//! 1. **Isolation** — a link's residual capacity is only ever reduced by
//!    flows crossing it, and those flows are by definition in the link's
//!    component. Solving a component alone therefore performs *bitwise*
//!    the same arithmetic the global solver would perform on it.
//! 2. **Restriction** — the global progressive-filling bottleneck sequence,
//!    restricted to one component, equals the component-local bottleneck
//!    sequence: picking a bottleneck in another component touches neither
//!    this component's residual capacities nor its user counts.
//! 3. **Stable order** — bottleneck links are scanned in ascending link id
//!    and flows freeze in ascending flow id, in both the global and the
//!    per-component solver, so ties break identically.
//!
//! Together these make the event engine **bit-identical** to the seed
//! from-scratch engine (kept as [`mod@reference`]): per round the engine
//! advances `t += dt` with `dt` drawn from the earliest completion event
//! (equal to the fold-min the seed computed, since `min` over finite
//! floats is order-independent) and materializes every active flow's
//! remaining volume with the same `remaining -= rate·dt` update — only
//! the *solver* work is skipped for untouched components, and skipped
//! work is exactly the work whose results are unchanged.

use crate::arena::{FluidScratch, UNUSED};

/// One flow to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Volume in bytes.
    pub bytes: f64,
    /// Link ids along the path (must be non-empty for a real transfer).
    pub path: Vec<usize>,
}

/// Max-min fair rates for the given flows over links with `link_caps`
/// capacity, by progressive filling: repeatedly find the tightest link
/// (smallest fair share among links still carrying unfrozen flows, ties to
/// the lowest link id) and freeze every flow crossing it at that fair
/// share. Returns bytes-per-second per flow, in input order.
///
/// The allocation is the unique max-min fair point: no link is
/// oversubscribed, and no flow's rate can be raised without lowering the
/// rate of a flow that is no faster (see `crates/sim/tests/maxmin.rs`).
pub fn max_min_rates(link_caps: &[f64], paths: &[&[usize]]) -> Vec<f64> {
    let f = paths.len();
    let mut rates = vec![0.0f64; f];
    let mut frozen = vec![false; f];
    let mut cap_left = link_caps.to_vec();
    let mut link_users: Vec<usize> = vec![0; link_caps.len()];
    for p in paths {
        for &l in *p {
            link_users[l] += 1;
        }
    }
    loop {
        // Find the tightest link among those still carrying unfrozen flows.
        let mut best: Option<(usize, f64)> = None;
        for (l, &users) in link_users.iter().enumerate() {
            if users > 0 {
                let fair = cap_left[l] / users as f64;
                if best.is_none_or(|(_, b)| fair < b) {
                    best = Some((l, fair));
                }
            }
        }
        let Some((bottleneck, fair)) = best else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at `fair`.
        for (i, p) in paths.iter().enumerate() {
            if !frozen[i] && p.contains(&bottleneck) {
                frozen[i] = true;
                rates[i] = fair;
                for &l in *p {
                    cap_left[l] = (cap_left[l] - fair).max(0.0);
                    link_users[l] -= 1;
                }
            }
        }
    }
    rates
}

/// Re-solves max-min progressive filling restricted to `flows` (ascending
/// flow ids forming a union of sharing components), writing the new rates
/// into `s.rates` in place. Only links used by these flows are scanned —
/// by the isolation invariant the result is bitwise what a full global
/// re-solve would assign them.
///
/// `flows` is passed separately (typically `mem::take`n out of the scratch)
/// so the scratch's own buffers stay mutably borrowable; `s.slot` entries
/// are restored to [`UNUSED`] on exit, so no O(links) reset is ever needed.
fn solve_subset(s: &mut FluidScratch, caps: &[f64], flows: &[usize]) {
    s.frozen.clear();
    s.frozen.resize(flows.len(), false);
    // Residual capacity and user count, only for links these flows use.
    // Links are scanned in ascending id via a sorted dense list so tie
    // breaking matches the global solver; `slot` maps link id → dense
    // index for O(1) lookups on the freeze path.
    if s.slot.len() < caps.len() {
        s.slot.resize(caps.len(), UNUSED);
    }
    s.links.clear();
    for &i in flows {
        for h in s.path_off[i]..s.path_off[i + 1] {
            let l = s.path_data[h];
            if s.slot[l] == UNUSED {
                s.slot[l] = 0; // mark; real indices assigned after sorting
                s.links.push(l);
            }
        }
    }
    s.links.sort_unstable();
    for (k, &l) in s.links.iter().enumerate() {
        s.slot[l] = k;
    }
    s.cap_left.clear();
    for &l in &s.links {
        s.cap_left.push(caps[l]);
    }
    s.users.clear();
    s.users.resize(s.links.len(), 0);
    for &i in flows {
        for h in s.path_off[i]..s.path_off[i + 1] {
            s.users[s.slot[s.path_data[h]]] += 1;
        }
    }
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (k, &u) in s.users.iter().enumerate() {
            if u > 0 {
                let fair = s.cap_left[k] / u as f64;
                if best.is_none_or(|(_, b)| fair < b) {
                    best = Some((k, fair));
                }
            }
        }
        let Some((bottleneck_slot, fair)) = best else {
            break;
        };
        let bottleneck = s.links[bottleneck_slot];
        for (k, &i) in flows.iter().enumerate() {
            if !s.frozen[k] && s.path_data[s.path_off[i]..s.path_off[i + 1]].contains(&bottleneck) {
                s.frozen[k] = true;
                s.rates[i] = fair;
                for h in s.path_off[i]..s.path_off[i + 1] {
                    let d = s.slot[s.path_data[h]];
                    s.cap_left[d] = (s.cap_left[d] - fair).max(0.0);
                    s.users[d] -= 1;
                }
            }
        }
    }
    // Restore the slot map's "all UNUSED" invariant for the next solve.
    for idx in 0..s.links.len() {
        let l = s.links[idx];
        s.slot[l] = UNUSED;
    }
}

/// Computes the flows whose rates may change when `s.completed` depart:
/// the transitive closure, over the surviving active set, of link sharing
/// with the departed flows, written ascending into `s.affected_list`. BFS
/// over the incrementally-maintained link→flows index — the departed flows
/// must already have been removed from the index (the closure is over
/// survivors), which `simulate_flows_scratch` does at each round boundary.
fn affected_by(s: &mut FluidScratch, num_links: usize) {
    let num_flows = s.bytes.len();
    s.link_seen.clear();
    s.link_seen.resize(num_links, false);
    s.affected.clear();
    s.affected.resize(num_flows, false);
    s.frontier.clear();
    for idx in 0..s.completed.len() {
        let i = s.completed[idx];
        for h in s.path_off[i]..s.path_off[i + 1] {
            let l = s.path_data[h];
            if !s.link_seen[l] {
                s.link_seen[l] = true;
                s.frontier.push(l);
            }
        }
    }
    while let Some(l) = s.frontier.pop() {
        for k in 0..s.flows_of_link[l].len() {
            let i = s.flows_of_link[l][k];
            if !s.affected[i] {
                s.affected[i] = true;
                for h in s.path_off[i]..s.path_off[i + 1] {
                    let l2 = s.path_data[h];
                    if !s.link_seen[l2] {
                        s.link_seen[l2] = true;
                        s.frontier.push(l2);
                    }
                }
            }
        }
    }
    s.affected_list.clear();
    for idx in 0..s.active.len() {
        let i = s.active[idx];
        if s.affected[i] {
            s.affected_list.push(i);
        }
    }
}

/// Builds the link→flows sharing index from the current active set —
/// called exactly once per simulation; afterwards the index is maintained
/// incrementally as flows complete. (The pre-arena engine rebuilt it on
/// *every completion event*; [`FluidScratch::index_builds`] pins the fix.)
fn build_link_index(s: &mut FluidScratch, num_links: usize) {
    if s.flows_of_link.len() < num_links {
        s.flows_of_link.resize_with(num_links, Vec::new);
    }
    for bucket in &mut s.flows_of_link[..num_links] {
        bucket.clear();
    }
    for idx in 0..s.active.len() {
        let i = s.active[idx];
        for h in s.path_off[i]..s.path_off[i + 1] {
            let l = s.path_data[h];
            s.flows_of_link[l].push(i);
        }
    }
    s.note_index_build();
}

/// Simulates the flows loaded in `s` (via [`FluidScratch::start`] /
/// [`FluidScratch::push_link`] / [`FluidScratch::seal_flow`] or
/// [`FluidScratch::load_specs`]) to completion, writing per-flow finish
/// times in seconds into `s.finish` (transmission only — the caller adds
/// propagation). The zero-allocation core of [`simulate_flows`]: after
/// warm-up, a call touches no heap.
///
/// Zero-byte flows and empty-path flows finish at `t = 0`. Flows only
/// depart — the per-step model releases all of a step's flows together —
/// so every rate change is triggered by a completion event. (Departures do
/// *not* make individual rates monotone: a departure elsewhere in a
/// component can speed up a neighbor that then claims more of a shared
/// link. Only the minimum rate is non-decreasing, which is why the engine
/// re-solves whole sharing components rather than patching rates locally.)
///
/// # Panics
///
/// Panics if a path references an out-of-range link or a link capacity is
/// non-positive while used.
pub fn simulate_flows_scratch(link_caps_bytes_per_s: &[f64], s: &mut FluidScratch) {
    let caps = link_caps_bytes_per_s;
    let num_flows = s.bytes.len();
    for i in 0..num_flows {
        for h in s.path_off[i]..s.path_off[i + 1] {
            let l = s.path_data[h];
            assert!(l < caps.len(), "path references unknown link {l}");
            assert!(caps[l] > 0.0, "link {l} has no capacity");
        }
    }
    s.finish.clear();
    s.finish.resize(num_flows, 0.0);
    s.rates.clear();
    s.rates.resize(num_flows, 0.0);
    s.remaining.clear();
    s.remaining.extend_from_slice(&s.bytes);
    s.active.clear();
    for i in 0..num_flows {
        if s.bytes[i] > 0.0 && s.path_off[i + 1] > s.path_off[i] {
            s.active.push(i);
        }
    }
    // The sharing index: built once here, maintained incrementally below.
    build_link_index(s, caps.len());
    // Initial allocation: one full solve (all flows are "affected"). The
    // active list is taken out and put back so the scratch stays mutably
    // borrowable — `mem::take` swaps in an unallocated empty Vec, so this
    // costs nothing on the heap.
    let all = std::mem::take(&mut s.active);
    solve_subset(s, caps, &all);
    s.active = all;

    let mut t = 0.0f64;
    // Each round retires at least one flow: ≤ F rounds.
    while !s.active.is_empty() {
        debug_assert!(
            s.active.iter().all(|&i| s.rates[i] > 0.0),
            "active flow starved"
        );
        // Time of the earliest candidate completion. (Every candidate
        // changes every round — a by-product of the seed-identical
        // materialization below — so a persistent event queue has nothing
        // to cache; the plain minimum is the whole event selection. Which
        // flow attains it is irrelevant: all flows within ε of zero at
        // `t + dt` complete together, in ascending flow id, below.)
        let mut dt = f64::INFINITY;
        for idx in 0..s.active.len() {
            let i = s.active[idx];
            dt = dt.min(s.remaining[i] / s.rates[i]);
        }
        t += dt;
        // Materialize every active flow at the event time; flows at (or
        // numerically within ε of) zero remaining complete together. The
        // survivors fill the `still` generation, which then ping-pongs
        // with `active` — no per-round Vec is ever constructed.
        s.still.clear();
        s.completed.clear();
        for idx in 0..s.active.len() {
            let i = s.active[idx];
            s.remaining[i] -= s.rates[i] * dt;
            if s.remaining[i] <= 1e-9 * s.bytes[i].max(1.0) {
                s.finish[i] = t;
                s.completed.push(i);
            } else {
                s.still.push(i);
            }
        }
        std::mem::swap(&mut s.active, &mut s.still);
        if s.active.is_empty() {
            break;
        }
        // Retire the departures from the sharing index *before* the
        // closure walk: `affected_by` must see exactly the survivors.
        for idx in 0..s.completed.len() {
            let i = s.completed[idx];
            for h in s.path_off[i]..s.path_off[i + 1] {
                let l = s.path_data[h];
                let bucket = &mut s.flows_of_link[l];
                if let Some(pos) = bucket.iter().position(|&f| f == i) {
                    bucket.swap_remove(pos);
                }
            }
        }
        // Incremental re-solve: only the sharing components the departures
        // touched; everyone else keeps their cached bottleneck rate.
        affected_by(s, caps.len());
        if !s.affected_list.is_empty() {
            let aff = std::mem::take(&mut s.affected_list);
            solve_subset(s, caps, &aff);
            s.affected_list = aff;
        }
    }
}

/// Simulates the flows to completion; returns per-flow finish times in
/// seconds (transmission only — the caller adds propagation). The
/// materialized-spec face of [`simulate_flows_scratch`] — it builds a
/// fresh scratch per call, so hot paths that care about allocation load a
/// long-lived [`FluidScratch`] instead.
///
/// # Panics
///
/// Panics if a path references an out-of-range link or a link capacity is
/// non-positive while used.
pub fn simulate_flows(link_caps_bytes_per_s: &[f64], specs: &[FlowSpec]) -> Vec<f64> {
    let mut scratch = FluidScratch::new();
    scratch.load_specs(specs);
    simulate_flows_scratch(link_caps_bytes_per_s, &mut scratch);
    scratch.finish
}

pub mod reference {
    //! The seed from-scratch engine, kept verbatim as the differential
    //! oracle: it re-runs the full progressive-filling solver over all
    //! links and all active flows after every completion. The event engine
    //! in the parent module must match it bit-for-bit (see
    //! `tests/fluid_differential.rs` at the workspace root).

    use super::{max_min_rates, FlowSpec};

    /// Seed implementation of [`super::simulate_flows`]: full max-min
    /// recompute at every completion.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range links or non-positive used capacities,
    /// exactly like the event engine.
    pub fn simulate_flows_reference(link_caps_bytes_per_s: &[f64], specs: &[FlowSpec]) -> Vec<f64> {
        for s in specs {
            for &l in &s.path {
                assert!(
                    l < link_caps_bytes_per_s.len(),
                    "path references unknown link {l}"
                );
                assert!(link_caps_bytes_per_s[l] > 0.0, "link {l} has no capacity");
            }
        }
        let mut finish = vec![0.0f64; specs.len()];
        let mut remaining: Vec<f64> = specs.iter().map(|s| s.bytes).collect();
        let mut active: Vec<usize> = (0..specs.len())
            .filter(|&i| specs[i].bytes > 0.0 && !specs[i].path.is_empty())
            .collect();
        let mut t = 0.0f64;
        while !active.is_empty() {
            let paths: Vec<&[usize]> = active.iter().map(|&i| specs[i].path.as_slice()).collect();
            let rates = max_min_rates(link_caps_bytes_per_s, &paths);
            debug_assert!(rates.iter().all(|&r| r > 0.0), "active flow starved");
            let dt = active
                .iter()
                .zip(&rates)
                .map(|(&i, &r)| remaining[i] / r)
                .fold(f64::INFINITY, f64::min);
            t += dt;
            let mut still = Vec::with_capacity(active.len());
            for (k, &i) in active.iter().enumerate() {
                remaining[i] -= rates[k] * dt;
                if remaining[i] <= 1e-9 * specs[i].bytes.max(1.0) {
                    finish[i] = t;
                } else {
                    still.push(i);
                }
            }
            active = still;
        }
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::reference::simulate_flows_reference;
    use super::*;

    #[test]
    fn single_flow_drains_at_line_rate() {
        let finish = simulate_flows(
            &[100.0],
            &[FlowSpec {
                bytes: 50.0,
                path: vec![0],
            }],
        );
        assert!((finish[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Both flows share link 0 (cap 100); flow 1 is twice as large.
        // Phase 1: both at 50 B/s until flow 0 finishes at t=1 (50 B).
        // Phase 2: flow 1 alone at 100 B/s for remaining 50 B: t=1.5.
        let finish = simulate_flows(
            &[100.0],
            &[
                FlowSpec {
                    bytes: 50.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0],
                },
            ],
        );
        assert!((finish[0] - 1.0).abs() < 1e-9);
        assert!((finish[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_flow_constrained_elsewhere() {
        // Flow A uses links 0,1; flow B uses link 1 only. Link 0 cap 10,
        // link 1 cap 100. Max-min: A is frozen by link 0 at 10; B then gets
        // the rest of link 1: 90.
        let finish = simulate_flows(
            &[10.0, 100.0],
            &[
                FlowSpec {
                    bytes: 10.0,
                    path: vec![0, 1],
                },
                FlowSpec {
                    bytes: 90.0,
                    path: vec![1],
                },
            ],
        );
        assert!((finish[0] - 1.0).abs() < 1e-9);
        assert!((finish[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_ring_load_matches_analytic_theta() {
        // 4 equal flows, each crossing 2 of 4 ring links (shift-by-2-ish):
        // every link load 2, cap c → rate c/2 each, finish = m·2/c. This is
        // exactly β·m/θ with θ = c/2 normalized.
        let c = 100.0;
        let m = 200.0;
        let specs = vec![
            FlowSpec {
                bytes: m,
                path: vec![0, 1],
            },
            FlowSpec {
                bytes: m,
                path: vec![1, 2],
            },
            FlowSpec {
                bytes: m,
                path: vec![2, 3],
            },
            FlowSpec {
                bytes: m,
                path: vec![3, 0],
            },
        ];
        let finish = simulate_flows(&[c; 4], &specs);
        for f in finish {
            assert!((f - m * 2.0 / c).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_byte_and_empty_path_flows() {
        let finish = simulate_flows(
            &[10.0],
            &[
                FlowSpec {
                    bytes: 0.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 5.0,
                    path: vec![],
                },
                FlowSpec {
                    bytes: 10.0,
                    path: vec![0],
                },
            ],
        );
        assert_eq!(finish[0], 0.0);
        assert_eq!(finish[1], 0.0);
        assert!((finish[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_empty_active_set_yields_no_rates() {
        assert!(max_min_rates(&[10.0, 20.0], &[]).is_empty());
        // Links with no users are simply never bottlenecks.
        let rates = max_min_rates(&[10.0, 20.0], &[&[1][..]]);
        assert_eq!(rates, vec![20.0]);
    }

    #[test]
    fn max_min_zero_capacity_link_starves_its_flows_only() {
        // Flow 0 crosses the dead link and is frozen at rate 0; flow 1
        // still gets all of link 1. Termination is the real property under
        // test: the dead link must not spin the progressive-filling loop.
        let rates = max_min_rates(&[0.0, 100.0], &[&[0, 1][..], &[1][..]]);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_flow_sharing_every_link_gets_the_global_bottleneck() {
        // Flow 0 crosses all three links; flows 1 and 2 each cross one.
        // Link 1 (cap 30) is the first bottleneck: both its users freeze at
        // 15. Flow 2 then takes what flow 0 left free on link 2.
        let rates = max_min_rates(&[100.0, 30.0, 40.0], &[&[0, 1, 2][..], &[1][..], &[2][..]]);
        assert!((rates[0] - 15.0).abs() < 1e-12);
        assert!((rates[1] - 15.0).abs() < 1e-12);
        assert!((rates[2] - 25.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_equal_flows_on_one_link_split_evenly() {
        let paths: Vec<&[usize]> = vec![&[0]; 4];
        let rates = max_min_rates(&[100.0], &paths);
        assert!(rates.iter().all(|&r| (r - 25.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_path_panics() {
        simulate_flows(
            &[10.0],
            &[FlowSpec {
                bytes: 1.0,
                path: vec![3],
            }],
        );
    }

    #[test]
    fn simultaneous_completions_finish_in_one_round() {
        // Two disjoint flows with identical drain times complete in the
        // same round at the same instant — the ascending-id scan makes
        // tie handling deterministic without any per-event ordering.
        let finish = simulate_flows(
            &[10.0, 10.0],
            &[
                FlowSpec {
                    bytes: 20.0,
                    path: vec![1],
                },
                FlowSpec {
                    bytes: 20.0,
                    path: vec![0],
                },
            ],
        );
        assert_eq!(finish[0].to_bits(), finish[1].to_bits());
        assert!((finish[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_components_keep_cached_rates() {
        // Flows 0,1 share link 0; flow 2 is alone on link 1. When flow 2
        // completes first nothing in component {0,1} changes; when flow 0
        // completes, flow 1 speeds up. The finish times pin all of it.
        let finish = simulate_flows(
            &[100.0, 100.0],
            &[
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 200.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 50.0,
                    path: vec![1],
                },
            ],
        );
        assert!((finish[2] - 0.5).abs() < 1e-9); // alone at 100 B/s
        assert!((finish[0] - 2.0).abs() < 1e-9); // 50 B/s until done
        assert!((finish[1] - 3.0).abs() < 1e-9); // 100 B left at full rate
    }

    #[test]
    fn transitive_sharing_is_one_component() {
        // 0 shares link0 with 1; 1 shares link1 with 2 — completing 0 must
        // re-solve 2 as well (its rate rises transitively).
        let finish = simulate_flows(
            &[90.0, 90.0],
            &[
                FlowSpec {
                    bytes: 45.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0, 1],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![1],
                },
            ],
        );
        let oracle = simulate_flows_reference(
            &[90.0, 90.0],
            &[
                FlowSpec {
                    bytes: 45.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0, 1],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![1],
                },
            ],
        );
        for (a, b) in finish.iter().zip(&oracle) {
            assert_eq!(a.to_bits(), b.to_bits(), "event {a} vs reference {b}");
        }
    }

    #[test]
    fn event_engine_matches_reference_bitwise_on_mixed_volumes() {
        // Heterogeneous volumes and overlapping ring arcs: several rounds,
        // several components merging and splitting.
        let caps = vec![100.0; 6];
        let specs: Vec<FlowSpec> = (0..9)
            .map(|i| FlowSpec {
                bytes: 10.0 + 37.0 * i as f64,
                path: (0..=(i % 4)).map(|h| (i + h) % 6).collect(),
            })
            .collect();
        let a = simulate_flows(&caps, &specs);
        let b = simulate_flows_reference(&caps, &specs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "event {x} vs reference {y}");
        }
    }

    #[test]
    fn link_index_is_built_exactly_once_per_simulation() {
        // The regression hook for the old per-completion rebuild: this
        // flow set completes in several distinct rounds (staggered
        // volumes on one shared link), yet the link→flows index must be
        // constructed once per call — completions maintain it
        // incrementally.
        let caps = vec![100.0; 3];
        let specs: Vec<FlowSpec> = (0..5)
            .map(|i| FlowSpec {
                bytes: 50.0 * (i + 1) as f64,
                path: vec![i % 3, (i + 1) % 3],
            })
            .collect();
        let mut s = FluidScratch::new();
        assert_eq!(s.index_builds(), 0);
        for round in 1..=4u64 {
            s.load_specs(&specs);
            simulate_flows_scratch(&caps, &mut s);
            assert_eq!(
                s.index_builds(),
                round,
                "one index build per simulation, even with multiple \
                 completion rounds"
            );
        }
    }

    #[test]
    fn recycled_scratch_is_bit_identical_to_fresh_scratch() {
        // Arena reuse must be invisible: running flow set B in a scratch
        // warmed by flow set A gives bitwise the same finish times as a
        // fresh scratch — stale capacity, slot maps, and index buckets
        // from A must not leak into B.
        let caps_a = vec![100.0; 6];
        let specs_a: Vec<FlowSpec> = (0..9)
            .map(|i| FlowSpec {
                bytes: 10.0 + 37.0 * i as f64,
                path: (0..=(i % 4)).map(|h| (i + h) % 6).collect(),
            })
            .collect();
        // B is smaller in every dimension (fewer links, fewer flows,
        // shorter paths) so every buffer must correctly shrink its live
        // region while keeping capacity.
        let caps_b = vec![40.0, 70.0];
        let specs_b = vec![
            FlowSpec {
                bytes: 30.0,
                path: vec![0, 1],
            },
            FlowSpec {
                bytes: 80.0,
                path: vec![1],
            },
        ];
        let mut warmed = FluidScratch::new();
        warmed.load_specs(&specs_a);
        simulate_flows_scratch(&caps_a, &mut warmed);
        warmed.load_specs(&specs_b);
        simulate_flows_scratch(&caps_b, &mut warmed);
        let fresh = simulate_flows(&caps_b, &specs_b);
        for (i, fresh_finish) in fresh.iter().enumerate() {
            assert_eq!(
                warmed.finish_of(i).to_bits(),
                fresh_finish.to_bits(),
                "recycled scratch diverged on flow {i}"
            );
        }
    }
}
