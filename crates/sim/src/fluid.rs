//! Max-min fair fluid flow engine.
//!
//! Flows are fluids: each flow has a path and a remaining volume, link
//! capacity is shared by progressive filling (the classic max-min fair
//! allocation), and rates are recomputed at every flow completion — a
//! textbook flow-level network model. For a set of equal-volume flows whose
//! worst link has normalized load `L`, every flow crossing that link drains
//! at `cap/L` for the whole step, so the step's transfer time equals the
//! analytic `β·m·L` — the simulator-side face of the paper's concurrent-flow
//! congestion factor.

/// One flow to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Volume in bytes.
    pub bytes: f64,
    /// Link ids along the path (must be non-empty for a real transfer).
    pub path: Vec<usize>,
}

/// Max-min fair rates for `active` flows over links with `cap_left`
/// capacity. Returns bytes-per-second per active flow.
fn max_min_rates(link_caps: &[f64], paths: &[&[usize]]) -> Vec<f64> {
    let f = paths.len();
    let mut rates = vec![0.0f64; f];
    let mut frozen = vec![false; f];
    let mut cap_left = link_caps.to_vec();
    let mut link_users: Vec<usize> = vec![0; link_caps.len()];
    for p in paths {
        for &l in *p {
            link_users[l] += 1;
        }
    }
    loop {
        // Find the tightest link among those still carrying unfrozen flows.
        let mut best: Option<(usize, f64)> = None;
        for (l, &users) in link_users.iter().enumerate() {
            if users > 0 {
                let fair = cap_left[l] / users as f64;
                if best.is_none_or(|(_, b)| fair < b) {
                    best = Some((l, fair));
                }
            }
        }
        let Some((bottleneck, fair)) = best else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at `fair`.
        for (i, p) in paths.iter().enumerate() {
            if !frozen[i] && p.contains(&bottleneck) {
                frozen[i] = true;
                rates[i] = fair;
                for &l in *p {
                    cap_left[l] = (cap_left[l] - fair).max(0.0);
                    link_users[l] -= 1;
                }
            }
        }
    }
    rates
}

/// Simulates the flows to completion; returns per-flow finish times in
/// seconds (transmission only — the caller adds propagation).
///
/// Zero-byte flows and empty-path flows finish at `t = 0`.
///
/// # Panics
///
/// Panics if a path references an out-of-range link or a link capacity is
/// non-positive while used.
pub fn simulate_flows(link_caps_bytes_per_s: &[f64], specs: &[FlowSpec]) -> Vec<f64> {
    for s in specs {
        for &l in &s.path {
            assert!(
                l < link_caps_bytes_per_s.len(),
                "path references unknown link {l}"
            );
            assert!(link_caps_bytes_per_s[l] > 0.0, "link {l} has no capacity");
        }
    }
    let mut finish = vec![0.0f64; specs.len()];
    let mut remaining: Vec<f64> = specs.iter().map(|s| s.bytes).collect();
    let mut active: Vec<usize> = (0..specs.len())
        .filter(|&i| specs[i].bytes > 0.0 && !specs[i].path.is_empty())
        .collect();
    let mut t = 0.0f64;
    // Each iteration retires at least one flow: ≤ F iterations.
    while !active.is_empty() {
        let paths: Vec<&[usize]> = active.iter().map(|&i| specs[i].path.as_slice()).collect();
        let rates = max_min_rates(link_caps_bytes_per_s, &paths);
        debug_assert!(rates.iter().all(|&r| r > 0.0), "active flow starved");
        // Time until the first completion.
        let dt = active
            .iter()
            .zip(&rates)
            .map(|(&i, &r)| remaining[i] / r)
            .fold(f64::INFINITY, f64::min);
        t += dt;
        let mut still = Vec::with_capacity(active.len());
        for (k, &i) in active.iter().enumerate() {
            remaining[i] -= rates[k] * dt;
            if remaining[i] <= 1e-9 * specs[i].bytes.max(1.0) {
                finish[i] = t;
            } else {
                still.push(i);
            }
        }
        active = still;
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_drains_at_line_rate() {
        let finish = simulate_flows(
            &[100.0],
            &[FlowSpec {
                bytes: 50.0,
                path: vec![0],
            }],
        );
        assert!((finish[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Both flows share link 0 (cap 100); flow 1 is twice as large.
        // Phase 1: both at 50 B/s until flow 0 finishes at t=1 (50 B).
        // Phase 2: flow 1 alone at 100 B/s for remaining 50 B: t=1.5.
        let finish = simulate_flows(
            &[100.0],
            &[
                FlowSpec {
                    bytes: 50.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0],
                },
            ],
        );
        assert!((finish[0] - 1.0).abs() < 1e-9);
        assert!((finish[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_flow_constrained_elsewhere() {
        // Flow A uses links 0,1; flow B uses link 1 only. Link 0 cap 10,
        // link 1 cap 100. Max-min: A is frozen by link 0 at 10; B then gets
        // the rest of link 1: 90.
        let finish = simulate_flows(
            &[10.0, 100.0],
            &[
                FlowSpec {
                    bytes: 10.0,
                    path: vec![0, 1],
                },
                FlowSpec {
                    bytes: 90.0,
                    path: vec![1],
                },
            ],
        );
        assert!((finish[0] - 1.0).abs() < 1e-9);
        assert!((finish[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_ring_load_matches_analytic_theta() {
        // 4 equal flows, each crossing 2 of 4 ring links (shift-by-2-ish):
        // every link load 2, cap c → rate c/2 each, finish = m·2/c. This is
        // exactly β·m/θ with θ = c/2 normalized.
        let c = 100.0;
        let m = 200.0;
        let specs = vec![
            FlowSpec {
                bytes: m,
                path: vec![0, 1],
            },
            FlowSpec {
                bytes: m,
                path: vec![1, 2],
            },
            FlowSpec {
                bytes: m,
                path: vec![2, 3],
            },
            FlowSpec {
                bytes: m,
                path: vec![3, 0],
            },
        ];
        let finish = simulate_flows(&[c; 4], &specs);
        for f in finish {
            assert!((f - m * 2.0 / c).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_byte_and_empty_path_flows() {
        let finish = simulate_flows(
            &[10.0],
            &[
                FlowSpec {
                    bytes: 0.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 5.0,
                    path: vec![],
                },
                FlowSpec {
                    bytes: 10.0,
                    path: vec![0],
                },
            ],
        );
        assert_eq!(finish[0], 0.0);
        assert_eq!(finish[1], 0.0);
        assert!((finish[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_empty_active_set_yields_no_rates() {
        assert!(max_min_rates(&[10.0, 20.0], &[]).is_empty());
        // Links with no users are simply never bottlenecks.
        let rates = max_min_rates(&[10.0, 20.0], &[&[1][..]]);
        assert_eq!(rates, vec![20.0]);
    }

    #[test]
    fn max_min_zero_capacity_link_starves_its_flows_only() {
        // Flow 0 crosses the dead link and is frozen at rate 0; flow 1
        // still gets all of link 1. Termination is the real property under
        // test: the dead link must not spin the progressive-filling loop.
        let rates = max_min_rates(&[0.0, 100.0], &[&[0, 1][..], &[1][..]]);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_flow_sharing_every_link_gets_the_global_bottleneck() {
        // Flow 0 crosses all three links; flows 1 and 2 each cross one.
        // Link 1 (cap 30) is the first bottleneck: both its users freeze at
        // 15. Flow 2 then takes what flow 0 left free on link 2.
        let rates = max_min_rates(&[100.0, 30.0, 40.0], &[&[0, 1, 2][..], &[1][..], &[2][..]]);
        assert!((rates[0] - 15.0).abs() < 1e-12);
        assert!((rates[1] - 15.0).abs() < 1e-12);
        assert!((rates[2] - 25.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_equal_flows_on_one_link_split_evenly() {
        let paths: Vec<&[usize]> = vec![&[0]; 4];
        let rates = max_min_rates(&[100.0], &paths);
        assert!(rates.iter().all(|&r| (r - 25.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_path_panics() {
        simulate_flows(
            &[10.0],
            &[FlowSpec {
                bytes: 1.0,
                path: vec![3],
            }],
        );
    }
}
