//! Event-driven max-min fair fluid flow engine.
//!
//! Flows are fluids: each flow has a path and a remaining volume, link
//! capacity is shared by progressive filling (the classic max-min fair
//! allocation), and rates change only at flow completions — a textbook
//! flow-level network model. For a set of equal-volume flows whose worst
//! link has normalized load `L`, every flow crossing that link drains at
//! `cap/L` for the whole step, so the step's transfer time equals the
//! analytic `β·m·L` — the simulator-side face of the paper's
//! concurrent-flow congestion factor.
//!
//! ## The event engine
//!
//! The seed engine re-ran the full progressive-filling solver over *all*
//! links and *all* active flows after every completion —
//! `O(completions × bottlenecks × (links + flows·hops))`. This engine is
//! event-driven instead:
//!
//! * **completion events** drive the clock: each round advances time to
//!   the earliest candidate drain. Simultaneous completions are handled
//!   deterministically with stable flow-id ordering — the active list is
//!   kept ascending, completions are collected in that order, and the
//!   per-component solver freezes flows in the same order — so results
//!   are identical on every run and at any `APS_THREADS` setting. (A
//!   *persistent* event queue would buy nothing here: bit-identity with
//!   the seed arithmetic, below, requires re-materializing every flow's
//!   remaining volume — and hence every candidate event — each round.);
//! * rates are recomputed **incrementally**: when flows finish, only the
//!   links whose user sets changed — the connected sharing component(s) of
//!   the departed flows — are re-solved. Flows in untouched components keep
//!   their cached rates and bottleneck levels. This removes the solver —
//!   the `bottlenecks × (links + flows·hops)` factor — from the per-event
//!   cost for everything the completion didn't touch.
//!
//! ## Incremental-recompute invariants
//!
//! The component-level caching is exact, not approximate, because the
//! max-min allocation decomposes over the connected components of the
//! flow/link sharing graph:
//!
//! 1. **Isolation** — a link's residual capacity is only ever reduced by
//!    flows crossing it, and those flows are by definition in the link's
//!    component. Solving a component alone therefore performs *bitwise*
//!    the same arithmetic the global solver would perform on it.
//! 2. **Restriction** — the global progressive-filling bottleneck sequence,
//!    restricted to one component, equals the component-local bottleneck
//!    sequence: picking a bottleneck in another component touches neither
//!    this component's residual capacities nor its user counts.
//! 3. **Stable order** — bottleneck links are scanned in ascending link id
//!    and flows freeze in ascending flow id, in both the global and the
//!    per-component solver, so ties break identically.
//!
//! Together these make the event engine **bit-identical** to the seed
//! from-scratch engine (kept as [`mod@reference`]): per round the engine
//! advances `t += dt` with `dt` drawn from the earliest completion event
//! (equal to the fold-min the seed computed, since `min` over finite
//! floats is order-independent) and materializes every active flow's
//! remaining volume with the same `remaining -= rate·dt` update — only
//! the *solver* work is skipped for untouched components, and skipped
//! work is exactly the work whose results are unchanged.

/// One flow to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Volume in bytes.
    pub bytes: f64,
    /// Link ids along the path (must be non-empty for a real transfer).
    pub path: Vec<usize>,
}

/// Max-min fair rates for the given flows over links with `link_caps`
/// capacity, by progressive filling: repeatedly find the tightest link
/// (smallest fair share among links still carrying unfrozen flows, ties to
/// the lowest link id) and freeze every flow crossing it at that fair
/// share. Returns bytes-per-second per flow, in input order.
///
/// The allocation is the unique max-min fair point: no link is
/// oversubscribed, and no flow's rate can be raised without lowering the
/// rate of a flow that is no faster (see `crates/sim/tests/maxmin.rs`).
pub fn max_min_rates(link_caps: &[f64], paths: &[&[usize]]) -> Vec<f64> {
    let f = paths.len();
    let mut rates = vec![0.0f64; f];
    let mut frozen = vec![false; f];
    let mut cap_left = link_caps.to_vec();
    let mut link_users: Vec<usize> = vec![0; link_caps.len()];
    for p in paths {
        for &l in *p {
            link_users[l] += 1;
        }
    }
    loop {
        // Find the tightest link among those still carrying unfrozen flows.
        let mut best: Option<(usize, f64)> = None;
        for (l, &users) in link_users.iter().enumerate() {
            if users > 0 {
                let fair = cap_left[l] / users as f64;
                if best.is_none_or(|(_, b)| fair < b) {
                    best = Some((l, fair));
                }
            }
        }
        let Some((bottleneck, fair)) = best else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at `fair`.
        for (i, p) in paths.iter().enumerate() {
            if !frozen[i] && p.contains(&bottleneck) {
                frozen[i] = true;
                rates[i] = fair;
                for &l in *p {
                    cap_left[l] = (cap_left[l] - fair).max(0.0);
                    link_users[l] -= 1;
                }
            }
        }
    }
    rates
}

/// Per-flow state of the event engine.
struct Engine<'a> {
    caps: &'a [f64],
    specs: &'a [FlowSpec],
    /// Current max-min rate per flow (stale for finished flows).
    rates: Vec<f64>,
    /// Remaining bytes per flow.
    remaining: Vec<f64>,
    /// Active flow ids, ascending.
    active: Vec<usize>,
}

impl Engine<'_> {
    /// Re-solves max-min progressive filling restricted to `flows`
    /// (ascending flow ids forming a union of sharing components), writing
    /// the new rates in place. Only links used by these flows are scanned —
    /// by the isolation invariant the result is bitwise what a full global
    /// re-solve would assign them.
    fn solve_subset(&mut self, flows: &[usize]) {
        let mut frozen = vec![false; flows.len()];
        // Residual capacity and user count, only for links these flows use.
        // Links are scanned in ascending id via a sorted dense list so tie
        // breaking matches the global solver; `slot` maps link id → dense
        // index for O(1) lookups on the freeze path.
        const UNUSED: usize = usize::MAX;
        let mut links: Vec<usize> = Vec::new();
        let mut slot = vec![UNUSED; self.caps.len()];
        for &i in flows {
            for &l in &self.specs[i].path {
                if slot[l] == UNUSED {
                    slot[l] = 0; // mark; real indices assigned after sorting
                    links.push(l);
                }
            }
        }
        links.sort_unstable();
        for (s, &l) in links.iter().enumerate() {
            slot[l] = s;
        }
        let mut cap_left: Vec<f64> = links.iter().map(|&l| self.caps[l]).collect();
        let mut users: Vec<usize> = vec![0; links.len()];
        for &i in flows {
            for &l in &self.specs[i].path {
                users[slot[l]] += 1;
            }
        }
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (s, &u) in users.iter().enumerate() {
                if u > 0 {
                    let fair = cap_left[s] / u as f64;
                    if best.is_none_or(|(_, b)| fair < b) {
                        best = Some((s, fair));
                    }
                }
            }
            let Some((bottleneck_slot, fair)) = best else {
                break;
            };
            let bottleneck = links[bottleneck_slot];
            for (k, &i) in flows.iter().enumerate() {
                if !frozen[k] && self.specs[i].path.contains(&bottleneck) {
                    frozen[k] = true;
                    self.rates[i] = fair;
                    for &l in &self.specs[i].path {
                        let s = slot[l];
                        cap_left[s] = (cap_left[s] - fair).max(0.0);
                        users[s] -= 1;
                    }
                }
            }
        }
    }

    /// The flows whose rates may change when `completed` depart: the
    /// transitive closure, over the surviving active set, of link sharing
    /// with the departed flows. Returned ascending. BFS over a link→flows
    /// adjacency, linear in the total path length of the active set.
    fn affected_by(&self, completed: &[usize]) -> Vec<usize> {
        let mut flows_of_link: Vec<Vec<usize>> = vec![Vec::new(); self.caps.len()];
        for &i in &self.active {
            for &l in &self.specs[i].path {
                flows_of_link[l].push(i);
            }
        }
        let mut link_seen = vec![false; self.caps.len()];
        let mut affected = vec![false; self.specs.len()];
        let mut frontier: Vec<usize> = Vec::new(); // links to expand
        for &i in completed {
            for &l in &self.specs[i].path {
                if !link_seen[l] {
                    link_seen[l] = true;
                    frontier.push(l);
                }
            }
        }
        while let Some(l) = frontier.pop() {
            for &i in &flows_of_link[l] {
                if !affected[i] {
                    affected[i] = true;
                    for &l2 in &self.specs[i].path {
                        if !link_seen[l2] {
                            link_seen[l2] = true;
                            frontier.push(l2);
                        }
                    }
                }
            }
        }
        self.active
            .iter()
            .copied()
            .filter(|&i| affected[i])
            .collect()
    }
}

/// Simulates the flows to completion; returns per-flow finish times in
/// seconds (transmission only — the caller adds propagation).
///
/// Zero-byte flows and empty-path flows finish at `t = 0`. Flows only
/// depart — the per-step model releases all of a step's flows together —
/// so every rate change is triggered by a completion event. (Departures do
/// *not* make individual rates monotone: a departure elsewhere in a
/// component can speed up a neighbor that then claims more of a shared
/// link. Only the minimum rate is non-decreasing, which is why the engine
/// re-solves whole sharing components rather than patching rates locally.)
///
/// # Panics
///
/// Panics if a path references an out-of-range link or a link capacity is
/// non-positive while used.
pub fn simulate_flows(link_caps_bytes_per_s: &[f64], specs: &[FlowSpec]) -> Vec<f64> {
    for s in specs {
        for &l in &s.path {
            assert!(
                l < link_caps_bytes_per_s.len(),
                "path references unknown link {l}"
            );
            assert!(link_caps_bytes_per_s[l] > 0.0, "link {l} has no capacity");
        }
    }
    let mut finish = vec![0.0f64; specs.len()];
    let active: Vec<usize> = (0..specs.len())
        .filter(|&i| specs[i].bytes > 0.0 && !specs[i].path.is_empty())
        .collect();
    let mut engine = Engine {
        caps: link_caps_bytes_per_s,
        specs,
        rates: vec![0.0f64; specs.len()],
        remaining: specs.iter().map(|s| s.bytes).collect(),
        active,
    };
    // Initial allocation: one full solve (all flows are "affected").
    let all: Vec<usize> = engine.active.clone();
    engine.solve_subset(&all);

    let mut t = 0.0f64;
    // Each round retires at least one flow: ≤ F rounds.
    while !engine.active.is_empty() {
        debug_assert!(
            engine.active.iter().all(|&i| engine.rates[i] > 0.0),
            "active flow starved"
        );
        // Time of the earliest candidate completion. (Every candidate
        // changes every round — a by-product of the seed-identical
        // materialization below — so a persistent event queue has nothing
        // to cache; the plain minimum is the whole event selection. Which
        // flow attains it is irrelevant: all flows within ε of zero at
        // `t + dt` complete together, in ascending flow id, below.)
        let dt = engine
            .active
            .iter()
            .map(|&i| engine.remaining[i] / engine.rates[i])
            .fold(f64::INFINITY, f64::min);
        t += dt;
        // Materialize every active flow at the event time; flows at (or
        // numerically within ε of) zero remaining complete together.
        let mut still = Vec::with_capacity(engine.active.len());
        let mut completed = Vec::new();
        for &i in &engine.active {
            engine.remaining[i] -= engine.rates[i] * dt;
            if engine.remaining[i] <= 1e-9 * specs[i].bytes.max(1.0) {
                finish[i] = t;
                completed.push(i);
            } else {
                still.push(i);
            }
        }
        engine.active = still;
        if engine.active.is_empty() {
            break;
        }
        // Incremental re-solve: only the sharing components the departures
        // touched; everyone else keeps their cached bottleneck rate.
        let affected = engine.affected_by(&completed);
        if !affected.is_empty() {
            engine.solve_subset(&affected);
        }
    }
    finish
}

pub mod reference {
    //! The seed from-scratch engine, kept verbatim as the differential
    //! oracle: it re-runs the full progressive-filling solver over all
    //! links and all active flows after every completion. The event engine
    //! in the parent module must match it bit-for-bit (see
    //! `tests/fluid_differential.rs` at the workspace root).

    use super::{max_min_rates, FlowSpec};

    /// Seed implementation of [`super::simulate_flows`]: full max-min
    /// recompute at every completion.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range links or non-positive used capacities,
    /// exactly like the event engine.
    pub fn simulate_flows_reference(link_caps_bytes_per_s: &[f64], specs: &[FlowSpec]) -> Vec<f64> {
        for s in specs {
            for &l in &s.path {
                assert!(
                    l < link_caps_bytes_per_s.len(),
                    "path references unknown link {l}"
                );
                assert!(link_caps_bytes_per_s[l] > 0.0, "link {l} has no capacity");
            }
        }
        let mut finish = vec![0.0f64; specs.len()];
        let mut remaining: Vec<f64> = specs.iter().map(|s| s.bytes).collect();
        let mut active: Vec<usize> = (0..specs.len())
            .filter(|&i| specs[i].bytes > 0.0 && !specs[i].path.is_empty())
            .collect();
        let mut t = 0.0f64;
        while !active.is_empty() {
            let paths: Vec<&[usize]> = active.iter().map(|&i| specs[i].path.as_slice()).collect();
            let rates = max_min_rates(link_caps_bytes_per_s, &paths);
            debug_assert!(rates.iter().all(|&r| r > 0.0), "active flow starved");
            let dt = active
                .iter()
                .zip(&rates)
                .map(|(&i, &r)| remaining[i] / r)
                .fold(f64::INFINITY, f64::min);
            t += dt;
            let mut still = Vec::with_capacity(active.len());
            for (k, &i) in active.iter().enumerate() {
                remaining[i] -= rates[k] * dt;
                if remaining[i] <= 1e-9 * specs[i].bytes.max(1.0) {
                    finish[i] = t;
                } else {
                    still.push(i);
                }
            }
            active = still;
        }
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::reference::simulate_flows_reference;
    use super::*;

    #[test]
    fn single_flow_drains_at_line_rate() {
        let finish = simulate_flows(
            &[100.0],
            &[FlowSpec {
                bytes: 50.0,
                path: vec![0],
            }],
        );
        assert!((finish[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Both flows share link 0 (cap 100); flow 1 is twice as large.
        // Phase 1: both at 50 B/s until flow 0 finishes at t=1 (50 B).
        // Phase 2: flow 1 alone at 100 B/s for remaining 50 B: t=1.5.
        let finish = simulate_flows(
            &[100.0],
            &[
                FlowSpec {
                    bytes: 50.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0],
                },
            ],
        );
        assert!((finish[0] - 1.0).abs() < 1e-9);
        assert!((finish[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_flow_constrained_elsewhere() {
        // Flow A uses links 0,1; flow B uses link 1 only. Link 0 cap 10,
        // link 1 cap 100. Max-min: A is frozen by link 0 at 10; B then gets
        // the rest of link 1: 90.
        let finish = simulate_flows(
            &[10.0, 100.0],
            &[
                FlowSpec {
                    bytes: 10.0,
                    path: vec![0, 1],
                },
                FlowSpec {
                    bytes: 90.0,
                    path: vec![1],
                },
            ],
        );
        assert!((finish[0] - 1.0).abs() < 1e-9);
        assert!((finish[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_ring_load_matches_analytic_theta() {
        // 4 equal flows, each crossing 2 of 4 ring links (shift-by-2-ish):
        // every link load 2, cap c → rate c/2 each, finish = m·2/c. This is
        // exactly β·m/θ with θ = c/2 normalized.
        let c = 100.0;
        let m = 200.0;
        let specs = vec![
            FlowSpec {
                bytes: m,
                path: vec![0, 1],
            },
            FlowSpec {
                bytes: m,
                path: vec![1, 2],
            },
            FlowSpec {
                bytes: m,
                path: vec![2, 3],
            },
            FlowSpec {
                bytes: m,
                path: vec![3, 0],
            },
        ];
        let finish = simulate_flows(&[c; 4], &specs);
        for f in finish {
            assert!((f - m * 2.0 / c).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_byte_and_empty_path_flows() {
        let finish = simulate_flows(
            &[10.0],
            &[
                FlowSpec {
                    bytes: 0.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 5.0,
                    path: vec![],
                },
                FlowSpec {
                    bytes: 10.0,
                    path: vec![0],
                },
            ],
        );
        assert_eq!(finish[0], 0.0);
        assert_eq!(finish[1], 0.0);
        assert!((finish[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_empty_active_set_yields_no_rates() {
        assert!(max_min_rates(&[10.0, 20.0], &[]).is_empty());
        // Links with no users are simply never bottlenecks.
        let rates = max_min_rates(&[10.0, 20.0], &[&[1][..]]);
        assert_eq!(rates, vec![20.0]);
    }

    #[test]
    fn max_min_zero_capacity_link_starves_its_flows_only() {
        // Flow 0 crosses the dead link and is frozen at rate 0; flow 1
        // still gets all of link 1. Termination is the real property under
        // test: the dead link must not spin the progressive-filling loop.
        let rates = max_min_rates(&[0.0, 100.0], &[&[0, 1][..], &[1][..]]);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_flow_sharing_every_link_gets_the_global_bottleneck() {
        // Flow 0 crosses all three links; flows 1 and 2 each cross one.
        // Link 1 (cap 30) is the first bottleneck: both its users freeze at
        // 15. Flow 2 then takes what flow 0 left free on link 2.
        let rates = max_min_rates(&[100.0, 30.0, 40.0], &[&[0, 1, 2][..], &[1][..], &[2][..]]);
        assert!((rates[0] - 15.0).abs() < 1e-12);
        assert!((rates[1] - 15.0).abs() < 1e-12);
        assert!((rates[2] - 25.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_equal_flows_on_one_link_split_evenly() {
        let paths: Vec<&[usize]> = vec![&[0]; 4];
        let rates = max_min_rates(&[100.0], &paths);
        assert!(rates.iter().all(|&r| (r - 25.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_path_panics() {
        simulate_flows(
            &[10.0],
            &[FlowSpec {
                bytes: 1.0,
                path: vec![3],
            }],
        );
    }

    #[test]
    fn simultaneous_completions_finish_in_one_round() {
        // Two disjoint flows with identical drain times complete in the
        // same round at the same instant — the ascending-id scan makes
        // tie handling deterministic without any per-event ordering.
        let finish = simulate_flows(
            &[10.0, 10.0],
            &[
                FlowSpec {
                    bytes: 20.0,
                    path: vec![1],
                },
                FlowSpec {
                    bytes: 20.0,
                    path: vec![0],
                },
            ],
        );
        assert_eq!(finish[0].to_bits(), finish[1].to_bits());
        assert!((finish[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_components_keep_cached_rates() {
        // Flows 0,1 share link 0; flow 2 is alone on link 1. When flow 2
        // completes first nothing in component {0,1} changes; when flow 0
        // completes, flow 1 speeds up. The finish times pin all of it.
        let finish = simulate_flows(
            &[100.0, 100.0],
            &[
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 200.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 50.0,
                    path: vec![1],
                },
            ],
        );
        assert!((finish[2] - 0.5).abs() < 1e-9); // alone at 100 B/s
        assert!((finish[0] - 2.0).abs() < 1e-9); // 50 B/s until done
        assert!((finish[1] - 3.0).abs() < 1e-9); // 100 B left at full rate
    }

    #[test]
    fn transitive_sharing_is_one_component() {
        // 0 shares link0 with 1; 1 shares link1 with 2 — completing 0 must
        // re-solve 2 as well (its rate rises transitively).
        let finish = simulate_flows(
            &[90.0, 90.0],
            &[
                FlowSpec {
                    bytes: 45.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0, 1],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![1],
                },
            ],
        );
        let oracle = simulate_flows_reference(
            &[90.0, 90.0],
            &[
                FlowSpec {
                    bytes: 45.0,
                    path: vec![0],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![0, 1],
                },
                FlowSpec {
                    bytes: 100.0,
                    path: vec![1],
                },
            ],
        );
        for (a, b) in finish.iter().zip(&oracle) {
            assert_eq!(a.to_bits(), b.to_bits(), "event {a} vs reference {b}");
        }
    }

    #[test]
    fn event_engine_matches_reference_bitwise_on_mixed_volumes() {
        // Heterogeneous volumes and overlapping ring arcs: several rounds,
        // several components merging and splitting.
        let caps = vec![100.0; 6];
        let specs: Vec<FlowSpec> = (0..9)
            .map(|i| FlowSpec {
                bytes: 10.0 + 37.0 * i as f64,
                path: (0..=(i % 4)).map(|h| (i + h) % 6).collect(),
            })
            .collect();
        let a = simulate_flows(&caps, &specs);
        let b = simulate_flows_reference(&caps, &specs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "event {x} vs reference {y}");
        }
    }
}
