//! # aps-sim — deterministic flow-level simulator for adaptive scale-up domains
//!
//! The paper's evaluation methodology (§3.4) is "a flow-level simulator that
//! implements the optimization framework". This crate is that simulator,
//! rebuilt: a deterministic discrete-event engine on an integer picosecond
//! clock that executes a collective [`aps_collectives::Schedule`] under a
//! circuit-switch schedule from `aps-core`, against a [`aps_fabric::Fabric`]
//! device model.
//!
//! Per step, the simulated timeline is:
//!
//! 1. **barrier** — GPUs synchronize (shared-memory barrier, §3.1);
//! 2. **α** — fixed step preparation latency;
//! 3. **reconfiguration** — if the switch schedule asks for a configuration
//!    different from the fabric's current one, the fabric model prices it
//!    (constant, per-port, or per-port-tuning for wavelength fabrics);
//! 4. **transfer** — one fluid flow per communicating pair, routed on the
//!    *current circuit topology* (multi-hop relaying across circuits when
//!    running on the base), sharing links by max-min fairness; each flow
//!    completes after its last byte drains plus `δ × hops` propagation;
//! 5. **compute** — optional reduction compute, optionally overlapped with
//!    the *next* step's reconfiguration (research agenda §4).
//!
//! For uniform-volume steps the max-min fluid model reproduces the
//! analytic `β·m/θ` transmission term exactly, so simulator and cost model
//! cross-validate each other (see `tests/model_vs_sim.rs` at the workspace
//! root).

//!
//! Two single-collective executors share the step engine:
//! [`exec::run_scheduled`] replays a precomputed switch schedule, and
//! [`exec::run_adaptive`] consults an [`aps_core::controller::Controller`]
//! step by step, tagging the trace with each decision's rationale
//! ([`TraceKind::Decision`]). Both have streaming faces in [`stream`]:
//! demand is pulled lazily from any [`aps_collectives::Workload`]
//! ([`stream::run_scheduled_workload`], [`stream::run_workload`]), so
//! open-ended training loops and traffic generators execute in O(1)
//! schedule memory — [`stream::run_workload_totals`] keeps even the
//! report O(1) for million-step runs. Beyond single collectives, the
//! [`tenant`] module executes several jobs sharing one fabric (disjoint
//! port partitions, arbitrated controller, per-tenant demand pulled
//! through the same workload cursors) and [`scenarios`] packages named
//! multi-tenant workload mixes — plannable under any controller via
//! [`Scenario::plan_with`] — for the bench harness.
//!
//! All of this is normally reached through the
//! `adaptive_photonics::Experiment` facade at the workspace root.

pub mod arena;
pub mod error;
pub mod exec;
pub mod fluid;
pub mod harness;
pub mod record;
pub mod report;
pub mod scenarios;
pub mod service;
pub mod stream;
pub mod tenant;
pub mod trace;

pub use arena::{FluidScratch, StepScratch};
pub use error::SimError;
pub use exec::{run_adaptive, run_scheduled, ComputeModel, RunConfig};
pub use fluid::{max_min_rates, simulate_flows, simulate_flows_scratch, FlowSpec};
pub use harness::{run_trial_batch, Trial};
pub use record::{RecordSink, StepRecord};
pub use report::{SimReport, StepReport};
pub use scenarios::Scenario;
pub use service::{
    Admission, Departure, JobOutcome, ServiceExecutor, ServiceJobSpec, ServiceSwitching,
};
pub use stream::{
    run_scheduled_workload, run_scheduled_workload_recorded, run_workload, run_workload_recorded,
    run_workload_segment, run_workload_totals, StreamCheckpoint, StreamPricing, StreamSummary,
};
pub use tenant::{execute_tenants, execute_tenants_recorded, TenantReport, TenantSpec};
pub use trace::{TraceEvent, TraceKind};

// Deprecated shims, re-exported for downstream compatibility.
#[allow(deprecated)]
pub use exec::run_collective;
#[allow(deprecated)]
pub use harness::run_trials;
#[allow(deprecated)]
pub use tenant::run_tenants;
