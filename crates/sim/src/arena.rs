//! Arena-backed per-step simulator state: the zero-allocation hot path.
//!
//! A steady-state streaming step (the `run_workload_totals` path) must not
//! touch the heap. Everything the step needs — matching pairs, link
//! capacities, router scratch, flow paths, rates, remaining volumes,
//! active sets, the max-min solver's per-component scratch and the
//! link→flows sharing index — lives in one long-lived [`StepScratch`]
//! owned by the executor and recycled across steps. Buffers are dense
//! index-based SoA (flow `i`'s path is a CSR slice, not a `Vec` per flow,
//! and there is no `Box<dyn>` anywhere per flow or per link), so a step is
//! a handful of `clear()`s plus in-place pushes into capacity that already
//! exists after warm-up.
//!
//! ## Mutability classes
//!
//! Following the `murk-arena` exemplar, every buffer here belongs to one
//! of three classes, which is what makes the recycling sound:
//!
//! * **Static** — fixed for the scratch's lifetime: the buffers
//!   themselves (their capacity only ratchets up, never shrinks), and
//!   [`FluidScratch::index_builds`], a monotone counter.
//! * **Per-step** — rebuilt from scratch each step by `clear()` + push:
//!   the pair list, capacities, the sender→link router map, and the CSR
//!   flow table ([`FluidScratch::start`] / [`FluidScratch::push_link`] /
//!   [`FluidScratch::seal_flow`]).
//! * **Per-round** — mutated incrementally *within* one fluid simulation
//!   as completion rounds retire flows: rates, remaining volumes, the
//!   ping-pong `active`/`still` generation pair (swapped each round, never
//!   reallocated), and the link→flows index (built once per simulation,
//!   then maintained by removal as flows depart — see
//!   `FluidEngine::affected_by`'s old per-completion rebuild, the bug this
//!   class exists to prevent).
//!
//! The invariant is regression-tested: a counting `#[global_allocator]`
//! test (`crates/sim/tests/zero_alloc.rs`) proves a 100k-step endless
//! `TrainingLoop` performs zero allocations per steady-state step, and the
//! differential suites pin that the arena engine is bit-identical to the
//! seed oracle.

/// Sentinel for "link not present" in dense link-indexed maps
/// ([`FluidScratch::slot`], [`StepScratch::link_of`]).
pub(crate) const UNUSED: usize = usize::MAX;

/// Scratch for one fluid simulation: the CSR flow table plus every buffer
/// the event-driven max-min engine needs. Reused across steps; see the
/// [module docs](self) for the mutability classes.
#[derive(Debug, Default)]
pub struct FluidScratch {
    // --- CSR flow table (per-step) ---
    /// Flow `i`'s path is `path_data[path_off[i]..path_off[i+1]]`.
    pub(crate) path_off: Vec<usize>,
    /// Concatenated link ids of all flow paths.
    pub(crate) path_data: Vec<usize>,
    /// Volume in bytes per flow.
    pub(crate) bytes: Vec<f64>,

    // --- engine state (per-round) ---
    /// Current max-min rate per flow (stale for finished flows).
    pub(crate) rates: Vec<f64>,
    /// Remaining bytes per flow.
    pub(crate) remaining: Vec<f64>,
    /// Finish time per flow (seconds), the simulation's output.
    pub(crate) finish: Vec<f64>,
    /// Active flow ids, ascending — one of the two ping-pong generations.
    pub(crate) active: Vec<usize>,
    /// The other generation: survivors of the current round, swapped into
    /// `active` at the round boundary.
    pub(crate) still: Vec<usize>,
    /// Flows that completed in the current round, ascending.
    pub(crate) completed: Vec<usize>,

    // --- per-component max-min solver scratch (per-round) ---
    /// Freeze flags, indexed like the solved flow subset.
    pub(crate) frozen: Vec<bool>,
    /// Dense ascending list of links the solved subset uses.
    pub(crate) links: Vec<usize>,
    /// Link id → dense index into `links`; [`UNUSED`] outside a solve.
    pub(crate) slot: Vec<usize>,
    /// Residual capacity per dense link.
    pub(crate) cap_left: Vec<f64>,
    /// Unfrozen-user count per dense link.
    pub(crate) users: Vec<usize>,

    // --- link→flows sharing index (built once per simulation, then
    // --- maintained incrementally as flows complete) ---
    /// Active flows crossing each link.
    pub(crate) flows_of_link: Vec<Vec<usize>>,
    /// BFS visited flags per link.
    pub(crate) link_seen: Vec<bool>,
    /// BFS visited flags per flow.
    pub(crate) affected: Vec<bool>,
    /// BFS frontier of links to expand.
    pub(crate) frontier: Vec<usize>,
    /// The affected-flows closure, ascending.
    pub(crate) affected_list: Vec<usize>,

    /// How many times the link→flows index was built from scratch —
    /// exactly once per simulation (static; monotone). The regression
    /// hook for the old per-completion rebuild bug.
    index_builds: u64,
}

impl FluidScratch {
    /// A fresh scratch with no capacity; every buffer warms up on first
    /// use and is recycled afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a new flow table, discarding the previous step's flows
    /// (capacity is retained).
    pub fn start(&mut self) {
        self.path_off.clear();
        self.path_off.push(0);
        self.path_data.clear();
        self.bytes.clear();
    }

    /// Appends one link to the path of the flow currently being built.
    pub fn push_link(&mut self, link: usize) {
        self.path_data.push(link);
    }

    /// Seals the flow currently being built with its volume; subsequent
    /// [`FluidScratch::push_link`] calls start the next flow's path.
    pub fn seal_flow(&mut self, bytes: f64) {
        self.bytes.push(bytes);
        self.path_off.push(self.path_data.len());
    }

    /// Number of flows currently loaded.
    pub fn num_flows(&self) -> usize {
        self.bytes.len()
    }

    /// Finish time of flow `i` in seconds, valid after a simulation ran.
    pub fn finish_of(&self, i: usize) -> f64 {
        self.finish[i]
    }

    /// Hop count of flow `i`'s path.
    pub fn path_len(&self, i: usize) -> usize {
        self.path_off[i + 1] - self.path_off[i]
    }

    /// Loads a materialized spec slice into the flow table (the
    /// compatibility bridge for the `simulate_flows(caps, specs)` entry
    /// point; the hot path builds the table in place instead).
    pub fn load_specs(&mut self, specs: &[crate::fluid::FlowSpec]) {
        self.start();
        for s in specs {
            for &l in &s.path {
                self.push_link(l);
            }
            self.seal_flow(s.bytes);
        }
    }

    /// How many times the link→flows sharing index was built from scratch
    /// since this scratch was created. The fluid engine builds it exactly
    /// once per simulation and maintains it incrementally as flows
    /// complete, so the delta across one `simulate_flows` call is 1.
    pub fn index_builds(&self) -> u64 {
        self.index_builds
    }

    /// Records one from-scratch construction of the sharing index.
    pub(crate) fn note_index_build(&mut self) {
        self.index_builds += 1;
    }
}

/// All scratch one simulated step needs: the fluid engine's buffers plus
/// the step-level routing and capacity buffers. One instance per executor
/// run, recycled every step.
#[derive(Debug, Default)]
pub struct StepScratch {
    /// The fluid engine's scratch.
    pub(crate) fluid: FluidScratch,
    /// Per-link capacities for the step's circuit topology (per-step).
    pub(crate) caps: Vec<f64>,
    /// Sender port → link id on the current circuit configuration, in
    /// `from_matching` id order (links are numbered by ascending sender);
    /// [`UNUSED`] for silent ports (per-step).
    pub(crate) link_of: Vec<usize>,
}

impl StepScratch {
    /// A fresh scratch; buffers warm up on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
