//! Open-system execution: jobs admitted, executed, and removed over
//! simulated time.
//!
//! [`crate::tenant::execute_tenants`] drains a *closed* job set — every
//! tenant is known up front and runs to completion. This module is its
//! open-system face: a [`ServiceExecutor`] holds a mutable population of
//! jobs over slot-indexed state, so a caller (the `aps-faas` engine) can
//! [`admit`](ServiceExecutor::admit) a job when it arrives, interleave
//! everyone's steps in deterministic earliest-request order, and
//! [`remove`](ServiceExecutor::remove) the job when its demand stream
//! runs dry — reclaiming its fabric ports for the next arrival.
//!
//! ## Lockstep parity
//!
//! The step engine is byte-for-byte the tenant executor's: the same
//! `execute_step` core, the same `natural_request_at` scheduler
//! instant, the same `tenant_target` overlay assembly, the same
//! per-job clock seeding. A service run whose jobs are all admitted at
//! t = 0 and never depart mid-run therefore reproduces
//! [`execute_tenants`](crate::tenant::execute_tenants) **bit-identically**
//! — per-step reports, traces, record frames, and finish times — which
//! the workspace's differential suite pins at `APS_THREADS` 1 and 4.
//!
//! ## Steady-state allocation behavior
//!
//! The executor reuses the PR 8 arenas: one [`StepScratch`] for the fluid
//! solver, one recycled scratch [`SimReport`] in totals mode
//! (`keep_reports = false`), caller-owned `pairs`/`owned` buffers, and
//! demand pulled through [`Workload::next_step_into`] into a per-job
//! [`Step`] slot that is overwritten in place. The per-step heap traffic
//! that remains is the global target [`Matching`] assembly shared with
//! the tenant path.

use crate::arena::StepScratch;
use crate::error::SimError;
use crate::exec::{execute_step, natural_request_at, RunConfig, StepInput};
use crate::record::{RecordSink, StepRecord};
use crate::report::SimReport;
use crate::stream::{validate_step, StreamSummary};
use crate::tenant::tenant_target;
use aps_collectives::{Step, Workload, WorkloadCtx};
use aps_core::{ConfigChoice, SwitchSchedule};
use aps_cost::units::Picos;
use aps_fabric::Fabric;
use aps_matrix::Matching;

/// Per-step base/matched choices for a service job: either a precomputed
/// per-step schedule (must cover the job's whole stream) or one uniform
/// choice applied to every step (the natural fit for open-ended demand).
#[derive(Debug, Clone)]
pub enum ServiceSwitching {
    /// Replay a precomputed switch schedule, one choice per step.
    Schedule(SwitchSchedule),
    /// Apply the same choice to every step of the job.
    Uniform(ConfigChoice),
}

impl ServiceSwitching {
    /// The choice for step `i`; `None` when a schedule is exhausted.
    fn choice(&self, i: usize) -> Option<ConfigChoice> {
        match self {
            Self::Schedule(s) => (i < s.len()).then(|| s.choice(i)),
            Self::Uniform(c) => Some(*c),
        }
    }
}

/// One job offered to the service: a demand stream bound to a partition
/// of the fabric's ports — the open-system analogue of
/// [`crate::tenant::TenantSpec`].
pub struct ServiceJobSpec {
    /// Job name, for reports and error tagging.
    pub name: String,
    /// Global fabric ports the job will own; local rank `i` maps to
    /// `ports[i]`. Must be disjoint from every live job's ports.
    pub ports: Vec<usize>,
    /// The job's base circuits in *local* coordinates.
    pub base_config: Matching,
    /// Lazy demand over `ports.len()` local ranks.
    pub workload: Box<dyn Workload>,
    /// Per-step base/matched choices.
    pub switching: ServiceSwitching,
}

/// Receipt for an admitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The slot the job occupies until [`ServiceExecutor::remove`].
    pub slot: usize,
    /// `false` when the workload yielded no steps at all — the job
    /// departs immediately at its start time.
    pub has_work: bool,
}

/// A job that just ran out of work (or failed): the caller should
/// [`ServiceExecutor::remove`] it at `finish_ps` to reclaim its ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// Slot of the departing job.
    pub slot: usize,
    /// When the job's last step (including compute) finished; for a
    /// failed job, the instant the failing step would have touched the
    /// fabric (its `natural_request_at`), so the departure is never
    /// earlier than the event that dispatched it — simulated clocks
    /// driven by departures stay monotone.
    pub finish_ps: Picos,
    /// `true` when the job stopped on a step error instead of finishing.
    pub failed: bool,
}

/// Final accounting for one removed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Caller-assigned job id (admission order in the faas engine).
    pub id: u64,
    /// Job name, from the spec.
    pub name: String,
    /// When the job was admitted (its clocks were seeded here).
    pub start_ps: Picos,
    /// When the job finished (equals `start_ps` for empty workloads).
    pub finish_ps: Picos,
    /// Steps executed.
    pub steps: usize,
    /// The step error that stopped the job, if any. Errors are isolated:
    /// other jobs sharing the fabric are unaffected.
    pub error: Option<SimError>,
    /// The job's full per-step report (global clock), kept only when the
    /// executor runs with `keep_reports` and the job did not fail.
    pub report: Option<SimReport>,
}

/// Slot-resident state of one live job.
struct JobState {
    id: u64,
    name: String,
    ports: Vec<usize>,
    base_config: Matching,
    workload: Box<dyn Workload>,
    switching: ServiceSwitching,
    /// The next step to execute, pulled in place via
    /// [`Workload::next_step_into`]; valid only when `has_pending`.
    pending: Step,
    has_pending: bool,
    executed: usize,
    start_ps: Picos,
    comm_end: Picos,
    gpu_free: Picos,
    report: SimReport,
    error: Option<SimError>,
}

/// The open-system step engine: a mutable population of jobs sharing one
/// fabric, executed in deterministic earliest-request order.
///
/// The executor owns *execution*; admission policy, port-partition
/// allocation, and SLO accounting live in `aps-faas` on top of this API.
pub struct ServiceExecutor {
    n: usize,
    cfg: RunConfig,
    keep_reports: bool,
    slots: Vec<Option<JobState>>,
    free_slots: Vec<usize>,
    /// `owner[p]` = slot currently owning global port `p`.
    owner: Vec<Option<usize>>,
    live: usize,
    scratch: StepScratch,
    pairs: Vec<(usize, usize)>,
    owned: Vec<bool>,
    /// Recycled per-step report for totals mode.
    fold: SimReport,
    summary: StreamSummary,
}

impl ServiceExecutor {
    /// An empty executor over an `n`-port fabric. With
    /// `keep_reports = false` (totals mode) per-step reports fold into
    /// the O(1) [`StreamSummary`] and are recycled — a million-job trace
    /// never materializes per-job state beyond the live population.
    pub fn new(n: usize, cfg: RunConfig, keep_reports: bool) -> Self {
        Self {
            n,
            cfg,
            keep_reports,
            slots: Vec::new(),
            free_slots: Vec::new(),
            owner: vec![None; n],
            live: 0,
            scratch: StepScratch::new(),
            pairs: Vec::new(),
            owned: Vec::new(),
            fold: SimReport::default(),
            summary: StreamSummary::default(),
        }
    }

    /// Fabric port count the executor was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Jobs currently resident (admitted and not yet removed).
    pub fn live_jobs(&self) -> usize {
        self.live
    }

    /// The O(1) fold of every step executed so far, across all jobs.
    /// `total_ps` is the latest communication/compute clock seen.
    pub fn stream_summary(&self) -> StreamSummary {
        self.summary
    }

    /// Admits a job: validates its shape against the fabric and the live
    /// population, claims its ports, seeds its clocks at `start_ps`, and
    /// pulls its first pending step.
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] when workload or base config spans
    /// a different rank count than the port list,
    /// [`SimError::ScheduleLengthMismatch`] when a
    /// [`ServiceSwitching::Schedule`] disagrees with an exactly-sized
    /// workload, [`SimError::BadTenantPorts`] when a port is out of range
    /// or owned by a live job, and [`SimError::BadStepVolume`] when the
    /// first pulled step is malformed. On error nothing is claimed.
    pub fn admit(
        &mut self,
        id: u64,
        mut spec: ServiceJobSpec,
        start_ps: Picos,
    ) -> Result<Admission, SimError> {
        let slot = self.free_slots.last().copied().unwrap_or(self.slots.len());
        let n_j = spec.ports.len();
        if spec.workload.n() != n_j || spec.base_config.n() != n_j {
            return Err(SimError::DimensionMismatch {
                fabric: n_j,
                collective: spec.workload.n().max(spec.base_config.n()),
            });
        }
        if let ServiceSwitching::Schedule(sw) = &spec.switching {
            let (lo, hi) = spec.workload.size_hint();
            if hi == Some(lo) && sw.len() != lo {
                return Err(SimError::ScheduleLengthMismatch {
                    expected: lo,
                    got: sw.len(),
                });
            }
        }
        for &p in &spec.ports {
            if p >= self.n || self.owner[p].is_some() {
                return Err(SimError::BadTenantPorts {
                    tenant: slot,
                    port: p,
                });
            }
        }
        // Duplicate ports within the spec itself.
        self.owned.clear();
        self.owned.resize(self.n, false);
        for &p in &spec.ports {
            if self.owned[p] {
                return Err(SimError::BadTenantPorts {
                    tenant: slot,
                    port: p,
                });
            }
            self.owned[p] = true;
        }
        let mut pending = Step::empty();
        let has_pending = spec
            .workload
            .next_step_into(&WorkloadCtx::at(0), &mut pending);
        if has_pending {
            validate_step(0, n_j, &pending)?;
        }
        // All checks passed: claim ports and take residence.
        for &p in &spec.ports {
            self.owner[p] = Some(slot);
        }
        let state = JobState {
            id,
            name: spec.name,
            ports: spec.ports,
            base_config: spec.base_config,
            workload: spec.workload,
            switching: spec.switching,
            pending,
            has_pending,
            executed: 0,
            start_ps,
            comm_end: start_ps,
            gpu_free: start_ps,
            report: SimReport::default(),
            error: None,
        };
        if slot == self.slots.len() {
            self.slots.push(Some(state));
        } else {
            self.free_slots.pop();
            self.slots[slot] = Some(state);
        }
        self.live += 1;
        Ok(Admission {
            slot,
            has_work: has_pending,
        })
    }

    /// The earliest instant any live job will next touch the fabric, and
    /// that job's slot — the same `natural_request_at` instant the
    /// tenant scheduler uses, ties broken by lowest job id (admission
    /// order). `None` when no job has runnable work.
    pub fn next_request_at(&self) -> Option<(Picos, usize)> {
        let mut best: Option<(Picos, u64, usize)> = None;
        for (slot, st) in self.slots.iter().enumerate() {
            let Some(st) = st else { continue };
            if !st.has_pending || st.error.is_some() {
                continue;
            }
            let natural = natural_request_at(
                &self.cfg,
                st.ports.len(),
                st.executed == 0,
                st.comm_end,
                st.gpu_free,
            );
            if best.is_none_or(|(at, id, _)| natural < at || (natural == at && st.id < id)) {
                best = Some((natural, st.id, slot));
            }
        }
        best.map(|(at, _, slot)| (at, slot))
    }

    /// Executes the next step of the earliest-request job (the one
    /// [`next_request_at`](Self::next_request_at) names). Returns the
    /// job's [`Departure`] when this step exhausted its demand stream or
    /// failed it, `None` otherwise (including when no job has work).
    ///
    /// Step errors are isolated exactly like the tenant executor's: the
    /// failing job departs carrying the error in its [`JobOutcome`];
    /// other jobs keep running.
    pub fn execute_next(
        &mut self,
        fabric: &mut dyn Fabric,
        sink: Option<&mut dyn RecordSink>,
    ) -> Option<Departure> {
        let (request_at, slot) = self.next_request_at()?;
        let n = self.n;
        let st = self.slots[slot].as_mut().expect("scheduled slot is live");
        let i = st.executed;
        // A failing step departs at its request instant: `gpu_free` alone
        // can predate the event that dispatched this step (the request
        // adds barrier + α), and a departure in the caller's past would
        // run its event clock backwards.
        let fail_ps = request_at.max(st.gpu_free);
        let Some(choice) = st.switching.choice(i) else {
            st.error = Some(SimError::ScheduleLengthMismatch {
                expected: i + 1,
                got: i,
            });
            st.has_pending = false;
            st.gpu_free = fail_ps;
            return Some(Departure {
                slot,
                finish_ps: fail_ps,
                failed: true,
            });
        };
        if let Err(e) = validate_step(i, st.ports.len(), &st.pending) {
            st.error = Some(e);
            st.has_pending = false;
            st.gpu_free = fail_ps;
            return Some(Departure {
                slot,
                finish_ps: fail_ps,
                failed: true,
            });
        }
        let matched = choice == ConfigChoice::Matched;
        let local_target = if matched {
            &st.pending.matching
        } else {
            &st.base_config
        };
        self.owned.clear();
        for p in 0..n {
            self.owned.push(self.owner[p] == Some(slot));
        }
        let target = tenant_target(fabric.current(), &st.ports, local_target, &self.owned);
        self.pairs.clear();
        self.pairs.extend(
            st.pending
                .matching
                .pairs()
                .map(|(s, d)| (st.ports[s], st.ports[d])),
        );
        let input = StepInput {
            step: i,
            matched,
            target: &target,
            pairs: &self.pairs,
            bytes_per_pair: st.pending.bytes_per_pair,
            barrier_n: st.ports.len(),
            first: i == 0,
        };
        let dest: &mut SimReport = if self.keep_reports {
            &mut st.report
        } else {
            self.fold.steps.clear();
            self.fold.trace.clear();
            &mut self.fold
        };
        let step_idx = dest.steps.len();
        let trace_before = dest.trace.len();
        let (comm_end, gpu_free) = match execute_step(
            fabric,
            &input,
            &self.cfg,
            true,
            st.comm_end,
            st.gpu_free,
            dest,
            &mut self.scratch,
        ) {
            Ok(clocks) => clocks,
            Err(e) => {
                st.error = Some(e);
                st.has_pending = false;
                st.gpu_free = fail_ps;
                return Some(Departure {
                    slot,
                    finish_ps: fail_ps,
                    failed: true,
                });
            }
        };
        self.summary.absorb(&dest.steps[step_idx], matched);
        self.summary.total_ps = self.summary.total_ps.max(gpu_free).max(comm_end);
        if let Some(s) = sink {
            s.record_step(&StepRecord {
                step: i,
                tenant: Some(slot),
                matched,
                report: &dest.steps[step_idx],
                events: &dest.trace[trace_before..],
                config: fabric.current(),
                busy_until: fabric.busy_until(),
            });
        }
        st.comm_end = comm_end;
        st.gpu_free = gpu_free;
        st.executed += 1;
        st.has_pending = st
            .workload
            .next_step_into(&WorkloadCtx::at(st.executed), &mut st.pending);
        if st.has_pending {
            None
        } else {
            Some(Departure {
                slot,
                finish_ps: st.gpu_free,
                failed: false,
            })
        }
    }

    /// Evicts a departed job and releases its ports for the next arrival.
    /// Returns `None` when the slot is vacant (already removed). The job
    /// must have departed — removing a job with runnable work would
    /// corrupt the interleaving, so that is a debug-mode panic.
    pub fn remove(&mut self, slot: usize) -> Option<JobOutcome> {
        let mut st = self.slots.get_mut(slot)?.take()?;
        debug_assert!(
            !st.has_pending || st.error.is_some(),
            "removed a job that still has work"
        );
        for &p in &st.ports {
            self.owner[p] = None;
        }
        self.free_slots.push(slot);
        self.live -= 1;
        let report = if self.keep_reports && st.error.is_none() {
            st.report.total_ps = st.gpu_free;
            Some(st.report)
        } else {
            None
        };
        Some(JobOutcome {
            id: st.id,
            name: st.name,
            start_ps: st.start_ps,
            finish_ps: st.gpu_free,
            steps: st.executed,
            error: st.error,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{execute_tenants, TenantSpec};
    use aps_collectives::{allreduce, ScheduleStream};
    use aps_core::SwitchSchedule;
    use aps_cost::units::MIB;
    use aps_cost::ReconfigModel;
    use aps_fabric::CircuitSwitch;

    fn tenant(name: &str, ports: Vec<usize>, bytes: f64, matched: bool) -> TenantSpec {
        let n = ports.len();
        let schedule = allreduce::halving_doubling::build(n, bytes)
            .unwrap()
            .schedule;
        let s = schedule.num_steps();
        TenantSpec {
            name: name.into(),
            ports,
            base_config: Matching::shift(n, 1).unwrap(),
            schedule,
            switch_schedule: if matched {
                SwitchSchedule::all_matched(s)
            } else {
                SwitchSchedule::all_base(s)
            },
            arrival_s: 0.0,
        }
    }

    fn spec_of(t: &TenantSpec) -> ServiceJobSpec {
        ServiceJobSpec {
            name: t.name.clone(),
            ports: t.ports.clone(),
            base_config: t.base_config.clone(),
            workload: Box::new(ScheduleStream::new(t.schedule.clone())),
            switching: ServiceSwitching::Schedule(t.switch_schedule.clone()),
        }
    }

    fn fabric_for(n: usize, tenants: &[TenantSpec]) -> CircuitSwitch {
        crate::scenarios::Scenario {
            name: "svc-test".into(),
            n,
            tenants: tenants.to_vec(),
        }
        .fabric(ReconfigModel::constant(5e-6).unwrap())
        .unwrap()
    }

    #[test]
    fn all_at_t0_matches_execute_tenants_bitwise() {
        // The lockstep differential: jobs admitted at t = 0 in tenant
        // order reproduce execute_tenants byte-for-byte.
        let tenants = vec![
            tenant("a", (0..8).collect(), MIB, true),
            tenant("b", (8..12).collect(), 4.0 * MIB, false),
            tenant("c", (12..16).collect(), 2.0 * MIB, true),
        ];
        let cfg = RunConfig::paper_defaults();
        let mut fab_t = fabric_for(16, &tenants);
        let want = execute_tenants(&mut fab_t, &tenants, &cfg).unwrap();

        let mut fab_s = fabric_for(16, &tenants);
        let mut exec = ServiceExecutor::new(16, cfg, true);
        for (i, t) in tenants.iter().enumerate() {
            exec.admit(i as u64, spec_of(t), 0).unwrap();
        }
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None, None, None];
        let mut guard = 0;
        while exec.next_request_at().is_some() {
            if let Some(dep) = exec.execute_next(&mut fab_s, None) {
                let out = exec.remove(dep.slot).unwrap();
                let id = out.id as usize;
                outcomes[id] = Some(out);
            }
            guard += 1;
            assert!(guard < 10_000, "service run did not terminate");
        }
        for (i, t) in tenants.iter().enumerate() {
            let got = outcomes[i].as_ref().unwrap();
            let want = want[i].as_ref().unwrap();
            assert_eq!(got.name, t.name);
            assert_eq!(got.start_ps, want.arrival_ps);
            assert_eq!(got.finish_ps, want.finish_ps, "job {i} finish");
            assert_eq!(got.report.as_ref().unwrap(), &want.report, "job {i} report");
        }
    }

    #[test]
    fn empty_workload_departs_at_start() {
        let t = tenant("solo", (0..4).collect(), MIB, false);
        let mut spec = spec_of(&t);
        let empty = aps_collectives::Schedule::new(
            4,
            aps_collectives::CollectiveKind::Barrier,
            "empty",
            Vec::new(),
        )
        .unwrap();
        spec.workload = Box::new(ScheduleStream::new(empty));
        spec.switching = ServiceSwitching::Uniform(ConfigChoice::Base);
        let cfg = RunConfig::paper_defaults();
        let mut exec = ServiceExecutor::new(4, cfg, false);
        let adm = exec.admit(0, spec, 123).unwrap();
        assert!(!adm.has_work, "an empty workload has no pending step");
        assert!(exec.next_request_at().is_none());
        let out = exec.remove(adm.slot).unwrap();
        assert_eq!(out.finish_ps, 123);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn port_conflicts_and_dimensions_are_rejected_without_claiming() {
        let t = tenant("a", (0..8).collect(), MIB, true);
        let cfg = RunConfig::paper_defaults();
        let mut exec = ServiceExecutor::new(8, cfg, false);
        // Out-of-range port.
        let mut bad = spec_of(&t);
        bad.ports = (4..12).collect();
        assert!(matches!(
            exec.admit(0, bad, 0),
            Err(SimError::BadTenantPorts { port: 8, .. })
        ));
        // Nothing was claimed: the valid spec still admits.
        exec.admit(1, spec_of(&t), 0).unwrap();
        // Overlap with the live job.
        assert!(matches!(
            exec.admit(2, spec_of(&t), 0),
            Err(SimError::BadTenantPorts { port: 0, .. })
        ));
        // Dimension mismatch: 8-rank workload on 4 ports.
        let mut wrong = spec_of(&t);
        wrong.ports = vec![];
        assert!(matches!(
            exec.admit(3, wrong, 0),
            Err(SimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn removal_releases_ports_for_reuse() {
        let t = tenant("a", (0..4).collect(), MIB, false);
        let cfg = RunConfig::paper_defaults();
        let mut fab = fabric_for(4, std::slice::from_ref(&t));
        let mut exec = ServiceExecutor::new(4, cfg, false);
        exec.admit(0, spec_of(&t), 0).unwrap();
        let dep = loop {
            if let Some(d) = exec.execute_next(&mut fab, None) {
                break d;
            }
        };
        assert!(!dep.failed);
        let out = exec.remove(dep.slot).unwrap();
        assert!(out.error.is_none());
        assert_eq!(out.steps, t.schedule.num_steps());
        assert!(exec.remove(dep.slot).is_none(), "second remove is vacant");
        assert_eq!(exec.live_jobs(), 0);
        // Ports are free again: the same spec admits into the same slot.
        let adm = exec.admit(1, spec_of(&t), out.finish_ps).unwrap();
        assert_eq!(adm.slot, dep.slot);
    }

    #[test]
    fn schedule_length_mismatch_is_caught_at_admission() {
        let t = tenant("a", (0..4).collect(), MIB, true);
        let mut spec = spec_of(&t);
        spec.switching = ServiceSwitching::Schedule(SwitchSchedule::all_matched(1));
        let cfg = RunConfig::paper_defaults();
        let mut exec = ServiceExecutor::new(4, cfg, false);
        assert!(matches!(
            exec.admit(0, spec, 0),
            Err(SimError::ScheduleLengthMismatch { .. })
        ));
    }
}
