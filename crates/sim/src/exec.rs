//! Collective execution on a reconfigurable fabric.
//!
//! Two single-collective entrypoints share one step engine
//! (the private `execute_step`):
//!
//! * [`run_scheduled`] executes a *precomputed* [`SwitchSchedule`] (e.g.
//!   a controller's plan, or a hand-written decision vector);
//! * [`run_adaptive`] consults a [`Controller`] step by step, so the
//!   decision rationale lands in the trace as
//!   [`TraceKind::Decision`] events — the simulator face of the paper's
//!   adaptive vision.
//!
//! Both are normally reached through `adaptive_photonics::Experiment`.

use crate::arena::{StepScratch, UNUSED};
use crate::error::SimError;
use crate::fluid::simulate_flows_scratch;
use crate::report::{SimReport, StepReport};
use crate::trace::{TraceEvent, TraceKind};
use aps_collectives::Schedule;
use aps_core::controller::{Controller, StepObservation};
use aps_core::{ConfigChoice, ReconfigAccounting, SwitchSchedule, SwitchingProblem};
use aps_cost::units::{secs_to_picos, Picos};
use aps_cost::CostParams;
use aps_fabric::{BarrierModel, Fabric, ReconfigOutcome};
use aps_matrix::Matching;

#[allow(deprecated)]
pub use crate::tenant::run_tenants;
pub use crate::tenant::{execute_tenants, TenantReport, TenantSpec};

/// Reduction compute following each step's communication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Seconds of computation per byte received in the step.
    pub per_byte_s: f64,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// α, β (bandwidth), δ.
    pub params: CostParams,
    /// Barrier latency charged at every step boundary.
    pub barrier: BarrierModel,
    /// Optional per-step compute phase.
    pub compute: Option<ComputeModel>,
    /// When `true`, the fabric reconfigures for step `i+1` *while* the GPUs
    /// compute on step `i`'s data (research agenda §4, "overlapping
    /// reconfiguration with computation"). Only the portion of the
    /// reconfiguration delay not hidden by compute remains visible.
    pub overlap_reconfig_with_compute: bool,
}

impl RunConfig {
    /// A configuration around the given cost parameters: free barrier, no
    /// compute, no overlap. The numeric constants live in [`CostParams`]
    /// alone; this constructor only adds the simulator-specific knobs.
    pub fn with_params(params: CostParams) -> Self {
        Self {
            params,
            barrier: BarrierModel::None,
            compute: None,
            overlap_reconfig_with_compute: false,
        }
    }

    /// Paper §3.4 parameters —
    /// [`RunConfig::with_params`]`(`[`CostParams::paper_defaults`]`())`.
    pub fn paper_defaults() -> Self {
        Self::with_params(CostParams::paper_defaults())
    }
}

impl From<CostParams> for RunConfig {
    fn from(params: CostParams) -> Self {
        Self::with_params(params)
    }
}

/// One step's worth of work for [`execute_step`]: the communication
/// pattern already resolved to global fabric ports.
pub(crate) struct StepInput<'a> {
    /// Step index (for traces and errors).
    pub step: usize,
    /// Whether the step runs on a matched configuration.
    pub matched: bool,
    /// Fabric configuration the step asks for.
    pub target: &'a Matching,
    /// Communicating `(src, dst)` port pairs — borrowed from the caller's
    /// reusable buffer so assembling a step allocates nothing.
    pub pairs: &'a [(usize, usize)],
    /// Bytes each pair exchanges.
    pub bytes_per_pair: f64,
    /// Nodes synchronizing at the step's barrier.
    pub barrier_n: usize,
    /// `true` for the first step of its collective (no overlap window yet).
    pub first: bool,
}

/// When the step's reconfiguration request would reach the fabric: with
/// overlap enabled, as soon as the previous step's flows drain; otherwise
/// once the control path (barrier + α) arrives. The tenant scheduler
/// orders tenants by exactly this instant, so it must stay the single
/// source of truth for both executors.
pub(crate) fn natural_request_at(
    cfg: &RunConfig,
    barrier_n: usize,
    first: bool,
    comm_end: Picos,
    gpu_free: Picos,
) -> Picos {
    let control_ready = gpu_free
        + secs_to_picos(cfg.barrier.latency_s(barrier_n))
        + secs_to_picos(cfg.params.alpha_s);
    if cfg.overlap_reconfig_with_compute && !first {
        comm_end.min(control_ready)
    } else {
        control_ready
    }
}

/// Executes one step's timeline — barrier → α → (arbitrated)
/// reconfiguration → routed max-min transfer → compute — appending to
/// `report` and returning the updated `(comm_end, gpu_free)` clocks.
///
/// A step whose target is already the fabric's current configuration never
/// touches the controller: its circuits are in place, so it neither waits
/// for nor contends with other tenants' reconfigurations. Every other
/// request depends on `arbitrate`: the multi-tenant executor passes `true`
/// and the request queues behind an in-flight reconfiguration via
/// [`Fabric::request_when_free`], recording the wait as `arbitration_ps`;
/// a collective running a fabric alone passes `false` and a busy fabric is
/// a hard [`aps_fabric::FabricError::Busy`] error, exactly as in the seed
/// executor.
#[allow(clippy::too_many_arguments)] // internal engine entry: clocks + buffers are deliberately explicit
pub(crate) fn execute_step(
    fabric: &mut dyn Fabric,
    input: &StepInput<'_>,
    cfg: &RunConfig,
    arbitrate: bool,
    comm_end: Picos,
    gpu_free: Picos,
    report: &mut SimReport,
    scratch: &mut StepScratch,
) -> Result<(Picos, Picos), SimError> {
    let bandwidth = cfg.params.bandwidth_bytes_per_sec();
    let barrier_ps = secs_to_picos(cfg.barrier.latency_s(input.barrier_n));
    let alpha_ps = secs_to_picos(cfg.params.alpha_s);

    // Control path: compute → barrier → α.
    if barrier_ps > 0 {
        report.trace.push(TraceEvent {
            at: gpu_free + barrier_ps,
            kind: TraceKind::Barrier,
        });
    }
    let control_ready = gpu_free + barrier_ps + alpha_ps;

    // Reconfiguration path: overlapped requests start as soon as the
    // previous step's flows drain (the fabric is idle while GPUs
    // compute); otherwise the fabric is asked only once control
    // arrives. A request queues behind an in-flight reconfiguration by
    // another tenant — unless the circuits are already in place, in which
    // case the controller is never involved.
    let natural_request = natural_request_at(cfg, input.barrier_n, input.first, comm_end, gpu_free);
    let (request_at, outcome) = if fabric.current() == input.target {
        let outcome = ReconfigOutcome {
            ready_at: natural_request,
            ports_changed: 0,
        };
        (natural_request, outcome)
    } else if arbitrate {
        fabric.request_when_free(input.target, natural_request)?
    } else {
        let outcome = fabric.request(input.target, natural_request)?;
        (natural_request, outcome)
    };
    let arbitration_ps = request_at - natural_request;
    if arbitration_ps > 0 {
        report.trace.push(TraceEvent {
            at: natural_request,
            kind: TraceKind::ArbitrationWait {
                granted_at: request_at,
            },
        });
    }
    if outcome.ports_changed > 0 {
        report.trace.push(TraceEvent {
            at: request_at,
            kind: TraceKind::ReconfigStart {
                ports: outcome.ports_changed,
            },
        });
        report.trace.push(TraceEvent {
            at: outcome.ready_at,
            kind: TraceKind::ReconfigDone,
        });
    }
    let flows_start = control_ready.max(outcome.ready_at);
    let reconfig_visible = flows_start - control_ready;
    report.trace.push(TraceEvent {
        at: flows_start,
        kind: TraceKind::StepStart {
            step: input.step,
            matched: input.matched,
        },
    });

    // Transfer: route every pair on the achieved circuit topology, which
    // after the request above *is* the fabric's current configuration. A
    // circuit configuration is a partial permutation — every port has at
    // most one outgoing circuit — so the unique (hence shortest) path from
    // `src` is the successor chain, and link ids follow `from_matching`'s
    // convention: links are numbered by ascending sender port. The walk
    // writes CSR paths straight into the long-lived scratch, so routing a
    // steady-state step performs zero heap allocation.
    let config = fabric.current();
    let n = config.n();
    scratch.link_of.clear();
    scratch.link_of.resize(n, UNUSED);
    let mut num_links = 0usize;
    for (s, _) in config.pairs() {
        scratch.link_of[s] = num_links;
        num_links += 1;
    }
    scratch.fluid.start();
    let mut max_hops = 0usize;
    for &(src, dst) in input.pairs {
        let mut cur = src;
        let mut hops = 0usize;
        loop {
            let Some(next) = config.dst_of(cur) else {
                return Err(SimError::Unroutable {
                    step: input.step,
                    src,
                    dst,
                });
            };
            scratch.fluid.push_link(scratch.link_of[cur]);
            hops += 1;
            cur = next;
            if cur == dst {
                break;
            }
            if hops >= n {
                // Walked a full cycle without meeting `dst`: unreachable.
                return Err(SimError::Unroutable {
                    step: input.step,
                    src,
                    dst,
                });
            }
        }
        max_hops = max_hops.max(hops);
        scratch.fluid.seal_flow(input.bytes_per_pair);
    }
    let transfer_ps = if input.pairs.is_empty() {
        0
    } else {
        report.trace.push(TraceEvent {
            at: flows_start,
            kind: TraceKind::FlowsStart {
                count: input.pairs.len(),
            },
        });
        scratch.caps.clear();
        scratch.caps.resize(num_links, bandwidth);
        simulate_flows_scratch(&scratch.caps, &mut scratch.fluid);
        let mut worst_s = 0.0f64;
        for i in 0..scratch.fluid.num_flows() {
            let total =
                scratch.fluid.finish_of(i) + cfg.params.delta_s * scratch.fluid.path_len(i) as f64;
            worst_s = worst_s.max(total);
        }
        secs_to_picos(worst_s)
    };
    let comm_end = flows_start + transfer_ps;
    report.trace.push(TraceEvent {
        at: comm_end,
        kind: TraceKind::StepDone { step: input.step },
    });

    // Compute phase on the received data.
    let compute_ps = match cfg.compute {
        Some(c) if !input.pairs.is_empty() => {
            let d = secs_to_picos(c.per_byte_s * input.bytes_per_pair);
            if d > 0 {
                report.trace.push(TraceEvent {
                    at: comm_end,
                    kind: TraceKind::ComputeStart,
                });
                report.trace.push(TraceEvent {
                    at: comm_end + d,
                    kind: TraceKind::ComputeDone,
                });
            }
            d
        }
        _ => 0,
    };
    let gpu_free = comm_end + compute_ps;

    report.steps.push(StepReport {
        barrier_ps,
        alpha_ps,
        reconfig_ps: reconfig_visible,
        transfer_ps,
        compute_ps,
        arbitration_ps,
        ports_changed: outcome.ports_changed,
        max_hops,
    });
    Ok((comm_end, gpu_free))
}

/// Executes `schedule` under a precomputed `switch_schedule` against the
/// fabric.
///
/// `base_config` is the circuit configuration realizing the base topology
/// (e.g. the unidirectional ring): steps with [`ConfigChoice::Base`] target
/// it, steps with [`ConfigChoice::Matched`] target their own matching.
///
/// For per-step online decisions see [`run_adaptive`]; for several jobs
/// sharing one fabric see [`crate::tenant::execute_tenants`].
///
/// # Errors
///
/// Fails on dimension/length mismatches, fabric refusals, or a pair that
/// cannot be routed on the achieved circuit topology (possible under fault
/// injection).
pub fn run_scheduled(
    fabric: &mut dyn Fabric,
    base_config: &Matching,
    schedule: &Schedule,
    switch_schedule: &SwitchSchedule,
    cfg: &RunConfig,
) -> Result<SimReport, SimError> {
    if switch_schedule.len() != schedule.num_steps() {
        return Err(SimError::ScheduleLengthMismatch {
            expected: schedule.num_steps(),
            got: switch_schedule.len(),
        });
    }
    // The materialized path is the trivial stream: a cursor over the
    // schedule's steps, pulled on demand by the shared streaming core.
    crate::stream::run_scheduled_workload(
        fabric,
        base_config,
        &mut schedule.stream(),
        switch_schedule,
        cfg,
    )
}

/// Executes an eq. (7) problem instance against the fabric with
/// `controller` deciding each step online, from the fabric state it
/// actually observes. Every decision is recorded in the trace as a
/// [`TraceKind::Decision`] event carrying the controller's rationale.
/// Returns the realized switch schedule alongside the report.
///
/// The problem carries each step's matching and volume, so no separate
/// collective schedule is needed — build it with
/// [`aps_core::ScaleupDomain::problem`] or
/// [`SwitchingProblem::build`].
///
/// # Errors
///
/// Fails on dimension mismatches, fabric refusals, or unroutable pairs,
/// exactly like [`run_scheduled`].
pub fn run_adaptive(
    fabric: &mut dyn Fabric,
    base_config: &Matching,
    problem: &SwitchingProblem,
    controller: &dyn Controller,
    accounting: ReconfigAccounting,
    cfg: &RunConfig,
) -> Result<(SwitchSchedule, SimReport), SimError> {
    if fabric.n() != problem.n {
        return Err(SimError::DimensionMismatch {
            fabric: fabric.n(),
            collective: problem.n,
        });
    }

    let mut report = SimReport::default();
    let mut comm_end: Picos = 0;
    let mut gpu_free: Picos = 0;
    let mut prev = ConfigChoice::Base;
    let mut choices = Vec::with_capacity(problem.num_steps());
    let mut scratch = StepScratch::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();

    for (i, step) in problem.steps.iter().enumerate() {
        let obs = StepObservation::new(problem, accounting, i, prev);
        let choice = controller.decide(&obs);
        let matched = choice == ConfigChoice::Matched;
        // Stamp the decision no later than the step's natural fabric
        // request: under reconfigure/compute overlap that request fires
        // when the previous step's flows drain (before the GPUs are
        // free), and the decision must precede its own ReconfigStart.
        let decided_at =
            natural_request_at(cfg, problem.n, i == 0, comm_end, gpu_free).min(gpu_free);
        report.trace.push(TraceEvent {
            at: decided_at,
            kind: TraceKind::Decision {
                step: i,
                matched,
                why: controller.explain(&obs, choice),
            },
        });
        pairs.clear();
        pairs.extend(step.matching.pairs());
        let input = StepInput {
            step: i,
            matched,
            target: if matched { &step.matching } else { base_config },
            pairs: &pairs,
            bytes_per_pair: step.bytes,
            barrier_n: problem.n,
            first: i == 0,
        };
        (comm_end, gpu_free) = execute_step(
            fabric,
            &input,
            cfg,
            false,
            comm_end,
            gpu_free,
            &mut report,
            &mut scratch,
        )?;
        choices.push(choice);
        prev = choice;
    }
    report.total_ps = gpu_free;
    Ok((SwitchSchedule::new(choices), report))
}

/// Executes `schedule` under `switch_schedule` against the fabric.
///
/// # Errors
///
/// See [`run_scheduled`].
#[deprecated(
    since = "0.2.0",
    note = "use `adaptive_photonics::Experiment::…::simulate()` or `run_scheduled`"
)]
pub fn run_collective(
    fabric: &mut dyn Fabric,
    base_config: &Matching,
    schedule: &Schedule,
    switch_schedule: &SwitchSchedule,
    cfg: &RunConfig,
) -> Result<SimReport, SimError> {
    run_scheduled(fabric, base_config, schedule, switch_schedule, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::{allreduce, alltoall};
    use aps_cost::units::{picos_to_secs, MIB, NANOS};
    use aps_cost::ReconfigModel;
    use aps_fabric::CircuitSwitch;

    fn ring_config(n: usize) -> Matching {
        Matching::shift(n, 1).unwrap()
    }

    fn switch(n: usize, alpha_r: f64) -> CircuitSwitch {
        CircuitSwitch::new(ring_config(n), ReconfigModel::constant(alpha_r).unwrap())
    }

    #[test]
    fn static_ring_allreduce_matches_analytic() {
        let n = 8;
        let m = 1.0 * MIB;
        let c = allreduce::ring::build(n, m).unwrap();
        let mut fab = switch(n, 10e-6);
        let cfg = RunConfig::paper_defaults();
        let ss = SwitchSchedule::all_base(c.schedule.num_steps());
        let r = run_scheduled(&mut fab, &ring_config(n), &c.schedule, &ss, &cfg).unwrap();
        // Ring steps are 1-hop on the ring config with no congestion:
        // each of the 14 steps costs α + m/n/b + δ.
        let per_step = 100.0 * NANOS + (m / n as f64) / 1e11 + 100.0 * NANOS;
        let expect = 14.0 * per_step;
        assert!(
            (r.total_s() - expect).abs() < 1e-9,
            "sim {} vs analytic {}",
            r.total_s(),
            expect
        );
        assert_eq!(r.reconfig_events(), 0);
    }

    #[test]
    fn matched_steps_pay_reconfiguration() {
        let n = 8;
        let c = allreduce::halving_doubling::build(n, MIB).unwrap();
        let mut fab = switch(n, 5e-6);
        let cfg = RunConfig::paper_defaults();
        let s = c.schedule.num_steps();
        let r = run_scheduled(
            &mut fab,
            &ring_config(n),
            &c.schedule,
            &SwitchSchedule::all_matched(s),
            &cfg,
        )
        .unwrap();
        // The fabric reconfigures physically: halving-doubling's last RS
        // step and first AG step share the xor(1) pattern, so one of the
        // s notional reconfigurations is a free no-op.
        assert_eq!(r.reconfig_events(), s - 1);
        assert!((r.reconfig_s() - (s - 1) as f64 * 5e-6).abs() < 1e-12);
        // Matched transfers are single-hop at full rate.
        for st in &r.steps {
            assert_eq!(st.max_hops, 1);
        }
    }

    #[test]
    fn congestion_shows_up_on_base() {
        // xor(4) on an 8-ring: θ = 1/4 → the transfer takes 4× the
        // dedicated-circuit time (plus wrap propagation).
        let n = 8;
        let m = 4.0 * MIB;
        let c = alltoall::xor_exchange(n, 8.0 * m).unwrap(); // bytes/pair = m
        let mut fab = switch(n, 1e-6);
        let cfg = RunConfig::paper_defaults();
        let ss = SwitchSchedule::all_base(c.schedule.num_steps());
        let r = run_scheduled(&mut fab, &ring_config(n), &c.schedule, &ss, &cfg).unwrap();
        // Step with pattern xor(4) is step index 3 (k = 4).
        let st = &r.steps[3];
        let dedicated = m / 1e11;
        let got = picos_to_secs(st.transfer_ps);
        let expect = 4.0 * dedicated + 4.0 * 100.0 * NANOS;
        assert!((got - expect).abs() < 1e-9, "got {got}, expected {expect}");
    }

    #[test]
    fn overlap_hides_reconfiguration_behind_compute() {
        let n = 8;
        let c = allreduce::halving_doubling::build(n, 64.0 * MIB).unwrap();
        let s = c.schedule.num_steps();
        // Compute long enough to hide a 5 µs reconfiguration entirely.
        let compute = ComputeModel { per_byte_s: 1e-9 };
        let base_cfg = RunConfig {
            compute: Some(compute),
            ..RunConfig::paper_defaults()
        };
        let overlap_cfg = RunConfig {
            overlap_reconfig_with_compute: true,
            ..base_cfg
        };
        let mut f1 = switch(n, 5e-6);
        let r_serial = run_scheduled(
            &mut f1,
            &ring_config(n),
            &c.schedule,
            &SwitchSchedule::all_matched(s),
            &base_cfg,
        )
        .unwrap();
        let mut f2 = switch(n, 5e-6);
        let r_overlap = run_scheduled(
            &mut f2,
            &ring_config(n),
            &c.schedule,
            &SwitchSchedule::all_matched(s),
            &overlap_cfg,
        )
        .unwrap();
        assert!(r_overlap.total_ps < r_serial.total_ps);
        // All but the first physical reconfiguration hide completely behind
        // compute (the xor(1)→xor(1) no-op between the phases is free in
        // both runs): serial pays 5 × 5 µs, overlap pays only the first.
        let physical_events = r_serial.reconfig_events();
        assert_eq!(physical_events, s - 1);
        let hidden = (physical_events - 1) as f64 * 5e-6;
        let diff = r_serial.total_s() - r_overlap.total_s();
        assert!(
            (diff - hidden).abs() < 1e-9,
            "hid {diff}, expected {hidden}"
        );
    }

    #[test]
    fn stuck_port_makes_steps_unroutable() {
        let n = 4;
        let c = alltoall::xor_exchange(n, 4096.0).unwrap();
        let mut fab = switch(n, 1e-6);
        fab.stick_port(0).unwrap();
        let cfg = RunConfig::paper_defaults();
        let s = c.schedule.num_steps();
        let err = run_scheduled(
            &mut fab,
            &ring_config(n),
            &c.schedule,
            &SwitchSchedule::all_matched(s),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Unroutable { .. }), "{err}");
    }

    #[test]
    fn barrier_latency_is_charged_per_step() {
        let n = 8;
        let c = allreduce::ring::build(n, MIB).unwrap();
        let mut free = switch(n, 1e-6);
        let mut with = switch(n, 1e-6);
        let cfg_free = RunConfig::paper_defaults();
        let cfg_barrier = RunConfig {
            barrier: BarrierModel::Constant { latency_s: 1e-6 },
            ..RunConfig::paper_defaults()
        };
        let ss = SwitchSchedule::all_base(c.schedule.num_steps());
        let a = run_scheduled(&mut free, &ring_config(n), &c.schedule, &ss, &cfg_free).unwrap();
        let b = run_scheduled(&mut with, &ring_config(n), &c.schedule, &ss, &cfg_barrier).unwrap();
        let diff = b.total_s() - a.total_s();
        let expect = c.schedule.num_steps() as f64 * 1e-6;
        assert!((diff - expect).abs() < 1e-12);
    }

    #[test]
    fn schedule_length_mismatch_rejected() {
        let n = 4;
        let c = allreduce::ring::build(n, 1e3).unwrap();
        let mut fab = switch(n, 1e-6);
        let cfg = RunConfig::paper_defaults();
        assert!(matches!(
            run_scheduled(
                &mut fab,
                &ring_config(n),
                &c.schedule,
                &SwitchSchedule::all_base(1),
                &cfg
            ),
            Err(SimError::ScheduleLengthMismatch { .. })
        ));
        let mut small = switch(8, 1e-6);
        assert!(matches!(
            run_scheduled(
                &mut small,
                &ring_config(8),
                &c.schedule,
                &SwitchSchedule::all_base(c.schedule.num_steps()),
                &cfg
            ),
            Err(SimError::DimensionMismatch { .. })
        ));
    }

    fn problem_for(n: usize, bytes: f64, alpha_r: f64) -> SwitchingProblem {
        use aps_flow::solver::{ThetaCache, ThroughputSolver};
        use aps_topology::builders;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::halving_doubling::build(n, bytes).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            aps_cost::ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn adaptive_run_matches_scheduled_run_of_the_controllers_plan() {
        use aps_core::controller::shipped;
        let n = 8;
        let bytes = 4.0 * MIB;
        let alpha_r = 5e-6;
        let problem = problem_for(n, bytes, alpha_r);
        let c = allreduce::halving_doubling::build(n, bytes).unwrap();
        let cfg = RunConfig::paper_defaults();
        let acc = aps_core::ReconfigAccounting::PaperConservative;
        for ctl in shipped() {
            let mut fab = switch(n, alpha_r);
            let (switches, adaptive) =
                run_adaptive(&mut fab, &ring_config(n), &problem, ctl, acc, &cfg).unwrap();
            // One tagged decision per step, carrying the rationale.
            let decisions: Vec<_> = adaptive
                .trace
                .iter()
                .filter_map(|e| match &e.kind {
                    TraceKind::Decision { step, matched, why } => Some((*step, *matched, why)),
                    _ => None,
                })
                .collect();
            assert_eq!(decisions.len(), problem.num_steps(), "{}", ctl.name());
            for (i, (step, matched, why)) in decisions.iter().enumerate() {
                assert_eq!(*step, i);
                assert_eq!(
                    *matched,
                    switches.choice(i) == aps_core::ConfigChoice::Matched
                );
                assert!(why.starts_with(ctl.name()), "{why}");
            }
            // Replaying the realized schedule without the controller gives
            // the identical timeline (the decision events aside).
            let mut fab2 = switch(n, alpha_r);
            let replay =
                run_scheduled(&mut fab2, &ring_config(n), &c.schedule, &switches, &cfg).unwrap();
            assert_eq!(adaptive.total_ps, replay.total_ps, "{}", ctl.name());
            assert_eq!(adaptive.steps, replay.steps, "{}", ctl.name());
            // And the plan-then-execute path realizes the same schedule
            // for every deterministic controller.
            assert_eq!(ctl.plan(&problem, acc).unwrap(), switches, "{}", ctl.name());
        }
    }

    #[test]
    fn adaptive_decisions_precede_their_reconfigurations_under_overlap() {
        // With reconfigure/compute overlap, a step's fabric request fires
        // when the previous step's flows drain — before the GPUs finish
        // computing. The Decision event must still be stamped at or
        // before the ReconfigStart it causes.
        let n = 8;
        let problem = problem_for(n, 64.0 * MIB, 5e-6);
        let cfg = RunConfig {
            compute: Some(ComputeModel { per_byte_s: 1e-9 }),
            overlap_reconfig_with_compute: true,
            ..RunConfig::paper_defaults()
        };
        let mut fab = switch(n, 5e-6);
        let (_, report) = run_adaptive(
            &mut fab,
            &ring_config(n),
            &problem,
            &aps_core::controller::AlwaysReconfigure,
            aps_core::ReconfigAccounting::PaperConservative,
            &cfg,
        )
        .unwrap();
        let mut last_decision_at = None;
        let mut saw_overlapped_reconfig = false;
        for ev in &report.trace {
            match ev.kind {
                TraceKind::Decision { .. } => last_decision_at = Some(ev.at),
                TraceKind::ReconfigStart { .. } => {
                    let decided = last_decision_at.expect("decision before reconfig");
                    assert!(
                        decided <= ev.at,
                        "decision at {decided} after its reconfiguration at {}",
                        ev.at
                    );
                    saw_overlapped_reconfig = true;
                }
                _ => {}
            }
        }
        assert!(saw_overlapped_reconfig);
    }

    #[test]
    fn adaptive_run_rejects_dimension_mismatch() {
        let problem = problem_for(8, MIB, 1e-6);
        let mut fab = switch(4, 1e-6);
        let err = run_adaptive(
            &mut fab,
            &ring_config(4),
            &problem,
            &aps_core::controller::Static,
            aps_core::ReconfigAccounting::default(),
            &RunConfig::paper_defaults(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::DimensionMismatch { .. }));
    }

    #[test]
    fn run_config_derives_from_cost_params() {
        let p = CostParams::paper_high_alpha();
        let cfg = RunConfig::from(p);
        assert_eq!(cfg.params, p);
        assert_eq!(cfg, RunConfig::with_params(p));
        assert_eq!(
            RunConfig::paper_defaults(),
            RunConfig::with_params(CostParams::paper_defaults())
        );
    }
}
