//! Streaming execution: pull demand lazily from a [`Workload`].
//!
//! The scheduled/adaptive executors in [`crate::exec`] consume
//! *materialized* demand — every step resident before the run starts.
//! This module is their lazy face: steps are pulled one at a time from
//! any [`aps_collectives::Workload`], priced on demand, decided online,
//! and executed — **O(1) schedule memory** regardless of stream length,
//! so million-step training loops and endless traffic generators run
//! without ever materializing a step vector.
//!
//! Three entrypoints:
//!
//! * [`run_scheduled_workload`] — replay a precomputed
//!   [`SwitchSchedule`] against a streamed workload (the streaming
//!   [`crate::exec::run_scheduled`], which now delegates here).
//! * [`run_workload`] — the streaming adaptive executor: a
//!   [`Controller`] decides each pulled step online from a **two-step
//!   observation window** (the current step plus the previous one, so
//!   transition charges see the real previous matching), and every
//!   decision lands in the trace exactly like
//!   [`crate::exec::run_adaptive`]'s.
//! * [`run_workload_totals`] — the same adaptive loop with O(1) *report*
//!   memory too: per-step reports and trace events fold into a
//!   [`StreamSummary`] instead of accumulating, so a ≥10⁶-step run holds
//!   constant memory end to end.
//!
//! Every entrypoint has a `_recorded` face taking an optional
//! [`RecordSink`] (see [`crate::record`]) that observes each committed
//! step — the hook deterministic replay (`aps-replay`) is built on — and
//! [`run_workload_segment`] adds [`StreamCheckpoint`] capture/resume on
//! top of the totals loop, so endless runs can be checkpointed mid-stream
//! and continued bit-identically.
//!
//! ## Windowed observations and controller parity
//!
//! Online controllers ([`aps_core::controller::Static`],
//! [`AlwaysReconfigure`](aps_core::controller::AlwaysReconfigure),
//! [`Threshold`](aps_core::controller::Threshold),
//! [`Greedy`](aps_core::controller::Greedy)) read at most the current
//! step's costs and the previous step's configuration — exactly what the
//! window carries — so their streaming decisions, rationales and
//! timelines are **bit-identical** to a materialized
//! [`crate::exec::run_adaptive`] of the same demand (pinned by the
//! workspace's differential tests). Planning controllers that look ahead
//! ([`DpPlanned`](aps_core::controller::DpPlanned)) see only the window
//! and therefore degenerate to their myopic one-step rule under
//! streaming — by construction: an unbounded stream has no suffix to
//! solve.

use crate::arena::StepScratch;
use crate::error::SimError;
use crate::exec::{execute_step, natural_request_at, RunConfig, StepInput};
use crate::record::{RecordSink, StepRecord};
use crate::report::{SimReport, StepReport};
use crate::trace::{TraceEvent, TraceKind};
use aps_collectives::{Step, Workload, WorkloadCtx};
use aps_core::controller::{Controller, StepObservation};
use aps_core::problem::config_of_topology;
use aps_core::{ConfigChoice, ReconfigAccounting, SwitchSchedule, SwitchingProblem};
use aps_cost::steptable::StepCosts;
use aps_cost::units::Picos;
use aps_cost::ReconfigModel;
use aps_fabric::{Fabric, FabricState};
use aps_flow::solver::{ThetaCache, ThroughputSolver};
use aps_topology::Topology;

/// How the streaming adaptive executors price a pulled step for the
/// controller's observation window: the reconfiguration delay model, the
/// accounting rule, and the θ solver — the same three knobs a
/// [`aps_core::ScaleupDomain`] carries for materialized planning.
#[derive(Debug, Clone, Copy)]
pub struct StreamPricing {
    /// Reconfiguration delay pricing (`α_r`) for transition charges.
    pub reconfig: ReconfigModel,
    /// How reconfiguration events are priced.
    pub accounting: ReconfigAccounting,
    /// The θ (concurrent-flow) solver for base-topology congestion.
    pub solver: ThroughputSolver,
}

impl StreamPricing {
    /// Paper defaults around the given delay model: conservative
    /// accounting, exact forced-path θ.
    pub fn new(reconfig: ReconfigModel) -> Self {
        Self {
            reconfig,
            accounting: ReconfigAccounting::PaperConservative,
            solver: ThroughputSolver::ForcedPath,
        }
    }
}

/// O(1)-memory aggregate of a streamed run — what
/// [`run_workload_totals`] returns instead of a per-step
/// [`SimReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamSummary {
    /// Steps pulled and executed.
    pub steps: usize,
    /// Steps the controller ran matched.
    pub matched_steps: usize,
    /// Steps that triggered a physical reconfiguration.
    pub reconfig_events: usize,
    /// Completion time of the whole stream.
    pub total_ps: Picos,
    /// Summed barrier waits.
    pub barrier_ps: Picos,
    /// Summed fixed step latencies.
    pub alpha_ps: Picos,
    /// Summed visible reconfiguration stalls.
    pub reconfig_ps: Picos,
    /// Summed transfer times.
    pub transfer_ps: Picos,
    /// Summed compute phases.
    pub compute_ps: Picos,
}

impl StreamSummary {
    /// Completion time in seconds.
    pub fn total_s(&self) -> f64 {
        aps_cost::units::picos_to_secs(self.total_ps)
    }

    /// Merges two summaries of runs that share one simulated clock — the
    /// monoid fold for combining per-shard (e.g. per-job) service
    /// summaries deterministically. Step counts and phase sums add;
    /// `total_ps` takes the max, because shards complete on the same
    /// global timeline. Associative, commutative, and
    /// `StreamSummary::default()` is the identity.
    #[must_use]
    pub fn merge(self, other: Self) -> Self {
        Self {
            steps: self.steps + other.steps,
            matched_steps: self.matched_steps + other.matched_steps,
            reconfig_events: self.reconfig_events + other.reconfig_events,
            total_ps: self.total_ps.max(other.total_ps),
            barrier_ps: self.barrier_ps + other.barrier_ps,
            alpha_ps: self.alpha_ps + other.alpha_ps,
            reconfig_ps: self.reconfig_ps + other.reconfig_ps,
            transfer_ps: self.transfer_ps + other.transfer_ps,
            compute_ps: self.compute_ps + other.compute_ps,
        }
    }

    /// Folds one step's report into the totals.
    pub(crate) fn absorb(&mut self, step: &StepReport, matched: bool) {
        self.steps += 1;
        self.matched_steps += usize::from(matched);
        self.reconfig_events += usize::from(step.ports_changed > 0);
        self.barrier_ps += step.barrier_ps;
        self.alpha_ps += step.alpha_ps;
        self.reconfig_ps += step.reconfig_ps;
        self.transfer_ps += step.transfer_ps;
        self.compute_ps += step.compute_ps;
    }
}

/// A point-in-time capture of the streaming adaptive executor: everything
/// [`run_workload_segment`] needs to continue a run bit-identically on a
/// fresh fabric and a rewound workload. The workload *cursor* is not
/// stored — it is re-derived through the [`Workload::reset`] replay
/// contract (reset, then pull and discard `steps_done` steps), which is
/// exactly why that contract demands bit-identical replays.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    /// Steps executed before the capture; the resumed run starts at this
    /// stream index.
    pub steps_done: usize,
    /// The configuration choice of the last executed step (seeds the next
    /// step's transition charge).
    pub prev: ConfigChoice,
    /// The communication clock: when the last step's flows drained.
    pub comm_end: Picos,
    /// The compute clock: when the GPUs last freed.
    pub gpu_free: Picos,
    /// Totals accumulated so far; the resumed segment keeps adding to
    /// them, so the final summary covers the whole stream.
    pub summary: StreamSummary,
    /// The fabric's mutable device state at capture time.
    pub fabric: FabricState,
}

/// Rejects malformed streamed steps (workloads are trusted streams, not
/// validated schedules).
pub(crate) fn validate_step(i: usize, n: usize, step: &Step) -> Result<(), SimError> {
    if step.matching.n() != n {
        return Err(SimError::DimensionMismatch {
            fabric: n,
            collective: step.matching.n(),
        });
    }
    if !step.bytes_per_pair.is_finite() || step.bytes_per_pair < 0.0 {
        return Err(SimError::BadStepVolume {
            step: i,
            bytes: step.bytes_per_pair,
        });
    }
    Ok(())
}

/// Executes a streamed workload under a precomputed `switch_schedule` —
/// the lazy [`crate::exec::run_scheduled`]. The workload must yield
/// exactly `switch_schedule.len()` steps.
///
/// # Errors
///
/// Fails on dimension mismatches (fabric vs workload, or a malformed
/// streamed step), a stream length that disagrees with the switch
/// schedule, fabric refusals, or unroutable pairs.
pub fn run_scheduled_workload(
    fabric: &mut dyn Fabric,
    base_config: &aps_matrix::Matching,
    workload: &mut dyn Workload,
    switch_schedule: &SwitchSchedule,
    cfg: &RunConfig,
) -> Result<SimReport, SimError> {
    run_scheduled_workload_recorded(fabric, base_config, workload, switch_schedule, cfg, None)
}

/// [`run_scheduled_workload`] with an optional [`RecordSink`] observing
/// every committed step (decision, timing, trace slice, fabric state).
/// `None` records nothing and costs nothing — the unrecorded entrypoint
/// delegates here.
///
/// # Errors
///
/// See [`run_scheduled_workload`].
pub fn run_scheduled_workload_recorded(
    fabric: &mut dyn Fabric,
    base_config: &aps_matrix::Matching,
    workload: &mut dyn Workload,
    switch_schedule: &SwitchSchedule,
    cfg: &RunConfig,
    mut sink: Option<&mut dyn RecordSink>,
) -> Result<SimReport, SimError> {
    let n = workload.n();
    if fabric.n() != n {
        return Err(SimError::DimensionMismatch {
            fabric: fabric.n(),
            collective: n,
        });
    }

    let mut report = SimReport::default();
    let mut comm_end: Picos = 0;
    let mut gpu_free: Picos = 0;
    let mut i = 0usize;
    let mut step = Step::empty();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut scratch = StepScratch::new();
    while workload.next_step_into(&WorkloadCtx::at(i), &mut step) {
        if i >= switch_schedule.len() {
            return Err(SimError::ScheduleLengthMismatch {
                expected: i + 1,
                got: switch_schedule.len(),
            });
        }
        validate_step(i, n, &step)?;
        let matched = switch_schedule.choice(i) == ConfigChoice::Matched;
        pairs.clear();
        pairs.extend(step.matching.pairs());
        let input = StepInput {
            step: i,
            matched,
            target: if matched { &step.matching } else { base_config },
            pairs: &pairs,
            bytes_per_pair: step.bytes_per_pair,
            barrier_n: n,
            first: i == 0,
        };
        let trace_before = report.trace.len();
        let step_idx = report.steps.len();
        (comm_end, gpu_free) = execute_step(
            fabric,
            &input,
            cfg,
            false,
            comm_end,
            gpu_free,
            &mut report,
            &mut scratch,
        )?;
        if let Some(s) = sink.as_deref_mut() {
            s.record_step(&StepRecord {
                step: i,
                tenant: None,
                matched,
                report: &report.steps[step_idx],
                events: &report.trace[trace_before..],
                config: fabric.current(),
                busy_until: fabric.busy_until(),
            });
        }
        i += 1;
    }
    if i != switch_schedule.len() {
        return Err(SimError::ScheduleLengthMismatch {
            expected: i,
            got: switch_schedule.len(),
        });
    }
    report.total_ps = gpu_free;
    Ok(report)
}

/// The per-step state the streaming adaptive executors thread through
/// the pull loop: the two-step observation window, the θ memo, and the
/// simulation clocks.
struct AdaptiveStream<'a> {
    base: &'a Topology,
    cache: ThetaCache,
    /// The observation window; also the single owner of the base circuit
    /// configuration (`window.base_config`, always `Some` here — the old
    /// duplicate field cloned the matching a second time for nothing).
    window: SwitchingProblem,
    prev: ConfigChoice,
    comm_end: Picos,
    gpu_free: Picos,
    /// Persistent pair buffer, refilled per step (zero-alloc hot path).
    pairs: Vec<(usize, usize)>,
    /// Arena-backed per-step simulator state, recycled every step.
    scratch: StepScratch,
}

impl<'a> AdaptiveStream<'a> {
    fn new(
        fabric: &dyn Fabric,
        base: &'a Topology,
        workload: &dyn Workload,
        pricing: &StreamPricing,
        cfg: &RunConfig,
    ) -> Result<Self, SimError> {
        let n = base.n();
        if fabric.n() != n || workload.n() != n {
            return Err(SimError::DimensionMismatch {
                fabric: fabric.n(),
                collective: if workload.n() != n { workload.n() } else { n },
            });
        }
        let base_config = config_of_topology(base).ok_or(SimError::BaseNotACircuit)?;
        let window = SwitchingProblem {
            n,
            params: cfg.params,
            reconfig: pricing.reconfig,
            base_config: Some(base_config),
            steps: Vec::with_capacity(2),
        };
        Ok(Self {
            base,
            cache: ThetaCache::new(base, pricing.solver),
            window,
            prev: ConfigChoice::Base,
            comm_end: 0,
            gpu_free: 0,
            pairs: Vec::new(),
            scratch: StepScratch::new(),
        })
    }

    /// Prices the pulled step, slides the window, and lets the
    /// controller decide; returns the choice and its observation-window
    /// index.
    fn observe(
        &mut self,
        i: usize,
        step: &Step,
        controller: &dyn Controller,
        accounting: ReconfigAccounting,
    ) -> Result<(ConfigChoice, usize), SimError> {
        validate_step(i, self.window.n, step)?;
        let t = self
            .cache
            .get(self.base, &step.matching)
            .map_err(|source| SimError::Pricing { step: i, source })?;
        // Two-slot sliding window: once warm, recycle the oldest slot
        // in place (`clone_from` reuses the matching's buffer) instead of
        // `remove(0)` + pushing a freshly-cloned `StepCosts` every step.
        if self.window.steps.len() < 2 {
            self.window.steps.push(StepCosts {
                matching: step.matching.clone(),
                bytes: step.bytes_per_pair,
                theta_base: t.theta,
                ell_base: t.max_hops,
            });
        } else {
            self.window.steps.swap(0, 1);
            let slot = &mut self.window.steps[1];
            slot.matching.clone_from(&step.matching);
            slot.bytes = step.bytes_per_pair;
            slot.theta_base = t.theta;
            slot.ell_base = t.max_hops;
        }
        let wi = self.window.steps.len() - 1;
        let obs = StepObservation::new(&self.window, accounting, wi, self.prev).at_stream_step(i);
        Ok((controller.decide(&obs), wi))
    }

    /// Executes the decided step, advancing the clocks.
    fn execute(
        &mut self,
        fabric: &mut dyn Fabric,
        i: usize,
        step: &Step,
        matched: bool,
        cfg: &RunConfig,
        report: &mut SimReport,
    ) -> Result<(), SimError> {
        self.pairs.clear();
        self.pairs.extend(step.matching.pairs());
        let target = if matched {
            &step.matching
        } else {
            // `new` always seeds the window with the base circuit; a
            // missing one is a construction bug surfaced as a typed error.
            self.window
                .base_config
                .as_ref()
                .ok_or(SimError::BaseNotACircuit)?
        };
        let input = StepInput {
            step: i,
            matched,
            target,
            pairs: &self.pairs,
            bytes_per_pair: step.bytes_per_pair,
            barrier_n: self.window.n,
            first: i == 0,
        };
        (self.comm_end, self.gpu_free) = execute_step(
            fabric,
            &input,
            cfg,
            false,
            self.comm_end,
            self.gpu_free,
            report,
            &mut self.scratch,
        )?;
        self.prev = if matched {
            ConfigChoice::Matched
        } else {
            ConfigChoice::Base
        };
        Ok(())
    }

    /// Rewinds the workload and fast-forwards it past the checkpoint's
    /// executed steps (the [`Workload::reset`] replay contract), repricing
    /// the last consumed step so the resumed step's transition charge sees
    /// the true previous matching in the observation window.
    fn restore(
        &mut self,
        checkpoint: &StreamCheckpoint,
        workload: &mut dyn Workload,
    ) -> Result<(), SimError> {
        workload.reset();
        let mut step = Step::empty();
        let mut any = false;
        for j in 0..checkpoint.steps_done {
            if !workload.next_step_into(&WorkloadCtx::at(j), &mut step) {
                // The stream replayed shorter than the checkpoint claims —
                // the reset contract was violated (or the checkpoint
                // belongs to a different workload).
                return Err(SimError::ScheduleLengthMismatch {
                    expected: checkpoint.steps_done,
                    got: j,
                });
            }
            any = true;
        }
        if any {
            let i = checkpoint.steps_done - 1;
            validate_step(i, self.window.n, &step)?;
            let t = self
                .cache
                .get(self.base, &step.matching)
                .map_err(|source| SimError::Pricing { step: i, source })?;
            self.window.steps.push(StepCosts {
                matching: step.matching.clone(),
                bytes: step.bytes_per_pair,
                theta_base: t.theta,
                ell_base: t.max_hops,
            });
        }
        self.prev = checkpoint.prev;
        self.comm_end = checkpoint.comm_end;
        self.gpu_free = checkpoint.gpu_free;
        Ok(())
    }
}

/// Executes a streamed workload with `controller` deciding each pulled
/// step online — the lazy [`crate::exec::run_adaptive`]. Decisions are
/// tagged in the trace with the controller's rationale, exactly like the
/// materialized executor; see the [module docs](self) for the
/// observation-window semantics. The workload must be finite (the run
/// returns when the stream exhausts); use [`run_workload_totals`] with a
/// step budget for unbounded streams.
///
/// # Errors
///
/// Fails on dimension mismatches, a base topology that is not a circuit
/// configuration, θ pricing failures, malformed streamed steps, fabric
/// refusals, or unroutable pairs.
pub fn run_workload(
    fabric: &mut dyn Fabric,
    base: &Topology,
    workload: &mut dyn Workload,
    controller: &dyn Controller,
    pricing: StreamPricing,
    cfg: &RunConfig,
) -> Result<(SwitchSchedule, SimReport), SimError> {
    run_workload_recorded(fabric, base, workload, controller, pricing, cfg, None)
}

/// [`run_workload`] with an optional [`RecordSink`] observing every
/// committed step. `None` records nothing and costs nothing — the
/// unrecorded entrypoint delegates here.
///
/// # Errors
///
/// See [`run_workload`].
pub fn run_workload_recorded(
    fabric: &mut dyn Fabric,
    base: &Topology,
    workload: &mut dyn Workload,
    controller: &dyn Controller,
    pricing: StreamPricing,
    cfg: &RunConfig,
    sink: Option<&mut dyn RecordSink>,
) -> Result<(SwitchSchedule, SimReport), SimError> {
    let mut report = SimReport::default();
    let (_, _, choices) = run_stream_core(
        fabric,
        base,
        workload,
        controller,
        pricing,
        cfg,
        None,
        usize::MAX,
        Some(&mut report),
        sink,
    )?;
    Ok((SwitchSchedule::new(choices), report))
}

/// The one streaming adaptive loop behind [`run_workload`],
/// [`run_workload_totals`] and [`run_workload_segment`]: pull → observe →
/// decide → execute, folding every step into a [`StreamSummary`] and
/// optionally accumulating a full report (`full`) and/or feeding a
/// [`RecordSink`]. The per-step decision trace event is synthesized
/// whenever either consumer is present, so records are bit-identical
/// regardless of which entrypoint produced them.
#[allow(clippy::too_many_arguments)]
fn run_stream_core(
    fabric: &mut dyn Fabric,
    base: &Topology,
    workload: &mut dyn Workload,
    controller: &dyn Controller,
    pricing: StreamPricing,
    cfg: &RunConfig,
    resume: Option<&StreamCheckpoint>,
    max_steps: usize,
    mut full: Option<&mut SimReport>,
    mut sink: Option<&mut dyn RecordSink>,
) -> Result<(StreamSummary, StreamCheckpoint, Vec<ConfigChoice>), SimError> {
    let mut stream = AdaptiveStream::new(fabric, base, workload, &pricing, cfg)?;
    let mut summary = StreamSummary::default();
    let mut i = 0usize;
    if let Some(cp) = resume {
        fabric.load_state(&cp.fabric)?;
        stream.restore(cp, workload)?;
        summary = cp.summary;
        i = cp.steps_done;
    }
    let mut choices = Vec::new();
    if full.is_some() {
        choices.reserve(workload.size_hint().0);
    }
    let mut scratch = SimReport::default();
    let mut step = Step::empty();
    while i < max_steps {
        if !workload.next_step_into(&WorkloadCtx::at(i), &mut step) {
            break;
        }
        let (choice, wi) = stream.observe(i, &step, controller, pricing.accounting)?;
        let matched = choice == ConfigChoice::Matched;
        if full.is_some() || sink.is_some() {
            // Stamp the decision no later than the step's natural fabric
            // request, mirroring `run_adaptive` (the window observation is
            // rebuilt only for the rationale string).
            let decided_at = natural_request_at(
                cfg,
                stream.window.n,
                i == 0,
                stream.comm_end,
                stream.gpu_free,
            )
            .min(stream.gpu_free);
            let why = controller.explain(
                &StepObservation::new(&stream.window, pricing.accounting, wi, stream.prev)
                    .at_stream_step(i),
                choice,
            );
            scratch.trace.push(TraceEvent {
                at: decided_at,
                kind: TraceKind::Decision {
                    step: i,
                    matched,
                    why,
                },
            });
        }
        stream.execute(fabric, i, &step, matched, cfg, &mut scratch)?;
        summary.absorb(&scratch.steps[0], matched);
        if let Some(s) = sink.as_deref_mut() {
            s.record_step(&StepRecord {
                step: i,
                tenant: None,
                matched,
                report: &scratch.steps[0],
                events: &scratch.trace,
                config: fabric.current(),
                busy_until: fabric.busy_until(),
            });
        }
        if let Some(r) = full.as_deref_mut() {
            r.steps.push(scratch.steps[0]);
            r.trace.append(&mut scratch.trace);
            choices.push(choice);
        }
        scratch.steps.clear();
        scratch.trace.clear();
        i += 1;
    }
    summary.total_ps = stream.gpu_free;
    if let Some(r) = full {
        r.total_ps = stream.gpu_free;
    }
    let checkpoint = StreamCheckpoint {
        steps_done: i,
        prev: stream.prev,
        comm_end: stream.comm_end,
        gpu_free: stream.gpu_free,
        summary,
        fabric: fabric.save_state(),
    };
    Ok((summary, checkpoint, choices))
}

/// [`run_workload`] with O(1) report memory: per-step timing folds into
/// a [`StreamSummary`] and no trace is kept, so arbitrarily long (even
/// endless) streams run in constant memory. At most `max_steps` steps
/// are pulled — the stream's own exhaustion ends the run earlier.
///
/// # Errors
///
/// See [`run_workload`].
pub fn run_workload_totals(
    fabric: &mut dyn Fabric,
    base: &Topology,
    workload: &mut dyn Workload,
    controller: &dyn Controller,
    pricing: StreamPricing,
    cfg: &RunConfig,
    max_steps: usize,
) -> Result<StreamSummary, SimError> {
    run_stream_core(
        fabric, base, workload, controller, pricing, cfg, None, max_steps, None, None,
    )
    .map(|(summary, _, _)| summary)
}

/// [`run_workload_totals`] as a *resumable segment*: optionally restores a
/// [`StreamCheckpoint`] (rewinding the workload through its reset-replay
/// contract and restoring the fabric state), executes steps
/// `[checkpoint.steps_done, max_steps)` — `max_steps` is the **absolute**
/// stream index bound, not a per-segment budget — and returns the
/// cumulative summary together with the checkpoint at exit, so a
/// million-step endless stream can be checkpointed mid-run and continued
/// bit-identically. An optional [`RecordSink`] observes the segment's
/// steps exactly as [`run_workload_recorded`] would.
///
/// # Errors
///
/// See [`run_workload`]; additionally fails when the rewound stream
/// replays shorter than the checkpoint claims, or the fabric rejects the
/// checkpointed state (dimension mismatch).
#[allow(clippy::too_many_arguments)]
pub fn run_workload_segment(
    fabric: &mut dyn Fabric,
    base: &Topology,
    workload: &mut dyn Workload,
    controller: &dyn Controller,
    pricing: StreamPricing,
    cfg: &RunConfig,
    resume: Option<&StreamCheckpoint>,
    max_steps: usize,
    sink: Option<&mut dyn RecordSink>,
) -> Result<(StreamSummary, StreamCheckpoint), SimError> {
    run_stream_core(
        fabric, base, workload, controller, pricing, cfg, resume, max_steps, None, sink,
    )
    .map(|(summary, checkpoint, _)| (summary, checkpoint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_adaptive, run_scheduled};
    use aps_collectives::{allreduce, alltoall};
    use aps_core::controller::{AlwaysReconfigure, DpPlanned, Greedy, Static, Threshold};
    use aps_cost::units::MIB;
    use aps_cost::CostParams;
    use aps_fabric::CircuitSwitch;
    use aps_matrix::Matching;
    use aps_topology::builders;

    fn ring_config(n: usize) -> Matching {
        Matching::shift(n, 1).unwrap()
    }

    fn switch(n: usize, alpha_r: f64) -> CircuitSwitch {
        CircuitSwitch::new(ring_config(n), ReconfigModel::constant(alpha_r).unwrap())
    }

    #[test]
    fn scheduled_stream_is_bit_identical_to_materialized() {
        let n = 8;
        let c = allreduce::halving_doubling::build(n, 4.0 * MIB).unwrap();
        let s = c.schedule.num_steps();
        let cfg = RunConfig::paper_defaults();
        for switches in [SwitchSchedule::all_base(s), SwitchSchedule::all_matched(s)] {
            let mut f1 = switch(n, 5e-6);
            let want =
                run_scheduled(&mut f1, &ring_config(n), &c.schedule, &switches, &cfg).unwrap();
            let mut f2 = switch(n, 5e-6);
            let mut w = c.schedule.stream();
            let got =
                run_scheduled_workload(&mut f2, &ring_config(n), &mut w, &switches, &cfg).unwrap();
            assert_eq!(want, got);
        }
    }

    #[test]
    fn scheduled_stream_rejects_length_mismatch_both_ways() {
        let n = 4;
        let c = allreduce::ring::build(n, 1e3).unwrap();
        let cfg = RunConfig::paper_defaults();
        let mut fab = switch(n, 1e-6);
        let mut w = c.schedule.stream();
        assert!(matches!(
            run_scheduled_workload(
                &mut fab,
                &ring_config(n),
                &mut w,
                &SwitchSchedule::all_base(1),
                &cfg
            ),
            Err(SimError::ScheduleLengthMismatch { .. })
        ));
        let mut fab = switch(n, 1e-6);
        let mut w = c.schedule.stream();
        assert!(matches!(
            run_scheduled_workload(
                &mut fab,
                &ring_config(n),
                &mut w,
                &SwitchSchedule::all_base(c.schedule.num_steps() + 3),
                &cfg
            ),
            Err(SimError::ScheduleLengthMismatch { .. })
        ));
    }

    #[test]
    fn online_controllers_stream_bit_identically_to_run_adaptive() {
        // The two-step window carries everything an online controller
        // reads, so streaming and materialized adaptive runs must agree
        // byte for byte — decisions, rationales, trace, timing.
        let n = 8;
        let bytes = 4.0 * MIB;
        let alpha_r = 5e-6;
        let base = builders::ring_unidirectional(n).unwrap();
        let reconfig = ReconfigModel::constant(alpha_r).unwrap();
        let cfg = RunConfig::paper_defaults();
        let acc = ReconfigAccounting::PaperConservative;
        for schedule in [
            allreduce::halving_doubling::build(n, bytes)
                .unwrap()
                .schedule,
            alltoall::linear_shift(n, bytes).unwrap().schedule,
        ] {
            let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
            let problem = SwitchingProblem::build(
                &base,
                &schedule,
                &mut cache,
                CostParams::paper_defaults(),
                reconfig,
            )
            .unwrap();
            for ctl in [
                &Static as &dyn Controller,
                &AlwaysReconfigure,
                &Threshold,
                &Greedy,
            ] {
                let mut f1 = switch(n, alpha_r);
                let (want_sw, want) =
                    run_adaptive(&mut f1, &ring_config(n), &problem, ctl, acc, &cfg).unwrap();
                let mut f2 = switch(n, alpha_r);
                let mut w = schedule.stream();
                let (got_sw, got) = run_workload(
                    &mut f2,
                    &base,
                    &mut w,
                    ctl,
                    StreamPricing::new(reconfig),
                    &cfg,
                )
                .unwrap();
                assert_eq!(want_sw, got_sw, "{}", ctl.name());
                assert_eq!(want, got, "{}", ctl.name());
            }
        }
    }

    #[test]
    fn totals_match_the_full_report() {
        let n = 8;
        let base = builders::ring_unidirectional(n).unwrap();
        let reconfig = ReconfigModel::constant(5e-6).unwrap();
        let cfg = RunConfig::paper_defaults();
        let schedule = allreduce::halving_doubling::build(n, 4.0 * MIB)
            .unwrap()
            .schedule;
        let mut f1 = switch(n, 5e-6);
        let mut w = schedule.stream();
        let (sw, full) = run_workload(
            &mut f1,
            &base,
            &mut w,
            &Greedy,
            StreamPricing::new(reconfig),
            &cfg,
        )
        .unwrap();
        let mut f2 = switch(n, 5e-6);
        let mut w = schedule.stream();
        let totals = run_workload_totals(
            &mut f2,
            &base,
            &mut w,
            &Greedy,
            StreamPricing::new(reconfig),
            &cfg,
            usize::MAX,
        )
        .unwrap();
        assert_eq!(totals.steps, full.steps.len());
        assert_eq!(totals.matched_steps, sw.matched_steps());
        assert_eq!(totals.total_ps, full.total_ps);
        assert_eq!(totals.reconfig_events, full.reconfig_events());
        assert_eq!(
            totals.transfer_ps,
            full.steps.iter().map(|s| s.transfer_ps).sum::<Picos>()
        );
        // The step budget truncates the pull loop.
        let mut f3 = switch(n, 5e-6);
        let mut w = schedule.stream();
        let capped = run_workload_totals(
            &mut f3,
            &base,
            &mut w,
            &Greedy,
            StreamPricing::new(reconfig),
            &cfg,
            3,
        )
        .unwrap();
        assert_eq!(capped.steps, 3);
    }

    #[test]
    fn dp_planned_streams_as_its_myopic_window_rule() {
        // DpPlanned's window suffix collapses to the current step, so the
        // streaming decisions coincide with Greedy's — the documented
        // degeneration for planning controllers.
        let n = 8;
        let base = builders::ring_unidirectional(n).unwrap();
        let reconfig = ReconfigModel::constant(1e-5).unwrap();
        let cfg = RunConfig::paper_defaults();
        let schedule = allreduce::halving_doubling::build(n, 16.0 * MIB)
            .unwrap()
            .schedule;
        let mut f1 = switch(n, 1e-5);
        let mut w = schedule.stream();
        let (dp_sw, _) = run_workload(
            &mut f1,
            &base,
            &mut w,
            &DpPlanned,
            StreamPricing::new(reconfig),
            &cfg,
        )
        .unwrap();
        let mut f2 = switch(n, 1e-5);
        let mut w = schedule.stream();
        let (greedy_sw, _) = run_workload(
            &mut f2,
            &base,
            &mut w,
            &Greedy,
            StreamPricing::new(reconfig),
            &cfg,
        )
        .unwrap();
        assert_eq!(dp_sw, greedy_sw);
    }

    #[test]
    fn streaming_rejects_structural_errors() {
        let n = 8;
        let cfg = RunConfig::paper_defaults();
        let reconfig = ReconfigModel::constant(1e-6).unwrap();
        let schedule = allreduce::ring::build(n, 1e3).unwrap().schedule;

        // Fabric/workload dimension mismatch.
        let mut small = switch(4, 1e-6);
        let base = builders::ring_unidirectional(n).unwrap();
        let mut w = schedule.stream();
        assert!(matches!(
            run_workload(
                &mut small,
                &base,
                &mut w,
                &Static,
                StreamPricing::new(reconfig),
                &cfg
            ),
            Err(SimError::DimensionMismatch { .. })
        ));

        // Non-circuit base.
        let bidi = builders::ring_bidirectional(n).unwrap();
        let mut fab = switch(n, 1e-6);
        let mut w = schedule.stream();
        assert!(matches!(
            run_workload(
                &mut fab,
                &bidi,
                &mut w,
                &Static,
                StreamPricing::new(reconfig),
                &cfg
            ),
            Err(SimError::BaseNotACircuit)
        ));

        // Malformed streamed volume.
        struct BadVolume(usize);
        impl Workload for BadVolume {
            fn n(&self) -> usize {
                self.0
            }
            fn name(&self) -> &str {
                "bad"
            }
            fn next_step(&mut self, _: &WorkloadCtx) -> Option<aps_collectives::Step> {
                Some(aps_collectives::Step {
                    matching: Matching::shift(self.0, 1).unwrap(),
                    bytes_per_pair: f64::NAN,
                })
            }
            fn reset(&mut self) {}
        }
        let mut fab = switch(n, 1e-6);
        assert!(matches!(
            run_workload(
                &mut fab,
                &base,
                &mut BadVolume(n),
                &Static,
                StreamPricing::new(reconfig),
                &cfg
            ),
            Err(SimError::BadStepVolume { step: 0, .. })
        ));
    }
}

#[cfg(test)]
mod merge_tests {
    use super::StreamSummary;

    fn summary(k: u64) -> StreamSummary {
        StreamSummary {
            steps: k as usize,
            matched_steps: (k / 2) as usize,
            reconfig_events: (k / 3) as usize,
            total_ps: 1000 * k,
            barrier_ps: 10 * k,
            alpha_ps: 11 * k,
            reconfig_ps: 12 * k,
            transfer_ps: 13 * k,
            compute_ps: 14 * k,
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (summary(3), summary(7), summary(11));
        assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn default_is_the_merge_identity() {
        let a = summary(5);
        assert_eq!(a.merge(StreamSummary::default()), a);
        assert_eq!(StreamSummary::default().merge(a), a);
    }

    #[test]
    fn merge_adds_sums_and_maxes_the_clock() {
        let m = summary(2).merge(summary(5));
        assert_eq!(m.steps, 7);
        assert_eq!(m.total_ps, 5000, "shards share one clock: max, not sum");
        assert_eq!(m.transfer_ps, 13 * 7);
    }
}
