//! Named multi-tenant fabric scenarios.
//!
//! The workload mixes the multi-tenant executor ([`crate::tenant`]) is
//! meant for, packaged as reproducible generators: every scenario is a
//! fully deterministic function of its arguments — no RNG, no clocks — so
//! scenario runs are bit-identical across machines and `APS_THREADS`
//! settings, and the bench harness (`fig_multitenant`) can gate on their
//! reports byte-for-byte.
//!
//! Three mixes cover the deployment patterns the paper's vision section
//! anticipates for shared scale-up domains:
//!
//! * [`mixed_collectives`] — heterogeneous jobs side by side: a ring
//!   AllReduce (data-parallel training), an MoE All-to-All token shuffle,
//!   and a 2-D stencil halo exchange, each on its own partition of one
//!   domain, with a few ports left idle.
//! * [`skewed_tenants`] — one large tenant next to two small ones: the
//!   large tenant's long schedule keeps the controller warm while the
//!   small tenants repeatedly arbitrate for it.
//! * [`staggered_arrivals`] — identical jobs arriving in a rolling
//!   cadence, the classic queueing picture for a shared fabric.
//!
//! Tenant switch schedules default to simple static policies
//! (reconfiguration-heavy jobs matched, ring-friendly jobs on base); use
//! [`Scenario::plan_with`] to hand each tenant's decisions to any
//! [`aps_core::controller::Controller`] — [`Scenario::plan`] is the DP
//! optimum shorthand, the same eq. (7) machinery the single-tenant sweeps
//! use.

pub mod hetero;

use crate::error::SimError;
use crate::exec::RunConfig;
use crate::tenant::{execute_tenants, TenantReport, TenantSpec};
use aps_collectives::{allreduce, alltoall, stencil, Collective};
use aps_core::controller::{Controller, DpPlanned};
use aps_core::sweep::{plan_jobs_on, PlanJob};
use aps_core::{CoreError, ReconfigAccounting, SwitchSchedule};
use aps_cost::{CostParams, ReconfigModel};
use aps_fabric::{CircuitSwitch, Fabric, FabricState};
use aps_flow::ThroughputSolver;
use aps_matrix::Matching;
use aps_par::Pool;
use aps_topology::builders::from_matching;

/// A ready-to-run multi-tenant workload: a fabric size, an initial
/// (partition-respecting) configuration, and the tenant specs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (stable identifier used by benches and reports).
    pub name: String,
    /// Fabric port count (tenants may leave ports idle).
    pub n: usize,
    /// The tenants sharing the fabric.
    pub tenants: Vec<TenantSpec>,
}

impl Scenario {
    /// The union of the tenants' base configurations — the fabric's
    /// initial state, with idle ports unconnected.
    ///
    /// # Errors
    ///
    /// [`SimError::ConfigConflict`] when tenant bases overlap on a port
    /// (user-built scenarios; the named generators always partition), and
    /// whatever [`TenantSpec::global_base`] raises per tenant.
    pub fn initial_config(&self) -> Result<Matching, SimError> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for t in &self.tenants {
            let base = t.global_base()?;
            pairs.extend(base.pairs());
        }
        Matching::from_pairs(self.n, &pairs).map_err(|source| SimError::ConfigConflict { source })
    }

    /// A circuit-switch fabric initialized for this scenario.
    ///
    /// # Errors
    ///
    /// See [`Scenario::initial_config`].
    pub fn fabric(&self, reconfig: ReconfigModel) -> Result<CircuitSwitch, SimError> {
        Ok(CircuitSwitch::new(self.initial_config()?, reconfig))
    }

    /// Replaces every tenant's switch schedule with the one `controller`
    /// chooses for its own partition — planned against the circuit
    /// topology its `base_config` actually realizes — in parallel on
    /// `pool` via [`plan_jobs_on`], with the paper's conservative
    /// accounting and the exact forced-path θ solver. This is the
    /// multi-tenant face of the controller abstraction: each job adapts
    /// independently; the fabric arbitrates the shared controller.
    ///
    /// # Errors
    ///
    /// Propagates planning errors (steps unroutable on the tenant's base,
    /// bad parameters).
    pub fn plan_with(
        &mut self,
        pool: &Pool,
        controller: &dyn Controller,
        params: CostParams,
        reconfig: ReconfigModel,
    ) -> Result<(), CoreError> {
        self.plan_configured(
            pool,
            controller,
            params,
            reconfig,
            ReconfigAccounting::PaperConservative,
            ThroughputSolver::ForcedPath,
        )
    }

    /// [`Scenario::plan_with`] with an explicit accounting rule and θ
    /// solver (the variant `Experiment` routes through, so overrides of
    /// either setting reach per-tenant planning).
    ///
    /// # Errors
    ///
    /// Propagates planning errors (steps unroutable on the tenant's base,
    /// bad parameters).
    pub fn plan_configured(
        &mut self,
        pool: &Pool,
        controller: &dyn Controller,
        params: CostParams,
        reconfig: ReconfigModel,
        accounting: ReconfigAccounting,
        solver: ThroughputSolver,
    ) -> Result<(), CoreError> {
        let jobs: Vec<PlanJob> = self
            .tenants
            .iter()
            .map(|t| PlanJob {
                base: from_matching(&t.base_config),
                schedule: t.schedule.clone(),
            })
            .collect();
        let plans = plan_jobs_on(
            pool, &jobs, controller, params, reconfig, accounting, solver,
        )?;
        for (t, (schedule, _)) in self.tenants.iter_mut().zip(plans) {
            t.switch_schedule = schedule;
        }
        Ok(())
    }

    /// [`Scenario::plan_with`] under the eq. (7) DP optimum
    /// ([`DpPlanned`]).
    ///
    /// # Errors
    ///
    /// Propagates planning errors (steps unroutable on the tenant's base,
    /// bad parameters).
    pub fn plan(
        &mut self,
        pool: &Pool,
        params: CostParams,
        reconfig: ReconfigModel,
    ) -> Result<(), CoreError> {
        self.plan_with(pool, &DpPlanned, params, reconfig)
    }

    /// Runs the scenario on a fresh fabric with `reconfig` pricing.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from [`Scenario::fabric`] and
    /// [`execute_tenants`]; per-tenant failures land in the returned
    /// per-tenant results.
    pub fn run(
        &self,
        reconfig: ReconfigModel,
        cfg: &RunConfig,
    ) -> Result<Vec<Result<TenantReport, SimError>>, SimError> {
        let mut fabric = self.fabric(reconfig)?;
        execute_tenants(&mut fabric, &self.tenants, cfg)
    }

    /// Runs the scenario on a caller-supplied fabric — the door to
    /// heterogeneous media ([`hetero`]) and pre-faulted devices. The
    /// fabric's configuration is first reset to
    /// [`Scenario::initial_config`]; its device clock, faults and
    /// statistics are left as the caller set them (rewind with the
    /// device's `reset_clock` for a fresh run).
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] when the fabric's port count
    /// differs from the scenario's; otherwise as [`Scenario::run`].
    pub fn run_on(
        &self,
        fabric: &mut dyn Fabric,
        cfg: &RunConfig,
    ) -> Result<Vec<Result<TenantReport, SimError>>, SimError> {
        if fabric.n() != self.n {
            return Err(SimError::DimensionMismatch {
                fabric: fabric.n(),
                collective: self.n,
            });
        }
        let state = FabricState {
            config: self.initial_config()?,
            busy_until: fabric.busy_until(),
        };
        fabric.load_state(&state).map_err(SimError::Fabric)?;
        execute_tenants(fabric, &self.tenants, cfg)
    }
}

/// Builds one tenant on `ports` with a ring base over the partition.
fn tenant(
    name: &str,
    ports: Vec<usize>,
    collective: Collective,
    switch_schedule: SwitchSchedule,
    arrival_s: f64,
) -> TenantSpec {
    let n = ports.len();
    TenantSpec {
        name: name.into(),
        ports,
        base_config: Matching::shift(n, 1).expect("partitions have ≥ 2 ports"),
        schedule: collective.schedule,
        switch_schedule,
        arrival_s,
    }
}

/// Ring AllReduce + MoE All-to-All + 2-D stencil halo exchange sharing a
/// 32-port domain (4 ports idle). `bytes` is the AllReduce gradient volume
/// per node; the All-to-All moves `2·bytes` of tokens and the stencil
/// exchanges `bytes/8` halo strips.
///
/// # Panics
///
/// Never for positive finite `bytes` (collective builders validate).
pub fn mixed_collectives(bytes: f64) -> Scenario {
    let ring = allreduce::ring::build(8, bytes).expect("valid ring allreduce");
    let ring_steps = ring.schedule.num_steps();
    let moe = alltoall::linear_shift(8, 2.0 * bytes).expect("valid all-to-all");
    let moe_steps = moe.schedule.num_steps();
    let halo = stencil::halo_2d(3, 4, bytes / 8.0).expect("valid halo exchange");
    let halo_steps = halo.schedule.num_steps();
    Scenario {
        name: "mixed-collectives".into(),
        n: 32,
        tenants: vec![
            // Ring AllReduce is ring-native: stays on base, never touches
            // the controller.
            tenant(
                "ring-allreduce",
                (0..8).collect(),
                ring,
                SwitchSchedule::all_base(ring_steps),
                0.0,
            ),
            // All-to-All shifts are exactly the congestion-heavy patterns
            // reconfiguration serves.
            tenant(
                "moe-alltoall",
                (8..16).collect(),
                moe,
                SwitchSchedule::all_matched(moe_steps),
                0.0,
            ),
            // Halo wrap shifts are ±1 / ±cols: only the ±cols directions
            // profit from matching, but the static policy here is
            // all-matched; `Scenario::plan` refines it.
            tenant(
                "stencil-halo",
                (16..28).collect(),
                halo,
                SwitchSchedule::all_matched(halo_steps),
                0.0,
            ),
        ],
    }
}

/// One 16-port tenant next to two 4-port tenants on a 24-port domain —
/// skewed partition sizes, all running bandwidth-optimal AllReduce on
/// matched schedules so the controller stays contended.
///
/// # Panics
///
/// Never for positive finite `bytes`.
pub fn skewed_tenants(bytes: f64) -> Scenario {
    let mk = |n: usize, b: f64| allreduce::halving_doubling::build(n, b).expect("valid allreduce");
    let big = mk(16, bytes);
    let big_steps = big.schedule.num_steps();
    let small_a = mk(4, bytes / 4.0);
    let small_a_steps = small_a.schedule.num_steps();
    let small_b = mk(4, bytes / 2.0);
    let small_b_steps = small_b.schedule.num_steps();
    Scenario {
        name: "skewed-tenants".into(),
        n: 24,
        tenants: vec![
            tenant(
                "big-train",
                (0..16).collect(),
                big,
                SwitchSchedule::all_matched(big_steps),
                0.0,
            ),
            tenant(
                "small-a",
                (16..20).collect(),
                small_a,
                SwitchSchedule::all_matched(small_a_steps),
                0.0,
            ),
            tenant(
                "small-b",
                (20..24).collect(),
                small_b,
                SwitchSchedule::all_matched(small_b_steps),
                0.0,
            ),
        ],
    }
}

/// Three identical 8-port AllReduce jobs arriving 20 µs apart on a
/// 24-port domain — the rolling-submission pattern of a shared cluster.
///
/// # Panics
///
/// Never for positive finite `bytes`.
pub fn staggered_arrivals(bytes: f64) -> Scenario {
    let tenants = (0..3)
        .map(|k| {
            let c = allreduce::halving_doubling::build(8, bytes).expect("valid allreduce");
            let steps = c.schedule.num_steps();
            tenant(
                &format!("job-{k}"),
                (8 * k..8 * (k + 1)).collect(),
                c,
                SwitchSchedule::all_matched(steps),
                20e-6 * k as f64,
            )
        })
        .collect();
    Scenario {
        name: "staggered-arrivals".into(),
        n: 24,
        tenants,
    }
}

/// Every named scenario at the given base volume, in a stable order.
pub fn all(bytes: f64) -> Vec<Scenario> {
    vec![
        mixed_collectives(bytes),
        skewed_tenants(bytes),
        staggered_arrivals(bytes),
    ]
}

/// Looks a scenario up by its stable name.
pub fn by_name(name: &str, bytes: f64) -> Option<Scenario> {
    all(bytes).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_cost::units::MIB;

    #[test]
    fn scenarios_are_well_formed_and_run() {
        let cfg = RunConfig::paper_defaults();
        let reconfig = ReconfigModel::constant(5e-6).unwrap();
        for scenario in all(MIB) {
            let config = scenario.initial_config().unwrap();
            assert_eq!(config.n(), scenario.n);
            let reports = scenario.run(reconfig, &cfg).unwrap();
            assert_eq!(reports.len(), scenario.tenants.len());
            for (t, r) in scenario.tenants.iter().zip(&reports) {
                let r = r.as_ref().unwrap_or_else(|e| panic!("{}: {e}", t.name));
                assert!(r.finish_ps > r.arrival_ps, "{} made progress", t.name);
                assert_eq!(r.report.steps.len(), t.schedule.num_steps());
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = RunConfig::paper_defaults();
        let reconfig = ReconfigModel::constant(5e-6).unwrap();
        for (a, b) in all(4.0 * MIB).into_iter().zip(all(4.0 * MIB)) {
            let ra = a.run(reconfig, &cfg).unwrap();
            let rb = b.run(reconfig, &cfg).unwrap();
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
            }
        }
    }

    #[test]
    fn by_name_finds_every_scenario() {
        for s in all(MIB) {
            assert_eq!(by_name(&s.name, MIB).unwrap().name, s.name);
        }
        assert!(by_name("no-such-mix", MIB).is_none());
    }

    #[test]
    fn controllers_plan_scenarios_and_opt_dominates() {
        use aps_core::controller::{shipped, AlwaysReconfigure, Static};
        let cfg = RunConfig::paper_defaults();
        let reconfig = ReconfigModel::constant(10e-6).unwrap();
        let params = CostParams::paper_defaults();
        let pool = Pool::serial();

        // plan_with(Static/AlwaysReconfigure) produce the trivial
        // schedules on every tenant.
        let mut s = skewed_tenants(4.0 * MIB);
        s.plan_with(&pool, &Static, params, reconfig).unwrap();
        for t in &s.tenants {
            assert_eq!(
                t.switch_schedule,
                SwitchSchedule::all_base(t.schedule.num_steps())
            );
        }
        s.plan_with(&pool, &AlwaysReconfigure, params, reconfig)
            .unwrap();
        for t in &s.tenants {
            assert_eq!(
                t.switch_schedule,
                SwitchSchedule::all_matched(t.schedule.num_steps())
            );
        }

        // The DP plan's total makespan is never beaten by any other
        // shipped controller on the same (contention-free) mix.
        let mut planned = mixed_collectives(4.0 * MIB);
        planned.plan(&pool, params, reconfig).unwrap();
        let opt_worst = planned
            .run(reconfig, &cfg)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().makespan_s())
            .fold(0.0f64, f64::max);
        assert!(opt_worst > 0.0);
        for ctl in shipped() {
            let mut alt = mixed_collectives(4.0 * MIB);
            alt.plan_with(&pool, ctl, params, reconfig).unwrap();
            let reports = alt.run(reconfig, &cfg).unwrap();
            assert_eq!(reports.len(), alt.tenants.len(), "{}", ctl.name());
            for r in reports {
                assert!(r.is_ok(), "{}", ctl.name());
            }
        }
    }

    #[test]
    fn planning_adapts_to_the_message_size_regime() {
        let cfg = RunConfig::paper_defaults();
        let reconfig = ReconfigModel::constant(10e-6).unwrap();
        let params = CostParams::paper_defaults();

        // Tiny volumes: α_r dwarfs every transfer, the DP keeps all
        // tenants on base — no reconfiguration events at all.
        let mut small = mixed_collectives(8.0 * 1024.0);
        small.plan(&Pool::serial(), params, reconfig).unwrap();
        for (t, r) in small.tenants.iter().zip(small.run(reconfig, &cfg).unwrap()) {
            let r = r.unwrap();
            assert_eq!(r.report.reconfig_events(), 0, "{}", t.name);
            assert_eq!(r.arbitration_ps(), 0, "{}", t.name);
        }

        // Huge volumes: congestion on the base ring dominates and the
        // long-distance steps reconfigure again.
        let mut big = mixed_collectives(64.0 * MIB);
        big.plan(&Pool::serial(), params, reconfig).unwrap();
        let reports = big.run(reconfig, &cfg).unwrap();
        let stencil = reports[2].as_ref().unwrap();
        assert!(stencil.report.reconfig_events() > 0);
    }
}
