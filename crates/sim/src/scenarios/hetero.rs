//! Heterogeneous-fabric scenarios: hybrid electrical+optical domains,
//! multi-wavelength banks, and seeded failure storms.
//!
//! The paper's deployment sketch (§4) expects scale-up domains that are
//! *not* uniformly photonic: pods keep an electrical crossbar next to the
//! optical core, transceivers tune over discrete wavelength banks, and
//! links flap. This module packages those situations the same way
//! [`crate::scenarios`] packages workload mixes — as fully deterministic
//! generators the bench harness and the C ABI can both drive:
//!
//! * [`FabricKind`] + [`build_fabric`] — the fabric menu
//!   (all-electrical baseline, all-optical circuit switch, half/half
//!   [`HybridFabric`], and a 4-band [`WavelengthBankFabric`]), every
//!   variant buildable from the same `(initial, ReconfigModel)` pair so
//!   benches sweep media like they sweep controllers.
//! * [`hybrid_mix`] / [`multi_wavelength`] — tenant mixes shaped for
//!   those fabrics: partitions pinned entirely on the crossbar, entirely
//!   on the photonic core, and straddling the boundary.
//! * [`FailureStorm`] — a seeded, correlated fault burst (contiguous
//!   link flaps plus transceiver degradation) layered on the fabric
//!   fault-injection hooks; same seed, same storm, bit-identical runs.
//!
//! Scenarios run on an alternate fabric through [`Scenario::run_on`] or
//! `Experiment::simulate_on`; nothing here uses wall clocks or ambient
//! RNG, so results are bit-identical at any `APS_THREADS`.
//!
//! ```
//! use aps_sim::scenarios::hetero::{self, FabricKind, FailureStorm};
//! use aps_sim::RunConfig;
//! use aps_cost::ReconfigModel;
//! use aps_matrix::Matching;
//!
//! // The hybrid mix on a half-electrical fabric, under a seeded storm.
//! let scenario = hetero::hybrid_mix(1024.0 * 1024.0);
//! let mut fabric = hetero::build_fabric_stormy(
//!     FabricKind::Hybrid,
//!     Matching::shift(scenario.n, 1).unwrap(),
//!     ReconfigModel::constant(10e-6).unwrap(),
//!     Some(FailureStorm::new(42)),
//! )
//! .unwrap();
//! let reports = scenario
//!     .run_on(fabric.as_mut(), &RunConfig::paper_defaults())
//!     .unwrap();
//! // The all-electrical tenant survives any storm aimed at the photonic
//! // side; per-tenant failures stay in their own slot.
//! assert!(reports[0].is_ok());
//! ```

use super::{by_name as base_by_name, Scenario};
use crate::error::SimError;
use crate::tenant::TenantSpec;
use aps_collectives::{allreduce, alltoall};
use aps_core::SwitchSchedule;
use aps_cost::ReconfigModel;
use aps_fabric::{CircuitSwitch, Fabric, HybridFabric, WavelengthBankFabric};
use aps_matrix::Matching;

/// Number of wavelength bands the [`FabricKind::WavelengthBank`] menu
/// entry uses (a typical CWDM grid slice).
pub const BANK_BANDS: usize = 4;

/// The fabric media menu heterogeneous benches sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricKind {
    /// All-electrical crossbar: every reconfiguration free — the
    /// zero-reconfig baseline.
    Electrical,
    /// All-optical circuit switch priced by the [`ReconfigModel`].
    Optical,
    /// Half electrical, half optical ([`HybridFabric::split`] at `n/2`).
    Hybrid,
    /// A [`BANK_BANDS`]-band [`WavelengthBankFabric`] on the ladder
    /// pricing derived from the model's single-port delay.
    WavelengthBank,
}

impl FabricKind {
    /// Stable identifier used in bench reports and the C ABI.
    pub fn name(self) -> &'static str {
        match self {
            Self::Electrical => "electrical",
            Self::Optical => "optical",
            Self::Hybrid => "hybrid",
            Self::WavelengthBank => "wavelength-bank",
        }
    }

    /// Every kind, in the stable bench order.
    pub fn all() -> [FabricKind; 4] {
        [
            Self::Electrical,
            Self::Optical,
            Self::Hybrid,
            Self::WavelengthBank,
        ]
    }

    /// Looks a kind up by its stable name.
    pub fn by_name(name: &str) -> Option<FabricKind> {
        Self::all().into_iter().find(|k| k.name() == name)
    }
}

/// Builds the fabric a [`FabricKind`] names, initialized to `initial`
/// and priced by `reconfig` (the electrical crossbar ignores it; the
/// wavelength bank derives its per-λ ladder from the model's
/// single-port delay).
///
/// # Errors
///
/// Propagates fabric constructor validation as [`SimError::Fabric`].
pub fn build_fabric(
    kind: FabricKind,
    initial: Matching,
    reconfig: ReconfigModel,
) -> Result<Box<dyn Fabric>, SimError> {
    build_fabric_stormy(kind, initial, reconfig, None)
}

/// [`build_fabric`] with an optional [`FailureStorm`] applied to the
/// freshly built device — the one constructor the C ABI and the benches
/// share, so a storm is always laid down the same way on every medium
/// (flaps + photonic slowdown on the switch families, transceiver
/// ageing on the wavelength bank).
///
/// # Errors
///
/// Propagates fabric constructor and fault-hook validation as
/// [`SimError::Fabric`].
pub fn build_fabric_stormy(
    kind: FabricKind,
    initial: Matching,
    reconfig: ReconfigModel,
    storm: Option<FailureStorm>,
) -> Result<Box<dyn Fabric>, SimError> {
    let n = initial.n();
    Ok(match kind {
        FabricKind::Electrical => {
            let mut f = HybridFabric::electrical(initial);
            if let Some(s) = storm {
                s.apply_hybrid(&mut f)?;
            }
            Box::new(f)
        }
        FabricKind::Optical => {
            let mut f = CircuitSwitch::new(initial, reconfig);
            if let Some(s) = storm {
                s.apply_switch(&mut f)?;
            }
            Box::new(f)
        }
        FabricKind::Hybrid => {
            let mut f = HybridFabric::split(initial, n / 2, reconfig).map_err(SimError::Fabric)?;
            if let Some(s) = storm {
                s.apply_hybrid(&mut f)?;
            }
            Box::new(f)
        }
        FabricKind::WavelengthBank => {
            let mut f = WavelengthBankFabric::ladder(initial, reconfig.delay_s(1), BANK_BANDS)
                .map_err(SimError::Fabric)?;
            if let Some(s) = storm {
                s.apply_bank(&mut f)?;
            }
            Box::new(f)
        }
    })
}

/// Builds one tenant on `ports` with a ring base over its partition.
fn tenant(name: &str, ports: Vec<usize>, collective: aps_collectives::Collective) -> TenantSpec {
    let n = ports.len();
    let steps = collective.schedule.num_steps();
    TenantSpec {
        name: name.into(),
        ports,
        base_config: Matching::shift(n, 1).expect("partitions have ≥ 2 ports"),
        schedule: collective.schedule,
        switch_schedule: SwitchSchedule::all_matched(steps),
        arrival_s: 0.0,
    }
}

/// Three tenants on a 32-port hybrid domain split at port 16: an MoE
/// All-to-All pinned on the electrical crossbar (ports 0–7, every
/// reconfiguration free), an AllReduce straddling the media boundary
/// (ports 12–19, half its circuits pay photonic cost), and an All-to-All
/// entirely on the optical core (ports 24–31). `bytes` is the AllReduce
/// gradient volume; the shuffles move `2·bytes`.
///
/// # Panics
///
/// Never for positive finite `bytes` (collective builders validate).
pub fn hybrid_mix(bytes: f64) -> Scenario {
    let elec = alltoall::linear_shift(8, 2.0 * bytes).expect("valid all-to-all");
    let boundary = allreduce::halving_doubling::build(8, bytes).expect("valid allreduce");
    let opt = alltoall::linear_shift(8, 2.0 * bytes).expect("valid all-to-all");
    Scenario {
        name: "hetero-hybrid".into(),
        n: 32,
        tenants: vec![
            tenant("elec-shuffle", (0..8).collect(), elec),
            tenant("boundary-allreduce", (12..20).collect(), boundary),
            tenant("opt-shuffle", (24..32).collect(), opt),
        ],
    }
}

/// Two tenants on a 24-port wavelength-bank domain: a "band-local"
/// AllReduce whose halving-doubling distances mostly stay within one
/// wavelength band, next to a "band-hopper" All-to-All whose rolling
/// shifts retune across the whole bank every step.
///
/// # Panics
///
/// Never for positive finite `bytes`.
pub fn multi_wavelength(bytes: f64) -> Scenario {
    let local = allreduce::halving_doubling::build(8, bytes).expect("valid allreduce");
    let hopper = alltoall::linear_shift(16, 2.0 * bytes).expect("valid all-to-all");
    Scenario {
        name: "multi-wavelength".into(),
        n: 24,
        tenants: vec![
            tenant("band-local", (0..8).collect(), local),
            tenant("band-hopper", (8..24).collect(), hopper),
        ],
    }
}

/// Every heterogeneous scenario at the given base volume, stable order.
pub fn all(bytes: f64) -> Vec<Scenario> {
    vec![hybrid_mix(bytes), multi_wavelength(bytes)]
}

/// Looks a scenario up by name across the heterogeneous pack *and* the
/// base [`crate::scenarios`] generators — the single lookup the C ABI
/// and benches use.
pub fn by_name(name: &str, bytes: f64) -> Option<Scenario> {
    all(bytes)
        .into_iter()
        .find(|s| s.name == name)
        .or_else(|| base_by_name(name, bytes))
}

/// A seeded, correlated fault burst: a contiguous run of TX ports loses
/// link (flaps), and the optical side's reconfiguration slows down
/// (transceiver degradation) — the two faults one marginal transceiver
/// tray produces together. The storm is a pure function of `(seed, n)`:
/// the victim ports come from one SplitMix64 draw, so the same seed
/// reproduces the same storm bit-for-bit on every machine.
#[derive(Debug, Clone, Copy)]
pub struct FailureStorm {
    /// Storm seed: selects the victim tray.
    pub seed: u64,
    /// Number of contiguous ports that flap.
    pub flap_len: usize,
    /// Retune/reconfiguration stretch on degraded transceivers (≥ 1).
    pub degrade: f64,
}

/// One step of the SplitMix64 sequence (Steele et al.) — the only RNG
/// in the scenario layer, hand-rolled so the storm stays dependency-free
/// and reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FailureStorm {
    /// A storm with the default severity: a 3-port flap tray and 4×
    /// transceiver degradation.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            flap_len: 3,
            degrade: 4.0,
        }
    }

    /// The contiguous victim ports on an `n`-port fabric (wrapping).
    pub fn victims(&self, n: usize) -> Vec<usize> {
        if n == 0 {
            return Vec::new();
        }
        let mut state = self.seed;
        let start = (splitmix64(&mut state) % n as u64) as usize;
        (0..self.flap_len.min(n)).map(|k| (start + k) % n).collect()
    }

    /// Applies the storm to a hybrid fabric: victim TX ports stick
    /// (their circuits freeze) and the photonic side degrades. Returns
    /// the victim ports.
    ///
    /// # Errors
    ///
    /// Never for in-range victims (guaranteed by construction);
    /// propagates fabric validation otherwise.
    pub fn apply_hybrid(&self, fabric: &mut HybridFabric) -> Result<Vec<usize>, SimError> {
        let victims = self.victims(fabric.n());
        for &p in &victims {
            fabric.stick_port(p).map_err(SimError::Fabric)?;
        }
        fabric.set_optical_slowdown(self.degrade.max(1.0));
        Ok(victims)
    }

    /// Reverts [`FailureStorm::apply_hybrid`]: unsticks the victims and
    /// restores nominal photonic speed.
    pub fn heal_hybrid(&self, fabric: &mut HybridFabric) {
        for p in self.victims(fabric.n()) {
            fabric.unstick_port(p);
        }
        fabric.set_optical_slowdown(1.0);
    }

    /// Applies the storm to an all-optical circuit switch: victim TX
    /// ports stick and the controller degrades — the same fault pair as
    /// [`FailureStorm::apply_hybrid`], on the homogeneous device.
    ///
    /// # Errors
    ///
    /// Never for in-range victims; propagates fabric validation
    /// otherwise.
    pub fn apply_switch(&self, fabric: &mut CircuitSwitch) -> Result<Vec<usize>, SimError> {
        let victims = self.victims(fabric.n());
        for &p in &victims {
            fabric.stick_port(p).map_err(SimError::Fabric)?;
        }
        fabric.set_slowdown(self.degrade.max(1.0));
        Ok(victims)
    }

    /// Reverts [`FailureStorm::apply_switch`].
    pub fn heal_switch(&self, fabric: &mut CircuitSwitch) {
        for p in self.victims(fabric.n()) {
            fabric.unstick_port(p);
        }
        fabric.set_slowdown(1.0);
    }

    /// Applies the storm to a wavelength bank: victim transceivers age
    /// (every retune stretched by the degradation factor). Returns the
    /// victim ports.
    ///
    /// # Errors
    ///
    /// Never for in-range victims; propagates fabric validation
    /// otherwise.
    pub fn apply_bank(&self, fabric: &mut WavelengthBankFabric) -> Result<Vec<usize>, SimError> {
        let victims = self.victims(fabric.n());
        for &p in &victims {
            fabric
                .degrade_port(p, self.degrade.max(1.0))
                .map_err(SimError::Fabric)?;
        }
        Ok(victims)
    }

    /// Reverts [`FailureStorm::apply_bank`].
    pub fn heal_bank(&self, fabric: &mut WavelengthBankFabric) {
        for p in self.victims(fabric.n()) {
            fabric.heal_port(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::RunConfig;
    use aps_cost::units::MIB;

    fn reconfig() -> ReconfigModel {
        ReconfigModel::constant(5e-6).unwrap()
    }

    #[test]
    fn hetero_scenarios_run_on_every_fabric_kind() {
        let cfg = RunConfig::paper_defaults();
        for scenario in all(MIB) {
            for kind in FabricKind::all() {
                let initial = scenario.initial_config().unwrap();
                let mut fabric = build_fabric(kind, initial, reconfig()).unwrap();
                let reports = scenario.run_on(fabric.as_mut(), &cfg).unwrap();
                for (t, r) in scenario.tenants.iter().zip(&reports) {
                    let r = r
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{}/{}: {e}", kind.name(), t.name));
                    assert!(r.finish_ps > r.arrival_ps);
                }
            }
        }
    }

    #[test]
    fn electrical_never_beats_nothing_and_optical_pays() {
        // On the all-electrical crossbar every reconfiguration is free, so
        // the makespan is a lower bound for the all-optical run of the
        // same scenario.
        let cfg = RunConfig::paper_defaults();
        let s = hybrid_mix(4.0 * MIB);
        let mk = |kind| {
            let mut f = build_fabric(kind, s.initial_config().unwrap(), reconfig()).unwrap();
            s.run_on(f.as_mut(), &cfg)
                .unwrap()
                .into_iter()
                .map(|r| r.unwrap().finish_ps)
                .max()
                .unwrap()
        };
        let elec = mk(FabricKind::Electrical);
        let opt = mk(FabricKind::Optical);
        let hybrid = mk(FabricKind::Hybrid);
        assert!(elec < opt, "crossbar avoids photonic stalls");
        assert!(elec <= hybrid && hybrid <= opt, "hybrid lands in between");
    }

    #[test]
    fn fabric_kinds_round_trip_by_name() {
        for kind in FabricKind::all() {
            assert_eq!(FabricKind::by_name(kind.name()), Some(kind));
        }
        assert!(FabricKind::by_name("quantum").is_none());
    }

    #[test]
    fn by_name_spans_both_packs() {
        assert!(by_name("hetero-hybrid", MIB).is_some());
        assert!(by_name("multi-wavelength", MIB).is_some());
        assert!(by_name("mixed-collectives", MIB).is_some());
        assert!(by_name("no-such-mix", MIB).is_none());
    }

    #[test]
    fn storms_are_deterministic_and_correlated() {
        let storm = FailureStorm::new(7);
        let a = storm.victims(32);
        let b = storm.victims(32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Contiguous (wrapping) run.
        for w in a.windows(2) {
            assert_eq!((w[0] + 1) % 32, w[1]);
        }
        // Different seeds eventually pick different trays.
        assert!((0..16).any(|s| FailureStorm::new(s).victims(32) != a));
    }

    #[test]
    fn storm_applies_and_heals_on_both_fabric_families() {
        let s = hybrid_mix(MIB);
        let cfg = RunConfig::paper_defaults();
        let storm = FailureStorm::new(11);

        let mut hybrid = HybridFabric::split(s.initial_config().unwrap(), 16, reconfig()).unwrap();
        let baseline = {
            let mut f =
                build_fabric(FabricKind::Hybrid, s.initial_config().unwrap(), reconfig()).unwrap();
            s.run_on(f.as_mut(), &cfg).unwrap()
        };
        storm.apply_hybrid(&mut hybrid).unwrap();
        let stormy = s.run_on(&mut hybrid, &cfg).unwrap();
        // Runs complete under the storm (stuck circuits may reroute or
        // relay), deterministically.
        let stormy2 = {
            let mut f = HybridFabric::split(s.initial_config().unwrap(), 16, reconfig()).unwrap();
            storm.apply_hybrid(&mut f).unwrap();
            s.run_on(&mut f, &cfg).unwrap()
        };
        for (x, y) in stormy.iter().zip(&stormy2) {
            assert_eq!(x.as_ref().ok(), y.as_ref().ok());
        }
        // Healing restores the fault-free timings exactly.
        storm.heal_hybrid(&mut hybrid);
        hybrid.reset_clock();
        let healed = s.run_on(&mut hybrid, &cfg).unwrap();
        for (x, y) in healed.iter().zip(&baseline) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }

        let mw = multi_wavelength(MIB);
        let mut bank =
            WavelengthBankFabric::ladder(mw.initial_config().unwrap(), 5e-6, BANK_BANDS).unwrap();
        let clean: Vec<_> = mw
            .run_on(&mut bank, &cfg)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().finish_ps)
            .collect();
        bank.reset_clock();
        storm.apply_bank(&mut bank).unwrap();
        let degraded: Vec<_> = mw
            .run_on(&mut bank, &cfg)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().finish_ps)
            .collect();
        assert!(degraded.iter().zip(&clean).any(|(d, c)| d > c));
        storm.heal_bank(&mut bank);
        bank.reset_clock();
        let healed: Vec<_> = mw
            .run_on(&mut bank, &cfg)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().finish_ps)
            .collect();
        assert_eq!(healed, clean);
    }
}
