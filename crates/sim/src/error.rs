//! Error types for the simulator.

use std::fmt;

/// Errors raised while simulating a collective execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The fabric rejected a reconfiguration request.
    Fabric(aps_fabric::FabricError),
    /// A communicating pair has no route on the current circuit topology
    /// (possible under fault injection: stuck ports can disconnect it).
    Unroutable {
        /// Step index.
        step: usize,
        /// Source GPU.
        src: usize,
        /// Destination GPU.
        dst: usize,
    },
    /// Switch schedule length does not match the collective.
    ScheduleLengthMismatch {
        /// Steps in the collective.
        expected: usize,
        /// Choices in the switch schedule.
        got: usize,
    },
    /// The collective and the fabric disagree on the node count.
    DimensionMismatch {
        /// Fabric ports.
        fabric: usize,
        /// Collective nodes.
        collective: usize,
    },
    /// A tenant's port list is invalid: out of range, duplicated within
    /// the tenant, or overlapping another tenant's partition.
    BadTenantPorts {
        /// Tenant index.
        tenant: usize,
        /// The offending global port.
        port: usize,
    },
    /// The base topology is not realizable as a single circuit
    /// configuration, so a streaming executor cannot derive the fabric
    /// state `ConfigChoice::Base` steps target.
    BaseNotACircuit,
    /// Assembling a global circuit configuration from tenant-local pieces
    /// produced colliding circuits: duplicate ports within one
    /// [`crate::tenant::TenantSpec`], or overlapping tenant bases in a
    /// [`crate::scenarios::Scenario`].
    ConfigConflict {
        /// The underlying matching-construction failure.
        source: aps_matrix::MatrixError,
    },
    /// θ pricing of a streamed step failed on the base topology (the
    /// streaming executors price each pulled step for the controller's
    /// observation window).
    Pricing {
        /// Global stream index of the step.
        step: usize,
        /// The underlying solver failure.
        source: aps_flow::FlowError,
    },
    /// A streamed step carried a negative or non-finite volume. Workloads
    /// are trusted streams, not validated schedules, so the executors
    /// check each pulled step.
    BadStepVolume {
        /// Global stream index of the step.
        step: usize,
        /// The offending volume.
        bytes: f64,
    },
    /// A simulation error attributed to one tenant of a multi-tenant run.
    /// Other tenants sharing the fabric are unaffected and complete
    /// normally.
    Tenant {
        /// Tenant index in the `run_tenants` input.
        tenant: usize,
        /// Tenant name, for log triage.
        name: String,
        /// The underlying failure.
        source: Box<SimError>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fabric(e) => write!(f, "fabric error: {e}"),
            Self::Unroutable { step, src, dst } => {
                write!(
                    f,
                    "step {step}: no route from GPU {src} to GPU {dst} on current circuits"
                )
            }
            Self::ScheduleLengthMismatch { expected, got } => {
                write!(f, "switch schedule has {got} choices for {expected} steps")
            }
            Self::DimensionMismatch { fabric, collective } => {
                write!(
                    f,
                    "fabric has {fabric} ports but collective spans {collective} GPUs"
                )
            }
            Self::BadTenantPorts { tenant, port } => {
                write!(
                    f,
                    "tenant {tenant}: port {port} is out of range, duplicated, or \
                     claimed by another tenant"
                )
            }
            Self::BaseNotACircuit => {
                write!(
                    f,
                    "the base topology is not realizable as a single circuit configuration"
                )
            }
            Self::ConfigConflict { source } => {
                write!(f, "tenant circuits collide on the global fabric: {source}")
            }
            Self::Pricing { step, source } => {
                write!(f, "step {step}: θ pricing failed on the base: {source}")
            }
            Self::BadStepVolume { step, bytes } => {
                write!(
                    f,
                    "step {step}: streamed volume {bytes} must be finite and non-negative"
                )
            }
            Self::Tenant {
                tenant,
                name,
                source,
            } => {
                write!(f, "tenant '{name}' (#{tenant}): {source}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<aps_fabric::FabricError> for SimError {
    fn from(e: aps_fabric::FabricError) -> Self {
        Self::Fabric(e)
    }
}
