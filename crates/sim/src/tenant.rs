//! Multi-tenant execution: several jobs share one photonic fabric.
//!
//! Scale-up domains are rarely dedicated to a single collective: the
//! deployment model the photonic-systems literature anticipates is a
//! domain *partitioned* between concurrent jobs — a training job's
//! gradient AllReduce next to an MoE token shuffle next to an HPC halo
//! exchange. This module executes such mixes: every [`TenantSpec`] owns a
//! disjoint set of the fabric's ports and runs its own collective schedule
//! there, while all tenants contend for the **one** fabric controller.
//!
//! ## Model
//!
//! * **Partitioned circuits** — tenant circuits connect only the tenant's
//!   own ports. A tenant's reconfiguration target overrides its ports and
//!   keeps every other circuit in place, so one tenant reconfiguring never
//!   rewires another (a cross-partition circuit left over from the initial
//!   configuration is torn down the first time a tenant claims its RX
//!   port).
//! * **Controller arbitration** — reconfiguration requests are granted
//!   first-come-first-served through [`Fabric::request_when_free`]; a
//!   tenant arriving while the controller is busy queues, and the wait is
//!   recorded per step as `arbitration_ps` and per tenant as
//!   [`TenantReport::arbitration_ps`]. A step whose circuits are already
//!   in place (e.g. a base step after a base step) never touches the
//!   controller and therefore never queues.
//! * **Fault isolation** — a tenant whose step fails (e.g. a stuck port
//!   disconnects one of its pairs) stops with a tenant-tagged
//!   [`SimError::Tenant`]; the remaining tenants keep running and their
//!   reports are unaffected.
//!
//! Execution order is deterministic: the tenant with the earliest next
//! fabric request runs its next step, ties broken by tenant index — no
//! randomness, no wall-clock, bit-identical results at any `APS_THREADS`.

use crate::error::SimError;
use crate::exec::{execute_step, RunConfig, StepInput};
use crate::record::{RecordSink, StepRecord};
use crate::report::SimReport;
use aps_collectives::{Schedule, ScheduleStream, Step, Workload, WorkloadCtx};
use aps_core::ConfigChoice;
use aps_cost::units::{secs_to_picos, Picos};
use aps_fabric::Fabric;
use aps_matrix::Matching;

/// One job of a multi-tenant run: a collective schedule bound to a
/// partition of the fabric's ports.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, for reports and error tagging.
    pub name: String,
    /// Global fabric ports owned by the tenant; local rank `i` of the
    /// collective maps to `ports[i]`. Must be disjoint from every other
    /// tenant's ports.
    pub ports: Vec<usize>,
    /// Circuit configuration realizing the tenant's base topology, in
    /// *local* coordinates (e.g. `Matching::shift(ports.len(), 1)` for a
    /// ring over the partition).
    pub base_config: Matching,
    /// The collective to execute, over `ports.len()` local ranks.
    pub schedule: aps_collectives::Schedule,
    /// Per-step base/matched choices.
    pub switch_schedule: aps_core::SwitchSchedule,
    /// Job arrival time: the tenant's first step cannot start earlier.
    pub arrival_s: f64,
}

impl TenantSpec {
    /// The tenant's base configuration mapped to global fabric ports.
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] when the base configuration spans
    /// more ranks than the port list, and [`SimError::ConfigConflict`]
    /// when the port list maps two circuits onto the same global port
    /// (duplicate entries in [`TenantSpec::ports`]).
    pub fn global_base(&self) -> Result<Matching, SimError> {
        map_matching(&self.base_config, &self.ports)
    }
}

/// Outcome of one tenant's run on the shared fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name (copied from the spec).
    pub name: String,
    /// Arrival time on the global clock.
    pub arrival_ps: Picos,
    /// When the tenant's last step (including compute) finished, on the
    /// global clock.
    pub finish_ps: Picos,
    /// The tenant's own per-step report and trace (global clock).
    pub report: SimReport,
}

impl TenantReport {
    /// Job completion time in seconds, measured from the tenant's arrival.
    pub fn makespan_s(&self) -> f64 {
        aps_cost::units::picos_to_secs(self.finish_ps - self.arrival_ps)
    }

    /// Total time the tenant's steps spent queued behind other tenants'
    /// reconfigurations (the picosecond face of
    /// [`SimReport::arbitration_s`] on the embedded report).
    pub fn arbitration_ps(&self) -> Picos {
        self.report.steps.iter().map(|s| s.arbitration_ps).sum()
    }
}

/// Maps a matching over local ranks onto global fabric ports. Duplicate
/// ports surface as [`SimError::ConfigConflict`] (a user-built spec can
/// carry them — the executor's partition validation is not on this path).
pub(crate) fn map_matching(local: &Matching, ports: &[usize]) -> Result<Matching, SimError> {
    if local.n() > ports.len() {
        return Err(SimError::DimensionMismatch {
            fabric: ports.len(),
            collective: local.n(),
        });
    }
    let n_global = ports.iter().copied().max().map_or(0, |m| m + 1);
    let pairs: Vec<(usize, usize)> = local.pairs().map(|(s, d)| (ports[s], ports[d])).collect();
    Matching::from_pairs(n_global.max(local.n()), &pairs)
        .map_err(|source| SimError::ConfigConflict { source })
}

/// Builds the global reconfiguration target for one tenant: the tenant's
/// desired circuits on its own ports, everything else kept as-is. Foreign
/// circuits landing on an RX port the tenant claims are dropped (they can
/// only exist if the initial configuration crossed partitions).
pub(crate) fn tenant_target(
    current: &Matching,
    ports: &[usize],
    local_target: &Matching,
    owned: &[bool],
) -> Matching {
    let n = current.n();
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n);
    let mut rx_claimed = vec![false; n];
    for (s, d) in local_target.pairs() {
        let (gs, gd) = (ports[s], ports[d]);
        pairs.push((gs, gd));
        rx_claimed[gd] = true;
    }
    for (s, d) in current.pairs() {
        if !owned[s] && !rx_claimed[d] {
            pairs.push((s, d));
        }
    }
    Matching::from_pairs(n, &pairs).expect("disjoint tenant circuits form a matching")
}

/// Per-tenant progress while the run interleaves steps. Demand is pulled
/// through the tenant schedule's [`Workload`] cursor, one pending step
/// per tenant — the same pull interface the streaming executors use, so
/// tenants are ready for genuinely lazy demand sources (the spec's own
/// schedule is still materialized today).
struct TenantState<'a> {
    stream: ScheduleStream<&'a Schedule>,
    /// The next step to execute, pre-pulled so the scheduler can see
    /// which tenants still have work.
    pending: Option<Step>,
    /// Steps executed so far (the pending step's index).
    executed: usize,
    comm_end: Picos,
    gpu_free: Picos,
    report: SimReport,
    failed: Option<SimError>,
}

/// Executes every tenant's schedule on the shared `fabric`.
///
/// Returns one result per tenant, in input order: a completed
/// [`TenantReport`], or the tenant-tagged error that stopped that tenant.
/// A failing tenant never corrupts another tenant's report — the survivors
/// keep executing on their own partitions.
///
/// Tenant switch schedules come from controllers: see
/// [`crate::scenarios::Scenario::plan_with`] (or
/// `adaptive_photonics::Experiment::…::plan()`), which lets any
/// [`aps_core::controller::Controller`] choose each tenant's per-step
/// decisions before the mix is executed here.
///
/// # Errors
///
/// Returns a top-level error only for structural problems: overlapping or
/// out-of-range tenant ports ([`SimError::BadTenantPorts`]). Everything
/// else — length mismatches, unroutable pairs, fabric refusals — is
/// attributed to its tenant in the per-tenant results.
pub fn execute_tenants(
    fabric: &mut dyn Fabric,
    tenants: &[TenantSpec],
    cfg: &RunConfig,
) -> Result<Vec<Result<TenantReport, SimError>>, SimError> {
    execute_tenants_recorded(fabric, tenants, cfg, None)
}

/// [`execute_tenants`] with an optional [`RecordSink`] observing every
/// committed step in **global execution order** (the deterministic
/// earliest-request interleaving), each record tagged with its tenant
/// index. `None` records nothing and costs nothing — the unrecorded
/// entrypoint delegates here.
///
/// # Errors
///
/// See [`execute_tenants`].
pub fn execute_tenants_recorded(
    fabric: &mut dyn Fabric,
    tenants: &[TenantSpec],
    cfg: &RunConfig,
    mut sink: Option<&mut dyn RecordSink>,
) -> Result<Vec<Result<TenantReport, SimError>>, SimError> {
    let n = fabric.n();
    // Structural validation: the port partition must be sound before any
    // tenant touches the fabric.
    let mut owner: Vec<Option<usize>> = vec![None; n];
    for (t, spec) in tenants.iter().enumerate() {
        for &p in &spec.ports {
            if p >= n || owner[p].is_some() {
                return Err(SimError::BadTenantPorts { tenant: t, port: p });
            }
            owner[p] = Some(t);
        }
    }

    let mut states: Vec<TenantState<'_>> = Vec::with_capacity(tenants.len());
    for (t, spec) in tenants.iter().enumerate() {
        let arrival = secs_to_picos(spec.arrival_s);
        let mut state = TenantState {
            pending: None,
            stream: spec.schedule.stream(),
            executed: 0,
            comm_end: arrival,
            gpu_free: arrival,
            report: SimReport::default(),
            failed: None,
        };
        let n_t = spec.ports.len();
        if spec.schedule.n() != n_t || spec.base_config.n() != n_t {
            state.failed = Some(tenant_err(
                t,
                spec,
                SimError::DimensionMismatch {
                    fabric: n_t,
                    collective: spec.schedule.n().max(spec.base_config.n()),
                },
            ));
        } else if spec.switch_schedule.len() != spec.schedule.num_steps() {
            state.failed = Some(tenant_err(
                t,
                spec,
                SimError::ScheduleLengthMismatch {
                    expected: spec.schedule.num_steps(),
                    got: spec.switch_schedule.len(),
                },
            ));
        } else {
            state.pending = state.stream.next_step(&WorkloadCtx::at(0));
        }
        states.push(state);
    }

    // Interleave: always advance the tenant whose next fabric request is
    // earliest (ties to the lowest tenant index). Requests therefore reach
    // the controller in nondecreasing time order — first come, first
    // served.
    let mut scratch = crate::arena::StepScratch::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    loop {
        let mut next: Option<(Picos, usize)> = None;
        for (t, spec) in tenants.iter().enumerate() {
            let st = &states[t];
            if st.failed.is_some() || st.pending.is_none() {
                continue;
            }
            // The same instant execute_step will request at — computed by
            // the shared helper so scheduler order and request order can
            // never drift apart.
            let natural = crate::exec::natural_request_at(
                cfg,
                spec.ports.len(),
                st.executed == 0,
                st.comm_end,
                st.gpu_free,
            );
            if next.is_none_or(|(at, _)| natural < at) {
                next = Some((natural, t));
            }
        }
        let Some((_, t)) = next else {
            break; // every tenant finished or failed
        };

        let spec = &tenants[t];
        let i = states[t].executed;
        let step = states[t].pending.take().expect("scheduled tenant has work");
        let matched = spec.switch_schedule.choice(i) == ConfigChoice::Matched;
        let local_target = if matched {
            &step.matching
        } else {
            &spec.base_config
        };
        let owned: Vec<bool> = (0..n).map(|p| owner[p] == Some(t)).collect();
        let target = tenant_target(fabric.current(), &spec.ports, local_target, &owned);
        pairs.clear();
        pairs.extend(
            step.matching
                .pairs()
                .map(|(s, d)| (spec.ports[s], spec.ports[d])),
        );
        let input = StepInput {
            step: i,
            matched,
            target: &target,
            pairs: &pairs,
            bytes_per_pair: step.bytes_per_pair,
            barrier_n: spec.ports.len(),
            first: i == 0,
        };
        let trace_before = states[t].report.trace.len();
        let step_idx = states[t].report.steps.len();
        let (comm_end, gpu_free) = {
            let st = &mut states[t];
            match execute_step(
                fabric,
                &input,
                cfg,
                true,
                st.comm_end,
                st.gpu_free,
                &mut st.report,
                &mut scratch,
            ) {
                Ok(clocks) => clocks,
                Err(e) => {
                    st.failed = Some(tenant_err(t, spec, e));
                    continue;
                }
            }
        };
        if let Some(s) = sink.as_deref_mut() {
            let st = &states[t];
            s.record_step(&StepRecord {
                step: i,
                tenant: Some(t),
                matched,
                report: &st.report.steps[step_idx],
                events: &st.report.trace[trace_before..],
                config: fabric.current(),
                busy_until: fabric.busy_until(),
            });
        }
        let st = &mut states[t];
        st.comm_end = comm_end;
        st.gpu_free = gpu_free;
        st.executed += 1;
        st.pending = st.stream.next_step(&WorkloadCtx::at(st.executed));
    }

    Ok(states
        .into_iter()
        .zip(tenants)
        .map(|(mut st, spec)| match st.failed.take() {
            Some(e) => Err(e),
            None => {
                st.report.total_ps = st.gpu_free;
                Ok(TenantReport {
                    name: spec.name.clone(),
                    arrival_ps: secs_to_picos(spec.arrival_s),
                    finish_ps: st.gpu_free,
                    report: st.report,
                })
            }
        })
        .collect())
}

/// Executes every tenant's schedule on the shared `fabric`.
///
/// # Errors
///
/// See [`execute_tenants`].
#[deprecated(
    since = "0.2.0",
    note = "use `adaptive_photonics::Experiment::…::simulate()` or `execute_tenants`"
)]
pub fn run_tenants(
    fabric: &mut dyn Fabric,
    tenants: &[TenantSpec],
    cfg: &RunConfig,
) -> Result<Vec<Result<TenantReport, SimError>>, SimError> {
    execute_tenants(fabric, tenants, cfg)
}

fn tenant_err(t: usize, spec: &TenantSpec, source: SimError) -> SimError {
    SimError::Tenant {
        tenant: t,
        name: spec.name.clone(),
        source: Box::new(source),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_core::SwitchSchedule;
    use aps_cost::units::MIB;
    use aps_cost::ReconfigModel;
    use aps_fabric::CircuitSwitch;

    fn tenant(name: &str, ports: Vec<usize>, bytes: f64, matched: bool) -> TenantSpec {
        let n = ports.len();
        let schedule = allreduce::halving_doubling::build(n, bytes)
            .unwrap()
            .schedule;
        let s = schedule.num_steps();
        TenantSpec {
            name: name.into(),
            ports,
            base_config: Matching::shift(n, 1).unwrap(),
            schedule,
            switch_schedule: if matched {
                SwitchSchedule::all_matched(s)
            } else {
                SwitchSchedule::all_base(s)
            },
            arrival_s: 0.0,
        }
    }

    /// A fabric initialized to the union of the tenants' base rings, via
    /// the scenario machinery (the single implementation of that union).
    fn fabric_for(n: usize, tenants: &[TenantSpec]) -> CircuitSwitch {
        crate::scenarios::Scenario {
            name: "test".into(),
            n,
            tenants: tenants.to_vec(),
        }
        .fabric(ReconfigModel::constant(5e-6).unwrap())
        .unwrap()
    }

    #[test]
    fn lone_tenant_matches_run_collective() {
        // A single tenant occupying the whole fabric must behave exactly
        // like run_collective on a dedicated fabric.
        let t = tenant("solo", (0..8).collect(), MIB, true);
        let mut fab = fabric_for(8, std::slice::from_ref(&t));
        let cfg = RunConfig::paper_defaults();
        let reports = execute_tenants(&mut fab, std::slice::from_ref(&t), &cfg).unwrap();
        let got = reports[0].as_ref().unwrap();

        let mut solo = CircuitSwitch::new(
            t.global_base().unwrap(),
            ReconfigModel::constant(5e-6).unwrap(),
        );
        let want = crate::exec::run_scheduled(
            &mut solo,
            &t.base_config,
            &t.schedule,
            &t.switch_schedule,
            &cfg,
        )
        .unwrap();
        assert_eq!(got.report, want);
        assert_eq!(got.arbitration_ps(), 0);
        assert_eq!(got.finish_ps, want.total_ps);
    }

    #[test]
    fn tenants_on_disjoint_partitions_do_not_slow_each_other_on_base() {
        // Base-only tenants never reconfigure: no controller contention,
        // both finish exactly when they would alone.
        let a = tenant("a", (0..8).collect(), MIB, false);
        let b = tenant("b", (8..16).collect(), 4.0 * MIB, false);
        let cfg = RunConfig::paper_defaults();
        let mut fab = fabric_for(16, &[a.clone(), b.clone()]);
        let reports = execute_tenants(&mut fab, &[a.clone(), b.clone()], &cfg).unwrap();
        for (spec, rep) in [a, b].iter().zip(&reports) {
            let rep = rep.as_ref().unwrap();
            // Each tenant alone on the same fabric produces the same report.
            let mut solo_fab = fabric_for(16, std::slice::from_ref(spec));
            let solo = execute_tenants(&mut solo_fab, std::slice::from_ref(spec), &cfg).unwrap();
            assert_eq!(rep, solo[0].as_ref().unwrap(), "{}", rep.name);
            assert_eq!(rep.arbitration_ps(), 0, "{}", rep.name);
            assert_eq!(rep.report.reconfig_events(), 0);
        }
    }

    #[test]
    fn controller_contention_is_charged_as_arbitration() {
        // Two matched tenants arriving together: their step-0
        // reconfigurations collide on the single controller; the loser
        // queues and the wait shows up as arbitration, tie broken by
        // tenant index.
        let a = tenant("a", (0..8).collect(), MIB, true);
        let b = tenant("b", (8..16).collect(), MIB, true);
        let cfg = RunConfig::paper_defaults();
        let mut fab = fabric_for(16, &[a.clone(), b.clone()]);
        let reports = execute_tenants(&mut fab, &[a, b], &cfg).unwrap();
        let ra = reports[0].as_ref().unwrap();
        let rb = reports[1].as_ref().unwrap();
        // Step 0: identical request instants, tenant 0 wins the tie and
        // tenant 1 queues for the full 5 µs reconfiguration.
        assert_eq!(
            ra.report.steps[0].arbitration_ps, 0,
            "tenant 0 wins the tie"
        );
        assert_eq!(rb.report.steps[0].arbitration_ps, secs_to_picos(5e-6));
        assert!(rb.arbitration_ps() >= secs_to_picos(5e-6));
        assert!(rb.finish_ps > ra.finish_ps);
        // The wait is part of the visible reconfiguration stall.
        assert!(rb.report.steps[0].reconfig_ps >= rb.report.steps[0].arbitration_ps);
    }

    #[test]
    fn staggered_arrival_shifts_the_whole_timeline() {
        let mut a = tenant("early", (0..8).collect(), MIB, true);
        let mut b = tenant("late", (8..16).collect(), MIB, true);
        a.arrival_s = 0.0;
        b.arrival_s = 10e-3; // long after `early` finished: no contention
        let cfg = RunConfig::paper_defaults();
        let mut fab = fabric_for(16, &[a.clone(), b.clone()]);
        let reports = execute_tenants(&mut fab, &[a, b], &cfg).unwrap();
        let ra = reports[0].as_ref().unwrap();
        let rb = reports[1].as_ref().unwrap();
        assert_eq!(rb.arrival_ps, secs_to_picos(10e-3));
        assert!(rb.finish_ps >= rb.arrival_ps);
        assert_eq!(rb.arbitration_ps(), 0);
        // Same job, same partition size: identical makespans.
        assert_eq!(ra.makespan_s(), rb.makespan_s());
    }

    #[test]
    fn overlapping_ports_are_rejected_structurally() {
        let a = tenant("a", (0..8).collect(), MIB, true);
        let b = tenant("b", (7..15).collect(), MIB, true);
        let mut fab = fabric_for(16, std::slice::from_ref(&a));
        let err = execute_tenants(&mut fab, &[a, b], &RunConfig::paper_defaults()).unwrap_err();
        assert!(matches!(
            err,
            SimError::BadTenantPorts { tenant: 1, port: 7 }
        ));
    }

    #[test]
    fn length_mismatch_is_tenant_tagged_and_isolated() {
        let a = tenant("good", (0..8).collect(), MIB, true);
        let mut b = tenant("bad", (8..16).collect(), MIB, true);
        b.switch_schedule = SwitchSchedule::all_base(1);
        let cfg = RunConfig::paper_defaults();
        let mut fab = fabric_for(16, &[a.clone(), b.clone()]);
        let reports = execute_tenants(&mut fab, &[a, b], &cfg).unwrap();
        assert!(reports[0].is_ok());
        match reports[1].as_ref().unwrap_err() {
            SimError::Tenant {
                tenant: 1,
                name,
                source,
            } => {
                assert_eq!(name, "bad");
                assert!(matches!(**source, SimError::ScheduleLengthMismatch { .. }));
            }
            other => panic!("expected tenant-tagged error, got {other}"),
        }
    }
}
