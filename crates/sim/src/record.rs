//! The recording hook the executors call after every committed step.
//!
//! Deterministic replay (the `aps-replay` crate) needs to observe each
//! step exactly as it was executed: the controller's decision, the timing
//! report, the trace events the step emitted, and the fabric state left
//! behind. Rather than coupling the simulator to a record format, the
//! executors accept an optional [`RecordSink`] — `None` costs nothing
//! (the hot loops never build a [`StepRecord`] without a sink), and any
//! implementation sees a faithful per-step feed:
//!
//! * [`crate::stream::run_scheduled_workload_recorded`] and
//!   [`crate::stream::run_workload_recorded`] deliver one record per
//!   streamed step (`tenant: None`);
//! * [`crate::stream::run_workload_segment`] does the same for the O(1)
//!   totals path, including resumed segments;
//! * [`crate::tenant::execute_tenants_recorded`] delivers records in
//!   global execution order, tagged with the tenant index.
//!
//! The trace slice contains exactly the events the step appended, in
//! order — for adaptive runs that includes the step's
//! [`crate::trace::TraceKind::Decision`] event, even on the totals path
//! (which otherwise keeps no trace): recording synthesizes it so a record
//! taken through `run_workload_segment` is bit-identical to one taken
//! through the full-report executor.

use crate::report::StepReport;
use crate::trace::TraceEvent;
use aps_cost::units::Picos;
use aps_matrix::Matching;

/// Everything a recorder may observe about one committed step.
#[derive(Debug)]
pub struct StepRecord<'a> {
    /// Step index within its stream (per-tenant index in tenant runs).
    pub step: usize,
    /// Tenant index for multi-tenant runs; `None` for a lone stream.
    pub tenant: Option<usize>,
    /// The decision the step ran under: `true` = matched configuration.
    pub matched: bool,
    /// The step's timing report.
    pub report: &'a StepReport,
    /// The trace events this step appended, in order.
    pub events: &'a [TraceEvent],
    /// The fabric configuration carrying traffic after the step.
    pub config: &'a Matching,
    /// The fabric controller's busy-until instant after the step.
    pub busy_until: Picos,
}

/// A per-step recording hook; see the [module docs](self).
///
/// Implementations must be infallible and side-effect-free with respect
/// to the simulation: the executors call them *after* a step commits, and
/// nothing the sink does can alter the run.
pub trait RecordSink {
    /// Observes one committed step.
    fn record_step(&mut self, record: &StepRecord<'_>);
}

impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn record_step(&mut self, record: &StepRecord<'_>) {
        (**self).record_step(record);
    }
}
