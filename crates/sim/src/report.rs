//! Simulation reports: per-step and end-to-end timing.

use crate::trace::TraceEvent;
use aps_cost::units::{picos_to_secs, Picos};

/// Timing of one simulated step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepReport {
    /// Barrier wait.
    pub barrier_ps: Picos,
    /// Fixed step latency α.
    pub alpha_ps: Picos,
    /// Reconfiguration wait (zero when the configuration is reused).
    pub reconfig_ps: Picos,
    /// How long this step's reconfiguration request queued behind another
    /// tenant's use of the shared fabric controller (multi-tenant runs
    /// only; always zero for a collective running alone). Informational —
    /// the wait surfaces inside `reconfig_ps` to the extent it delays the
    /// flows (under reconfigure/compute overlap it can be partially or
    /// fully hidden, so it is *not* bounded by `reconfig_ps`), and it
    /// never enters [`StepReport::total_ps`] separately.
    pub arbitration_ps: Picos,
    /// Transfer time: last flow completion including propagation.
    pub transfer_ps: Picos,
    /// Compute phase duration charged to this step (zero without a compute
    /// model; excludes overlap savings).
    pub compute_ps: Picos,
    /// TX ports retargeted entering this step.
    pub ports_changed: usize,
    /// Longest flow path in hops.
    pub max_hops: usize,
}

impl StepReport {
    /// Total wall-clock contribution of the step.
    pub fn total_ps(&self) -> Picos {
        self.barrier_ps + self.alpha_ps + self.reconfig_ps + self.transfer_ps + self.compute_ps
    }
}

/// End-to-end result of a simulated collective.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// Completion time of the whole collective.
    pub total_ps: Picos,
    /// Per-step timing.
    pub steps: Vec<StepReport>,
    /// Full event trace.
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Completion time in seconds.
    pub fn total_s(&self) -> f64 {
        picos_to_secs(self.total_ps)
    }

    /// Total time spent reconfiguring.
    pub fn reconfig_s(&self) -> f64 {
        picos_to_secs(self.steps.iter().map(|s| s.reconfig_ps).sum())
    }

    /// Total transfer time.
    pub fn transfer_s(&self) -> f64 {
        picos_to_secs(self.steps.iter().map(|s| s.transfer_ps).sum())
    }

    /// Total time spent queued behind other tenants' reconfigurations of a
    /// shared fabric (zero for single-tenant runs).
    pub fn arbitration_s(&self) -> f64 {
        picos_to_secs(self.steps.iter().map(|s| s.arbitration_ps).sum())
    }

    /// Number of steps that triggered an actual reconfiguration.
    pub fn reconfig_events(&self) -> usize {
        self.steps.iter().filter(|s| s.ports_changed > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_totals_add_up() {
        let s = StepReport {
            barrier_ps: 1,
            alpha_ps: 2,
            reconfig_ps: 3,
            transfer_ps: 4,
            compute_ps: 5,
            arbitration_ps: 2,
            ports_changed: 0,
            max_hops: 1,
        };
        // Arbitration is a breakdown of reconfig_ps, not an extra term.
        assert_eq!(s.total_ps(), 15);
    }

    #[test]
    fn report_aggregates() {
        let r = SimReport {
            total_ps: 1_000_000,
            steps: vec![
                StepReport {
                    reconfig_ps: 100,
                    ports_changed: 8,
                    ..Default::default()
                },
                StepReport {
                    reconfig_ps: 0,
                    ports_changed: 0,
                    ..Default::default()
                },
            ],
            trace: vec![],
        };
        assert_eq!(r.reconfig_events(), 1);
        assert!((r.total_s() - 1e-6).abs() < 1e-18);
        assert!((r.reconfig_s() - 100e-12).abs() < 1e-18);
    }
}
