//! Event traces: what happened when, for debugging and inspection.

use aps_cost::units::{picos_to_secs, Picos};
use std::fmt;

/// What a trace event records.
///
/// Extend-only (`#[non_exhaustive]`): new executors (e.g. streaming
/// workload runs) may add event kinds without breaking downstream
/// matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceKind {
    /// A barrier completed.
    Barrier,
    /// A step began (after barrier + α).
    StepStart {
        /// Step index.
        step: usize,
        /// `true` when the step runs on a matched configuration.
        matched: bool,
    },
    /// A reconfiguration began.
    ReconfigStart {
        /// TX ports being retargeted.
        ports: usize,
    },
    /// The fabric controller was busy with another tenant's
    /// reconfiguration; this step's request queued until `granted_at`.
    ArbitrationWait {
        /// When the deferred request was finally issued.
        granted_at: Picos,
    },
    /// The fabric finished reconfiguring.
    ReconfigDone,
    /// The step's flows were released.
    FlowsStart {
        /// Number of concurrent flows.
        count: usize,
    },
    /// All of the step's flows (incl. propagation) completed.
    StepDone {
        /// Step index.
        step: usize,
    },
    /// A compute phase began.
    ComputeStart,
    /// A compute phase finished.
    ComputeDone,
    /// The run's controller decided how the step runs (adaptive runs
    /// only; scheduled runs carry no decision events).
    Decision {
        /// Step index.
        step: usize,
        /// `true` when the controller chose the matched configuration.
        matched: bool,
        /// The controller's rationale (its `explain` line).
        why: String,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time.
    pub at: Picos,
    /// The event.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12.3} µs] ", picos_to_secs(self.at) * 1e6)?;
        match &self.kind {
            TraceKind::Barrier => write!(f, "barrier"),
            TraceKind::StepStart { step, matched } => {
                write!(
                    f,
                    "step {step} start ({})",
                    if *matched { "matched" } else { "base" }
                )
            }
            TraceKind::ReconfigStart { ports } => write!(f, "reconfigure {ports} ports"),
            TraceKind::ArbitrationWait { granted_at } => {
                write!(
                    f,
                    "fabric busy — request granted at {:.3} µs",
                    picos_to_secs(*granted_at) * 1e6
                )
            }
            TraceKind::ReconfigDone => write!(f, "reconfiguration done"),
            TraceKind::FlowsStart { count } => write!(f, "{count} flows released"),
            TraceKind::StepDone { step } => write!(f, "step {step} done"),
            TraceKind::ComputeStart => write!(f, "compute start"),
            TraceKind::ComputeDone => write!(f, "compute done"),
            TraceKind::Decision { why, .. } => write!(f, "decision: {why}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: 1_500_000,
            kind: TraceKind::StepStart {
                step: 2,
                matched: true,
            },
        };
        let s = e.to_string();
        assert!(s.contains("step 2 start (matched)"));
        assert!(s.contains("1.500"));
        let e = TraceEvent {
            at: 0,
            kind: TraceKind::ReconfigStart { ports: 8 },
        };
        assert!(e.to_string().contains("reconfigure 8 ports"));
        let e = TraceEvent {
            at: 0,
            kind: TraceKind::Decision {
                step: 1,
                matched: true,
                why: "greedy: step 1 runs matched".into(),
            },
        };
        assert!(e.to_string().contains("decision: greedy: step 1"));
    }
}
