//! Property-test blitz over the record format, plus executor-level
//! recording pins: writer→reader round-trips for arbitrary frame
//! sequences, every truncation/corruption is a typed parse error, and
//! recorded hash chains are independent of `APS_THREADS`.

use aps_core::controller::Greedy;
use aps_core::ReconfigAccounting;
use aps_cost::ReconfigModel;
use aps_fabric::CircuitSwitch;
use aps_flow::ThroughputSolver;
use aps_matrix::Matching;
use aps_replay::{
    diff_records, Frame, Recorder, ReplayError, ReplayReader, ReplayRecord, StateHash, NO_TENANT,
};
use aps_sim::{run_workload_recorded, RunConfig, StreamPricing};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<u64>(),
        0u64..3,
        0u64..2,
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        any::<u64>(),
    )
        .prop_map(
            |(step, tenant_sel, decision, (rates, timing, accounting, trace), state)| {
                Frame {
                    step,
                    // Mix single-stream and tenant-tagged frames.
                    tenant: if tenant_sel == 0 {
                        NO_TENANT
                    } else {
                        tenant_sel as u32
                    },
                    decision: decision as u8,
                    rates,
                    timing,
                    accounting,
                    trace,
                    state,
                }
            },
        )
}

fn arb_record() -> impl Strategy<Value = ReplayRecord> {
    (
        2u32..64,
        proptest::collection::vec(arb_frame(), 0..40),
        0usize..3,
        0usize..4,
    )
        .prop_map(|(n, frames, ctl, wl)| {
            let final_state = frames
                .last()
                .map_or(StateHash::new().chain().state, |f| f.state);
            ReplayRecord {
                n,
                controller: ["greedy", "threshold", "dp-planned"][ctl].to_owned(),
                workload: ["training-loop", "", "parameter-server", "π/λ-mixed"][wl].to_owned(),
                frames,
                final_state,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn writer_reader_roundtrips(record in arb_record()) {
        let bytes = record.to_bytes();
        let parsed = ReplayReader::parse(&bytes).expect("well-formed record");
        prop_assert_eq!(parsed, record);
    }

    #[test]
    fn any_truncation_is_a_typed_error(record in arb_record(), cut_sel in any::<u64>()) {
        let bytes = record.to_bytes();
        let cut = (cut_sel % bytes.len() as u64) as usize;
        prop_assert!(matches!(
            ReplayReader::parse(&bytes[..cut]),
            Err(ReplayError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupted_magic_never_parses(record in arb_record(), byte in 0usize..4, flip in 1u32..=255) {
        let mut bytes = record.to_bytes();
        bytes[byte] ^= flip as u8;
        prop_assert!(matches!(
            ReplayReader::parse(&bytes),
            Err(ReplayError::BadMagic(_))
        ));
    }

    #[test]
    fn diff_of_a_record_with_itself_is_clean(record in arb_record()) {
        let report = diff_records(&record, &record.clone());
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.compared, record.frames.len());
    }
}

fn record_training_run(steps: usize) -> ReplayRecord {
    use aps_collectives::workload::generators::TrainingLoop;
    let n = 8;
    let base = aps_topology::builders::ring_unidirectional(n).unwrap();
    let base_config = Matching::shift(n, 1).unwrap();
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    let mut fabric = CircuitSwitch::new(base_config.clone(), reconfig);
    let mut workload = TrainingLoop::new(n, 2, 1e6, 8e6, None).unwrap();
    let pricing = StreamPricing {
        reconfig,
        accounting: ReconfigAccounting::PaperConservative,
        solver: ThroughputSolver::ForcedPath,
    };
    let mut recorder = Recorder::new(n, "greedy", "training-loop");
    // Bound the endless loop through the segment API's absolute index.
    aps_sim::run_workload_segment(
        &mut fabric,
        &base,
        &mut workload,
        &Greedy,
        pricing,
        &RunConfig::paper_defaults(),
        None,
        steps,
        Some(&mut recorder),
    )
    .unwrap();
    recorder.into_record()
}

#[test]
fn recorded_hash_chain_is_stable_across_thread_counts() {
    // The record path must not consult the worker pool: a record taken
    // under APS_THREADS=1 and one taken under APS_THREADS=4 are
    // byte-identical.
    std::env::set_var("APS_THREADS", "1");
    let t1 = record_training_run(64);
    std::env::set_var("APS_THREADS", "4");
    let t4 = record_training_run(64);
    std::env::remove_var("APS_THREADS");
    assert_eq!(t1.frames.len(), 64);
    assert_eq!(t1, t4);
    assert_eq!(t1.to_bytes(), t4.to_bytes());
    let report = diff_records(&t1, &t4);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn full_report_and_totals_paths_record_identically() {
    // The totals executor synthesizes Decision trace events when a sink
    // is attached, so both faces produce bit-identical records.
    use aps_collectives::workload::generators::TrainingLoop;
    let n = 8;
    let base = aps_topology::builders::ring_unidirectional(n).unwrap();
    let base_config = Matching::shift(n, 1).unwrap();
    let reconfig = ReconfigModel::constant(10e-6).unwrap();
    let pricing = StreamPricing {
        reconfig,
        accounting: ReconfigAccounting::PaperConservative,
        solver: ThroughputSolver::ForcedPath,
    };
    let cfg = RunConfig::paper_defaults();

    let mut full_rec = Recorder::new(n, "greedy", "training-loop");
    let mut fabric = CircuitSwitch::new(base_config.clone(), reconfig);
    let mut workload = TrainingLoop::new(n, 2, 1e6, 8e6, Some(4)).unwrap();
    run_workload_recorded(
        &mut fabric,
        &base,
        &mut workload,
        &Greedy,
        pricing,
        &cfg,
        Some(&mut full_rec),
    )
    .unwrap();

    let mut totals_rec = Recorder::new(n, "greedy", "training-loop");
    let mut fabric = CircuitSwitch::new(base_config, reconfig);
    let mut workload = TrainingLoop::new(n, 2, 1e6, 8e6, Some(4)).unwrap();
    aps_sim::run_workload_segment(
        &mut fabric,
        &base,
        &mut workload,
        &Greedy,
        pricing,
        &cfg,
        None,
        usize::MAX,
        Some(&mut totals_rec),
    )
    .unwrap();

    let (full, totals) = (full_rec.into_record(), totals_rec.into_record());
    assert!(!full.frames.is_empty());
    assert_eq!(full, totals);
}
