//! The on-disk replay record: a compact, versioned binary format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      b"APSR"                       4 bytes
//! version    u16 = 1
//! flags      u16 = 0 (reserved)
//! n          u32                            fabric port count
//! controller u32 length + UTF-8 bytes
//! workload   u32 length + UTF-8 bytes
//! frames     repeated:
//!   tag      u8 = 0x01
//!   step     u64      tenant   u32 (0xFFFFFFFF = single stream)
//!   decision u8       rates    u64
//!   timing   u64      accounting u64
//!   trace    u64      state    u64
//! trailer:
//!   tag      u8 = 0x00
//!   count    u64                            number of frames
//!   state    u64                            final chained state hash
//! ```
//!
//! The trailer makes truncation detectable: a record cut anywhere —
//! mid-frame, between frames, or before the trailer — fails to parse with
//! [`ReplayError::Truncated`], and a trailer whose count or final state
//! disagrees with the frames fails with [`ReplayError::TrailerMismatch`].
//! Any schema change bumps [`FORMAT_VERSION`]; readers reject newer
//! versions instead of misparsing them.

use std::fmt;

/// The 4-byte magic prefix of every replay record.
pub const MAGIC: [u8; 4] = *b"APSR";
/// Current record schema version.
pub const FORMAT_VERSION: u16 = 1;

/// One step's worth of digests; see
/// [`StateHash::absorb_step`](crate::hash::StateHash::absorb_step) for
/// what each field class covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Step index within its stream (per-tenant index in tenant runs).
    pub step: u64,
    /// Tenant index, or [`NO_TENANT`](crate::hash::NO_TENANT).
    pub tenant: u32,
    /// The decision byte ([`ConfigChoice::to_byte`](aps_core::ConfigChoice::to_byte)).
    pub decision: u8,
    /// Digest of the flow-level outcome (transfer time, hop count).
    pub rates: u64,
    /// Digest of the remaining timeline phases.
    pub timing: u64,
    /// Digest of reconfiguration accounting, fabric state and totals.
    pub accounting: u64,
    /// Digest of the step's trace events.
    pub trace: u64,
    /// Chained state hash after this step.
    pub state: u64,
}

/// A fully parsed (or fully recorded) replay record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayRecord {
    /// Fabric port count the run used.
    pub n: u32,
    /// Controller name (or `"scheduled"` / executor tag).
    pub controller: String,
    /// Workload name.
    pub workload: String,
    /// Per-step frames in execution order.
    pub frames: Vec<Frame>,
    /// The final chained state hash (equals the last frame's `state`, or
    /// the FNV offset basis for an empty record).
    pub final_state: u64,
}

impl ReplayRecord {
    /// Serializes the record; inverse of [`ReplayReader::parse`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ReplayWriter::new(self.n, &self.controller, &self.workload);
        for f in &self.frames {
            w.push_frame(f);
        }
        // Preserve the stored final state verbatim so serialization is a
        // true inverse even for hand-corrupted records under test.
        w.final_state = self.final_state;
        w.finish()
    }
}

/// Why a record failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The record's schema version is newer than this reader.
    UnsupportedVersion(u16),
    /// The byte stream ended mid-structure.
    Truncated {
        /// Offset at which more bytes were needed.
        at: usize,
    },
    /// A frame tag byte was neither a frame (0x01) nor the trailer (0x00).
    BadFrameTag(u8),
    /// The trailer's frame count disagrees with the frames present.
    TrailerMismatch {
        /// Count the trailer declared.
        declared: u64,
        /// Frames actually parsed.
        found: u64,
    },
    /// The trailer's final state hash disagrees with the last frame.
    FinalStateMismatch {
        /// Hash the trailer declared.
        declared: u64,
        /// The last frame's chained state.
        found: u64,
    },
    /// A name field was not valid UTF-8.
    BadName,
    /// Trailing garbage after the trailer.
    TrailingBytes {
        /// Offset of the first unexpected byte.
        at: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"APSR\")"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported record version {v} (reader speaks {FORMAT_VERSION})"
                )
            }
            Self::Truncated { at } => write!(f, "record truncated at byte {at}"),
            Self::BadFrameTag(t) => write!(f, "bad frame tag 0x{t:02x}"),
            Self::TrailerMismatch { declared, found } => {
                write!(f, "trailer declares {declared} frames but {found} present")
            }
            Self::FinalStateMismatch { declared, found } => write!(
                f,
                "trailer declares final state {declared:#018x} but frames end at {found:#018x}"
            ),
            Self::BadName => write!(f, "name field is not valid UTF-8"),
            Self::TrailingBytes { at } => write!(f, "trailing bytes after trailer at byte {at}"),
        }
    }
}

impl std::error::Error for ReplayError {}

const FRAME_TAG: u8 = 0x01;
const TRAILER_TAG: u8 = 0x00;

/// Incremental record serializer.
#[derive(Debug, Clone)]
pub struct ReplayWriter {
    buf: Vec<u8>,
    frames: u64,
    final_state: u64,
}

impl ReplayWriter {
    /// Starts a record: magic, version and run metadata.
    pub fn new(n: u32, controller: &str, workload: &str) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        for name in [controller, workload] {
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        Self {
            buf,
            frames: 0,
            final_state: crate::hash::StateHash::new().chain().state,
        }
    }

    /// Appends one frame.
    pub fn push_frame(&mut self, f: &Frame) {
        self.buf.push(FRAME_TAG);
        self.buf.extend_from_slice(&f.step.to_le_bytes());
        self.buf.extend_from_slice(&f.tenant.to_le_bytes());
        self.buf.push(f.decision);
        for d in [f.rates, f.timing, f.accounting, f.trace, f.state] {
            self.buf.extend_from_slice(&d.to_le_bytes());
        }
        self.frames += 1;
        self.final_state = f.state;
    }

    /// Seals the record with its trailer and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.push(TRAILER_TAG);
        self.buf.extend_from_slice(&self.frames.to_le_bytes());
        self.buf.extend_from_slice(&self.final_state.to_le_bytes());
        self.buf
    }
}

/// Record parser; the only entry point is [`ReplayReader::parse`].
#[derive(Debug)]
pub struct ReplayReader;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ReplayError> {
        if self.buf.len() - self.pos < len {
            return Err(ReplayError::Truncated { at: self.buf.len() });
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ReplayError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ReplayError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ReplayError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ReplayError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn name(&mut self) -> Result<String, ReplayError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ReplayError::BadName)
    }
}

impl ReplayReader {
    /// Parses a complete record, validating magic, version, framing and
    /// the trailer's truncation guards.
    ///
    /// # Errors
    ///
    /// Every way the bytes can be malformed maps to a distinct
    /// [`ReplayError`]; see the variant docs.
    pub fn parse(bytes: &[u8]) -> Result<ReplayRecord, ReplayError> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        let magic: [u8; 4] = c.take(4)?.try_into().unwrap();
        if magic != MAGIC {
            return Err(ReplayError::BadMagic(magic));
        }
        let version = c.u16()?;
        if version != FORMAT_VERSION {
            return Err(ReplayError::UnsupportedVersion(version));
        }
        let _flags = c.u16()?;
        let n = c.u32()?;
        let controller = c.name()?;
        let workload = c.name()?;

        let mut frames = Vec::new();
        loop {
            match c.u8()? {
                FRAME_TAG => {
                    let step = c.u64()?;
                    let tenant = c.u32()?;
                    let decision = c.u8()?;
                    let rates = c.u64()?;
                    let timing = c.u64()?;
                    let accounting = c.u64()?;
                    let trace = c.u64()?;
                    let state = c.u64()?;
                    frames.push(Frame {
                        step,
                        tenant,
                        decision,
                        rates,
                        timing,
                        accounting,
                        trace,
                        state,
                    });
                }
                TRAILER_TAG => break,
                t => return Err(ReplayError::BadFrameTag(t)),
            }
        }
        let declared = c.u64()?;
        if declared != frames.len() as u64 {
            return Err(ReplayError::TrailerMismatch {
                declared,
                found: frames.len() as u64,
            });
        }
        let final_state = c.u64()?;
        let found = frames
            .last()
            .map_or(crate::hash::StateHash::new().chain().state, |f| f.state);
        if final_state != found {
            return Err(ReplayError::FinalStateMismatch {
                declared: final_state,
                found,
            });
        }
        if c.pos != bytes.len() {
            return Err(ReplayError::TrailingBytes { at: c.pos });
        }
        Ok(ReplayRecord {
            n,
            controller,
            workload,
            frames,
            final_state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(i: u64) -> Frame {
        Frame {
            step: i,
            tenant: crate::hash::NO_TENANT,
            decision: (i % 2) as u8,
            rates: i.wrapping_mul(3),
            timing: i.wrapping_mul(5),
            accounting: i.wrapping_mul(7),
            trace: i.wrapping_mul(11),
            state: i.wrapping_mul(13) + 1,
        }
    }

    fn record(frames: usize) -> ReplayRecord {
        let fs: Vec<Frame> = (0..frames as u64).map(frame).collect();
        let final_state = fs
            .last()
            .map_or(crate::hash::StateHash::new().chain().state, |f| f.state);
        ReplayRecord {
            n: 16,
            controller: "greedy".into(),
            workload: "training-loop".into(),
            frames: fs,
            final_state,
        }
    }

    #[test]
    fn roundtrip() {
        for frames in [0usize, 1, 7] {
            let r = record(frames);
            assert_eq!(ReplayReader::parse(&r.to_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = record(2).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ReplayReader::parse(&bytes),
            Err(ReplayError::BadMagic(_))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = record(1).to_bytes();
        bytes[4] = 0xFF;
        assert!(matches!(
            ReplayReader::parse(&bytes),
            Err(ReplayError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = record(3).to_bytes();
        for cut in 0..bytes.len() {
            let err = ReplayReader::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ReplayError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailer_guards_catch_tampering() {
        let r = record(2);
        let mut w = ReplayWriter::new(r.n, &r.controller, &r.workload);
        for f in &r.frames {
            w.push_frame(f);
        }
        w.frames = 5; // lie about the count
        assert!(matches!(
            ReplayReader::parse(&w.finish()),
            Err(ReplayError::TrailerMismatch { .. })
        ));

        let mut bytes = r.to_bytes();
        let len = bytes.len();
        bytes[len - 1] ^= 0x01; // flip a bit in the trailer's final state
        assert!(matches!(
            ReplayReader::parse(&bytes),
            Err(ReplayError::FinalStateMismatch { .. })
        ));

        let mut bytes = r.to_bytes();
        bytes.push(0u8);
        assert!(matches!(
            ReplayReader::parse(&bytes),
            Err(ReplayError::TrailingBytes { .. })
        ));
    }
}
