//! # aps-replay — deterministic replay for the simulation stack
//!
//! The simulator is deterministic by construction: integer picoseconds,
//! no wall-clock, no unordered iteration, bit-identical at any
//! `APS_THREADS`. This crate makes that property *checkable* and
//! *actionable*:
//!
//! * [`hash`] — a dependency-free chained FNV-1a state hasher
//!   ([`StateHash::absorb_step`]) over a canonical little-endian encoding
//!   of each committed step: the controller's decision, the flow-level
//!   rates, the timeline phases, the fabric's matching and busy-clock,
//!   cumulative accounting totals, and the trace events;
//! * [`mod@format`] — a compact versioned binary record
//!   ([`ReplayWriter`]/[`ReplayReader`], magic `"APSR"`) of per-step
//!   digest frames, with trailer guards that make truncation and
//!   tampering parse errors rather than silent corruption;
//! * [`recorder`] — the [`aps_sim::record::RecordSink`] implementation
//!   ([`Recorder`]) that any `_recorded` executor entry point (or the
//!   `Experiment::record` facade) feeds;
//! * [`verify`] — [`diff_records`] compares a stored record against a
//!   re-execution and produces a [`DivergenceReport`] naming the first
//!   diverging step and which field class (decision / rates / timing /
//!   accounting) broke;
//! * [`snapshot`] — [`Snapshot`] pairs the simulator's
//!   [`aps_sim::stream::StreamCheckpoint`] with the recorder's
//!   [`ChainState`], so an endless run can be checkpointed mid-stream and
//!   resumed bit-identically, hash chain included.
//!
//! Recording is zero-cost when disabled: the executors take
//! `Option<&mut dyn RecordSink>` and never construct a record without a
//! sink.

pub mod format;
pub mod hash;
pub mod recorder;
pub mod snapshot;
pub mod verify;

pub use format::{
    Frame, ReplayError, ReplayReader, ReplayRecord, ReplayWriter, FORMAT_VERSION, MAGIC,
};
pub use hash::{ChainState, Fnv64, StateHash, NO_TENANT};
pub use recorder::Recorder;
pub use snapshot::Snapshot;
pub use verify::{diff_records, Divergence, DivergenceReport, FieldClass};
