//! Mid-run checkpoints: pause an endless stream, resume it bit-identically.
//!
//! A [`Snapshot`] is the pair of states a resumed run needs:
//!
//! * the simulator's [`StreamCheckpoint`] — stream cursor position,
//!   previous configuration choice, communication/compute clocks,
//!   accumulated totals and the fabric's device state. The workload
//!   cursor itself is re-derived through the `Workload::reset` replay
//!   contract, which is why snapshots work for *any* workload, including
//!   endless training loops;
//! * the recorder's [`ChainState`] — so frames recorded after the resume
//!   chain onto the interrupted run's hashes and the concatenated record
//!   is bit-identical to an uninterrupted recording.
//!
//! Snapshots are in-memory values (the record format on disk is the
//! replay *record*, not the checkpoint); a million-step run checkpoints
//! in O(fabric) space because totals, not per-step reports, are carried.

use crate::hash::ChainState;
use aps_sim::stream::StreamCheckpoint;

/// A resumable capture of a streaming adaptive run; see the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The simulator-side state to resume from.
    pub checkpoint: StreamCheckpoint,
    /// The recorder-side hash chain at the capture point.
    pub chain: ChainState,
}

impl Snapshot {
    /// Steps executed before this capture.
    pub fn steps_done(&self) -> usize {
        self.checkpoint.steps_done
    }
}
