//! Streaming 64-bit state hashing over canonically encoded steps.
//!
//! Every quantity the simulator produces is an integer (picoseconds, port
//! counts, hop counts), so a byte-exact canonical encoding exists: each
//! field is serialized little-endian into an FNV-1a hasher. [`StateHash`]
//! chains those per-step digests into a running hash — two runs are
//! bit-identical if and only if their final chained hashes (and frame
//! sequences) agree, and the *first* differing frame localizes a
//! divergence to a step and a field class.
//!
//! Per step, four independent field-class digests are taken (see
//! [`Frame`]):
//!
//! * **decision** — the controller's choice byte
//!   ([`ConfigChoice::to_byte`]) plus the step/tenant indices;
//! * **rates** — the flow-level outcome: transfer time and hop count;
//! * **timing** — the remaining timeline phases (barrier, α, visible
//!   reconfiguration stall, arbitration wait, compute);
//! * **accounting** — ports changed, the fabric's post-step matching and
//!   busy-until clock, and the chain's cumulative totals.
//!
//! A fifth **trace** digest covers the step's trace events (order,
//! timestamps and payloads — including the controller's `why` rationale
//! strings). The chained **state** hash folds all five plus the previous
//! state, so any single-bit change anywhere propagates to every later
//! frame.

use crate::format::Frame;
use aps_core::ConfigChoice;
use aps_sim::record::StepRecord;
use aps_sim::trace::{TraceEvent, TraceKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Tenant encoding used throughout the record format: single-stream runs
/// record this sentinel instead of a tenant index.
pub const NO_TENANT: u32 = u32::MAX;

/// A dependency-free 64-bit FNV-1a streaming hasher.
///
/// Not cryptographic — it detects *accidental* divergence (nondeterminism,
/// format drift, bit-rot), which is all deterministic replay needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Starts a hasher at the standard FNV-1a offset basis.
    pub const fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a `u64` in little-endian canonical form.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (canonicalized to `u64` so 32-bit and 64-bit
    /// hosts hash identically).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        self.write(bytes);
    }

    /// The current digest.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_events(events: &[TraceEvent]) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(events.len());
    for e in events {
        h.write_u64(e.at);
        match &e.kind {
            TraceKind::Barrier => h.write_u8(1),
            TraceKind::StepStart { step, matched } => {
                h.write_u8(2);
                h.write_usize(*step);
                h.write_u8(u8::from(*matched));
            }
            TraceKind::ReconfigStart { ports } => {
                h.write_u8(3);
                h.write_usize(*ports);
            }
            TraceKind::ArbitrationWait { granted_at } => {
                h.write_u8(4);
                h.write_u64(*granted_at);
            }
            TraceKind::ReconfigDone => h.write_u8(5),
            TraceKind::FlowsStart { count } => {
                h.write_u8(6);
                h.write_usize(*count);
            }
            TraceKind::StepDone { step } => {
                h.write_u8(7);
                h.write_usize(*step);
            }
            TraceKind::ComputeStart => h.write_u8(8),
            TraceKind::ComputeDone => h.write_u8(9),
            TraceKind::Decision { step, matched, why } => {
                h.write_u8(10);
                h.write_usize(*step);
                h.write_u8(u8::from(*matched));
                h.write_bytes(why.as_bytes());
            }
            // `TraceKind` is extend-only; an unknown kind still perturbs
            // the digest so it cannot silently alias an empty slot.
            _ => h.write_u8(u8::MAX),
        }
    }
    h.finish()
}

/// The chained hasher: absorbs committed steps one at a time and keeps
/// running accounting totals, so the final state hash covers the whole
/// run. `Copy` on purpose — a snapshot stores this state verbatim and a
/// resumed recorder continues the chain bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainState {
    /// Chained state hash after the last absorbed step.
    pub state: u64,
    /// Steps absorbed so far.
    pub steps: u64,
    /// Cumulative step wall time (barrier + α + reconfig + transfer +
    /// compute) across absorbed steps.
    pub cum_total_ps: u64,
    /// Cumulative TX ports retargeted.
    pub cum_ports_changed: u64,
    /// Cumulative physical reconfiguration events.
    pub cum_reconfig_events: u64,
}

impl Default for ChainState {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainState {
    /// The chain state before any step: the FNV offset basis and zeroed
    /// totals.
    pub const fn new() -> Self {
        Self {
            state: FNV_OFFSET,
            steps: 0,
            cum_total_ps: 0,
            cum_ports_changed: 0,
            cum_reconfig_events: 0,
        }
    }
}

/// The streaming state hasher; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateHash {
    chain: ChainState,
}

impl StateHash {
    /// Starts a fresh chain.
    pub const fn new() -> Self {
        Self {
            chain: ChainState::new(),
        }
    }

    /// Continues a chain from a snapshot's saved state.
    pub const fn resume(chain: ChainState) -> Self {
        Self { chain }
    }

    /// The current chain state (store this in a snapshot).
    pub const fn chain(&self) -> ChainState {
        self.chain
    }

    /// Absorbs one committed step, returning its frame of field-class
    /// digests plus the updated chained state hash.
    pub fn absorb_step(&mut self, record: &StepRecord<'_>) -> Frame {
        let tenant = match record.tenant {
            Some(t) => t as u32,
            None => NO_TENANT,
        };
        let decision = if record.matched {
            ConfigChoice::Matched.to_byte()
        } else {
            ConfigChoice::Base.to_byte()
        };

        let mut dh = Fnv64::new();
        dh.write_usize(record.step);
        dh.write(&tenant.to_le_bytes());
        dh.write_u8(decision);
        let decision_digest = dh.finish();

        let r = record.report;
        let mut rh = Fnv64::new();
        rh.write_u64(r.transfer_ps);
        rh.write_usize(r.max_hops);
        let rates = rh.finish();

        let mut th = Fnv64::new();
        th.write_u64(r.barrier_ps);
        th.write_u64(r.alpha_ps);
        th.write_u64(r.reconfig_ps);
        th.write_u64(r.arbitration_ps);
        th.write_u64(r.compute_ps);
        let timing = th.finish();

        self.chain.steps += 1;
        self.chain.cum_total_ps += r.total_ps();
        self.chain.cum_ports_changed += r.ports_changed as u64;
        self.chain.cum_reconfig_events += u64::from(r.ports_changed > 0);

        let mut ah = Fnv64::new();
        ah.write_usize(r.ports_changed);
        ah.write_usize(record.config.n());
        for p in 0..record.config.n() {
            // `None` (an unmatched port) canonicalizes to `u64::MAX`,
            // which no real destination can collide with.
            ah.write_u64(record.config.dst_of(p).map_or(u64::MAX, |d| d as u64));
        }
        ah.write_u64(record.busy_until);
        ah.write_u64(self.chain.cum_total_ps);
        ah.write_u64(self.chain.cum_ports_changed);
        ah.write_u64(self.chain.cum_reconfig_events);
        let accounting = ah.finish();

        let trace = hash_events(record.events);

        let mut sh = Fnv64::new();
        sh.write_u64(self.chain.state);
        sh.write_u64(decision_digest);
        sh.write_u64(rates);
        sh.write_u64(timing);
        sh.write_u64(accounting);
        sh.write_u64(trace);
        self.chain.state = sh.finish();

        Frame {
            step: record.step as u64,
            tenant,
            decision,
            rates,
            timing,
            accounting,
            trace,
            state: self.chain.state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn canonical_widths_do_not_alias() {
        // (1u64, 2u64) must not hash like (2u64, 1u64) or like the bytes
        // concatenated differently.
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_string_aliasing() {
        let mut a = Fnv64::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fnv64::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn event_digest_covers_order_and_payload() {
        use aps_sim::trace::{TraceEvent, TraceKind};
        let e1 = TraceEvent {
            at: 10,
            kind: TraceKind::Barrier,
        };
        let e2 = TraceEvent {
            at: 10,
            kind: TraceKind::ReconfigDone,
        };
        assert_ne!(
            hash_events(&[e1.clone(), e2.clone()]),
            hash_events(&[e2, e1])
        );
        let why_a = TraceEvent {
            at: 0,
            kind: TraceKind::Decision {
                step: 0,
                matched: true,
                why: "a".into(),
            },
        };
        let why_b = TraceEvent {
            at: 0,
            kind: TraceKind::Decision {
                step: 0,
                matched: true,
                why: "b".into(),
            },
        };
        assert_ne!(hash_events(&[why_a]), hash_events(&[why_b]));
    }
}
