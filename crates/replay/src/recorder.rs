//! The [`RecordSink`] implementation: turns the simulator's per-step feed
//! into a [`ReplayRecord`].

use crate::format::{Frame, ReplayRecord};
use crate::hash::{ChainState, StateHash};
use aps_sim::record::{RecordSink, StepRecord};

/// Accumulates frames from a run; plug into any `_recorded` executor
/// entry point (or [`Experiment::record`][exp] at the facade level).
///
/// [exp]: https://docs.rs/adaptive-photonics
#[derive(Debug, Clone)]
pub struct Recorder {
    hash: StateHash,
    frames: Vec<Frame>,
    n: u32,
    controller: String,
    workload: String,
}

impl Recorder {
    /// Starts a fresh recording tagged with the run's metadata.
    pub fn new(n: usize, controller: &str, workload: &str) -> Self {
        Self {
            hash: StateHash::new(),
            frames: Vec::new(),
            n: n as u32,
            controller: controller.to_owned(),
            workload: workload.to_owned(),
        }
    }

    /// Continues a recording from a snapshot's chain state: the resumed
    /// segment's frames chain onto the interrupted run's hashes, so the
    /// concatenated record is bit-identical to an uninterrupted one.
    pub fn resume(chain: ChainState, n: usize, controller: &str, workload: &str) -> Self {
        Self {
            hash: StateHash::resume(chain),
            frames: Vec::new(),
            n: n as u32,
            controller: controller.to_owned(),
            workload: workload.to_owned(),
        }
    }

    /// The chain state after everything recorded so far.
    pub fn chain(&self) -> ChainState {
        self.hash.chain()
    }

    /// Frames recorded so far (this segment only, for a resumed recorder).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Finishes the recording.
    pub fn into_record(self) -> ReplayRecord {
        let final_state = self.hash.chain().state;
        ReplayRecord {
            n: self.n,
            controller: self.controller,
            workload: self.workload,
            frames: self.frames,
            final_state,
        }
    }
}

impl RecordSink for Recorder {
    fn record_step(&mut self, record: &StepRecord<'_>) {
        let frame = self.hash.absorb_step(record);
        self.frames.push(frame);
    }
}
