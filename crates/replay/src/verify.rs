//! Divergence detection: diff a recorded run against a re-execution.
//!
//! [`diff_records`] walks two frame sequences in lockstep and reports the
//! *first* frame where they disagree, classified by field class. The
//! classification order is deliberate — it names the most causal class:
//!
//! 1. **decision** — the step/tenant interleaving or the controller's
//!    choice differs; everything downstream of a different decision
//!    differs trivially, so nothing else is worth reporting;
//! 2. **rates** — same decision, different flow-level outcome (transfer
//!    time or hop count): the fluid solver diverged;
//! 3. **timing** — flows agree but a timeline phase (barrier, α,
//!    reconfiguration stall, arbitration, compute) differs; a divergence
//!    visible *only* in the trace digest (event order/timestamps) also
//!    classifies here, since trace events are the timeline's fine print;
//! 4. **accounting** — everything observable agrees but the fabric
//!    state, ports-changed count or cumulative totals differ (including a
//!    corrupted chain hash with clean per-class digests).

use crate::format::ReplayRecord;
use std::fmt;

/// Which class of per-step state diverged first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldClass {
    /// Controller decision or step/tenant interleaving.
    Decision,
    /// Flow-level outcome (transfer time, hop count).
    Rates,
    /// Timeline phases or trace events.
    Timing,
    /// Fabric state, reconfiguration accounting or cumulative totals.
    Accounting,
}

impl fmt::Display for FieldClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Decision => "decision",
            Self::Rates => "rates",
            Self::Timing => "timing",
            Self::Accounting => "accounting",
        })
    }
}

/// The first point at which two runs disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the diverging frame in execution order.
    pub frame: usize,
    /// The recorded frame's step index.
    pub step: u64,
    /// The recorded frame's tenant, or [`NO_TENANT`](crate::hash::NO_TENANT).
    pub tenant: u32,
    /// The most causal diverging field class.
    pub class: FieldClass,
    /// The recorded digest (decision byte widened for [`FieldClass::Decision`]).
    pub recorded: u64,
    /// The re-executed digest.
    pub reexecuted: u64,
}

/// The outcome of verifying a record against a re-execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Frames compared (the shorter of the two sequences).
    pub compared: usize,
    /// Frames in the recorded run.
    pub recorded_len: usize,
    /// Frames in the re-executed run.
    pub reexec_len: usize,
    /// The first divergence, if any frame disagreed.
    pub first: Option<Divergence>,
}

impl DivergenceReport {
    /// `true` when the runs are bit-identical: same length, no diverging
    /// frame.
    pub fn is_clean(&self) -> bool {
        self.first.is_none() && self.recorded_len == self.reexec_len
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = &self.first {
            write!(
                f,
                "diverged at frame {} (step {}{}): {} class; recorded {:#018x}, re-executed {:#018x}",
                d.frame,
                d.step,
                if d.tenant == crate::hash::NO_TENANT {
                    String::new()
                } else {
                    format!(", tenant {}", d.tenant)
                },
                d.class,
                d.recorded,
                d.reexecuted
            )
        } else if self.recorded_len != self.reexec_len {
            write!(
                f,
                "lengths diverged after {} identical frames: recorded {}, re-executed {}",
                self.compared, self.recorded_len, self.reexec_len
            )
        } else {
            write!(f, "clean: {} frames bit-identical", self.compared)
        }
    }
}

/// Diffs a recorded run against a re-execution; see the
/// [module docs](self) for the classification rules.
pub fn diff_records(recorded: &ReplayRecord, reexec: &ReplayRecord) -> DivergenceReport {
    let compared = recorded.frames.len().min(reexec.frames.len());
    let mut first = None;
    for (i, (a, b)) in recorded.frames.iter().zip(&reexec.frames).enumerate() {
        let class = if a.step != b.step || a.tenant != b.tenant || a.decision != b.decision {
            Some((
                FieldClass::Decision,
                u64::from(a.decision),
                u64::from(b.decision),
            ))
        } else if a.rates != b.rates {
            Some((FieldClass::Rates, a.rates, b.rates))
        } else if a.timing != b.timing {
            Some((FieldClass::Timing, a.timing, b.timing))
        } else if a.trace != b.trace {
            Some((FieldClass::Timing, a.trace, b.trace))
        } else if a.accounting != b.accounting {
            Some((FieldClass::Accounting, a.accounting, b.accounting))
        } else if a.state != b.state {
            // Per-class digests agree but the chain broke: an upstream
            // frame was dropped/injected or the stored chain was
            // corrupted — an accounting-of-history problem.
            Some((FieldClass::Accounting, a.state, b.state))
        } else {
            None
        };
        if let Some((class, recorded, reexecuted)) = class {
            first = Some(Divergence {
                frame: i,
                step: a.step,
                tenant: a.tenant,
                class,
                recorded,
                reexecuted,
            });
            break;
        }
    }
    DivergenceReport {
        compared,
        recorded_len: recorded.frames.len(),
        reexec_len: reexec.frames.len(),
        first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Frame;
    use crate::hash::NO_TENANT;

    fn rec(frames: Vec<Frame>) -> ReplayRecord {
        let final_state = frames.last().map_or(0, |f| f.state);
        ReplayRecord {
            n: 8,
            controller: "c".into(),
            workload: "w".into(),
            frames,
            final_state,
        }
    }

    fn frame(i: u64) -> Frame {
        Frame {
            step: i,
            tenant: NO_TENANT,
            decision: 0,
            rates: 100 + i,
            timing: 200 + i,
            accounting: 300 + i,
            trace: 400 + i,
            state: 500 + i,
        }
    }

    #[test]
    fn clean_runs_report_clean() {
        let a = rec((0..4).map(frame).collect());
        let r = diff_records(&a, &a.clone());
        assert!(r.is_clean());
        assert_eq!(r.compared, 4);
        assert!(r.to_string().contains("clean"));
    }

    #[test]
    fn classification_priority_names_the_causal_class() {
        let a = rec((0..4).map(frame).collect());

        // Decision flip: even if downstream digests also differ, the
        // report names the decision.
        let mut b = a.clone();
        b.frames[2].decision = 1;
        b.frames[2].rates ^= 0xFF;
        b.frames[2].state ^= 0xFF;
        let r = diff_records(&a, &b);
        let d = r.first.unwrap();
        assert_eq!((d.frame, d.class), (2, FieldClass::Decision));
        assert_eq!((d.recorded, d.reexecuted), (0, 1));

        let mut b = a.clone();
        b.frames[1].rates ^= 1;
        assert_eq!(diff_records(&a, &b).first.unwrap().class, FieldClass::Rates);

        let mut b = a.clone();
        b.frames[3].timing ^= 1;
        let d = diff_records(&a, &b).first.unwrap();
        assert_eq!((d.frame, d.class), (3, FieldClass::Timing));

        // Trace-only divergence classifies as timing.
        let mut b = a.clone();
        b.frames[0].trace ^= 1;
        assert_eq!(
            diff_records(&a, &b).first.unwrap().class,
            FieldClass::Timing
        );

        let mut b = a.clone();
        b.frames[0].accounting ^= 1;
        assert_eq!(
            diff_records(&a, &b).first.unwrap().class,
            FieldClass::Accounting
        );

        // Chain-only corruption also lands in accounting.
        let mut b = a.clone();
        b.frames[0].state ^= 1;
        assert_eq!(
            diff_records(&a, &b).first.unwrap().class,
            FieldClass::Accounting
        );
    }

    #[test]
    fn length_mismatch_is_not_clean() {
        let a = rec((0..4).map(frame).collect());
        let b = rec((0..3).map(frame).collect());
        let r = diff_records(&a, &b);
        assert!(r.first.is_none());
        assert!(!r.is_clean());
        assert_eq!(r.compared, 3);
        assert!(r.to_string().contains("lengths diverged"));
    }

    #[test]
    fn display_names_step_and_class() {
        let a = rec((0..4).map(frame).collect());
        let mut b = a.clone();
        b.frames[2].timing ^= 1;
        let s = diff_records(&a, &b).to_string();
        assert!(s.contains("frame 2"), "{s}");
        assert!(s.contains("timing class"), "{s}");
    }
}
