//! Property tests for the streaming workload combinators and generators:
//! conservation laws under composition and seed-replayable determinism.
//!
//! The PR 2 determinism guarantee extends to workloads: a stream is a
//! pure function of its construction arguments (including RNG seeds), so
//! replaying after `reset()` — or constructing an identical instance on
//! any other thread — yields bit-identical steps. The cross-thread half
//! of that guarantee is pinned at the workspace root
//! (`tests/workload_stream.rs`); this suite pins the algebra.

use aps_collectives::workload::generators::{
    OnOffBursty, ParameterServer, RandomPermutations, TrainingLoop,
};
use aps_collectives::workload::{materialize, Overlay, Workload};
use aps_collectives::{allreduce, alltoall, Schedule};
use proptest::prelude::*;

/// Σ over steps of `bytes_per_pair · |pairs|` — the conserved quantity of
/// every rearranging combinator.
fn total_pair_bytes(s: &Schedule) -> f64 {
    s.steps()
        .iter()
        .map(|st| st.bytes_per_pair * st.matching.len() as f64)
        .sum()
}

fn drain(w: &mut dyn Workload) -> Schedule {
    materialize(w, 1_000_000).expect("bounded test workloads materialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn then_conserves_steps_and_bytes(exp in 1u32..5, m in 1.0f64..1e8) {
        let n = 1usize << exp;
        let a = allreduce::halving_doubling::build(n, m).unwrap().schedule;
        let b = alltoall::linear_shift(n, 2.0 * m).unwrap().schedule;
        let mut w = a.clone().into_workload().then(b.clone().into_workload()).unwrap();
        let got = drain(&mut w);
        prop_assert_eq!(got.num_steps(), a.num_steps() + b.num_steps());
        let diff = total_pair_bytes(&got) - total_pair_bytes(&a) - total_pair_bytes(&b);
        prop_assert!(diff.abs() <= 1e-9 * total_pair_bytes(&got));
        // The lazy composition agrees with the materialized Schedule::then.
        let eager = a.then(b).unwrap();
        prop_assert_eq!(got.steps(), eager.steps());
    }

    #[test]
    fn repeat_conserves_steps_and_bytes(exp in 1u32..5, m in 1.0f64..1e8, epochs in 1usize..6) {
        let n = 1usize << exp;
        let a = allreduce::halving_doubling::build(n, m).unwrap().schedule;
        let mut w = a.clone().into_workload().repeat(epochs);
        let got = drain(&mut w);
        prop_assert_eq!(got.num_steps(), epochs * a.num_steps());
        let want = epochs as f64 * total_pair_bytes(&a);
        prop_assert!((total_pair_bytes(&got) - want).abs() <= 1e-9 * want);
        // Every epoch replays the same steps.
        for e in 0..epochs {
            let chunk = &got.steps()[e * a.num_steps()..(e + 1) * a.num_steps()];
            prop_assert_eq!(chunk, a.steps());
        }
    }

    #[test]
    fn interleave_conserves_steps_and_bytes(exp in 1u32..5, m in 1.0f64..1e8) {
        let n = 1usize << exp;
        let a = allreduce::halving_doubling::build(n, m).unwrap().schedule;
        let b = alltoall::linear_shift(n, m / 2.0).unwrap().schedule;
        let mut w = a.clone().into_workload().interleave(b.clone().into_workload()).unwrap();
        let got = drain(&mut w);
        prop_assert_eq!(got.num_steps(), a.num_steps() + b.num_steps());
        let want = total_pair_bytes(&a) + total_pair_bytes(&b);
        prop_assert!((total_pair_bytes(&got) - want).abs() <= 1e-9 * want);
        // Interleaving is a permutation of the constituent steps: each
        // constituent's steps appear in order.
        let mut ai = a.steps().iter();
        let mut bi = b.steps().iter();
        for st in got.steps() {
            let from_a = ai.clone().next() == Some(st);
            if from_a { ai.next(); } else {
                prop_assert_eq!(bi.next(), Some(st));
            }
        }
    }

    #[test]
    fn scaled_conserves_steps_and_scales_bytes(exp in 1u32..5, m in 1.0f64..1e6, f in 0.25f64..8.0) {
        let n = 1usize << exp;
        let a = allreduce::halving_doubling::build(n, m).unwrap().schedule;
        let mut w = a.clone().into_workload().scaled(f).unwrap();
        let got = drain(&mut w);
        prop_assert_eq!(got.num_steps(), a.num_steps());
        let want = f * total_pair_bytes(&a);
        prop_assert!((total_pair_bytes(&got) - want).abs() <= 1e-9 * want.max(1.0));
    }

    #[test]
    fn overlay_conserves_pair_bytes(exp in 1u32..4, m in 1.0f64..1e8) {
        let k = 1usize << exp; // per-job size
        let a = allreduce::halving_doubling::build(k, m).unwrap().schedule;
        let b = alltoall::linear_shift(k, m).unwrap().schedule;
        let want = total_pair_bytes(&a) + total_pair_bytes(&b);
        let mut w = Overlay::new(
            2 * k,
            vec![
                ((0..k).collect(), Box::new(a.into_workload()) as Box<dyn Workload>),
                ((k..2 * k).collect(), Box::new(b.into_workload())),
            ],
        )
        .unwrap();
        let got = drain(&mut w);
        prop_assert!((total_pair_bytes(&got) - want).abs() <= 1e-9 * want);
        // Merging never grows the step count beyond the constituents'.
        prop_assert!(got.num_steps() <= 1_000_000);
    }

    #[test]
    fn random_generators_replay_bit_identically(seed in any::<u64>(), exp in 1u32..5) {
        let n = (1usize << exp).max(4);
        let mut perms = RandomPermutations::new(n, 1e6, Some(24), seed).unwrap();
        let first = drain(&mut perms);
        perms.reset();
        prop_assert_eq!(first.steps(), drain(&mut perms).steps());
        // An independently constructed twin yields the same stream.
        let mut twin = RandomPermutations::new(n, 1e6, Some(24), seed).unwrap();
        prop_assert_eq!(first.steps(), drain(&mut twin).steps());

        let mut bursty = OnOffBursty::new(n, 1e6, 3, 2, Some(48), seed).unwrap();
        let first = drain(&mut bursty);
        bursty.reset();
        prop_assert_eq!(first.steps(), drain(&mut bursty).steps());
        let mut twin = OnOffBursty::new(n, 1e6, 3, 2, Some(48), seed).unwrap();
        prop_assert_eq!(first.steps(), drain(&mut twin).steps());
    }

    #[test]
    fn deterministic_generators_replay_after_partial_drain(
        micro in 1usize..5, servers in 1usize..4, pulls in 1usize..10,
    ) {
        let n = 8;
        let mut train = TrainingLoop::new(n, micro, 1e5, 1e6, Some(2)).unwrap();
        let full = drain(&mut train);
        train.reset();
        for i in 0..pulls.min(full.num_steps()) {
            // Partial drains never desynchronize the stream …
            let s = train.next_step(&aps_collectives::WorkloadCtx::at(i)).unwrap();
            prop_assert_eq!(&s, &full.steps()[i]);
        }
        // … and reset always restarts from step 0.
        train.reset();
        prop_assert_eq!(drain(&mut train).steps(), full.steps());

        let mut ps = ParameterServer::new(n, servers, 2e5, Some(3)).unwrap();
        let full = drain(&mut ps);
        ps.reset();
        prop_assert_eq!(drain(&mut ps).steps(), full.steps());
        prop_assert_eq!(full.num_steps(), 3 * 2 * (n - servers).div_ceil(servers));
    }

    #[test]
    fn size_hints_are_exact_for_bounded_streams(epochs in 1usize..5, steps in 1usize..40) {
        let n = 8;
        for w in [
            Box::new(RandomPermutations::new(n, 1e5, Some(steps), 7).unwrap()) as Box<dyn Workload>,
            Box::new(OnOffBursty::new(n, 1e5, 2, 2, Some(steps), 7).unwrap()),
            Box::new(TrainingLoop::new(n, 2, 1e5, 1e6, Some(epochs)).unwrap()),
            Box::new(ParameterServer::new(n, 2, 1e5, Some(epochs)).unwrap()),
        ] {
            let mut w = w;
            let (lo, hi) = w.size_hint();
            prop_assert_eq!(Some(lo), hi);
            let got = drain(&mut w);
            prop_assert_eq!(got.num_steps(), lo);
            prop_assert_eq!(w.size_hint(), (0, Some(0)));
        }
    }
}
