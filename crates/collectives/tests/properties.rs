//! Property-based tests for collective algorithms: every builder verifies
//! semantically at random sizes, conserves volume, and produces matchings.

use aps_collectives::{
    allgather, allreduce, alltoall, barrier, broadcast, gather, reduce_scatter, scatter,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_n_collectives_verify(n in 2usize..26, m in 1.0f64..1e9) {
        for c in [
            allreduce::ring::build(n, m).unwrap(),
            allreduce::any_n::build(n, m).unwrap(),
            alltoall::linear_shift(n, m).unwrap(),
            alltoall::bruck(n, m).unwrap(),
            allgather::ring(n, m).unwrap(),
            reduce_scatter::ring(n, m).unwrap(),
            barrier::dissemination(n).unwrap(),
        ] {
            prop_assert!(c.check().is_ok(), "{} failed at n={n}", c.schedule.algorithm());
        }
    }

    #[test]
    fn rooted_collectives_verify(n in 2usize..22, root in 0usize..21, m in 1.0f64..1e6) {
        let root = root % n;
        for c in [
            broadcast::binomial(n, root, m).unwrap(),
            scatter::binomial(n, root, m).unwrap(),
            gather::binomial(n, root, m).unwrap(),
        ] {
            prop_assert!(c.check().is_ok(), "{} failed at n={n} root={root}", c.schedule.algorithm());
        }
    }

    #[test]
    fn pow2_collectives_verify(exp in 1u32..6, m in 1.0f64..1e9) {
        let n = 1usize << exp;
        for c in [
            allreduce::recursive_doubling::build(n, m).unwrap(),
            allreduce::halving_doubling::build(n, m).unwrap(),
            allreduce::swing::build(n, m).unwrap(),
            alltoall::xor_exchange(n, m).unwrap(),
            allgather::recursive_doubling(n, m).unwrap(),
            reduce_scatter::recursive_halving(n, m).unwrap(),
        ] {
            prop_assert!(c.check().is_ok(), "{} failed at n={n}", c.schedule.algorithm());
        }
    }

    #[test]
    fn bandwidth_optimal_allreduces_move_identical_bytes(exp in 1u32..7, m in 1.0f64..1e9) {
        let n = 1usize << exp;
        let expected = 2.0 * m * (n as f64 - 1.0) / n as f64;
        for c in [
            allreduce::ring::build(n, m).unwrap(),
            allreduce::halving_doubling::build(n, m).unwrap(),
            allreduce::swing::build(n, m).unwrap(),
        ] {
            let total = c.schedule.total_bytes_per_node();
            prop_assert!(
                (total - expected).abs() < 1e-6 * expected,
                "{}: {} vs {}", c.schedule.algorithm(), total, expected
            );
        }
    }

    #[test]
    fn aggregate_demand_volume_conserved(n in 2usize..17, m in 1.0f64..1e6) {
        // Total aggregate mass = Σ steps (pairs × bytes).
        for c in [
            allreduce::ring::build(n, m).unwrap(),
            alltoall::linear_shift(n, m).unwrap(),
            broadcast::binomial(n, 0, m).unwrap(),
        ] {
            let agg = c.schedule.aggregate_demand().unwrap();
            let expected: f64 = c
                .schedule
                .steps()
                .iter()
                .map(|s| s.matching.len() as f64 * s.bytes_per_pair)
                .sum();
            prop_assert!((agg.total() - expected).abs() < 1e-6 * (1.0 + expected));
        }
    }

    #[test]
    fn alltoall_variants_agree_on_aggregate(exp in 1u32..6, m in 1.0f64..1e6) {
        // Direct-delivery variants produce the same aggregate demand; Bruck
        // trades extra volume for fewer steps (strictly more traffic beyond
        // n = 2).
        let n = 1usize << exp;
        let lin = alltoall::linear_shift(n, m).unwrap();
        let xor = alltoall::xor_exchange(n, m).unwrap();
        let agg_lin = lin.schedule.aggregate_demand().unwrap();
        let agg_xor = xor.schedule.aggregate_demand().unwrap();
        prop_assert!(agg_lin.approx_eq(&agg_xor, 1e-9));
        let bruck = alltoall::bruck(n, m).unwrap();
        if n > 2 {
            prop_assert!(
                bruck.schedule.total_bytes_per_node() > lin.schedule.total_bytes_per_node()
            );
        }
        prop_assert!(bruck.schedule.num_steps() <= lin.schedule.num_steps());
    }

    #[test]
    fn swing_distances_never_exceed_a_third_of_the_ring(exp in 2u32..8) {
        // Swing's defining locality property: |ρ(t)| ≤ (n/2)·(2/3)+O(1); in
        // particular every exchange distance is < n/2 for n ≥ 4 while
        // halving-doubling reaches exactly n/2.
        let n = 1usize << exp;
        let c = allreduce::swing::build(n, 1024.0).unwrap();
        for s in c.schedule.steps() {
            for (a, b) in s.matching.pairs() {
                let fwd = (b + n - a) % n;
                let dist = fwd.min(n - fwd);
                prop_assert!(dist < n / 2, "swing distance {dist} at n={n}");
            }
        }
    }
}
