//! Internal helper assembling (schedule, dataflow) pairs from per-step send
//! lists. Keeps every algorithm builder down to "who sends which chunks to
//! whom at step t".

use crate::collective::Collective;
use crate::dataflow::{Combine, DataFlow, DataFlowStep, Semantics, Transfer};
use crate::error::CollectiveError;
use crate::schedule::{CollectiveKind, Schedule, Step};
use aps_matrix::Matching;

/// One step as a list of `(src, dst, chunks, combine)` sends.
pub(crate) type StepSends = Vec<(usize, usize, Vec<usize>, Combine)>;

/// Validates a message size.
pub(crate) fn check_message_bytes(bytes: f64) -> Result<(), CollectiveError> {
    if bytes <= 0.0 || !bytes.is_finite() {
        return Err(CollectiveError::BadMessageSize(bytes));
    }
    Ok(())
}

/// Builds a [`Collective`] from per-step send lists.
///
/// The step volume is `max chunks per send × chunk_bytes`; each send becomes
/// both a matching pair and a data-flow transfer, keeping the two views
/// consistent by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    n: usize,
    kind: CollectiveKind,
    algorithm: &str,
    semantics: Semantics,
    num_chunks: usize,
    chunk_bytes: f64,
    initial: Vec<Vec<usize>>,
    step_sends: Vec<StepSends>,
) -> Result<Collective, CollectiveError> {
    let mut steps = Vec::with_capacity(step_sends.len());
    let mut flow_steps = Vec::with_capacity(step_sends.len());
    for sends in step_sends {
        let pairs: Vec<(usize, usize)> = sends.iter().map(|&(s, d, _, _)| (s, d)).collect();
        let matching = Matching::from_pairs(n, &pairs)?;
        let max_chunks = sends.iter().map(|(_, _, c, _)| c.len()).max().unwrap_or(0);
        if sends.iter().any(|(_, _, c, _)| c.is_empty()) {
            return Err(CollectiveError::ConstructionInvariant(
                "a send moved zero chunks",
            ));
        }
        steps.push(Step {
            matching,
            bytes_per_pair: max_chunks as f64 * chunk_bytes,
        });
        flow_steps.push(DataFlowStep {
            transfers: sends
                .into_iter()
                .map(|(src, dst, chunks, combine)| Transfer {
                    src,
                    dst,
                    chunks,
                    combine,
                })
                .collect(),
        });
    }
    let schedule = Schedule::new(n, kind, algorithm, steps)?;
    let dataflow = DataFlow {
        n,
        num_chunks,
        chunk_bytes,
        initial,
        steps: flow_steps,
        semantics,
    };
    Ok(Collective { schedule, dataflow })
}

/// `ceil(log2(n))` for `n ≥ 1`.
pub(crate) fn ceil_log2(n: usize) -> usize {
    usize::BITS as usize - (n - 1).leading_zeros() as usize
}

/// Exact `log2(n)`; errors when `n` is not a power of two.
pub(crate) fn exact_log2(n: usize) -> Result<usize, CollectiveError> {
    if !n.is_power_of_two() {
        return Err(CollectiveError::NotPowerOfTwo(n));
    }
    Ok(n.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(exact_log2(8).unwrap(), 3);
        assert!(exact_log2(6).is_err());
    }

    #[test]
    fn message_bytes_validation() {
        assert!(check_message_bytes(1.0).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(check_message_bytes(bad).is_err());
        }
    }
}
