//! Streaming workloads: lazily-pulled demand for open-ended runs.
//!
//! A [`Schedule`] is a *materialized* demand: every step resident in memory
//! before the first simulated picosecond. Real scale-up domains see
//! open-ended demand — epoch-looped DNN training, bursty permutation
//! traffic, parameter-server incast — whose step streams are unbounded or
//! too long to precompute. The [`Workload`] trait is the lazy face of the
//! same `⟨(M₁, m₁), …⟩` model: a seeded, deterministic stream of [`Step`]s
//! pulled one at a time, so executors run million-step (or endless)
//! workloads in O(1) schedule memory.
//!
//! * [`ScheduleStream`] makes every materialized [`Schedule`] a workload
//!   (the trivial impl — see [`Schedule::into_workload`] /
//!   [`Schedule::stream`]).
//! * Combinators compose workloads without materializing them:
//!   [`Workload::then`], [`Workload::repeat`] / [`Workload::loop_epochs`],
//!   [`Workload::interleave`], [`Workload::scaled`], and [`Overlay`] for
//!   concurrent jobs on disjoint port partitions.
//! * [`generators`] ships lazy demand sources: a pipeline-parallel
//!   training loop, parameter-server incast, seeded random-permutation
//!   traffic and on/off bursty uniform traffic.
//! * [`materialize`] drains a (bounded prefix of a) workload back into a
//!   [`Schedule`] for planners that need the whole problem.
//!
//! Determinism contract: a workload is a pure function of its construction
//! arguments (including any RNG seed) and the pull sequence. After
//! [`Workload::reset`] the stream replays bit-identically, on any thread
//! and at any `APS_THREADS` setting — generators hold their own
//! [`rand::StdRng`] and never consult ambient state.

use crate::error::CollectiveError;
use crate::schedule::{CollectiveKind, Schedule, Step};
use aps_matrix::{Matching, MatrixError};
use std::borrow::Borrow;
use std::collections::VecDeque;

pub mod arrivals;
pub mod generators;

/// Context handed to a workload at each pull. Carries the executor-side
/// view of the stream; extend-only (`#[non_exhaustive]`), so new context
/// (e.g. simulated time) can be added without breaking workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct WorkloadCtx {
    /// Global index of the step being pulled (0-based).
    pub step: usize,
}

impl WorkloadCtx {
    /// Context for pulling global step `step`.
    pub fn at(step: usize) -> Self {
        Self { step }
    }
}

/// A lazily-pulled stream of demand steps — the open, object-safe
/// counterpart of [`Schedule`].
///
/// Implementations must be deterministic: the same construction arguments
/// and pull sequence always yield the same steps, and [`Workload::reset`]
/// rewinds to the initial state so the stream replays bit-identically.
/// Every yielded step must span exactly [`Workload::n`] nodes and carry a
/// finite, non-negative volume (executors validate and reject violations).
pub trait Workload: Send {
    /// Number of participating nodes, fixed for the workload's lifetime.
    fn n(&self) -> usize;

    /// Human-readable name (used in traces, benches and reports).
    fn name(&self) -> &str;

    /// The collective operation the stream implements;
    /// [`CollectiveKind::Composite`] for mixes.
    fn kind(&self) -> CollectiveKind {
        CollectiveKind::Composite
    }

    /// Pulls the next step; `None` means the stream is exhausted.
    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step>;

    /// Pulls the next step *into* a caller-owned buffer; `false` means the
    /// stream is exhausted (and `out` is left untouched).
    ///
    /// The zero-allocation streaming hook: executors keep one long-lived
    /// [`Step`] and recycle its matching buffer across pulls. The default
    /// delegates to [`Workload::next_step`] and moves the result into
    /// `out`; sources whose steps live in stable storage (e.g.
    /// [`ScheduleStream`], `TrainingLoop`) override it with a
    /// [`Clone::clone_from`] copy so a steady-state pull never allocates,
    /// and the combinators forward it so the override is reached through
    /// arbitrarily nested compositions.
    fn next_step_into(&mut self, ctx: &WorkloadCtx, out: &mut Step) -> bool {
        match self.next_step(ctx) {
            Some(step) => {
                *out = step;
                true
            }
            None => false,
        }
    }

    /// Bounds on the number of steps *remaining*: `(lower, upper)`, with
    /// `None` meaning unbounded or unknown. Exact streams report
    /// `(k, Some(k))`; executors use the upper bound to refuse to
    /// materialize endless workloads.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// Rewinds the stream to its initial state for a bit-identical replay.
    fn reset(&mut self);

    /// Sequential composition: `self`'s steps, then `other`'s.
    ///
    /// # Errors
    ///
    /// Rejects node-count mismatches.
    fn then<W: Workload>(self, other: W) -> Result<Then<Self, W>, CollectiveError>
    where
        Self: Sized,
    {
        Then::new(self, other)
    }

    /// Repeats the stream `epochs` times, [`reset`](Workload::reset)ting
    /// between epochs.
    fn repeat(self, epochs: usize) -> Repeat<Self>
    where
        Self: Sized,
    {
        Repeat::new(self, Some(epochs))
    }

    /// [`Workload::repeat`] under its training-loop name.
    fn loop_epochs(self, epochs: usize) -> Repeat<Self>
    where
        Self: Sized,
    {
        self.repeat(epochs)
    }

    /// Repeats the stream endlessly — an unbounded workload
    /// (`size_hint` upper bound `None`).
    fn repeat_forever(self) -> Repeat<Self>
    where
        Self: Sized,
    {
        Repeat::new(self, None)
    }

    /// Round-robin interleaving: one step from `self`, one from `other`,
    /// …; when either exhausts, the survivor continues alone.
    ///
    /// # Errors
    ///
    /// Rejects node-count mismatches.
    fn interleave<W: Workload>(self, other: W) -> Result<Interleave<Self, W>, CollectiveError>
    where
        Self: Sized,
    {
        Interleave::new(self, other)
    }

    /// Scales every step's volume by `factor` (message-size what-ifs
    /// without rebuilding the source).
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative factors.
    fn scaled(self, factor: f64) -> Result<Scaled<Self>, CollectiveError>
    where
        Self: Sized,
    {
        Scaled::new(self, factor)
    }
}

/// Every `Box<dyn Workload>` is itself a workload, so combinators and
/// executors compose over heterogeneous sources.
impl Workload for Box<dyn Workload> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn kind(&self) -> CollectiveKind {
        (**self).kind()
    }
    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step> {
        (**self).next_step(ctx)
    }
    fn next_step_into(&mut self, ctx: &WorkloadCtx, out: &mut Step) -> bool {
        (**self).next_step_into(ctx, out)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Drains up to `limit` steps of `workload` (from its *current* position)
/// into a materialized [`Schedule`] — the bridge back to planners that
/// need the whole eq. (7) problem at once.
///
/// # Errors
///
/// [`CollectiveError::WorkloadTooLong`] when the stream yields more than
/// `limit` steps; schedule validation errors for malformed steps.
pub fn materialize(workload: &mut dyn Workload, limit: usize) -> Result<Schedule, CollectiveError> {
    let (lo, _) = workload.size_hint();
    let mut steps = Vec::with_capacity(lo.min(limit));
    while let Some(step) = workload.next_step(&WorkloadCtx::at(steps.len())) {
        if steps.len() >= limit {
            return Err(CollectiveError::WorkloadTooLong { limit });
        }
        steps.push(step);
    }
    Schedule::new(workload.n(), workload.kind(), workload.name(), steps)
}

/// A cursor streaming a materialized [`Schedule`]'s steps — the trivial
/// [`Workload`] impl. Generic over ownership: `ScheduleStream<Schedule>`
/// owns its schedule (boxable, `'static`), `ScheduleStream<&Schedule>`
/// borrows it (what the executors use internally).
#[derive(Debug, Clone)]
pub struct ScheduleStream<S = Schedule> {
    schedule: S,
    pos: usize,
}

impl<S: Borrow<Schedule>> ScheduleStream<S> {
    /// A fresh cursor at the schedule's first step.
    pub fn new(schedule: S) -> Self {
        Self { schedule, pos: 0 }
    }

    /// The underlying materialized schedule.
    pub fn schedule(&self) -> &Schedule {
        self.schedule.borrow()
    }
}

impl<S: Borrow<Schedule> + Send> Workload for ScheduleStream<S> {
    fn n(&self) -> usize {
        self.schedule().n()
    }

    fn name(&self) -> &str {
        self.schedule().algorithm()
    }

    fn kind(&self) -> CollectiveKind {
        self.schedule().kind()
    }

    fn next_step(&mut self, _ctx: &WorkloadCtx) -> Option<Step> {
        let step = self.schedule().steps().get(self.pos)?.clone();
        self.pos += 1;
        Some(step)
    }

    fn next_step_into(&mut self, _ctx: &WorkloadCtx, out: &mut Step) -> bool {
        match self.schedule().steps().get(self.pos) {
            Some(step) => {
                out.clone_from(step);
                self.pos += 1;
                true
            }
            None => false,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.schedule().num_steps() - self.pos;
        (left, Some(left))
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

impl Schedule {
    /// Consumes the schedule into an owning stream cursor (the
    /// [`Workload`] face of a materialized schedule).
    pub fn into_workload(self) -> ScheduleStream {
        ScheduleStream::new(self)
    }

    /// A borrowing stream cursor over the schedule's steps.
    pub fn stream(&self) -> ScheduleStream<&Schedule> {
        ScheduleStream::new(self)
    }
}

/// Sequential composition of two workloads (see [`Workload::then`]).
#[derive(Debug, Clone)]
pub struct Then<A, B> {
    first: A,
    second: B,
    in_second: bool,
    name: String,
}

impl<A: Workload, B: Workload> Then<A, B> {
    /// Composes `first` then `second`. The composite name is formatted
    /// once here (construction-time, O(accumulated name length) per
    /// link); for very deep sequential chains of *materialized*
    /// schedules, [`Schedule::then`] appends in place and is the cheaper
    /// spelling.
    ///
    /// # Errors
    ///
    /// Rejects node-count mismatches.
    pub fn new(first: A, second: B) -> Result<Self, CollectiveError> {
        if first.n() != second.n() {
            return Err(CollectiveError::Matrix(MatrixError::DimensionMismatch {
                left: first.n(),
                right: second.n(),
            }));
        }
        let name = format!("{}+{}", first.name(), second.name());
        Ok(Self {
            first,
            second,
            in_second: false,
            name,
        })
    }
}

impl<A: Workload, B: Workload> Workload for Then<A, B> {
    fn n(&self) -> usize {
        self.first.n()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step> {
        if !self.in_second {
            if let Some(step) = self.first.next_step(ctx) {
                return Some(step);
            }
            self.in_second = true;
        }
        self.second.next_step(ctx)
    }

    fn next_step_into(&mut self, ctx: &WorkloadCtx, out: &mut Step) -> bool {
        if !self.in_second {
            if self.first.next_step_into(ctx, out) {
                return true;
            }
            self.in_second = true;
        }
        self.second.next_step_into(ctx, out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (al, au) = if self.in_second {
            (0, Some(0))
        } else {
            self.first.size_hint()
        };
        let (bl, bu) = self.second.size_hint();
        (al + bl, au.zip(bu).map(|(a, b)| a + b))
    }

    fn reset(&mut self) {
        self.first.reset();
        self.second.reset();
        self.in_second = false;
    }
}

/// Epoch looping of a workload (see [`Workload::repeat`]).
#[derive(Debug, Clone)]
pub struct Repeat<W> {
    inner: W,
    epochs: Option<usize>,
    /// Epochs fully replayed so far.
    done: usize,
    /// Whether the epoch currently draining has yielded any step — an
    /// epoch that drains without yielding proves the inner workload is
    /// empty, so the repeat terminates instead of spinning (size hints
    /// may be inexact, so this cannot rely on them).
    yielded: bool,
    /// Steps one epoch yields, exact when known at construction.
    per_epoch: Option<usize>,
    name: String,
}

impl<W: Workload> Repeat<W> {
    fn new(inner: W, epochs: Option<usize>) -> Self {
        let (lo, hi) = inner.size_hint();
        let per_epoch = hi.filter(|&h| h == lo);
        let name = match epochs {
            Some(k) => format!("repeat({k}, {})", inner.name()),
            None => format!("repeat(∞, {})", inner.name()),
        };
        Self {
            inner,
            epochs,
            done: 0,
            yielded: false,
            per_epoch,
            name,
        }
    }
}

impl<W: Workload> Workload for Repeat<W> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step> {
        loop {
            if self.epochs.is_some_and(|k| self.done >= k) {
                return None;
            }
            if let Some(step) = self.inner.next_step(ctx) {
                self.yielded = true;
                return Some(step);
            }
            // One epoch drained: rewind and account for it. An epoch
            // that yielded nothing proves the inner workload is empty —
            // every further epoch would be empty too, so stop rather
            // than spin (size hints may be inexact).
            self.done += 1;
            if !self.yielded {
                return None;
            }
            self.inner.reset();
            self.yielded = false;
        }
    }

    fn next_step_into(&mut self, ctx: &WorkloadCtx, out: &mut Step) -> bool {
        loop {
            if self.epochs.is_some_and(|k| self.done >= k) {
                return false;
            }
            if self.inner.next_step_into(ctx, out) {
                self.yielded = true;
                return true;
            }
            // Same epoch accounting as `next_step`: an epoch that yielded
            // nothing proves the inner workload is empty, so stop.
            self.done += 1;
            if !self.yielded {
                return false;
            }
            self.inner.reset();
            self.yielded = false;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.size_hint();
        match self.epochs {
            None => (lo, None),
            Some(k) => {
                let left_epochs = k.saturating_sub(self.done).saturating_sub(1);
                match (self.per_epoch, hi) {
                    _ if k <= self.done => (0, Some(0)),
                    (Some(per), Some(h)) if h == lo => {
                        let total = lo + left_epochs * per;
                        (total, Some(total))
                    }
                    (Some(per), _) => (lo, hi.map(|h| h + left_epochs * per)),
                    (None, _) => (lo, None),
                }
            }
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.done = 0;
        self.yielded = false;
    }
}

/// Round-robin interleaving of two workloads (see
/// [`Workload::interleave`]).
#[derive(Debug, Clone)]
pub struct Interleave<A, B> {
    a: A,
    b: B,
    /// Pull from `b` next (when both are live).
    b_turn: bool,
    name: String,
}

impl<A: Workload, B: Workload> Interleave<A, B> {
    /// Interleaves `a` and `b`, starting with `a`.
    ///
    /// # Errors
    ///
    /// Rejects node-count mismatches.
    pub fn new(a: A, b: B) -> Result<Self, CollectiveError> {
        if a.n() != b.n() {
            return Err(CollectiveError::Matrix(MatrixError::DimensionMismatch {
                left: a.n(),
                right: b.n(),
            }));
        }
        let name = format!("interleave({}, {})", a.name(), b.name());
        Ok(Self {
            a,
            b,
            b_turn: false,
            name,
        })
    }
}

impl<A: Workload, B: Workload> Workload for Interleave<A, B> {
    fn n(&self) -> usize {
        self.a.n()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step> {
        let first_b = self.b_turn;
        self.b_turn = !self.b_turn;
        if first_b {
            self.b.next_step(ctx).or_else(|| self.a.next_step(ctx))
        } else {
            self.a.next_step(ctx).or_else(|| self.b.next_step(ctx))
        }
    }

    fn next_step_into(&mut self, ctx: &WorkloadCtx, out: &mut Step) -> bool {
        let first_b = self.b_turn;
        self.b_turn = !self.b_turn;
        if first_b {
            return self.b.next_step_into(ctx, out) || self.a.next_step_into(ctx, out);
        }
        self.a.next_step_into(ctx, out) || self.b.next_step_into(ctx, out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (al, au) = self.a.size_hint();
        let (bl, bu) = self.b.size_hint();
        (al + bl, au.zip(bu).map(|(x, y)| x + y))
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
        self.b_turn = false;
    }
}

/// Volume scaling of a workload (see [`Workload::scaled`]).
#[derive(Debug, Clone)]
pub struct Scaled<W> {
    inner: W,
    factor: f64,
    name: String,
}

impl<W: Workload> Scaled<W> {
    /// Scales every step of `inner` by `factor`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative factors.
    pub fn new(inner: W, factor: f64) -> Result<Self, CollectiveError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(CollectiveError::BadMessageSize(factor));
        }
        let name = format!("scaled({factor}, {})", inner.name());
        Ok(Self {
            inner,
            factor,
            name,
        })
    }
}

impl<W: Workload> Workload for Scaled<W> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> CollectiveKind {
        self.inner.kind()
    }

    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step> {
        self.inner.next_step(ctx).map(|mut s| {
            s.bytes_per_pair *= self.factor;
            s
        })
    }

    fn next_step_into(&mut self, ctx: &WorkloadCtx, out: &mut Step) -> bool {
        if self.inner.next_step_into(ctx, out) {
            out.bytes_per_pair *= self.factor;
            true
        } else {
            false
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// One job of an [`Overlay`]: a workload embedded on a subset of the
/// domain's global ports (local rank `i` ↔ `ports[i]`).
struct OverlayJob {
    ports: Vec<usize>,
    workload: Box<dyn Workload>,
    done: bool,
}

/// Concurrent jobs on disjoint port partitions of one domain, overlaid
/// into a single stream. Each *round* pulls one step from every live job;
/// steps whose volumes are equal merge into one step (their matchings
/// live on disjoint ports, so the union is a matching — the jobs truly
/// run concurrently), while unequal volumes stay separate steps, emitted
/// in job order. Deterministic: job order and grouping are fixed by the
/// construction order.
///
/// The streaming counterpart of the multi-tenant executor's port
/// partitioning — useful when several jobs should be *scheduled as one
/// demand stream* rather than arbitrated as separate tenants.
pub struct Overlay {
    n: usize,
    jobs: Vec<OverlayJob>,
    buffer: VecDeque<Step>,
    name: String,
}

impl Overlay {
    /// Overlays `jobs` — `(global ports, workload)` pairs — onto an
    /// `n`-port domain.
    ///
    /// # Errors
    ///
    /// Rejects empty job lists, port lists whose length differs from the
    /// job's node count, out-of-range ports, and ports claimed twice.
    pub fn new(
        n: usize,
        jobs: Vec<(Vec<usize>, Box<dyn Workload>)>,
    ) -> Result<Self, CollectiveError> {
        if jobs.is_empty() {
            return Err(CollectiveError::TooFewNodes { n: 0, min: 1 });
        }
        let mut owned = vec![false; n];
        for (ports, workload) in &jobs {
            if ports.len() != workload.n() {
                return Err(CollectiveError::Matrix(MatrixError::DimensionMismatch {
                    left: ports.len(),
                    right: workload.n(),
                }));
            }
            for &p in ports {
                if p >= n {
                    return Err(CollectiveError::Matrix(MatrixError::EndpointOutOfRange {
                        endpoint: p,
                        n,
                    }));
                }
                if owned[p] {
                    return Err(CollectiveError::Matrix(MatrixError::DuplicateSender(p)));
                }
                owned[p] = true;
            }
        }
        let name = format!(
            "overlay({})",
            jobs.iter()
                .map(|(_, w)| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        Ok(Self {
            n,
            jobs: jobs
                .into_iter()
                .map(|(ports, workload)| OverlayJob {
                    ports,
                    workload,
                    done: false,
                })
                .collect(),
            buffer: VecDeque::new(),
            name,
        })
    }

    /// Pulls one round — a step from every live job — merging
    /// equal-volume steps, and queues the result.
    fn pull_round(&mut self, ctx: &WorkloadCtx) {
        // (bytes, merged global pairs), in order of first appearance.
        let mut groups: Vec<(f64, Vec<(usize, usize)>)> = Vec::new();
        for job in &mut self.jobs {
            if job.done {
                continue;
            }
            let Some(step) = job.workload.next_step(ctx) else {
                job.done = true;
                continue;
            };
            let pairs: Vec<(usize, usize)> = step
                .matching
                .pairs()
                .map(|(s, d)| (job.ports[s], job.ports[d]))
                .collect();
            match groups.iter_mut().find(|(b, _)| *b == step.bytes_per_pair) {
                Some((_, g)) => g.extend(pairs),
                None => groups.push((step.bytes_per_pair, pairs)),
            }
        }
        for (bytes, pairs) in groups {
            let matching = Matching::from_pairs(self.n, &pairs)
                .expect("disjoint job partitions keep the union a matching");
            self.buffer.push_back(Step {
                matching,
                bytes_per_pair: bytes,
            });
        }
    }
}

impl Workload for Overlay {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, ctx: &WorkloadCtx) -> Option<Step> {
        while self.buffer.is_empty() && self.jobs.iter().any(|j| !j.done) {
            self.pull_round(ctx);
        }
        self.buffer.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Rounds merge at least down to one step per round and at most
        // keep every constituent step separate.
        let mut lo = self.buffer.len();
        let mut hi = Some(self.buffer.len());
        for job in &self.jobs {
            if job.done {
                continue;
            }
            let (jl, jh) = job.workload.size_hint();
            // A job with jl steps forces at least … nothing alone (it may
            // fully merge into others' rounds), but the longest job's
            // count lower-bounds the rounds.
            lo = lo.max(jl);
            hi = hi.zip(jh).map(|(a, b)| a + b);
        }
        (lo, hi)
    }

    fn reset(&mut self) {
        for job in &mut self.jobs {
            job.workload.reset();
            job.done = false;
        }
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce;

    fn sched(n: usize, steps: usize, bytes: f64) -> Schedule {
        let step = Step {
            matching: Matching::shift(n, 1).unwrap(),
            bytes_per_pair: bytes,
        };
        Schedule::new(n, CollectiveKind::AllGather, "ring", vec![step; steps]).unwrap()
    }

    #[test]
    fn schedule_stream_replays_its_schedule() {
        let s = allreduce::halving_doubling::build(8, 1e6).unwrap().schedule;
        let mut w = s.stream();
        assert_eq!(w.n(), 8);
        assert_eq!(w.kind(), s.kind());
        assert_eq!(w.size_hint(), (s.num_steps(), Some(s.num_steps())));
        let m = materialize(&mut w, 1000).unwrap();
        assert_eq!(m.steps(), s.steps());
        assert_eq!(w.size_hint(), (0, Some(0)));
        w.reset();
        assert_eq!(materialize(&mut w, 1000).unwrap().steps(), s.steps());
        // Owning variant is equivalent.
        let mut owned = s.clone().into_workload();
        assert_eq!(materialize(&mut owned, 1000).unwrap().steps(), s.steps());
    }

    #[test]
    fn materialize_enforces_its_limit() {
        let mut w = sched(4, 10, 1.0).into_workload();
        assert!(matches!(
            materialize(&mut w, 9),
            Err(CollectiveError::WorkloadTooLong { limit: 9 })
        ));
        w.reset();
        assert_eq!(materialize(&mut w, 10).unwrap().num_steps(), 10);
    }

    #[test]
    fn then_concatenates_and_checks_n() {
        let a = sched(4, 2, 1.0).into_workload();
        let b = sched(4, 3, 2.0).into_workload();
        let mut w = a.then(b).unwrap();
        assert_eq!(w.size_hint(), (5, Some(5)));
        let m = materialize(&mut w, 100).unwrap();
        assert_eq!(m.num_steps(), 5);
        assert_eq!(m.steps()[0].bytes_per_pair, 1.0);
        assert_eq!(m.steps()[4].bytes_per_pair, 2.0);
        assert_eq!(m.algorithm(), "ring+ring");
        w.reset();
        assert_eq!(materialize(&mut w, 100).unwrap().steps(), m.steps());
        let bad = sched(6, 1, 1.0).into_workload();
        assert!(sched(4, 1, 1.0).into_workload().then(bad).is_err());
    }

    #[test]
    fn repeat_loops_epochs_and_hints_exactly() {
        let mut w = sched(4, 3, 1.0).into_workload().repeat(4);
        assert_eq!(w.size_hint(), (12, Some(12)));
        let m = materialize(&mut w, 100).unwrap();
        assert_eq!(m.num_steps(), 12);
        assert_eq!(w.size_hint(), (0, Some(0)));
        w.reset();
        assert_eq!(w.size_hint(), (12, Some(12)));
        // Partially drained: the hint tracks the remainder.
        w.next_step(&WorkloadCtx::at(0)).unwrap();
        assert_eq!(w.size_hint(), (11, Some(11)));
        // loop_epochs is the same combinator.
        let mut e = sched(4, 3, 1.0).into_workload().loop_epochs(2);
        assert_eq!(materialize(&mut e, 100).unwrap().num_steps(), 6);
    }

    #[test]
    fn repeat_forever_is_unbounded_but_lazy() {
        let mut w = sched(2, 2, 1.0).into_workload().repeat_forever();
        assert_eq!(w.size_hint().1, None);
        for i in 0..1000 {
            assert!(w.next_step(&WorkloadCtx::at(i)).is_some());
        }
        assert!(matches!(
            materialize(&mut w, 50),
            Err(CollectiveError::WorkloadTooLong { .. })
        ));
    }

    #[test]
    fn repeat_of_empty_workload_terminates() {
        let empty = Schedule::new(4, CollectiveKind::Barrier, "noop", vec![])
            .unwrap()
            .into_workload();
        let mut w = empty.repeat_forever();
        assert!(w.next_step(&WorkloadCtx::at(0)).is_none());

        // Same with a minimal custom impl that keeps the default
        // (inexact) size_hint: emptiness is detected from the drained
        // epoch itself, not from the hint.
        struct Empty;
        impl Workload for Empty {
            fn n(&self) -> usize {
                4
            }
            fn name(&self) -> &str {
                "empty"
            }
            fn next_step(&mut self, _: &WorkloadCtx) -> Option<Step> {
                None
            }
            fn reset(&mut self) {}
        }
        let mut w = Empty.repeat_forever();
        assert!(w.next_step(&WorkloadCtx::at(0)).is_none());
        let mut w = Empty.repeat(3);
        assert!(w.next_step(&WorkloadCtx::at(0)).is_none());
    }

    #[test]
    fn interleave_alternates_then_drains_the_survivor() {
        let a = sched(4, 2, 1.0).into_workload();
        let b = sched(4, 4, 2.0).into_workload();
        let mut w = a.interleave(b).unwrap();
        assert_eq!(w.size_hint(), (6, Some(6)));
        let vols: Vec<f64> = std::iter::from_fn(|| {
            w.next_step(&WorkloadCtx::default())
                .map(|s| s.bytes_per_pair)
        })
        .collect();
        assert_eq!(vols, vec![1.0, 2.0, 1.0, 2.0, 2.0, 2.0]);
        assert!(sched(4, 1, 1.0)
            .into_workload()
            .interleave(sched(8, 1, 1.0).into_workload())
            .is_err());
    }

    #[test]
    fn scaled_multiplies_volumes_only() {
        let mut w = sched(4, 3, 2.0).into_workload().scaled(1.5).unwrap();
        let m = materialize(&mut w, 10).unwrap();
        assert!(m.steps().iter().all(|s| s.bytes_per_pair == 3.0));
        assert_eq!(m.num_steps(), 3);
        assert!(sched(4, 1, 1.0).into_workload().scaled(f64::NAN).is_err());
        assert!(sched(4, 1, 1.0).into_workload().scaled(-1.0).is_err());
    }

    #[test]
    fn overlay_merges_equal_volumes_on_disjoint_ports() {
        let a = sched(4, 2, 1.0).into_workload(); // ports 0..4
        let b = sched(4, 2, 1.0).into_workload(); // ports 4..8
        let mut w = Overlay::new(
            8,
            vec![
                ((0..4).collect(), Box::new(a) as Box<dyn Workload>),
                ((4..8).collect(), Box::new(b)),
            ],
        )
        .unwrap();
        // Equal volumes merge: 2 rounds → 2 steps of 8 pairs each.
        let m = materialize(&mut w, 100).unwrap();
        assert_eq!(m.num_steps(), 2);
        for s in m.steps() {
            assert_eq!(s.matching.len(), 8);
            assert_eq!(s.bytes_per_pair, 1.0);
        }
        // Unequal volumes stay separate steps within the round.
        let a = sched(4, 1, 1.0).into_workload();
        let b = sched(4, 1, 2.0).into_workload();
        let mut w = Overlay::new(
            8,
            vec![
                ((0..4).collect(), Box::new(a) as Box<dyn Workload>),
                ((4..8).collect(), Box::new(b)),
            ],
        )
        .unwrap();
        let m = materialize(&mut w, 100).unwrap();
        assert_eq!(m.num_steps(), 2);
        assert_eq!(m.steps()[0].bytes_per_pair, 1.0);
        assert_eq!(m.steps()[1].bytes_per_pair, 2.0);
    }

    #[test]
    fn overlay_rejects_bad_partitions() {
        let mk = || Box::new(sched(4, 1, 1.0).into_workload()) as Box<dyn Workload>;
        assert!(Overlay::new(8, vec![]).is_err());
        // Port list length ≠ job node count.
        assert!(Overlay::new(8, vec![(vec![0, 1], mk())]).is_err());
        // Out of range.
        assert!(Overlay::new(8, vec![(vec![0, 1, 2, 9], mk())]).is_err());
        // Overlapping.
        assert!(Overlay::new(8, vec![((0..4).collect(), mk()), ((3..7).collect(), mk())]).is_err());
    }

    #[test]
    fn overlay_conserves_total_pair_bytes() {
        let a = allreduce::halving_doubling::build(4, 3e3).unwrap().schedule;
        let b = sched(4, 5, 7.0);
        let pair_bytes = |s: &Schedule| -> f64 {
            s.steps()
                .iter()
                .map(|st| st.bytes_per_pair * st.matching.len() as f64)
                .sum()
        };
        let want = pair_bytes(&a) + pair_bytes(&b);
        let mut w = Overlay::new(
            8,
            vec![
                (
                    (0..4).collect(),
                    Box::new(a.into_workload()) as Box<dyn Workload>,
                ),
                ((4..8).collect(), Box::new(b.into_workload())),
            ],
        )
        .unwrap();
        let m = materialize(&mut w, 1000).unwrap();
        assert!((pair_bytes(&m) - want).abs() < 1e-9);
        w.reset();
        let again = materialize(&mut w, 1000).unwrap();
        assert_eq!(m.steps(), again.steps());
    }

    #[test]
    fn boxed_workloads_compose() {
        let boxed: Box<dyn Workload> = Box::new(sched(4, 2, 1.0).into_workload());
        let mut w = boxed.repeat(3);
        assert_eq!(w.size_hint(), (6, Some(6)));
        assert_eq!(materialize(&mut w, 100).unwrap().num_steps(), 6);
    }
}
