//! AllGather algorithms.
//!
//! `message_bytes` is the size of the *gathered result* `m`; each node
//! contributes an `m/n`-byte chunk (chunk `i` originates at node `i`).

use crate::builder::{assemble, check_message_bytes, exact_log2, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Ring AllGather: `n−1` shift-by-1 steps; at step `t` node `i` forwards
/// chunk `(i − t) mod n` (the chunk it received in the previous step).
///
/// # Errors
///
/// Rejects `n < 2` and bad message sizes.
pub fn ring(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let steps: Vec<StepSends> = (0..n - 1)
        .map(|t| {
            (0..n)
                .map(|i| {
                    let c = (i + n - t % n) % n;
                    (i, (i + 1) % n, vec![c], Combine::Replace)
                })
                .collect()
        })
        .collect();
    let initial = (0..n).map(|i| vec![i]).collect();
    assemble(
        n,
        CollectiveKind::AllGather,
        "ring",
        Semantics::AllGather,
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

/// Recursive-doubling AllGather: `log₂ n` steps; at step `t` node `i` sends
/// its complete current block (`2^t` chunks) to partner `i ⊕ 2^t`.
///
/// # Errors
///
/// Rejects `n < 2`, non-power-of-two `n`, and bad message sizes.
pub fn recursive_doubling(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    let log = exact_log2(n)?;
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let steps: Vec<StepSends> = (0..log)
        .map(|t| {
            (0..n)
                .map(|i| {
                    let lo = (i >> t) << t;
                    let blk: Vec<usize> = (lo..lo + (1 << t)).collect();
                    (i, i ^ (1 << t), blk, Combine::Replace)
                })
                .collect()
        })
        .collect();
    let initial = (0..n).map(|i| vec![i]).collect();
    assemble(
        n,
        CollectiveKind::AllGather,
        "recursive-doubling",
        Semantics::AllGather,
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_verifies() {
        for n in [2, 3, 5, 8, 16] {
            ring(n, 100.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn recursive_doubling_verifies() {
        for n in [2, 4, 8, 16, 64] {
            recursive_doubling(n, 100.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
        assert!(recursive_doubling(6, 1.0).is_err());
    }

    #[test]
    fn both_move_optimal_bytes() {
        let n = 8;
        let m = 800.0;
        let opt = m * (n as f64 - 1.0) / n as f64;
        let r = ring(n, m).unwrap();
        assert!((r.schedule.total_bytes_per_node() - opt).abs() < 1e-9);
        assert_eq!(r.schedule.num_steps(), n - 1);
        let rd = recursive_doubling(n, m).unwrap();
        assert!((rd.schedule.total_bytes_per_node() - opt).abs() < 1e-9);
        assert_eq!(rd.schedule.num_steps(), 3);
    }

    #[test]
    fn recursive_doubling_volumes_double() {
        let c = recursive_doubling(8, 80.0).unwrap();
        let vols: Vec<f64> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        assert_eq!(vols, vec![10.0, 20.0, 40.0]);
    }
}
