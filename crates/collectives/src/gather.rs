//! Gather: every node's chunk ends at the root — the mirror of scatter.
//!
//! Binomial gather: leaves send first, each internal node accumulates its
//! subtree's chunks and forwards them up; volumes grow geometrically toward
//! the root. `message_bytes` is the full gathered buffer (`n` chunks of
//! `m/n`; chunk `i` originates at node `i`).

use crate::builder::{assemble, ceil_log2, check_message_bytes, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Builds a binomial gather to `root` over `n ≥ 2` nodes (any `n`).
///
/// # Errors
///
/// Rejects `n < 2`, out-of-range roots, and bad message sizes.
pub fn binomial(n: usize, root: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    if root >= n {
        return Err(CollectiveError::RootOutOfRange { root, n });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let rounds = ceil_log2(n);
    // Mirror of the scatter tree: at step t (t = 0 first), ranks that are
    // odd multiples of 2^t send their accumulated block (their subtree of
    // size ≤ 2^t) to rank - 2^t.
    let mut steps: Vec<StepSends> = Vec::with_capacity(rounds);
    for t in 0..rounds {
        let reach = 1usize << t;
        let mut sends: StepSends = Vec::new();
        for r in 0..n {
            if r % (2 * reach) == reach {
                // Rank r holds chunks of ranks [r, min(r + reach, n)).
                let hi = (r + reach).min(n);
                let chunks: Vec<usize> = (r..hi).map(|q| (root + q) % n).collect();
                sends.push((
                    (root + r) % n,
                    (root + r - reach) % n,
                    chunks,
                    Combine::Replace,
                ));
            }
        }
        steps.push(sends);
    }
    let initial = (0..n).map(|i| vec![i]).collect();
    assemble(
        n,
        CollectiveKind::AllToAll, // chunk-addressed delivery; semantics below
        "binomial-gather",
        Semantics::Gather { root },
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_for_many_sizes_and_roots() {
        for n in [2, 3, 4, 5, 8, 11, 16] {
            for root in [0, n / 2, n - 1] {
                binomial(n, root, 640.0)
                    .unwrap()
                    .check()
                    .unwrap_or_else(|e| panic!("n={n} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn volumes_double_toward_the_root() {
        let c = binomial(8, 0, 800.0).unwrap();
        let vols: Vec<f64> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        assert_eq!(vols, vec![100.0, 200.0, 400.0]);
        // Last step: the halfway node delivers half the buffer to the root.
        let last = c.schedule.steps().last().unwrap();
        assert_eq!(last.matching.len(), 1);
        assert_eq!(last.matching.dst_of(4), Some(0));
    }

    #[test]
    fn gather_is_scatter_mirrored() {
        // Step matchings of gather are the inverses of scatter's, in
        // reverse order (same tree, traversed upward).
        let n = 16;
        let g = binomial(n, 3, 1600.0).unwrap();
        let s = crate::scatter::binomial(n, 3, 1600.0).unwrap();
        let g_steps = g.schedule.steps();
        let s_steps = s.schedule.steps();
        assert_eq!(g_steps.len(), s_steps.len());
        for (i, gs) in g_steps.iter().enumerate() {
            let mirror = &s_steps[s_steps.len() - 1 - i];
            assert_eq!(gs.matching, mirror.matching.inverse(), "step {i}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(binomial(1, 0, 1.0).is_err());
        assert!(binomial(4, 7, 1.0).is_err());
        assert!(binomial(4, 0, f64::INFINITY).is_err());
    }
}
