//! A collective = a cost-model [`Schedule`] + a chunk-level [`DataFlow`],
//! kept mutually consistent.

use crate::dataflow::DataFlow;
use crate::error::VerifyError;
use crate::schedule::Schedule;
use crate::verify::verify_dataflow;

/// A fully-specified collective algorithm instance.
///
/// Invariant (checked by [`Collective::check`], exercised by every builder's
/// tests): the data flow's per-step `(src → dst)` transfer pairs equal the
/// schedule's matchings, and the advertised step volume equals
/// `max chunks per transfer × chunk_bytes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Collective {
    /// The matching/volume view consumed by the cost model and scheduler.
    pub schedule: Schedule,
    /// The chunk-level view consumed by the verifier and the simulator.
    pub dataflow: DataFlow,
}

impl Collective {
    /// Cross-checks schedule against data flow, then verifies the collective
    /// semantics end to end.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency or semantic violation found.
    pub fn check(&self) -> Result<(), VerifyError> {
        self.check_consistency()?;
        verify_dataflow(&self.dataflow)
    }

    /// Structural consistency between the two views (without executing the
    /// data flow).
    ///
    /// # Errors
    ///
    /// Reports step-count, matching, or volume mismatches.
    pub fn check_consistency(&self) -> Result<(), VerifyError> {
        let s = &self.schedule;
        let f = &self.dataflow;
        if s.num_steps() != f.steps.len() {
            return Err(VerifyError::StepCountMismatch {
                schedule: s.num_steps(),
                dataflow: f.steps.len(),
            });
        }
        for (i, (step, fstep)) in s.steps().iter().zip(&f.steps).enumerate() {
            // Transfer pairs must equal the matching exactly.
            let mut pairs: Vec<(usize, usize)> =
                fstep.transfers.iter().map(|t| (t.src, t.dst)).collect();
            pairs.sort_unstable();
            let mut expected: Vec<(usize, usize)> = step.matching.pairs().collect();
            expected.sort_unstable();
            if pairs != expected {
                return Err(VerifyError::MatchingMismatch { step: i });
            }
            if fstep.transfers.iter().any(|t| t.chunks.is_empty()) {
                return Err(VerifyError::MatchingMismatch { step: i });
            }
            let dataflow_bytes = f.max_chunks_in_step(i) as f64 * f.chunk_bytes;
            let tol = 1e-9 * (1.0 + step.bytes_per_pair.abs());
            if (dataflow_bytes - step.bytes_per_pair).abs() > tol {
                return Err(VerifyError::VolumeMismatch {
                    step: i,
                    schedule_bytes: step.bytes_per_pair,
                    dataflow_bytes,
                });
            }
        }
        Ok(())
    }

    /// Number of participating nodes.
    pub fn n(&self) -> usize {
        self.schedule.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::{Combine, DataFlowStep, Semantics, Transfer};
    use crate::schedule::{CollectiveKind, Step};
    use aps_matrix::Matching;

    fn tiny() -> Collective {
        let matching = Matching::from_pairs(2, &[(0, 1), (1, 0)]).unwrap();
        let schedule = Schedule::new(
            2,
            CollectiveKind::AllGather,
            "swap",
            vec![Step {
                matching,
                bytes_per_pair: 4.0,
            }],
        )
        .unwrap();
        let dataflow = DataFlow {
            n: 2,
            num_chunks: 2,
            chunk_bytes: 4.0,
            initial: vec![vec![0], vec![1]],
            steps: vec![DataFlowStep {
                transfers: vec![
                    Transfer {
                        src: 0,
                        dst: 1,
                        chunks: vec![0],
                        combine: Combine::Replace,
                    },
                    Transfer {
                        src: 1,
                        dst: 0,
                        chunks: vec![1],
                        combine: Combine::Replace,
                    },
                ],
            }],
            semantics: Semantics::AllGather,
        };
        Collective { schedule, dataflow }
    }

    #[test]
    fn consistent_collective_checks() {
        tiny().check().unwrap();
        assert_eq!(tiny().n(), 2);
    }

    #[test]
    fn step_count_mismatch_detected() {
        let mut c = tiny();
        c.dataflow.steps.push(DataFlowStep::default());
        assert!(matches!(
            c.check(),
            Err(VerifyError::StepCountMismatch {
                schedule: 1,
                dataflow: 2
            })
        ));
    }

    #[test]
    fn matching_mismatch_detected() {
        let mut c = tiny();
        c.dataflow.steps[0].transfers.pop();
        assert_eq!(c.check(), Err(VerifyError::MatchingMismatch { step: 0 }));
    }

    #[test]
    fn volume_mismatch_detected() {
        let mut c = tiny();
        c.dataflow.steps[0].transfers[0].chunks = vec![0, 1];
        // Now one transfer moves 2 chunks = 8 bytes vs advertised 4 — but
        // wait, node 0 only holds chunk 0 initially; consistency check fires
        // before execution so the volume error is still what we see.
        assert!(matches!(
            c.check(),
            Err(VerifyError::VolumeMismatch { step: 0, .. })
        ));
    }

    #[test]
    fn empty_transfer_rejected() {
        let mut c = tiny();
        c.dataflow.steps[0].transfers[0].chunks = vec![];
        assert_eq!(c.check(), Err(VerifyError::MatchingMismatch { step: 0 }));
    }
}
