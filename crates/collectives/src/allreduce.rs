//! AllReduce algorithms.
//!
//! Four classic algorithms with very different step/volume/pattern
//! trade-offs — exactly the degrees of freedom the paper's scheduler
//! exploits:
//!
//! | Algorithm | Steps | Bytes per node | Ring distances |
//! |---|---|---|---|
//! | [`ring::build`] | `2(n−1)` | `2m(n−1)/n` | 1 |
//! | [`recursive_doubling::build`] | `log₂ n` | `m·log₂ n` | `±2^t` |
//! | [`halving_doubling::build`] | `2·log₂ n` | `2m(n−1)/n` | `±2^t` |
//! | [`swing::build`] | `2·log₂ n` | `2m(n−1)/n` | `±ρ(t)` (1,1,3,5,11,21…) |
//!
//! `message_bytes` is the AllReduce vector size `m` (input size = output
//! size per node).

pub mod any_n;
pub mod halving_doubling;
pub mod recursive_doubling;
pub mod ring;
pub mod swing;

/// Which AllReduce algorithm to build; used by planners and benches to
/// iterate over the whole family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Ring reduce-scatter + ring allgather.
    Ring,
    /// Full-vector recursive doubling (latency-optimal).
    RecursiveDoubling,
    /// Rabenseifner recursive halving-doubling (bandwidth-optimal).
    HalvingDoubling,
    /// Swing (bandwidth-optimal, small ring distances).
    Swing,
}

impl Algorithm {
    /// All implemented algorithms.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Ring,
        Algorithm::RecursiveDoubling,
        Algorithm::HalvingDoubling,
        Algorithm::Swing,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::RecursiveDoubling => "recursive-doubling",
            Algorithm::HalvingDoubling => "halving-doubling",
            Algorithm::Swing => "swing",
        }
    }

    /// Builds the algorithm over `n` nodes for an `message_bytes`-sized
    /// vector.
    ///
    /// ```
    /// use aps_collectives::allreduce::Algorithm;
    ///
    /// let coll = Algorithm::Swing.build(16, 1.5e6).unwrap();
    /// coll.check().unwrap();                       // semantics verified
    /// assert_eq!(coll.schedule.num_steps(), 8);    // 2·log2(16)
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the underlying builder's constraints (node count,
    /// power-of-two requirements, message size).
    pub fn build(
        self,
        n: usize,
        message_bytes: f64,
    ) -> Result<crate::Collective, crate::CollectiveError> {
        match self {
            Algorithm::Ring => ring::build(n, message_bytes),
            Algorithm::RecursiveDoubling => recursive_doubling::build(n, message_bytes),
            Algorithm::HalvingDoubling => halving_doubling::build(n, message_bytes),
            Algorithm::Swing => swing::build(n, message_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["ring", "recursive-doubling", "halving-doubling", "swing"]
        );
    }

    #[test]
    fn dispatch_builds_and_verifies() {
        for alg in Algorithm::ALL {
            let c = alg.build(8, 1024.0).unwrap();
            c.check().unwrap();
            assert_eq!(c.schedule.algorithm(), alg.name());
        }
    }

    #[test]
    fn bandwidth_optimality_bytes() {
        let n = 16;
        let m = 1 << 20;
        let opt = 2.0 * m as f64 * (n as f64 - 1.0) / n as f64;
        for alg in [
            Algorithm::Ring,
            Algorithm::HalvingDoubling,
            Algorithm::Swing,
        ] {
            let c = alg.build(n, m as f64).unwrap();
            assert!(
                (c.schedule.total_bytes_per_node() - opt).abs() < 1e-6,
                "{} moves {} bytes, expected {}",
                alg.name(),
                c.schedule.total_bytes_per_node(),
                opt
            );
        }
        // Full-vector recursive doubling is NOT bandwidth-optimal.
        let rd = Algorithm::RecursiveDoubling.build(n, m as f64).unwrap();
        assert!((rd.schedule.total_bytes_per_node() - m as f64 * 4.0).abs() < 1e-6);
    }
}
