//! Broadcast algorithms.
//!
//! * [`binomial`] — the latency-optimal tree: `⌈log₂ n⌉` steps of
//!   full-message sends; steps are *partial* matchings (most nodes idle
//!   early on), exercising the partial-matching paths of the scheduler and
//!   fabric.
//! * [`scatter_allgather`] — the bandwidth-optimal large-message broadcast
//!   (van de Geijn): binomial-scatter the message into `n` chunks, then
//!   ring-allgather them; `⌈log₂ n⌉ + n − 1` steps moving only
//!   `~2m(n−1)/n` bytes per node.

use crate::builder::{assemble, ceil_log2, check_message_bytes, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Builds a binomial-tree broadcast of `message_bytes` from `root` over
/// `n ≥ 2` nodes (any `n`).
///
/// # Errors
///
/// Rejects `n < 2`, out-of-range roots, and bad message sizes.
pub fn binomial(n: usize, root: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    if root >= n {
        return Err(CollectiveError::RootOutOfRange { root, n });
    }
    check_message_bytes(message_bytes)?;
    let rounds = ceil_log2(n);
    let steps: Vec<StepSends> = (0..rounds)
        .map(|t| {
            let reach = 1usize << t;
            (0..reach)
                .filter(|r| r + reach < n)
                .map(|r| {
                    let src = (root + r) % n;
                    let dst = (root + r + reach) % n;
                    (src, dst, vec![0usize], Combine::Replace)
                })
                .collect()
        })
        .collect();
    let mut initial = vec![Vec::new(); n];
    initial[root] = vec![0usize];
    assemble(
        n,
        CollectiveKind::Broadcast,
        "binomial",
        Semantics::Broadcast { root },
        1,
        message_bytes,
        initial,
        steps,
    )
}

/// Builds the van de Geijn scatter-allgather broadcast of `message_bytes`
/// from `root` over `n ≥ 2` nodes (any `n`): a binomial scatter of the
/// `n`-chunk message followed by a ring allgather. Bandwidth-optimal for
/// large messages (each node moves `~2m(n−1)/n` bytes instead of the
/// binomial tree's `m·⌈log₂ n⌉` on interior nodes).
///
/// # Errors
///
/// Rejects `n < 2`, out-of-range roots, and bad message sizes.
pub fn scatter_allgather(
    n: usize,
    root: usize,
    message_bytes: f64,
) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    if root >= n {
        return Err(CollectiveError::RootOutOfRange { root, n });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    // Phase 1: binomial scatter; afterwards node i holds chunk i.
    let mut steps = crate::scatter::binomial_scatter_steps(n, root);
    // Phase 2: ring allgather circulates the chunks.
    for t in 0..n - 1 {
        steps.push(
            (0..n)
                .map(|i| {
                    let c = (i + n - t % n) % n;
                    (i, (i + 1) % n, vec![c], Combine::Replace)
                })
                .collect(),
        );
    }
    let mut initial = vec![Vec::new(); n];
    initial[root] = (0..n).collect();
    assemble(
        n,
        CollectiveKind::Broadcast,
        "scatter-allgather",
        Semantics::Broadcast { root },
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_allgather_verifies_for_many_sizes_and_roots() {
        for n in [2, 3, 5, 8, 13, 16] {
            for root in [0, n / 2, n - 1] {
                scatter_allgather(n, root, 1600.0)
                    .unwrap()
                    .check()
                    .unwrap_or_else(|e| panic!("n={n} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn scatter_allgather_is_bandwidth_optimal_for_large_messages() {
        let n = 16;
        let m = 1600.0;
        let sag = scatter_allgather(n, 0, m).unwrap();
        let tree = binomial(n, 0, m).unwrap();
        // Busiest-node bytes: the binomial root/interior nodes resend the
        // full message every step; scatter-allgather never exceeds ~2m.
        assert!(sag.schedule.total_bytes_per_node() < 2.0 * m + 1e-9);
        assert!(tree.schedule.total_bytes_per_node() > 3.0 * m);
        assert_eq!(sag.schedule.num_steps(), 4 + (n - 1));
    }

    #[test]
    fn verifies_for_many_sizes_and_roots() {
        for n in [2, 3, 4, 5, 8, 13, 16] {
            for root in [0, n / 2, n - 1] {
                binomial(n, root, 100.0)
                    .unwrap()
                    .check()
                    .unwrap_or_else(|e| panic!("n={n} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn step_count_and_partiality() {
        let c = binomial(16, 0, 10.0).unwrap();
        assert_eq!(c.schedule.num_steps(), 4);
        let sizes: Vec<usize> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.matching.len())
            .collect();
        assert_eq!(sizes, vec![1, 2, 4, 8]);
        assert!(c
            .schedule
            .steps()
            .iter()
            .all(|s| !s.matching.is_full() || s.matching.len() == 8));
    }

    #[test]
    fn every_step_carries_full_message() {
        let c = binomial(8, 3, 42.0).unwrap();
        for s in c.schedule.steps() {
            assert_eq!(s.bytes_per_pair, 42.0);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            binomial(8, 9, 1.0),
            Err(CollectiveError::RootOutOfRange { root: 9, n: 8 })
        ));
        assert!(binomial(1, 0, 1.0).is_err());
        assert!(binomial(8, 0, f64::NAN).is_err());
    }
}
