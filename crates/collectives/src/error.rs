//! Error types for collective construction and verification.

use aps_matrix::MatrixError;
use std::fmt;

/// Errors produced while constructing a collective algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveError {
    /// The algorithm needs at least `min` participants.
    TooFewNodes {
        /// Requested node count.
        n: usize,
        /// Minimum supported node count.
        min: usize,
    },
    /// The algorithm requires a power-of-two node count.
    NotPowerOfTwo(usize),
    /// The broadcast/scatter root is out of range.
    RootOutOfRange {
        /// Requested root.
        root: usize,
        /// Node count.
        n: usize,
    },
    /// The message size must be positive and finite.
    BadMessageSize(f64),
    /// An arrival-process rate or dwell time must be positive and finite
    /// (see [`crate::workload::arrivals`]).
    BadRate(f64),
    /// An internal invariant of the algorithm construction failed. This
    /// indicates a bug in the algorithm builder, not bad user input.
    ConstructionInvariant(&'static str),
    /// A matching could not be built (propagated from `aps-matrix`).
    Matrix(MatrixError),
    /// A streaming workload yielded more steps than the caller's
    /// materialization limit (see [`crate::workload::materialize`]).
    WorkloadTooLong {
        /// The caller's step limit.
        limit: usize,
    },
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewNodes { n, min } => {
                write!(f, "collective over {n} nodes unsupported (minimum {min})")
            }
            Self::NotPowerOfTwo(n) => {
                write!(f, "algorithm requires a power-of-two node count, got {n}")
            }
            Self::RootOutOfRange { root, n } => {
                write!(f, "root {root} out of range for {n} nodes")
            }
            Self::BadMessageSize(m) => write!(f, "message size {m} must be positive and finite"),
            Self::BadRate(r) => write!(f, "rate {r} must be positive and finite"),
            Self::ConstructionInvariant(what) => {
                write!(f, "algorithm construction invariant violated: {what}")
            }
            Self::Matrix(e) => write!(f, "matching construction failed: {e}"),
            Self::WorkloadTooLong { limit } => {
                write!(
                    f,
                    "workload exceeded the {limit}-step materialization limit"
                )
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

impl From<MatrixError> for CollectiveError {
    fn from(e: MatrixError) -> Self {
        Self::Matrix(e)
    }
}

/// Errors raised by the symbolic data-flow verifier.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A transfer tried to send a chunk its source does not hold.
    MissingChunk {
        /// Step index.
        step: usize,
        /// Sending node.
        src: usize,
        /// The chunk it does not hold.
        chunk: usize,
    },
    /// A transfer referenced an out-of-range node or chunk.
    OutOfRange {
        /// Step index.
        step: usize,
        /// Description of the offending reference.
        what: &'static str,
    },
    /// The set of (src → dst) transfers of a step does not match the step's
    /// matching in the schedule.
    MatchingMismatch {
        /// Step index.
        step: usize,
    },
    /// The step's advertised volume disagrees with the chunk-level data.
    VolumeMismatch {
        /// Step index.
        step: usize,
        /// Volume advertised by the schedule (bytes per pair).
        schedule_bytes: f64,
        /// Volume implied by the data flow (max chunks × chunk bytes).
        dataflow_bytes: f64,
    },
    /// The final state violates the collective's semantics.
    WrongFinalState {
        /// The node with the bad state.
        node: usize,
        /// The offending chunk.
        chunk: usize,
        /// Human-readable expectation.
        expected: &'static str,
    },
    /// Schedule and data flow have different step counts.
    StepCountMismatch {
        /// Steps in the schedule.
        schedule: usize,
        /// Steps in the data flow.
        dataflow: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingChunk { step, src, chunk } => {
                write!(f, "step {step}: node {src} sends chunk {chunk} it does not hold")
            }
            Self::OutOfRange { step, what } => write!(f, "step {step}: {what} out of range"),
            Self::MatchingMismatch { step } => {
                write!(f, "step {step}: data-flow transfers disagree with the schedule matching")
            }
            Self::VolumeMismatch {
                step,
                schedule_bytes,
                dataflow_bytes,
            } => write!(
                f,
                "step {step}: schedule volume {schedule_bytes} B != data-flow volume {dataflow_bytes} B"
            ),
            Self::WrongFinalState { node, chunk, expected } => {
                write!(f, "final state wrong at node {node}, chunk {chunk}: expected {expected}")
            }
            Self::StepCountMismatch { schedule, dataflow } => {
                write!(f, "schedule has {schedule} steps but data flow has {dataflow}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}
