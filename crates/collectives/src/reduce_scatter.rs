//! ReduceScatter algorithms: node `i` ends with the fully-reduced slot `i`.
//!
//! `message_bytes` is the input vector size `m`; each of the `n` slots is
//! `m/n` bytes.

use crate::builder::{assemble, check_message_bytes, exact_log2, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Ring ReduceScatter: `n−1` shift-by-1 steps; slot `c` travels the ring
/// accumulating contributions and completes at its owner `c`.
///
/// # Errors
///
/// Rejects `n < 2` and bad message sizes.
pub fn ring(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let steps: Vec<StepSends> = (0..n - 1)
        .map(|t| {
            (0..n)
                .map(|i| {
                    let c = (i + 2 * n - t - 1) % n;
                    (i, (i + 1) % n, vec![c], Combine::Reduce)
                })
                .collect()
        })
        .collect();
    let initial = (0..n).map(|_| (0..n).collect()).collect();
    assemble(
        n,
        CollectiveKind::ReduceScatter,
        "ring",
        Semantics::ReduceScatter,
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

/// Recursive-halving ReduceScatter (the first phase of Rabenseifner
/// AllReduce): `log₂ n` steps with partners at XOR distance `n/2, …, 1` and
/// volumes `m/2, …, m/n`.
///
/// # Errors
///
/// Rejects `n < 2`, non-power-of-two `n`, and bad message sizes.
pub fn recursive_halving(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    let log = exact_log2(n)?;
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let steps: Vec<StepSends> = (0..log)
        .map(|t| {
            let mask = 1usize << (log - 1 - t);
            (0..n)
                .map(|i| {
                    let p = i ^ mask;
                    let width = log - t - 1;
                    let lo = (p >> width) << width;
                    let blk: Vec<usize> = (lo..lo + (n >> (t + 1))).collect();
                    (i, p, blk, Combine::Reduce)
                })
                .collect()
        })
        .collect();
    let initial = (0..n).map(|_| (0..n).collect()).collect();
    assemble(
        n,
        CollectiveKind::ReduceScatter,
        "recursive-halving",
        Semantics::ReduceScatter,
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_verifies() {
        for n in [2, 3, 5, 8, 16] {
            ring(n, 100.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn recursive_halving_verifies() {
        for n in [2, 4, 8, 16, 64] {
            recursive_halving(n, 64.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
        assert!(recursive_halving(12, 1.0).is_err());
    }

    #[test]
    fn optimal_bytes_per_node() {
        let n = 8;
        let m = 800.0;
        let opt = m * (n as f64 - 1.0) / n as f64;
        assert!((ring(n, m).unwrap().schedule.total_bytes_per_node() - opt).abs() < 1e-9);
        assert!(
            (recursive_halving(n, m)
                .unwrap()
                .schedule
                .total_bytes_per_node()
                - opt)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn halving_volumes() {
        let c = recursive_halving(8, 80.0).unwrap();
        let vols: Vec<f64> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        assert_eq!(vols, vec![40.0, 20.0, 10.0]);
    }
}
