//! All-to-All (personalized exchange / transpose) algorithms.
//!
//! `message_bytes` is each node's total send buffer `m`; every ordered pair
//! exchanges an `m/n`-byte block (the diagonal block stays local). Three
//! algorithms:
//!
//! * [`linear_shift`] — `n−1` steps; step `k` is the shift-by-`k`
//!   permutation delivering every block directly. This is the paper's
//!   All-to-All "transpose" workload (§3.4).
//! * [`xor_exchange`] — `n−1` steps of pairwise XOR exchanges (power-of-two
//!   `n`), the classic pairwise variant.
//! * [`bruck`] — `⌈log₂ n⌉` steps of shift-by-`2^t` permutations with
//!   store-and-forward relaying: fewer, fatter steps (`~m/2` per step);
//!   latency-optimal for small messages.

use crate::builder::{assemble, ceil_log2, check_message_bytes, exact_log2, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Chunk id of the block node `s` owes node `d`.
fn chunk(n: usize, s: usize, d: usize) -> usize {
    s * n + d
}

fn initial(n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| (0..n).filter(|&d| d != i).map(|d| chunk(n, i, d)).collect())
        .collect()
}

/// Linear-shift All-to-All: at step `k ∈ 1..n`, node `i` sends block
/// `(i, i+k)` directly to node `(i+k) mod n`.
///
/// # Errors
///
/// Rejects `n < 2` and bad message sizes.
pub fn linear_shift(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let steps: Vec<StepSends> = (1..n)
        .map(|k| {
            (0..n)
                .map(|i| {
                    let d = (i + k) % n;
                    (i, d, vec![chunk(n, i, d)], Combine::Replace)
                })
                .collect()
        })
        .collect();
    assemble(
        n,
        CollectiveKind::AllToAll,
        "linear-shift",
        Semantics::AllToAll,
        n * n,
        chunk_bytes,
        initial(n),
        steps,
    )
}

/// Pairwise XOR All-to-All: at step `k ∈ 1..n`, node `i` exchanges with
/// `i ⊕ k`. Requires power-of-two `n`.
///
/// # Errors
///
/// Rejects `n < 2`, non-power-of-two `n`, and bad message sizes.
pub fn xor_exchange(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    exact_log2(n)?;
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let steps: Vec<StepSends> = (1..n)
        .map(|k| {
            (0..n)
                .map(|i| {
                    let d = i ^ k;
                    (i, d, vec![chunk(n, i, d)], Combine::Replace)
                })
                .collect()
        })
        .collect();
    assemble(
        n,
        CollectiveKind::AllToAll,
        "xor-exchange",
        Semantics::AllToAll,
        n * n,
        chunk_bytes,
        initial(n),
        steps,
    )
}

/// Bruck All-to-All: `⌈log₂ n⌉` shift-by-`2^t` steps. A block with remaining
/// ring distance `r` hops forward by `2^t` exactly when bit `t` of `r` is
/// set, relaying through intermediate nodes. Works for any `n ≥ 2`.
///
/// # Errors
///
/// Rejects `n < 2` and bad message sizes.
pub fn bruck(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let rounds = ceil_log2(n);
    let mut steps: Vec<StepSends> = Vec::with_capacity(rounds);
    for t in 0..rounds {
        let hop = 1usize << t;
        let mut sends: StepSends = Vec::with_capacity(n);
        for v in 0..n {
            // Blocks held by v with remaining-distance bit t set: the block
            // (s, d) with r = (d - s) mod n sits at s + (r mod 2^t) after
            // the earlier rounds, i.e. v = s + (r & (hop - 1)).
            let mut moving = Vec::new();
            for r in 1..n {
                if r & hop != 0 {
                    let s = (v + n - (r & (hop - 1))) % n;
                    let d = (s + r) % n;
                    moving.push(chunk(n, s, d));
                }
            }
            if !moving.is_empty() {
                moving.sort_unstable();
                sends.push((v, (v + hop) % n, moving, Combine::Replace));
            }
        }
        steps.push(sends);
    }
    assemble(
        n,
        CollectiveKind::AllToAll,
        "bruck",
        Semantics::AllToAll,
        n * n,
        chunk_bytes,
        initial(n),
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_matrix::DemandMatrix;

    #[test]
    fn linear_shift_verifies() {
        for n in [2, 3, 4, 7, 8, 16] {
            linear_shift(n, 100.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn xor_exchange_verifies() {
        for n in [2, 4, 8, 16, 32] {
            xor_exchange(n, 100.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
        assert!(matches!(
            xor_exchange(6, 1.0),
            Err(CollectiveError::NotPowerOfTwo(6))
        ));
    }

    #[test]
    fn bruck_verifies_for_any_n() {
        for n in [2, 3, 5, 8, 13, 16, 31] {
            bruck(n, 100.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn direct_algorithms_aggregate_to_uniform_demand() {
        let n = 8;
        let m = 800.0;
        for c in [linear_shift(n, m).unwrap(), xor_exchange(n, m).unwrap()] {
            let d = c.schedule.aggregate_demand().unwrap();
            assert!(
                d.approx_eq(&DemandMatrix::uniform_all_to_all(n, m / n as f64), 1e-9),
                "{}",
                c.schedule.algorithm()
            );
            assert_eq!(c.schedule.num_steps(), n - 1);
        }
    }

    #[test]
    fn bruck_moves_half_buffer_per_step_pow2() {
        let n = 16;
        let m = 1600.0;
        let c = bruck(n, m).unwrap();
        assert_eq!(c.schedule.num_steps(), 4);
        for s in c.schedule.steps() {
            assert!((s.bytes_per_pair - m / 2.0).abs() < 1e-9);
        }
        // Total traffic per node is (n/2)·log2(n) blocks — more bytes than
        // direct delivery (the latency-for-bandwidth trade).
        let direct = linear_shift(n, m).unwrap();
        assert!(c.schedule.total_bytes_per_node() > direct.schedule.total_bytes_per_node());
    }

    #[test]
    fn bruck_relays_through_intermediates() {
        // Block (0 → 3) on n=4: distance 3 = 0b11, so it hops at rounds 0
        // and 1, relaying through node 1 — visible as the chunk appearing in
        // two different steps' transfers.
        let c = bruck(4, 4.0).unwrap();
        let ch = chunk(4, 0, 3);
        let hops: Vec<(usize, usize)> = c
            .dataflow
            .steps
            .iter()
            .flat_map(|s| s.transfers.iter())
            .filter(|t| t.chunks.contains(&ch))
            .map(|t| (t.src, t.dst))
            .collect();
        assert_eq!(hops, vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(linear_shift(1, 1.0).is_err());
        assert!(bruck(4, -2.0).is_err());
    }
}
