//! Dissemination barrier.
//!
//! `⌈log₂ n⌉` rounds; in round `t` node `i` signals node `(i + 2^t) mod n`,
//! forwarding every arrival token it has heard of so far. After the last
//! round every node has (transitively) heard from every node — the barrier
//! condition. Payloads are single flag bytes; the interesting cost is pure
//! latency, which makes barriers the extreme point of the paper's
//! small-message regime (reconfiguration never pays off).

use crate::builder::{assemble, ceil_log2, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Bytes of the per-node arrival token.
pub const TOKEN_BYTES: f64 = 1.0;

/// Builds a dissemination barrier over `n ≥ 2` nodes (any `n`).
///
/// # Errors
///
/// Rejects `n < 2`.
pub fn dissemination(n: usize) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    let rounds = ceil_log2(n);
    let steps: Vec<StepSends> = (0..rounds)
        .map(|t| {
            let hop = 1usize << t;
            (0..n)
                .map(|i| {
                    // Tokens known to node i before round t: the window
                    // {i, i-1, …, i-(2^t - 1)} (mod n).
                    let window = (1usize << t).min(n);
                    let known: Vec<usize> = (0..window).map(|x| (i + n - x % n) % n).collect();
                    (i, (i + hop) % n, known, Combine::Reduce)
                })
                .collect()
        })
        .collect();
    let initial = (0..n).map(|i| vec![i]).collect();
    assemble(
        n,
        CollectiveKind::Barrier,
        "dissemination",
        Semantics::Barrier,
        n,
        TOKEN_BYTES,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_for_any_n() {
        for n in [2, 3, 4, 5, 7, 8, 9, 16, 33] {
            dissemination(n)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn round_count_is_ceil_log() {
        assert_eq!(dissemination(8).unwrap().schedule.num_steps(), 3);
        assert_eq!(dissemination(9).unwrap().schedule.num_steps(), 4);
        assert_eq!(dissemination(2).unwrap().schedule.num_steps(), 1);
    }

    #[test]
    fn every_round_is_a_full_shift() {
        let c = dissemination(8).unwrap();
        for (t, s) in c.schedule.steps().iter().enumerate() {
            assert!(s.matching.is_full());
            assert_eq!(s.matching.dst_of(0), Some(1 << t));
        }
    }

    #[test]
    fn payload_stays_tiny() {
        let c = dissemination(16).unwrap();
        // Final round forwards at most n tokens of 1 byte.
        assert!(c.schedule.total_bytes_per_node() <= 16.0);
    }

    #[test]
    fn rejects_trivial_n() {
        assert!(dissemination(1).is_err());
    }
}
