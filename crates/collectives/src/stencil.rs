//! Halo (ghost-cell) exchange for 2-D stencil computations.
//!
//! The classic HPC near-neighbor pattern: ranks are arranged in a
//! `rows × cols` torus (rank = `r·cols + c`), and each iteration every rank
//! exchanges boundary strips with its four neighbors. As a matching
//! sequence this is four permutation steps — east, west, south, north wrap
//! shifts — each carrying one halo strip. On a ring-based photonic domain
//! only the ±1 shifts are local; the ±`cols` shifts are exactly the traffic
//! that makes reconfiguration attractive, which is why this workload
//! appears as an example.
//!
//! `halo_bytes` is the size of one directional halo strip.

use crate::builder::{assemble, check_message_bytes, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Builds one halo-exchange round on a `rows × cols` torus of ranks.
/// Requires both dimensions ≥ 3 so the four neighbor shifts are distinct
/// permutations (a dimension of 2 would collapse the two directions onto
/// the same neighbor).
///
/// # Errors
///
/// Rejects degenerate grids and bad strip sizes.
pub fn halo_2d(rows: usize, cols: usize, halo_bytes: f64) -> Result<Collective, CollectiveError> {
    if rows < 3 || cols < 3 {
        return Err(CollectiveError::TooFewNodes {
            n: rows * cols,
            min: 9,
        });
    }
    check_message_bytes(halo_bytes)?;
    let n = rows * cols;
    let idx = |r: usize, c: usize| (r % rows) * cols + (c % cols);
    // Directions: (dr, dc, name). The chunk a node sends in direction k is
    // its k-th halo strip; chunk id = src*n + dst (sparse personalized).
    let dirs: [(usize, usize); 4] = [
        (0, 1),        // east
        (0, cols - 1), // west
        (1, 0),        // south
        (rows - 1, 0), // north
    ];
    let mut initial: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut steps: Vec<StepSends> = Vec::with_capacity(4);
    for (dr, dc) in dirs {
        let mut sends: StepSends = Vec::with_capacity(n);
        for r in 0..rows {
            for c in 0..cols {
                let src = idx(r, c);
                let dst = idx(r + dr, c + dc);
                let chunk = src * n + dst;
                initial[src].push(chunk);
                sends.push((src, dst, vec![chunk], Combine::Replace));
            }
        }
        steps.push(sends);
    }
    assemble(
        n,
        CollectiveKind::AllToAll,
        "halo-2d",
        Semantics::SparsePersonalized,
        n * n,
        halo_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_on_various_grids() {
        for (r, c) in [(3, 3), (3, 4), (4, 4), (4, 8), (5, 7)] {
            halo_2d(r, c, 4096.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("{r}x{c}: {e}"));
        }
    }

    #[test]
    fn four_full_permutation_steps() {
        let c = halo_2d(4, 4, 1024.0).unwrap();
        assert_eq!(c.schedule.num_steps(), 4);
        for s in c.schedule.steps() {
            assert!(s.matching.is_full());
            assert_eq!(s.bytes_per_pair, 1024.0);
        }
        // East step from rank 5 (row 1, col 1) goes to rank 6.
        assert_eq!(c.schedule.steps()[0].matching.dst_of(5), Some(6));
        // South step from rank 5 goes to rank 9.
        assert_eq!(c.schedule.steps()[2].matching.dst_of(5), Some(9));
    }

    #[test]
    fn row_shifts_are_ring_local_column_shifts_are_not() {
        // On a 4×8 grid flattened row-major, east/west are ±1 ring shifts
        // per row; south/north are ±8 — far on a 32-ring.
        let c = halo_2d(4, 8, 1024.0).unwrap();
        let n = 32;
        let dist = |m: &aps_matrix::Matching| {
            m.pairs()
                .map(|(a, b)| {
                    let f = (b + n - a) % n;
                    f.min(n - f)
                })
                .max()
                .unwrap()
        };
        // East within a row is distance 1 except the row wrap (7 back).
        assert!(dist(&c.schedule.steps()[0].matching) <= 7);
        assert_eq!(dist(&c.schedule.steps()[2].matching), 8);
    }

    #[test]
    fn rejects_degenerate_grids() {
        assert!(halo_2d(2, 5, 1.0).is_err());
        assert!(halo_2d(5, 2, 1.0).is_err());
        assert!(halo_2d(3, 3, 0.0).is_err());
    }
}
