//! Seeded deterministic arrival processes for open-system service runs.
//!
//! The [`Workload`](super::Workload) trait describes what a job *transfers*
//! once it runs; an [`ArrivalProcess`] describes *when* jobs materialize.
//! The fabric-as-a-service engine (`aps-faas`) pairs one arrival process
//! with one demand generator per tenant class and interleaves the merged
//! arrival stream with job execution over simulated time.
//!
//! Three processes cover the classic open-system traffic shapes:
//!
//! | process | shape |
//! |---|---|
//! | [`PoissonArrivals`] | memoryless interarrival gaps at a fixed rate |
//! | [`MmppArrivals`] | Markov-modulated Poisson: bursty/quiet phase switching |
//! | [`TraceArrivals`] | explicit interarrival gaps replayed from a trace |
//!
//! All gaps are integer **picoseconds** (`u64`), matching the simulator's
//! clock, and every process is a pure function of its constructor
//! arguments (including the RNG seed): replaying after
//! [`ArrivalProcess::reset`] is bit-identical on any machine and at any
//! `APS_THREADS` setting.

use crate::error::CollectiveError;
use rand::prelude::*;

/// Picoseconds per second, for converting sampled gap durations onto the
/// simulator clock without an `aps-cost` dependency.
const PS_PER_S: f64 = 1e12;

/// A deterministic stream of interarrival gaps, in picoseconds.
///
/// The contract mirrors [`Workload`](super::Workload): pulling gaps after
/// [`reset`](ArrivalProcess::reset) replays the exact same sequence, so a
/// recorded service run can be re-executed bit-identically.
pub trait ArrivalProcess {
    /// Human-readable process name, for reports.
    fn name(&self) -> &str;

    /// Picoseconds between the previous arrival and the next one (the
    /// first gap is measured from time zero). `None` once the process is
    /// exhausted; an exhausted process stays exhausted until `reset`.
    fn next_gap_ps(&mut self) -> Option<u64>;

    /// Rewinds to the initial state; the subsequent gap sequence is
    /// bit-identical to the one produced after construction.
    fn reset(&mut self);
}

/// Validates a rate (per-second) parameter.
fn check_rate(rate_hz: f64) -> Result<(), CollectiveError> {
    if !rate_hz.is_finite() || rate_hz <= 0.0 {
        return Err(CollectiveError::BadRate(rate_hz));
    }
    Ok(())
}

/// Samples an exponential duration with the given rate and converts it to
/// picoseconds (saturating at `u64::MAX` for absurdly small rates).
fn exp_gap_ps(rng: &mut StdRng, rate_hz: f64) -> u64 {
    let u: f64 = rng.random();
    // u ∈ [0, 1) so 1 − u ∈ (0, 1] and the log is finite and ≤ 0.
    let gap_s = -(1.0 - u).ln() / rate_hz;
    (gap_s * PS_PER_S).round() as u64
}

/// A memoryless (Poisson) arrival process: exponential interarrival gaps
/// at a fixed rate.
///
/// ```
/// use aps_collectives::workload::arrivals::{ArrivalProcess, PoissonArrivals};
///
/// let mut p = PoissonArrivals::new(1e6, Some(3), 7).unwrap();
/// let first: Vec<u64> = std::iter::from_fn(|| p.next_gap_ps()).collect();
/// assert_eq!(first.len(), 3);
/// p.reset(); // replays bit-identically
/// let again: Vec<u64> = std::iter::from_fn(|| p.next_gap_ps()).collect();
/// assert_eq!(first, again);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_hz: f64,
    jobs: Option<u64>,
    seed: u64,
    emitted: u64,
    rng: StdRng,
    name: String,
}

impl PoissonArrivals {
    /// A Poisson process emitting `jobs` arrivals (`None` = unbounded) at
    /// `rate_hz` arrivals per simulated second.
    ///
    /// # Errors
    ///
    /// [`CollectiveError::BadRate`] unless `rate_hz` is positive and
    /// finite.
    pub fn new(rate_hz: f64, jobs: Option<u64>, seed: u64) -> Result<Self, CollectiveError> {
        check_rate(rate_hz)?;
        Ok(Self {
            rate_hz,
            jobs,
            seed,
            emitted: 0,
            rng: StdRng::seed_from_u64(seed),
            name: format!("poisson({rate_hz:.0}/s)"),
        })
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_gap_ps(&mut self) -> Option<u64> {
        if self.jobs.is_some_and(|j| self.emitted >= j) {
            return None;
        }
        self.emitted += 1;
        Some(exp_gap_ps(&mut self.rng, self.rate_hz))
    }

    fn reset(&mut self) {
        self.emitted = 0;
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// A two-state Markov-modulated Poisson process: arrivals are Poisson at
/// the current state's rate, and the state itself flips after an
/// exponentially distributed dwell — the standard model for bursty
/// traffic (a hot phase interleaved with a quiet phase).
///
/// ```
/// use aps_collectives::workload::arrivals::{ArrivalProcess, MmppArrivals};
///
/// let mut m = MmppArrivals::new([1e7, 1e4], [1e-3, 1e-3], Some(5), 11).unwrap();
/// let gaps: Vec<u64> = std::iter::from_fn(|| m.next_gap_ps()).collect();
/// assert_eq!(gaps.len(), 5);
/// m.reset();
/// let again: Vec<u64> = std::iter::from_fn(|| m.next_gap_ps()).collect();
/// assert_eq!(gaps, again);
/// ```
#[derive(Debug, Clone)]
pub struct MmppArrivals {
    rates_hz: [f64; 2],
    dwell_rates_hz: [f64; 2],
    jobs: Option<u64>,
    seed: u64,
    emitted: u64,
    state: usize,
    dwell_left_ps: u64,
    rng: StdRng,
    name: String,
}

impl MmppArrivals {
    /// A two-state MMPP: state `i` emits at `rates_hz[i]` and dwells for
    /// an exponential duration with mean `mean_dwell_s[i]` before
    /// flipping. Emits `jobs` arrivals total (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// [`CollectiveError::BadRate`] unless every rate and dwell time is
    /// positive and finite.
    pub fn new(
        rates_hz: [f64; 2],
        mean_dwell_s: [f64; 2],
        jobs: Option<u64>,
        seed: u64,
    ) -> Result<Self, CollectiveError> {
        for r in rates_hz {
            check_rate(r)?;
        }
        for d in mean_dwell_s {
            check_rate(d)?;
        }
        let dwell_rates_hz = [1.0 / mean_dwell_s[0], 1.0 / mean_dwell_s[1]];
        for r in dwell_rates_hz {
            check_rate(r)?; // guards subnormal dwell times whose inverse overflows
        }
        let mut p = Self {
            rates_hz,
            dwell_rates_hz,
            jobs,
            seed,
            emitted: 0,
            state: 0,
            dwell_left_ps: 0,
            rng: StdRng::seed_from_u64(seed),
            name: format!("mmpp({:.0}/{:.0}/s)", rates_hz[0], rates_hz[1]),
        };
        p.dwell_left_ps = exp_gap_ps(&mut p.rng, p.dwell_rates_hz[0]);
        Ok(p)
    }
}

impl ArrivalProcess for MmppArrivals {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_gap_ps(&mut self) -> Option<u64> {
        if self.jobs.is_some_and(|j| self.emitted >= j) {
            return None;
        }
        self.emitted += 1;
        // Walk modulation epochs until an arrival lands inside one. The
        // Poisson clock is memoryless, so the residual gap re-draws at the
        // new state's rate after each flip.
        let mut acc: u64 = 0;
        loop {
            let gap = exp_gap_ps(&mut self.rng, self.rates_hz[self.state]);
            if gap <= self.dwell_left_ps {
                self.dwell_left_ps -= gap;
                return Some(acc.saturating_add(gap));
            }
            acc = acc.saturating_add(self.dwell_left_ps);
            self.state = 1 - self.state;
            self.dwell_left_ps = exp_gap_ps(&mut self.rng, self.dwell_rates_hz[self.state]);
        }
    }

    fn reset(&mut self) {
        self.emitted = 0;
        self.state = 0;
        self.rng = StdRng::seed_from_u64(self.seed);
        self.dwell_left_ps = exp_gap_ps(&mut self.rng, self.dwell_rates_hz[0]);
    }
}

/// Trace-driven arrivals: an explicit, finite gap sequence replayed
/// verbatim — the process behind differential tests (every job at t = 0
/// is `TraceArrivals::new(vec![0; k])`) and production trace replay.
///
/// ```
/// use aps_collectives::workload::arrivals::{ArrivalProcess, TraceArrivals};
///
/// // Three jobs at absolute times 10, 25 and 25 ps.
/// let mut t = TraceArrivals::from_times(&[10, 25, 25]).unwrap();
/// assert_eq!(t.next_gap_ps(), Some(10));
/// assert_eq!(t.next_gap_ps(), Some(15));
/// assert_eq!(t.next_gap_ps(), Some(0));
/// assert_eq!(t.next_gap_ps(), None);
/// ```
#[derive(Debug, Clone)]
pub struct TraceArrivals {
    gaps_ps: Vec<u64>,
    next: usize,
}

impl TraceArrivals {
    /// A trace of interarrival gaps (picoseconds), replayed in order.
    pub fn new(gaps_ps: Vec<u64>) -> Self {
        Self { gaps_ps, next: 0 }
    }

    /// Builds a trace from nondecreasing *absolute* arrival times.
    ///
    /// # Errors
    ///
    /// [`CollectiveError::ConstructionInvariant`] when the times are not
    /// sorted.
    pub fn from_times(times_ps: &[u64]) -> Result<Self, CollectiveError> {
        let mut gaps = Vec::with_capacity(times_ps.len());
        let mut prev = 0u64;
        for &t in times_ps {
            let Some(gap) = t.checked_sub(prev) else {
                return Err(CollectiveError::ConstructionInvariant(
                    "arrival times must be nondecreasing",
                ));
            };
            gaps.push(gap);
            prev = t;
        }
        Ok(Self::new(gaps))
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.gaps_ps.len()
    }

    /// `true` when the trace holds no arrivals at all.
    pub fn is_empty(&self) -> bool {
        self.gaps_ps.is_empty()
    }
}

impl ArrivalProcess for TraceArrivals {
    fn name(&self) -> &str {
        "trace"
    }

    fn next_gap_ps(&mut self) -> Option<u64> {
        let gap = self.gaps_ps.get(self.next).copied()?;
        self.next += 1;
        Some(gap)
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut dyn ArrivalProcess, cap: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < cap {
            match p.next_gap_ps() {
                Some(g) => out.push(g),
                None => break,
            }
        }
        out
    }

    #[test]
    fn poisson_is_seeded_and_replays() {
        let mut a = PoissonArrivals::new(1e6, Some(100), 42).unwrap();
        let mut b = PoissonArrivals::new(1e6, Some(100), 42).unwrap();
        let ga = drain(&mut a, 200);
        assert_eq!(ga.len(), 100);
        assert_eq!(ga, drain(&mut b, 200));
        a.reset();
        assert_eq!(ga, drain(&mut a, 200));
        // A different seed produces a different stream.
        let mut c = PoissonArrivals::new(1e6, Some(100), 43).unwrap();
        assert_ne!(ga, drain(&mut c, 200));
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        // 1e6 jobs/s → mean gap 1 µs = 1e6 ps; the sample mean over 10k
        // draws lands within 5%.
        let mut p = PoissonArrivals::new(1e6, Some(10_000), 1).unwrap();
        let gaps = drain(&mut p, usize::MAX);
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!((mean - 1e6).abs() / 1e6 < 0.05, "mean gap {mean} ps");
    }

    #[test]
    fn poisson_rejects_bad_rates() {
        for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                PoissonArrivals::new(r, None, 0),
                Err(CollectiveError::BadRate(_))
            ));
        }
    }

    #[test]
    fn mmpp_replays_and_modulates() {
        let mut a = MmppArrivals::new([1e8, 1e4], [1e-4, 1e-4], Some(500), 9).unwrap();
        let ga = drain(&mut a, 1000);
        assert_eq!(ga.len(), 500);
        a.reset();
        assert_eq!(ga, drain(&mut a, 1000));
        // Burstiness: an MMPP with a 10⁴× rate split has far higher gap
        // variance than a Poisson of the same mean would — cheap check:
        // both very short and very long gaps appear.
        let min = *ga.iter().min().unwrap();
        let max = *ga.iter().max().unwrap();
        assert!(max > min.saturating_mul(100), "min {min} max {max}");
    }

    #[test]
    fn mmpp_rejects_bad_parameters() {
        assert!(MmppArrivals::new([0.0, 1.0], [1.0, 1.0], None, 0).is_err());
        assert!(MmppArrivals::new([1.0, 1.0], [0.0, 1.0], None, 0).is_err());
    }

    #[test]
    fn trace_replays_gaps_verbatim() {
        let mut t = TraceArrivals::new(vec![5, 0, 7]);
        assert_eq!(t.len(), 3);
        assert_eq!(drain(&mut t, 10), vec![5, 0, 7]);
        assert_eq!(t.next_gap_ps(), None);
        t.reset();
        assert_eq!(drain(&mut t, 10), vec![5, 0, 7]);
    }

    #[test]
    fn trace_from_times_requires_sorted_input() {
        assert!(TraceArrivals::from_times(&[3, 2]).is_err());
        let t = TraceArrivals::from_times(&[0, 0, 4]).unwrap();
        assert_eq!(t.gaps_ps, vec![0, 0, 4]);
    }
}
