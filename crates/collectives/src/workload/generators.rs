//! Shipped lazy demand sources.
//!
//! Four generators cover the open-ended workload shapes the photonic
//! scale-up literature anticipates (cf. the training-loop workloads of
//! "Novel High-Scalability Architecture for Photonic Deep Learning"):
//!
//! | generator | shape |
//! |---|---|
//! | [`TrainingLoop`] | pipeline-parallel DNN epochs: fwd → bwd → gradient AllReduce |
//! | [`ParameterServer`] | parameter-server rounds: worker→server incast waves, then server→worker pull waves |
//! | [`RandomPermutations`] | seeded random derangement per step (adversarial permutation traffic) |
//! | [`OnOffBursty`] | seeded on/off bursts of uniform shift traffic with idle gaps |
//!
//! All four are pure functions of their constructor arguments (including
//! the RNG seed): replaying after [`Workload::reset`] is bit-identical on
//! any machine and at any `APS_THREADS` setting.

use super::{Workload, WorkloadCtx};
use crate::allreduce;
use crate::error::CollectiveError;
use crate::schedule::{CollectiveKind, Schedule, Step};
use aps_matrix::Matching;
use rand::prelude::*;

/// Validates a node count and a per-step volume shared by the generators.
fn check(n: usize, bytes: f64) -> Result<(), CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    if !bytes.is_finite() || bytes < 0.0 {
        return Err(CollectiveError::BadMessageSize(bytes));
    }
    Ok(())
}

/// A uniformly random full permutation without fixed points
/// (derangement), via rejection sampling — the classic adversarial
/// pattern for ring-based fabrics.
pub fn random_derangement(n: usize, rng: &mut StdRng) -> Matching {
    assert!(n >= 2, "derangements need n >= 2");
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        perm.shuffle(rng);
        if perm.iter().enumerate().all(|(i, &p)| i != p) {
            break;
        }
    }
    let pairs: Vec<(usize, usize)> = perm.iter().enumerate().map(|(i, &p)| (i, p)).collect();
    Matching::from_pairs(n, &pairs).expect("derangement is a valid matching")
}

/// Phase of a [`TrainingLoop`] epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Fwd,
    Bwd,
    AllReduce,
}

/// A pipeline-parallel DNN training loop: each epoch streams
/// `microbatches` forward activations down the pipeline (`shift(+1)`),
/// the same number of backward gradients up it (`shift(−1)`), then a
/// bandwidth-optimal gradient AllReduce — without ever materializing the
/// epoch sequence. `epochs: None` trains forever.
///
/// ```
/// use aps_collectives::workload::{generators::TrainingLoop, materialize, Workload};
///
/// let mut train = TrainingLoop::new(8, 4, 1e6, 32e6, Some(2)).unwrap();
/// // Per epoch: 4 fwd + 4 bwd + the 2·log₂(8) = 6 AllReduce steps.
/// assert_eq!(train.size_hint(), (28, Some(28)));
/// let epoch_pair = materialize(&mut train, 100).unwrap();
/// assert_eq!(epoch_pair.num_steps(), 28);
/// train.reset(); // replays bit-identically
/// assert_eq!(
///     materialize(&mut train, 100).unwrap().steps(),
///     epoch_pair.steps()
/// );
/// ```
#[derive(Debug, Clone)]
pub struct TrainingLoop {
    n: usize,
    microbatches: usize,
    /// The `shift(+1)` activation step, precomputed so steady-state pulls
    /// via [`Workload::next_step_into`] never build a matching.
    fwd_step: Step,
    /// The `shift(−1)` gradient step, precomputed like `fwd_step`.
    bwd_step: Step,
    /// One epoch's AllReduce steps, precomputed once (O(per-epoch), not
    /// O(total steps)).
    allreduce_steps: Vec<Step>,
    epochs: Option<usize>,
    epoch: usize,
    phase: Phase,
    idx: usize,
    name: String,
}

impl TrainingLoop {
    /// A training loop on an `n`-stage pipeline: `microbatches` activation
    /// transfers of `activation_bytes` each way per epoch, then an
    /// AllReduce of `grad_bytes` gradients; `epochs: None` streams
    /// forever.
    ///
    /// # Errors
    ///
    /// Rejects `n < 2`, bad volumes, and AllReduce construction failures.
    pub fn new(
        n: usize,
        microbatches: usize,
        activation_bytes: f64,
        grad_bytes: f64,
        epochs: Option<usize>,
    ) -> Result<Self, CollectiveError> {
        check(n, activation_bytes)?;
        let allreduce_steps = allreduce::any_n::build(n, grad_bytes)?
            .schedule
            .steps()
            .to_vec();
        let fwd_step = Step {
            matching: Matching::shift(n, 1).expect("n ≥ 2"),
            bytes_per_pair: activation_bytes,
        };
        let bwd_step = Step {
            matching: Matching::shift(n, n - 1).expect("n ≥ 2"),
            bytes_per_pair: activation_bytes,
        };
        Ok(Self {
            n,
            microbatches,
            fwd_step,
            bwd_step,
            allreduce_steps,
            epochs,
            epoch: 0,
            phase: Phase::Fwd,
            idx: 0,
            name: "training-loop".into(),
        })
    }

    /// Steps in one epoch.
    fn per_epoch(&self) -> usize {
        2 * self.microbatches + self.allreduce_steps.len()
    }

    /// Steps already emitted in the current epoch.
    fn emitted_in_epoch(&self) -> usize {
        match self.phase {
            Phase::Fwd => self.idx,
            Phase::Bwd => self.microbatches + self.idx,
            Phase::AllReduce => 2 * self.microbatches + self.idx,
        }
    }

    /// Advances the epoch state machine one emission and returns the step
    /// to emit (`None` when the configured epochs are exhausted). Both
    /// pull paths share this, so `next_step` and `next_step_into` cannot
    /// drift apart; the returned reference points at precomputed storage,
    /// which is what lets `next_step_into` copy without allocating.
    fn advance(&mut self) -> Option<&Step> {
        loop {
            if self.epochs.is_some_and(|k| self.epoch >= k) {
                return None;
            }
            match self.phase {
                Phase::Fwd if self.idx < self.microbatches => {
                    self.idx += 1;
                    return Some(&self.fwd_step);
                }
                Phase::Fwd => {
                    self.phase = Phase::Bwd;
                    self.idx = 0;
                }
                Phase::Bwd if self.idx < self.microbatches => {
                    self.idx += 1;
                    return Some(&self.bwd_step);
                }
                Phase::Bwd => {
                    self.phase = Phase::AllReduce;
                    self.idx = 0;
                }
                Phase::AllReduce if self.idx < self.allreduce_steps.len() => {
                    self.idx += 1;
                    return Some(&self.allreduce_steps[self.idx - 1]);
                }
                Phase::AllReduce => {
                    self.phase = Phase::Fwd;
                    self.idx = 0;
                    self.epoch += 1;
                }
            }
        }
    }
}

impl Workload for TrainingLoop {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, _ctx: &WorkloadCtx) -> Option<Step> {
        self.advance().cloned()
    }

    fn next_step_into(&mut self, _ctx: &WorkloadCtx, out: &mut Step) -> bool {
        match self.advance() {
            Some(step) => {
                out.clone_from(step);
                true
            }
            None => false,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.epochs {
            None => (0, None),
            Some(k) => {
                let left = (k.saturating_sub(self.epoch)) * self.per_epoch();
                let left = left.saturating_sub(self.emitted_in_epoch().min(left));
                (left, Some(left))
            }
        }
    }

    fn reset(&mut self) {
        self.epoch = 0;
        self.phase = Phase::Fwd;
        self.idx = 0;
    }
}

/// Parameter-server rounds: each round pushes `bytes` from every worker
/// to a server (incast serialized into waves of at most `servers`
/// concurrent transfers — a receiver accepts one flow per step), then
/// pulls the updated model back in mirrored waves. Ports `0..servers`
/// are the servers, the rest are workers. `rounds: None` streams forever.
///
/// ```
/// use aps_collectives::workload::{generators::ParameterServer, materialize, Workload};
///
/// let mut ps = ParameterServer::new(8, 2, 4e6, Some(1)).unwrap();
/// // 6 workers over 2 servers: 3 push waves + 3 pull waves per round.
/// assert_eq!(ps.size_hint(), (6, Some(6)));
/// let round = materialize(&mut ps, 100).unwrap();
/// // Every wave is a 2-pair matching (one flow per server).
/// assert!(round.steps().iter().all(|s| s.matching.len() == 2));
/// ```
#[derive(Debug, Clone)]
pub struct ParameterServer {
    n: usize,
    servers: usize,
    bytes: f64,
    rounds: Option<usize>,
    round: usize,
    wave: usize,
    name: String,
}

impl ParameterServer {
    /// An `n`-port domain with `servers` parameter servers; every round
    /// moves `bytes` per worker each way.
    ///
    /// # Errors
    ///
    /// Rejects `servers == 0`, `servers ≥ n` (no workers), and bad
    /// volumes.
    pub fn new(
        n: usize,
        servers: usize,
        bytes: f64,
        rounds: Option<usize>,
    ) -> Result<Self, CollectiveError> {
        check(n, bytes)?;
        if servers == 0 || servers >= n {
            return Err(CollectiveError::TooFewNodes {
                n: n.saturating_sub(servers),
                min: 1,
            });
        }
        Ok(Self {
            n,
            servers,
            bytes,
            rounds,
            round: 0,
            wave: 0,
            name: "param-server".into(),
        })
    }

    /// Push waves per round (pull waves mirror them).
    fn waves(&self) -> usize {
        let workers = self.n - self.servers;
        workers.div_ceil(self.servers)
    }

    /// The matching of wave `w` (push waves first, then pull waves).
    fn wave_matching(&self, w: usize) -> Matching {
        let waves = self.waves();
        let (pull, wave) = if w < waves {
            (false, w)
        } else {
            (true, w - waves)
        };
        let mut pairs = Vec::with_capacity(self.servers);
        for j in 0..self.servers {
            let worker = self.servers + wave * self.servers + j;
            if worker < self.n {
                pairs.push(if pull { (j, worker) } else { (worker, j) });
            }
        }
        Matching::from_pairs(self.n, &pairs).expect("one flow per server is a matching")
    }
}

impl Workload for ParameterServer {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, _ctx: &WorkloadCtx) -> Option<Step> {
        if self.rounds.is_some_and(|k| self.round >= k) {
            return None;
        }
        let step = Step {
            matching: self.wave_matching(self.wave),
            bytes_per_pair: self.bytes,
        };
        self.wave += 1;
        if self.wave == 2 * self.waves() {
            self.wave = 0;
            self.round += 1;
        }
        Some(step)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.rounds {
            None => (0, None),
            Some(k) => {
                let left = k.saturating_sub(self.round) * 2 * self.waves();
                let left = left.saturating_sub(self.wave.min(left));
                (left, Some(left))
            }
        }
    }

    fn reset(&mut self) {
        self.round = 0;
        self.wave = 0;
    }
}

/// Seeded random-permutation traffic: every step is a fresh uniformly
/// random derangement of `bytes` per pair — the adversarial pattern for
/// any static base topology. `steps: None` streams forever; the stream
/// is a pure function of the seed.
///
/// ```
/// use aps_collectives::workload::{generators::RandomPermutations, materialize, Workload};
///
/// let mut a = RandomPermutations::new(16, 1e6, Some(32), 42).unwrap();
/// let mut b = RandomPermutations::new(16, 1e6, Some(32), 42).unwrap();
/// let (sa, sb) = (
///     materialize(&mut a, 100).unwrap(),
///     materialize(&mut b, 100).unwrap(),
/// );
/// assert_eq!(sa.steps(), sb.steps()); // same seed ⇒ same stream
/// assert!(sa.steps().iter().all(|s| s.matching.is_full()));
/// ```
#[derive(Debug, Clone)]
pub struct RandomPermutations {
    n: usize,
    bytes: f64,
    steps: Option<usize>,
    seed: u64,
    rng: StdRng,
    emitted: usize,
    name: String,
}

impl RandomPermutations {
    /// `steps` random derangements of `bytes` per pair on `n` nodes,
    /// reproducible from `seed`.
    ///
    /// # Errors
    ///
    /// Rejects `n < 2` and bad volumes.
    pub fn new(
        n: usize,
        bytes: f64,
        steps: Option<usize>,
        seed: u64,
    ) -> Result<Self, CollectiveError> {
        check(n, bytes)?;
        Ok(Self {
            n,
            bytes,
            steps,
            seed,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
            name: "random-permutations".into(),
        })
    }
}

impl Workload for RandomPermutations {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, _ctx: &WorkloadCtx) -> Option<Step> {
        if self.steps.is_some_and(|k| self.emitted >= k) {
            return None;
        }
        self.emitted += 1;
        Some(Step {
            matching: random_derangement(self.n, &mut self.rng),
            bytes_per_pair: self.bytes,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.steps {
            None => (0, None),
            Some(k) => {
                let left = k.saturating_sub(self.emitted);
                (left, Some(left))
            }
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.emitted = 0;
    }
}

/// On/off bursty uniform traffic: alternating bursts of random cyclic
/// `shift(k)` steps at `on_bytes` per pair and idle gaps (empty-matching
/// steps). Burst and gap lengths are drawn uniformly from
/// `1..=2·mean − 1`, so `mean_on`/`mean_off` are the expected phase
/// lengths; the whole stream is a pure function of the seed.
/// `steps: None` streams forever.
///
/// ```
/// use aps_collectives::workload::{generators::OnOffBursty, materialize, Workload};
///
/// let mut w = OnOffBursty::new(8, 2e6, 3, 2, Some(64), 7).unwrap();
/// let s = materialize(&mut w, 100).unwrap();
/// assert_eq!(s.num_steps(), 64);
/// // Bursts carry full shift matchings; gaps are idle steps.
/// assert!(s.steps().iter().any(|st| st.matching.is_full()));
/// assert!(s.steps().iter().any(|st| st.matching.is_empty()));
/// ```
#[derive(Debug, Clone)]
pub struct OnOffBursty {
    n: usize,
    on_bytes: f64,
    mean_on: usize,
    mean_off: usize,
    steps: Option<usize>,
    seed: u64,
    rng: StdRng,
    emitted: usize,
    /// Steps left in the current phase; `on` is the phase polarity.
    left: usize,
    on: bool,
    name: String,
}

impl OnOffBursty {
    /// Bursty traffic on `n` nodes: ON phases of ~`mean_on` random shift
    /// steps at `on_bytes`, OFF phases of ~`mean_off` idle steps.
    ///
    /// # Errors
    ///
    /// Rejects `n < 2`, zero phase means, and bad volumes.
    pub fn new(
        n: usize,
        on_bytes: f64,
        mean_on: usize,
        mean_off: usize,
        steps: Option<usize>,
        seed: u64,
    ) -> Result<Self, CollectiveError> {
        check(n, on_bytes)?;
        if mean_on == 0 || mean_off == 0 {
            return Err(CollectiveError::ConstructionInvariant(
                "on/off phase means must be positive",
            ));
        }
        let mut w = Self {
            n,
            on_bytes,
            mean_on,
            mean_off,
            steps,
            seed,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
            left: 0,
            on: false,
            name: "on-off-bursty".into(),
        };
        w.start_phase(true);
        Ok(w)
    }

    /// Enters the given phase with a freshly drawn length.
    fn start_phase(&mut self, on: bool) {
        let mean = if on { self.mean_on } else { self.mean_off };
        self.on = on;
        self.left = self.rng.random_range(1..=2 * mean - 1);
    }
}

impl Workload for OnOffBursty {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_step(&mut self, _ctx: &WorkloadCtx) -> Option<Step> {
        if self.steps.is_some_and(|k| self.emitted >= k) {
            return None;
        }
        if self.left == 0 {
            let next_on = !self.on;
            self.start_phase(next_on);
        }
        self.left -= 1;
        self.emitted += 1;
        Some(if self.on {
            let k = self.rng.random_range(1..self.n);
            Step {
                matching: Matching::shift(self.n, k).expect("0 < k < n"),
                bytes_per_pair: self.on_bytes,
            }
        } else {
            Step {
                matching: Matching::empty(self.n),
                bytes_per_pair: 0.0,
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.steps {
            None => (0, None),
            Some(k) => {
                let left = k.saturating_sub(self.emitted);
                (left, Some(left))
            }
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.emitted = 0;
        self.left = 0;
        self.on = false;
        self.start_phase(true);
    }
}

/// Materialized one-epoch view used by verification-style tests.
///
/// # Errors
///
/// Propagates construction and materialization errors.
pub fn training_epoch(
    n: usize,
    microbatches: usize,
    activation_bytes: f64,
    grad_bytes: f64,
) -> Result<Schedule, CollectiveError> {
    let mut w = TrainingLoop::new(n, microbatches, activation_bytes, grad_bytes, Some(1))?;
    let mut s = super::materialize(&mut w, usize::MAX)?;
    s = Schedule::new(
        n,
        CollectiveKind::Composite,
        "training-epoch",
        s.steps().to_vec(),
    )?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::materialize;

    #[test]
    fn training_loop_phases_and_hints() {
        let mut w = TrainingLoop::new(8, 3, 1e5, 1e6, Some(2)).unwrap();
        let per_epoch = 2 * 3
            + allreduce::any_n::build(8, 1e6)
                .unwrap()
                .schedule
                .num_steps();
        assert_eq!(w.size_hint(), (2 * per_epoch, Some(2 * per_epoch)));
        let s = materialize(&mut w, 10_000).unwrap();
        assert_eq!(s.num_steps(), 2 * per_epoch);
        // Fwd steps are shift(+1), bwd steps shift(−1).
        assert_eq!(s.steps()[0].matching, Matching::shift(8, 1).unwrap());
        assert_eq!(s.steps()[3].matching, Matching::shift(8, 7).unwrap());
        // Epochs are identical.
        assert_eq!(s.steps()[..per_epoch], s.steps()[per_epoch..]);
        // Infinite training never exhausts.
        let mut inf = TrainingLoop::new(4, 1, 1e3, 1e4, None).unwrap();
        assert_eq!(inf.size_hint().1, None);
        for i in 0..100 {
            assert!(inf.next_step(&WorkloadCtx::at(i)).is_some());
        }
    }

    #[test]
    fn parameter_server_serializes_the_incast() {
        let mut w = ParameterServer::new(10, 3, 1e6, Some(2)).unwrap();
        // 7 workers / 3 servers → 3 push + 3 pull waves per round.
        assert_eq!(w.size_hint(), (12, Some(12)));
        let s = materialize(&mut w, 100).unwrap();
        assert_eq!(s.num_steps(), 12);
        for (i, st) in s.steps().iter().enumerate() {
            // No wave exceeds one flow per server, and the last wave of
            // each direction carries the 7th worker alone.
            assert!(st.matching.len() <= 3, "wave {i}");
            assert!(!st.matching.is_empty(), "wave {i}");
        }
        // Push wave 0 targets the servers; pull wave 0 sources them.
        assert!(s.steps()[0].matching.pairs().all(|(_, d)| d < 3));
        assert!(s.steps()[3].matching.pairs().all(|(sr, _)| sr < 3));
        assert!(ParameterServer::new(4, 0, 1e3, None).is_err());
        assert!(ParameterServer::new(4, 4, 1e3, None).is_err());
    }

    #[test]
    fn random_permutations_replay_from_seed() {
        let mut w = RandomPermutations::new(12, 1e5, Some(20), 9).unwrap();
        let a = materialize(&mut w, 100).unwrap();
        w.reset();
        let b = materialize(&mut w, 100).unwrap();
        assert_eq!(a.steps(), b.steps());
        let mut other = RandomPermutations::new(12, 1e5, Some(20), 10).unwrap();
        let c = materialize(&mut other, 100).unwrap();
        assert_ne!(a.steps(), c.steps());
        for s in a.steps() {
            assert!(s.matching.is_full());
            assert!(s.matching.pairs().all(|(x, y)| x != y));
        }
    }

    #[test]
    fn bursty_alternates_phases_deterministically() {
        let mut w = OnOffBursty::new(8, 1e6, 4, 2, Some(200), 3).unwrap();
        let a = materialize(&mut w, 1000).unwrap();
        w.reset();
        let b = materialize(&mut w, 1000).unwrap();
        assert_eq!(a.steps(), b.steps());
        // The stream opens in an ON phase and alternates contiguous runs.
        assert!(!a.steps()[0].matching.is_empty());
        let mut runs = 1;
        for pair in a.steps().windows(2) {
            if pair[0].matching.is_empty() != pair[1].matching.is_empty() {
                runs += 1;
            }
        }
        assert!(runs > 2, "expected several on/off phases, got {runs}");
        // Idle steps carry no volume.
        for s in a.steps() {
            if s.matching.is_empty() {
                assert_eq!(s.bytes_per_pair, 0.0);
            } else {
                assert_eq!(s.bytes_per_pair, 1e6);
            }
        }
        assert!(OnOffBursty::new(8, 1e6, 0, 2, None, 0).is_err());
    }

    #[test]
    fn training_epoch_materializes_one_epoch() {
        let s = training_epoch(8, 2, 1e5, 1e6).unwrap();
        assert_eq!(s.kind(), CollectiveKind::Composite);
        assert_eq!(
            s.num_steps(),
            4 + allreduce::any_n::build(8, 1e6)
                .unwrap()
                .schedule
                .num_steps()
        );
    }
}
