//! The coarse, cost-model-facing view of a collective: matchings + volumes.

use crate::error::CollectiveError;
use aps_matrix::{DemandMatrix, Matching, MatrixError};

/// Which collective operation a schedule implements.
///
/// Extend-only (`#[non_exhaustive]`): streaming workloads and future
/// collectives add kinds without breaking downstream matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CollectiveKind {
    /// Every node ends with the element-wise reduction of all inputs.
    AllReduce,
    /// Node `i` ends with the reduction of slot `i` across all inputs.
    ReduceScatter,
    /// Every node ends with every node's input.
    AllGather,
    /// Personalized exchange: node `j` ends with chunk `(i → j)` from every `i`.
    AllToAll,
    /// Every node ends with the root's input.
    Broadcast,
    /// Pure synchronization; no payload semantics.
    Barrier,
    /// A concatenation of collectives (see [`Schedule::then`]).
    Composite,
}

/// One communication step: a matching and the bytes each participating pair
/// exchanges (`mᵢ` in the paper).
#[derive(Debug, PartialEq)]
pub struct Step {
    /// The communication pattern `Mᵢ`.
    pub matching: Matching,
    /// Bytes sent by each sender in the matching during this step.
    pub bytes_per_pair: f64,
}

impl Step {
    /// A zero-size placeholder step — the seed for a long-lived pull
    /// buffer filled via [`crate::workload::Workload::next_step_into`].
    pub fn empty() -> Self {
        Self {
            matching: Matching::empty(0),
            bytes_per_pair: 0.0,
        }
    }
}

/// Hand-written so [`Clone::clone_from`] reuses the matching's buffer —
/// streaming executors pull steps into one long-lived `Step` via
/// [`crate::workload::Workload::next_step_into`], which must not allocate
/// in steady state.
impl Clone for Step {
    fn clone(&self) -> Self {
        Self {
            matching: self.matching.clone(),
            bytes_per_pair: self.bytes_per_pair,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.matching.clone_from(&source.matching);
        self.bytes_per_pair = source.bytes_per_pair;
    }
}

/// A collective communication algorithm: the sequence
/// `⟨(M₁, m₁), …, (M_s, m_s)⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    n: usize,
    kind: CollectiveKind,
    algorithm: String,
    steps: Vec<Step>,
}

impl Schedule {
    /// Assembles a schedule after validating dimensions and volumes.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative step volumes and matchings over the
    /// wrong node count.
    pub fn new(
        n: usize,
        kind: CollectiveKind,
        algorithm: impl Into<String>,
        steps: Vec<Step>,
    ) -> Result<Self, CollectiveError> {
        for s in &steps {
            if s.matching.n() != n {
                return Err(CollectiveError::Matrix(MatrixError::DimensionMismatch {
                    left: n,
                    right: s.matching.n(),
                }));
            }
            if s.bytes_per_pair < 0.0 || !s.bytes_per_pair.is_finite() {
                return Err(CollectiveError::BadMessageSize(s.bytes_per_pair));
            }
        }
        Ok(Self {
            n,
            kind,
            algorithm: algorithm.into(),
            steps,
        })
    }

    /// Number of participating nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The collective operation implemented.
    pub fn kind(&self) -> CollectiveKind {
        self.kind
    }

    /// Human-readable algorithm name, e.g. `"swing"`.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The steps in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps `s`.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total bytes a single (busiest) node sends over the whole collective:
    /// `Σᵢ mᵢ` over steps where the node participates. For the symmetric
    /// algorithms in this crate every node sends the same amount, so this is
    /// simply the sum of step volumes over all steps with a non-empty
    /// matching.
    pub fn total_bytes_per_node(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| !s.matching.is_empty())
            .map(|s| s.bytes_per_pair)
            .sum()
    }

    /// The aggregate demand matrix `M = Σ mᵢ·Mᵢ` (eq. (1) of the paper).
    /// By Observation 1 the schedule itself is a BvN decomposition of this
    /// matrix.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors (impossible for validated schedules).
    pub fn aggregate_demand(&self) -> Result<DemandMatrix, MatrixError> {
        let terms: Vec<(f64, &Matching)> = self
            .steps
            .iter()
            .map(|s| (s.bytes_per_pair, &s.matching))
            .collect();
        DemandMatrix::from_matchings(self.n, &terms)
    }

    /// Concatenates two schedules (e.g. an AllReduce followed by an
    /// All-to-All — the paper notes the framework applies to such sequences
    /// directly, §3.3).
    ///
    /// Chaining is cheap: both inputs are already validated, so the steps
    /// and the composite name are extended in place — a chain of `k`
    /// `then`s costs O(total steps + total name length), not O(k²) (the
    /// old path reformatted the whole prefix name and revalidated every
    /// accumulated step on each link).
    ///
    /// # Errors
    ///
    /// Rejects node-count mismatches.
    pub fn then(mut self, other: Schedule) -> Result<Schedule, CollectiveError> {
        if self.n != other.n {
            return Err(CollectiveError::Matrix(MatrixError::DimensionMismatch {
                left: self.n,
                right: other.n,
            }));
        }
        self.algorithm.reserve(other.algorithm.len() + 1);
        self.algorithm.push('+');
        self.algorithm.push_str(&other.algorithm);
        self.steps.extend(other.steps);
        self.kind = CollectiveKind::Composite;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift_step(n: usize, k: usize, bytes: f64) -> Step {
        Step {
            matching: Matching::shift(n, k).unwrap(),
            bytes_per_pair: bytes,
        }
    }

    #[test]
    fn schedule_accessors() {
        let s = Schedule::new(
            4,
            CollectiveKind::AllGather,
            "ring",
            vec![shift_step(4, 1, 10.0), shift_step(4, 1, 10.0)],
        )
        .unwrap();
        assert_eq!(s.n(), 4);
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.kind(), CollectiveKind::AllGather);
        assert_eq!(s.algorithm(), "ring");
        assert_eq!(s.total_bytes_per_node(), 20.0);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        assert!(
            Schedule::new(4, CollectiveKind::Barrier, "x", vec![shift_step(6, 1, 1.0)]).is_err()
        );
    }

    #[test]
    fn rejects_bad_volume() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                Schedule::new(4, CollectiveKind::Barrier, "x", vec![shift_step(4, 1, bad)]),
                Err(CollectiveError::BadMessageSize(_))
            ));
        }
    }

    #[test]
    fn aggregate_demand_is_bvn_by_construction() {
        let s = Schedule::new(
            4,
            CollectiveKind::AllToAll,
            "linear",
            vec![
                shift_step(4, 1, 3.0),
                shift_step(4, 2, 3.0),
                shift_step(4, 3, 3.0),
            ],
        )
        .unwrap();
        let d = s.aggregate_demand().unwrap();
        assert!(d.approx_eq(&DemandMatrix::uniform_all_to_all(4, 3.0), 1e-12));
        // Observation 1: strict BvN decomposition of the aggregate exists.
        let bvn = aps_matrix::bvn::decompose(&d, 1e-9).unwrap();
        assert!(bvn.reconstruct().unwrap().approx_eq(&d, 1e-6));
    }

    #[test]
    fn composition_concatenates() {
        let a = Schedule::new(
            4,
            CollectiveKind::AllGather,
            "ring",
            vec![shift_step(4, 1, 1.0)],
        )
        .unwrap();
        let b = Schedule::new(
            4,
            CollectiveKind::AllToAll,
            "linear",
            vec![shift_step(4, 2, 2.0)],
        )
        .unwrap();
        let c = a.then(b).unwrap();
        assert_eq!(c.num_steps(), 2);
        assert_eq!(c.kind(), CollectiveKind::Composite);
        assert_eq!(c.algorithm(), "ring+linear");
        let other_n =
            Schedule::new(6, CollectiveKind::Barrier, "x", vec![shift_step(6, 1, 1.0)]).unwrap();
        let c2 = Schedule::new(4, CollectiveKind::Barrier, "y", vec![]).unwrap();
        assert!(c2.then(other_n).is_err());
    }

    #[test]
    fn deep_then_chains_compose_in_a_single_pass() {
        // Regression anchor for composite naming/validation cost: a deep
        // chain must append (never reformat the prefix or revalidate
        // accumulated steps), so the result is exact and the work linear.
        let link = |b: f64| {
            Schedule::new(
                16,
                CollectiveKind::AllGather,
                "x",
                vec![shift_step(16, 1, b)],
            )
            .unwrap()
        };
        let mut chain = link(0.0);
        for i in 1..2000 {
            chain = chain.then(link(i as f64)).unwrap();
        }
        assert_eq!(chain.num_steps(), 2000);
        assert_eq!(chain.kind(), CollectiveKind::Composite);
        assert_eq!(chain.algorithm().len(), 2 * 2000 - 1);
        assert!(chain.algorithm().bytes().all(|c| c == b'x' || c == b'+'));
        // Step order is preserved end to end.
        assert_eq!(chain.steps()[1999].bytes_per_pair, 1999.0);
        assert_eq!(
            chain.total_bytes_per_node(),
            (0..2000).sum::<usize>() as f64
        );
    }

    #[test]
    fn empty_steps_do_not_count_towards_bytes() {
        let s = Schedule::new(
            4,
            CollectiveKind::Barrier,
            "noop",
            vec![Step {
                matching: Matching::empty(4),
                bytes_per_pair: 100.0,
            }],
        )
        .unwrap();
        assert_eq!(s.total_bytes_per_node(), 0.0);
    }
}
