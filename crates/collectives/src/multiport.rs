//! Multi-ported collectives: steps that are unions of permutations.
//!
//! The paper's §4 lists "extending our model to multi-ported collectives
//! where each step is not a single permutation but a union of multiple
//! permutations" as an open question. This module provides the schedule
//! representation and the classic construction: *mirroring* — running `k`
//! single-port schedules in lockstep over `k` fabric planes, each carrying
//! `1/k` of the data (§2 cites this as the standard mitigation for static
//! multi-ported networks).

use crate::error::CollectiveError;
use crate::schedule::Schedule;
use aps_matrix::{DemandMatrix, Matching, MatrixError};

/// One multi-port step: up to `k` simultaneous matchings (one per port
/// plane), each pair carrying `bytes_per_pair`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPortStep {
    /// Per-port matchings (entries may repeat across ports — that is a
    /// multiplicity-2 demand).
    pub matchings: Vec<Matching>,
    /// Bytes per (port, pair) circuit.
    pub bytes_per_pair: f64,
}

impl MultiPortStep {
    /// The step's demand as a multiplicity matrix `Σ_p M_p`.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn union_demand(&self, n: usize) -> Result<DemandMatrix, MatrixError> {
        let terms: Vec<(f64, &Matching)> = self.matchings.iter().map(|m| (1.0, m)).collect();
        DemandMatrix::from_matchings(n, &terms)
    }

    /// `true` when no port communicates.
    pub fn is_empty(&self) -> bool {
        self.matchings.iter().all(Matching::is_empty)
    }
}

/// A multi-ported collective schedule over `k` port planes.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPortSchedule {
    n: usize,
    ports: usize,
    algorithm: String,
    steps: Vec<MultiPortStep>,
}

impl MultiPortSchedule {
    /// Runs `k` single-port schedules in lockstep, one per port plane:
    /// step `i` of the result unions step `i` of every input (shorter
    /// inputs idle once exhausted). All inputs must share `n` and — for the
    /// volume bookkeeping to stay per-pair uniform — their step volumes.
    ///
    /// # Errors
    ///
    /// Rejects an empty plane list, node-count mismatches, and volume
    /// mismatches between lockstep steps.
    pub fn mirrored(planes: &[Schedule]) -> Result<Self, CollectiveError> {
        let Some(first) = planes.first() else {
            return Err(CollectiveError::ConstructionInvariant(
                "mirroring needs at least one plane",
            ));
        };
        let n = first.n();
        for p in planes {
            if p.n() != n {
                return Err(CollectiveError::Matrix(MatrixError::DimensionMismatch {
                    left: n,
                    right: p.n(),
                }));
            }
        }
        let len = planes.iter().map(Schedule::num_steps).max().unwrap_or(0);
        let mut steps = Vec::with_capacity(len);
        for i in 0..len {
            let mut matchings = Vec::with_capacity(planes.len());
            let mut bytes: Option<f64> = None;
            for p in planes {
                match p.steps().get(i) {
                    Some(s) => {
                        if let Some(b) = bytes {
                            if (b - s.bytes_per_pair).abs() > 1e-9 * (1.0 + b) {
                                return Err(CollectiveError::ConstructionInvariant(
                                    "mirrored planes must carry equal step volumes",
                                ));
                            }
                        } else {
                            bytes = Some(s.bytes_per_pair);
                        }
                        matchings.push(s.matching.clone());
                    }
                    None => matchings.push(Matching::empty(n)),
                }
            }
            steps.push(MultiPortStep {
                matchings,
                bytes_per_pair: bytes.unwrap_or(0.0),
            });
        }
        let algorithm = format!(
            "mirrored[{}]",
            planes
                .iter()
                .map(Schedule::algorithm)
                .collect::<Vec<_>>()
                .join("|")
        );
        Ok(Self {
            n,
            ports: planes.len(),
            algorithm,
            steps,
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of port planes `k`.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Algorithm label.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Steps in execution order.
    pub fn steps(&self) -> &[MultiPortStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Aggregate demand over the whole collective (eq. (1) generalized).
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn aggregate_demand(&self) -> Result<DemandMatrix, MatrixError> {
        let mut total = DemandMatrix::zeros(self.n);
        for s in &self.steps {
            for m in &s.matchings {
                total.add_matching(s.bytes_per_pair, m)?;
            }
        }
        Ok(total)
    }
}

/// The canonical 2-port example: bidirectional-mirrored ring AllReduce.
/// Port 0 runs the ring AllReduce clockwise, port 1 counterclockwise, each
/// on half the vector.
///
/// # Errors
///
/// Propagates ring-AllReduce construction errors.
pub fn mirrored_ring_allreduce(
    n: usize,
    message_bytes: f64,
) -> Result<MultiPortSchedule, CollectiveError> {
    let cw = crate::allreduce::ring::build(n, message_bytes / 2.0)?;
    let ccw_steps: Vec<crate::schedule::Step> = cw
        .schedule
        .steps()
        .iter()
        .map(|s| crate::schedule::Step {
            matching: s.matching.inverse(),
            bytes_per_pair: s.bytes_per_pair,
        })
        .collect();
    let ccw = Schedule::new(
        n,
        crate::schedule::CollectiveKind::AllReduce,
        "ring-ccw",
        ccw_steps,
    )?;
    MultiPortSchedule::mirrored(&[cw.schedule, ccw])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce;

    #[test]
    fn mirrored_ring_structure() {
        let n = 8;
        let m = 1600.0;
        let mp = mirrored_ring_allreduce(n, m).unwrap();
        assert_eq!(mp.ports(), 2);
        assert_eq!(mp.num_steps(), 2 * (n - 1));
        for s in mp.steps() {
            assert_eq!(s.matchings.len(), 2);
            assert_eq!(s.matchings[0], Matching::shift(n, 1).unwrap());
            assert_eq!(s.matchings[1], Matching::shift(n, n - 1).unwrap());
            // Each plane carries (m/2)/n per step.
            assert!((s.bytes_per_pair - m / 2.0 / n as f64).abs() < 1e-9);
        }
        // Total bytes moved per node: 2 planes × 2(n-1) steps × m/(2n) =
        // the bandwidth-optimal 2m(n-1)/n, split across two ports.
        let agg = mp.aggregate_demand().unwrap();
        let per_port_bytes = 2.0 * (n as f64 - 1.0) * (m / 2.0) / n as f64;
        assert!((agg.get(0, 1) - per_port_bytes).abs() < 1e-9);
        assert!((agg.get(1, 0) - per_port_bytes).abs() < 1e-9);
    }

    #[test]
    fn union_demand_counts_multiplicity() {
        let n = 4;
        let a = Matching::shift(n, 1).unwrap();
        let step = MultiPortStep {
            matchings: vec![a.clone(), a.clone()],
            bytes_per_pair: 10.0,
        };
        let d = step.union_demand(n).unwrap();
        assert_eq!(d.get(0, 1), 2.0);
        assert!(!step.is_empty());
    }

    #[test]
    fn mirrored_pads_shorter_planes() {
        let n = 8;
        let long = allreduce::ring::build(n, 800.0).unwrap().schedule;
        let steps = long.num_steps();
        let short = Schedule::new(
            n,
            crate::schedule::CollectiveKind::AllReduce,
            "one-step",
            vec![crate::schedule::Step {
                matching: Matching::shift(n, 2).unwrap(),
                bytes_per_pair: 100.0,
            }],
        )
        .unwrap();
        let mp = MultiPortSchedule::mirrored(&[long, short]).unwrap();
        assert_eq!(mp.num_steps(), steps);
        assert!(mp.steps()[1].matchings[1].is_empty());
    }

    #[test]
    fn mirrored_validation() {
        assert!(MultiPortSchedule::mirrored(&[]).is_err());
        let a = allreduce::ring::build(8, 800.0).unwrap().schedule;
        let b = allreduce::ring::build(4, 800.0).unwrap().schedule;
        assert!(MultiPortSchedule::mirrored(&[a.clone(), b]).is_err());
        // Volume mismatch between lockstep steps.
        let c = allreduce::ring::build(8, 1600.0).unwrap().schedule;
        assert!(MultiPortSchedule::mirrored(&[a, c]).is_err());
    }
}
