//! Symbolic execution and semantic verification of collectives.
//!
//! The verifier tracks, for every `(node, chunk)` pair, the *set of GPU
//! contributions* folded into that copy — a [`BitSet`] per chunk. Executing
//! the data flow symbolically and checking the final state against the
//! collective's [`Semantics`] proves the algorithm moves and combines the
//! right data, independently of the cost model. All algorithm builders in
//! this crate are tested through this verifier.
//!
//! Transfers within a step are **simultaneous**: receivers combine the
//! sender's *pre-step* copy, so pairwise exchanges (both directions in one
//! matching) behave like real double-buffered implementations.

use crate::dataflow::{Combine, DataFlow, Semantics};
use crate::error::VerifyError;
use aps_matrix::BitSet;

/// Final symbolic state: `state[node][chunk]` is the contribution set
/// (empty ⇔ the node does not hold the chunk).
pub type SymbolicState = Vec<Vec<BitSet>>;

/// Executes the data flow and returns the final symbolic state without
/// checking semantics. Useful for debugging new algorithms.
///
/// # Errors
///
/// Fails when a transfer references out-of-range nodes/chunks or sends a
/// chunk its source does not hold.
pub fn execute(flow: &DataFlow) -> Result<SymbolicState, VerifyError> {
    let n = flow.n;
    let c = flow.num_chunks;
    let mut state: SymbolicState = vec![vec![BitSet::new(n); c]; n];
    for (node, chunks) in flow.initial.iter().enumerate() {
        if node >= n {
            return Err(VerifyError::OutOfRange {
                step: 0,
                what: "initial node",
            });
        }
        for &ch in chunks {
            if ch >= c {
                return Err(VerifyError::OutOfRange {
                    step: 0,
                    what: "initial chunk",
                });
            }
            state[node][ch].insert(node);
        }
    }
    for (step_idx, step) in flow.steps.iter().enumerate() {
        // Snapshot the sender copies first: transfers are simultaneous.
        let mut outgoing: Vec<(usize, usize, BitSet, Combine)> = Vec::new();
        for t in &step.transfers {
            if t.src >= n || t.dst >= n {
                return Err(VerifyError::OutOfRange {
                    step: step_idx,
                    what: "transfer endpoint",
                });
            }
            for &ch in &t.chunks {
                if ch >= c {
                    return Err(VerifyError::OutOfRange {
                        step: step_idx,
                        what: "transfer chunk",
                    });
                }
                let copy = state[t.src][ch].clone();
                if copy.is_empty() {
                    return Err(VerifyError::MissingChunk {
                        step: step_idx,
                        src: t.src,
                        chunk: ch,
                    });
                }
                outgoing.push((t.dst, ch, copy, t.combine));
            }
        }
        for (dst, ch, copy, combine) in outgoing {
            match combine {
                Combine::Reduce => state[dst][ch].union_with(&copy),
                Combine::Replace => state[dst][ch] = copy,
            }
        }
    }
    Ok(state)
}

/// Executes the data flow and checks the final state against its semantics.
///
/// # Errors
///
/// Propagates execution errors and reports the first semantic violation.
pub fn verify_dataflow(flow: &DataFlow) -> Result<(), VerifyError> {
    let state = execute(flow)?;
    let n = flow.n;
    match flow.semantics {
        Semantics::AllReduce => {
            for (node, chunks) in state.iter().enumerate() {
                for (chunk, set) in chunks.iter().enumerate() {
                    if !set.is_full() {
                        return Err(VerifyError::WrongFinalState {
                            node,
                            chunk,
                            expected: "all contributions reduced into every slot",
                        });
                    }
                }
            }
        }
        Semantics::ReduceScatter => {
            for (node, chunks) in state.iter().enumerate() {
                if !chunks[node].is_full() {
                    return Err(VerifyError::WrongFinalState {
                        node,
                        chunk: node,
                        expected: "node i owns fully-reduced slot i",
                    });
                }
            }
        }
        Semantics::AllGather => {
            for (node, chunks) in state.iter().enumerate() {
                for (chunk, set) in chunks.iter().enumerate() {
                    let ok = set.len() == 1 && set.contains(chunk);
                    if !ok {
                        return Err(VerifyError::WrongFinalState {
                            node,
                            chunk,
                            expected: "every node holds chunk c with exactly {c}",
                        });
                    }
                }
            }
        }
        Semantics::AllToAll => {
            for d in 0..n {
                for s in 0..n {
                    if s == d {
                        continue;
                    }
                    let set = &state[d][s * n + d];
                    let ok = set.len() == 1 && set.contains(s);
                    if !ok {
                        return Err(VerifyError::WrongFinalState {
                            node: d,
                            chunk: s * n + d,
                            expected: "node d holds chunk (s, d) originating from s",
                        });
                    }
                }
            }
        }
        Semantics::Broadcast { root } => {
            // Every chunk of the space belongs to the root's message; all
            // nodes must end holding all of them (single-chunk binomial and
            // n-chunk scatter-allgather alike).
            for (node, chunks) in state.iter().enumerate() {
                for (chunk, set) in chunks.iter().enumerate() {
                    let ok = set.len() == 1 && set.contains(root);
                    if !ok {
                        return Err(VerifyError::WrongFinalState {
                            node,
                            chunk,
                            expected: "every node holds the root's chunk",
                        });
                    }
                }
            }
        }
        Semantics::SparsePersonalized => {
            for (s_node, chunks) in flow.initial.iter().enumerate() {
                for &c in chunks {
                    let d = c % n;
                    debug_assert_eq!(c / n, s_node, "sparse chunk ids are s*n+d");
                    if d == s_node {
                        continue;
                    }
                    let set = &state[d][c];
                    let ok = set.len() == 1 && set.contains(s_node);
                    if !ok {
                        return Err(VerifyError::WrongFinalState {
                            node: d,
                            chunk: c,
                            expected: "declared chunk (s, d) delivered to d",
                        });
                    }
                }
            }
        }
        Semantics::Scatter { root } => {
            for (node, chunks) in state.iter().enumerate() {
                let set = &chunks[node];
                let ok = set.len() == 1 && set.contains(root);
                if !ok {
                    return Err(VerifyError::WrongFinalState {
                        node,
                        chunk: node,
                        expected: "node i holds chunk i from the root",
                    });
                }
            }
        }
        Semantics::Gather { root } => {
            for (chunk, set) in state[root].iter().enumerate() {
                let ok = set.len() == 1 && set.contains(chunk);
                if !ok {
                    return Err(VerifyError::WrongFinalState {
                        node: root,
                        chunk,
                        expected: "root holds chunk c originating at node c",
                    });
                }
            }
        }
        Semantics::Barrier => {
            for (node, chunks) in state.iter().enumerate() {
                for (chunk, set) in chunks.iter().enumerate() {
                    if set.is_empty() {
                        return Err(VerifyError::WrongFinalState {
                            node,
                            chunk,
                            expected: "every node has heard from every node",
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::{DataFlowStep, Transfer};

    /// Hand-built 2-node "allgather": 0 and 1 swap their chunks.
    fn tiny_allgather(correct: bool) -> DataFlow {
        let step = DataFlowStep {
            transfers: vec![
                Transfer {
                    src: 0,
                    dst: 1,
                    chunks: vec![0],
                    combine: Combine::Replace,
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    // The buggy variant "sends" chunk 0 (which node 1 does
                    // not hold) instead of its own chunk 1.
                    chunks: vec![if correct { 1 } else { 0 }],
                    combine: Combine::Replace,
                },
            ],
        };
        DataFlow {
            n: 2,
            num_chunks: 2,
            chunk_bytes: 1.0,
            initial: vec![vec![0], vec![1]],
            steps: vec![step],
            semantics: Semantics::AllGather,
        }
    }

    #[test]
    fn correct_tiny_allgather_passes() {
        verify_dataflow(&tiny_allgather(true)).unwrap();
    }

    #[test]
    fn missing_chunk_is_caught() {
        assert_eq!(
            verify_dataflow(&tiny_allgather(false)),
            Err(VerifyError::MissingChunk {
                step: 0,
                src: 1,
                chunk: 0
            })
        );
    }

    #[test]
    fn simultaneous_swap_works() {
        // Both nodes replace the same chunk id in one step: a swap. The
        // pre-step snapshot must make this exchange, not a chain.
        let flow = DataFlow {
            n: 2,
            num_chunks: 1,
            chunk_bytes: 1.0,
            initial: vec![vec![0], vec![0]],
            steps: vec![DataFlowStep {
                transfers: vec![
                    Transfer {
                        src: 0,
                        dst: 1,
                        chunks: vec![0],
                        combine: Combine::Replace,
                    },
                    Transfer {
                        src: 1,
                        dst: 0,
                        chunks: vec![0],
                        combine: Combine::Replace,
                    },
                ],
            }],
            semantics: Semantics::Barrier,
        };
        let state = execute(&flow).unwrap();
        // Node 0 ends with node 1's copy and vice versa.
        assert!(state[0][0].contains(1) && !state[0][0].contains(0));
        assert!(state[1][0].contains(0) && !state[1][0].contains(1));
    }

    #[test]
    fn reduce_accumulates() {
        let flow = DataFlow {
            n: 2,
            num_chunks: 1,
            chunk_bytes: 1.0,
            initial: vec![vec![0], vec![0]],
            steps: vec![DataFlowStep {
                transfers: vec![
                    Transfer {
                        src: 0,
                        dst: 1,
                        chunks: vec![0],
                        combine: Combine::Reduce,
                    },
                    Transfer {
                        src: 1,
                        dst: 0,
                        chunks: vec![0],
                        combine: Combine::Reduce,
                    },
                ],
            }],
            semantics: Semantics::AllReduce,
        };
        verify_dataflow(&flow).unwrap();
    }

    #[test]
    fn incomplete_allreduce_rejected() {
        // One direction only: node 0 never hears from node 1.
        let flow = DataFlow {
            n: 2,
            num_chunks: 1,
            chunk_bytes: 1.0,
            initial: vec![vec![0], vec![0]],
            steps: vec![DataFlowStep {
                transfers: vec![Transfer {
                    src: 0,
                    dst: 1,
                    chunks: vec![0],
                    combine: Combine::Reduce,
                }],
            }],
            semantics: Semantics::AllReduce,
        };
        assert!(matches!(
            verify_dataflow(&flow),
            Err(VerifyError::WrongFinalState { node: 0, .. })
        ));
    }

    #[test]
    fn out_of_range_references_rejected() {
        let mut flow = tiny_allgather(true);
        flow.steps[0].transfers[0].chunks = vec![5];
        assert!(matches!(
            verify_dataflow(&flow),
            Err(VerifyError::OutOfRange {
                what: "transfer chunk",
                ..
            })
        ));
        let mut flow2 = tiny_allgather(true);
        flow2.steps[0].transfers[0].dst = 9;
        assert!(matches!(
            verify_dataflow(&flow2),
            Err(VerifyError::OutOfRange {
                what: "transfer endpoint",
                ..
            })
        ));
        let mut flow3 = tiny_allgather(true);
        flow3.initial[0] = vec![17];
        assert!(matches!(
            verify_dataflow(&flow3),
            Err(VerifyError::OutOfRange {
                what: "initial chunk",
                ..
            })
        ));
    }

    #[test]
    fn replace_vs_reduce_distinction_matters() {
        // Node 1's copy of the chunk is partial ({1}); node 0's is partial
        // ({0}). A Replace from 0 to 1 leaves node 1 with {0}, NOT {0,1}:
        // semantics AllReduce must fail. Using Reduce here would hide the
        // bug — this is why the data flow records the combine rule.
        let flow = DataFlow {
            n: 2,
            num_chunks: 1,
            chunk_bytes: 1.0,
            initial: vec![vec![0], vec![0]],
            steps: vec![DataFlowStep {
                transfers: vec![
                    Transfer {
                        src: 0,
                        dst: 1,
                        chunks: vec![0],
                        combine: Combine::Replace,
                    },
                    Transfer {
                        src: 1,
                        dst: 0,
                        chunks: vec![0],
                        combine: Combine::Reduce,
                    },
                ],
            }],
            semantics: Semantics::AllReduce,
        };
        assert!(matches!(
            verify_dataflow(&flow),
            Err(VerifyError::WrongFinalState { node: 1, .. })
        ));
    }
}
