//! # aps-collectives — collective algorithms as sequences of matchings
//!
//! The paper models a collective communication algorithm as a sequence of
//! steps `⟨M₁, …, M_s⟩` with volumes `⟨m₁, …, m_s⟩`, where each `Mᵢ` is a
//! matching (every GPU sends to at most one peer and receives from at most
//! one peer). This crate implements the classic algorithms in that form:
//!
//! | Collective     | Algorithms |
//! |----------------|------------|
//! | AllReduce      | ring, recursive doubling (full vector), recursive halving-doubling (Rabenseifner), Swing |
//! | All-to-All     | linear shift, XOR exchange, Bruck |
//! | AllGather      | ring, recursive doubling |
//! | ReduceScatter  | ring, recursive halving |
//! | Broadcast      | binomial tree |
//! | Barrier        | dissemination |
//!
//! Every builder returns a [`Collective`]: the coarse [`Schedule`] the cost
//! model consumes (matchings + volumes; Observation 1: these *are* a BvN
//! decomposition of the aggregate demand) **and** a chunk-level [`DataFlow`]
//! that records exactly which data moves where. Beyond materialized
//! schedules, the [`workload`] module streams demand lazily: the
//! [`Workload`] trait unifies schedules, seeded traffic generators and
//! training loops behind one pull-based interface, with combinators
//! (`then`, `repeat`, `interleave`, `scaled`, `Overlay`) for composing
//! open-ended demand without materializing it. The [`verify`] module
//! executes the data flow symbolically — tracking the set of GPU
//! contributions folded into every chunk — and checks the collective's
//! semantics (e.g. "after AllReduce every GPU's every chunk contains every
//! GPU's contribution"). This catches off-by-one errors in step patterns
//! that a matching-level model would happily cost out.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod broadcast;
pub(crate) mod builder;
pub mod collective;
pub mod dataflow;
pub mod error;
pub mod gather;
pub mod multiport;
pub mod reduce_scatter;
pub mod scatter;
pub mod schedule;
pub mod stencil;
pub mod verify;
pub mod workload;

pub use collective::Collective;
pub use dataflow::{Combine, DataFlow, DataFlowStep, Semantics, Transfer};
pub use error::{CollectiveError, VerifyError};
pub use schedule::{CollectiveKind, Schedule, Step};
pub use workload::{ScheduleStream, Workload, WorkloadCtx};
