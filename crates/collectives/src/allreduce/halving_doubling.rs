//! Rabenseifner recursive halving-doubling AllReduce.
//!
//! Reduce-scatter with recursive vector halving (partners at XOR distance
//! `n/2, n/4, …, 1`, volumes `m/2, m/4, …, m/n`), then allgather with
//! recursive doubling (distances `1, 2, …, n/2`, volumes `m/n, …, m/2`).
//! Bandwidth-optimal (`2m(n−1)/n` bytes per node) in `2·log₂ n` steps — the
//! "recursive doubling" AllReduce of the paper's evaluation (§3.4 calls it
//! bandwidth-optimal, which singles out this variant of reference 30).

use crate::builder::{assemble, check_message_bytes, exact_log2, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Slot block of node `i` after `t` reduce-scatter steps: the `n/2^t` slots
/// whose index shares `i`'s top `t` bits.
fn block(n: usize, log: usize, i: usize, t: usize) -> Vec<usize> {
    let width = log - t;
    let lo = (i >> width) << width;
    (lo..lo + (n >> t)).collect()
}

/// Builds halving-doubling AllReduce over `n` nodes (`n` a power of two,
/// `n ≥ 2`) for an `m`-byte vector. Node `i` is the reduction owner of slot
/// `i`.
///
/// # Errors
///
/// Rejects `n < 2`, non-power-of-two `n`, and bad message sizes.
pub fn build(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    let log = exact_log2(n)?;
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let mut steps: Vec<StepSends> = Vec::with_capacity(2 * log);
    // Reduce-scatter: start with the farthest partner, halve the working
    // block each step. At step t node i sends the half belonging to its
    // partner's side.
    for t in 0..log {
        let mask = 1usize << (log - 1 - t);
        steps.push(
            (0..n)
                .map(|i| {
                    let p = i ^ mask;
                    (i, p, block(n, log, p, t + 1), Combine::Reduce)
                })
                .collect(),
        );
    }
    // Allgather: nearest partner first, double the completed block.
    for u in 0..log {
        let mask = 1usize << u;
        steps.push(
            (0..n)
                .map(|i| (i, i ^ mask, block(n, log, i, log - u), Combine::Replace))
                .collect(),
        );
    }
    let initial = (0..n).map(|_| (0..n).collect()).collect();
    assemble(
        n,
        CollectiveKind::AllReduce,
        "halving-doubling",
        Semantics::AllReduce,
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_for_powers_of_two() {
        for n in [2, 4, 8, 16, 32, 64] {
            build(n, 64.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn volumes_halve_then_double() {
        let n = 16;
        let m = 1600.0;
        let c = build(n, m).unwrap();
        let vols: Vec<f64> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        let expect = [
            m / 2.0,
            m / 4.0,
            m / 8.0,
            m / 16.0, // reduce-scatter
            m / 16.0,
            m / 8.0,
            m / 4.0,
            m / 2.0, // allgather
        ];
        for (v, e) in vols.iter().zip(expect) {
            assert!((v - e).abs() < 1e-9, "{vols:?}");
        }
        let opt = 2.0 * m * (n as f64 - 1.0) / n as f64;
        assert!((c.schedule.total_bytes_per_node() - opt).abs() < 1e-9);
    }

    #[test]
    fn distances_shrink_then_grow() {
        let c = build(16, 16.0).unwrap();
        let dist0: Vec<usize> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.matching.dst_of(0).unwrap())
            .collect();
        assert_eq!(dist0, vec![8, 4, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn block_helper() {
        assert_eq!(block(8, 3, 5, 1), vec![4, 5, 6, 7]);
        assert_eq!(block(8, 3, 5, 2), vec![4, 5]);
        assert_eq!(block(8, 3, 5, 3), vec![5]);
        assert_eq!(block(8, 3, 5, 0), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            build(12, 1.0),
            Err(CollectiveError::NotPowerOfTwo(12))
        ));
    }
}
