//! Halving-doubling AllReduce for arbitrary node counts.
//!
//! Rabenseifner's standard non-power-of-two reduction: with
//! `r = n − 2^⌊log₂ n⌋` surplus nodes, the first `2r` nodes pre-combine in
//! pairs (two half-vector exchange steps), the resulting `n' = 2^⌊log₂ n⌋`
//! *virtual* nodes run the power-of-two algorithm, and a final step copies
//! the result back to the folded-away partners. Costs two extra `m/2` steps
//! and one extra `m` step relative to the power-of-two case.

use crate::builder::{assemble, check_message_bytes, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Builds halving-doubling AllReduce over any `n ≥ 2`.
///
/// For power-of-two `n` this is exactly
/// [`super::halving_doubling::build`]; otherwise the pre/post folding steps
/// are added. Node `i` ends with the full reduction either way.
///
/// # Errors
///
/// Rejects `n < 2` and bad message sizes.
pub fn build(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    if n.is_power_of_two() {
        return super::halving_doubling::build(n, message_bytes);
    }
    check_message_bytes(message_bytes)?;
    let log = usize::BITS as usize - n.leading_zeros() as usize - 1; // ⌊log₂ n⌋
    let np = 1usize << log; // virtual domain size
    let r = n - np; // surplus nodes

    // Chunk space: 2·np chunks so both the half-vector pre-phase (np chunks
    // per half) and the power-of-two slot blocks (2 chunks per slot) are
    // expressible.
    let chunks = 2 * np;
    let chunk_bytes = message_bytes / chunks as f64;
    // Virtual rank v lives on physical node phys(v).
    let phys = |v: usize| if v < r { 2 * v } else { v + r };

    let mut steps: Vec<StepSends> = Vec::new();

    // Pre-phase step 1: surplus pairs exchange halves and reduce.
    steps.push(
        (0..r)
            .flat_map(|i| {
                let (a, b) = (2 * i, 2 * i + 1);
                let first: Vec<usize> = (0..np).collect();
                let second: Vec<usize> = (np..2 * np).collect();
                [
                    (a, b, second, Combine::Reduce),
                    (b, a, first, Combine::Reduce),
                ]
            })
            .collect(),
    );
    // Pre-phase step 2: the odd partner hands its reduced half back; the
    // even node now owns the pair-combined full vector.
    steps.push(
        (0..r)
            .map(|i| (2 * i + 1, 2 * i, (np..2 * np).collect(), Combine::Reduce))
            .collect(),
    );

    // Power-of-two phase on virtual ranks; slot s owns chunks {2s, 2s+1}.
    let slot_block = |v: usize, t: usize| -> Vec<usize> {
        let width = log - t;
        let lo = (v >> width) << width;
        (lo..lo + (np >> t))
            .flat_map(|s| [2 * s, 2 * s + 1])
            .collect()
    };
    for t in 0..log {
        let mask = 1usize << (log - 1 - t);
        steps.push(
            (0..np)
                .map(|v| {
                    let p = v ^ mask;
                    (phys(v), phys(p), slot_block(p, t + 1), Combine::Reduce)
                })
                .collect(),
        );
    }
    for u in 0..log {
        let mask = 1usize << u;
        steps.push(
            (0..np)
                .map(|v| {
                    (
                        phys(v),
                        phys(v ^ mask),
                        slot_block(v, log - u),
                        Combine::Replace,
                    )
                })
                .collect(),
        );
    }

    // Post-phase: even surplus nodes copy the full result to their folded
    // partners.
    steps.push(
        (0..r)
            .map(|i| (2 * i, 2 * i + 1, (0..2 * np).collect(), Combine::Replace))
            .collect(),
    );

    let initial = (0..n).map(|_| (0..chunks).collect()).collect();
    assemble(
        n,
        CollectiveKind::AllReduce,
        "halving-doubling-any-n",
        Semantics::AllReduce,
        chunks,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_for_arbitrary_n() {
        for n in [2, 3, 5, 6, 7, 9, 12, 15, 16, 24, 33] {
            build(n, 960.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn power_of_two_delegates() {
        let a = build(16, 1600.0).unwrap();
        let b = super::super::halving_doubling::build(16, 1600.0).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn step_count_and_volumes_for_non_pow2() {
        // n = 6: r = 2, n' = 4, log = 2 → 2 pre + 4 pow2 + 1 post = 7 steps.
        let m = 960.0;
        let c = build(6, m).unwrap();
        assert_eq!(c.schedule.num_steps(), 7);
        let vols: Vec<f64> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        assert_eq!(vols[0], m / 2.0); // half-vector exchange
        assert_eq!(vols[1], m / 2.0); // half hand-back
        assert_eq!(*vols.last().unwrap(), m); // full-vector copy-out
    }

    #[test]
    fn surplus_nodes_idle_in_the_core_phase() {
        let c = build(6, 960.0).unwrap();
        // Odd surplus nodes 1 and 3 do not participate in the pow2 steps
        // (steps 2..6 exclusive of the final copy).
        for step in &c.schedule.steps()[2..6] {
            assert_eq!(step.matching.dst_of(1), None);
            assert_eq!(step.matching.dst_of(3), None);
            assert_eq!(step.matching.len(), 4);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(build(1, 1.0).is_err());
        assert!(build(6, 0.0).is_err());
    }
}
