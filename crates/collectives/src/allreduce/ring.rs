//! Ring AllReduce: reduce-scatter around the ring, then allgather.
//!
//! `2(n−1)` steps, every step the same shift-by-1 matching carrying `m/n`
//! bytes. Moves the bandwidth-optimal `2m(n−1)/n` bytes per node and only
//! ever talks to ring neighbors — which is why the paper notes the ring
//! algorithm stays optimal on static rings even for short messages when
//! propagation delays dominate (§4).

use crate::builder::{assemble, check_message_bytes, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Builds ring AllReduce over `n ≥ 2` nodes for an `m`-byte vector.
///
/// Chunk layout: the vector splits into `n` slots; node `i` is the reduction
/// owner of slot `i`. During reduce-scatter step `t`, node `i` forwards slot
/// `(i − t − 1) mod n` to node `i+1`, so slot `c` accumulates contributions
/// on its way around the ring and completes at its owner `c`. The allgather
/// phase circulates the completed slots the same way.
///
/// # Errors
///
/// Rejects `n < 2` and non-positive message sizes.
pub fn build(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let mut steps: Vec<StepSends> = Vec::with_capacity(2 * (n - 1));
    // Reduce-scatter phase.
    for t in 0..n - 1 {
        steps.push(
            (0..n)
                .map(|i| {
                    let chunk = (i + 2 * n - t - 1) % n;
                    ((i), (i + 1) % n, vec![chunk], Combine::Reduce)
                })
                .collect(),
        );
    }
    // Allgather phase: node i starts holding its fully-reduced slot i.
    for t in 0..n - 1 {
        steps.push(
            (0..n)
                .map(|i| {
                    let chunk = (i + n - t % n) % n;
                    ((i), (i + 1) % n, vec![chunk], Combine::Replace)
                })
                .collect(),
        );
    }
    let initial = (0..n).map(|_| (0..n).collect()).collect();
    assemble(
        n,
        CollectiveKind::AllReduce,
        "ring",
        Semantics::AllReduce,
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_matrix::Matching;

    #[test]
    fn verifies_for_many_sizes() {
        for n in [2, 3, 4, 5, 8, 16, 17] {
            let c = build(n, 1000.0).unwrap();
            c.check().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn structure() {
        let n = 6;
        let m = 600.0;
        let c = build(n, m).unwrap();
        assert_eq!(c.schedule.num_steps(), 2 * (n - 1));
        let shift1 = Matching::shift(n, 1).unwrap();
        for s in c.schedule.steps() {
            assert_eq!(s.matching, shift1);
            assert!((s.bytes_per_pair - m / n as f64).abs() < 1e-9);
        }
        let opt = 2.0 * m * (n as f64 - 1.0) / n as f64;
        assert!((c.schedule.total_bytes_per_node() - opt).abs() < 1e-9);
    }

    #[test]
    fn aggregate_demand_is_scaled_shift() {
        let c = build(4, 400.0).unwrap();
        let d = c.schedule.aggregate_demand().unwrap();
        // 6 steps × 100 bytes on the shift-1 pattern.
        assert_eq!(d.get(0, 1), 600.0);
        assert_eq!(d.get(1, 2), 600.0);
        assert_eq!(d.get(0, 2), 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            build(1, 10.0),
            Err(CollectiveError::TooFewNodes { n: 1, min: 2 })
        ));
        assert!(matches!(
            build(4, 0.0),
            Err(CollectiveError::BadMessageSize(_))
        ));
    }
}
