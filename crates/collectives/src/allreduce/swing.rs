//! Swing AllReduce (De Sensi et al., NSDI 2024).
//!
//! Same reduce-scatter + allgather skeleton and volumes as halving-doubling,
//! but partners follow the Swing distance sequence
//! `ρ(t) = (1 − (−2)^{t+1}) / 3 = 1, −1, 3, −5, 11, −21, …` with even and
//! odd nodes moving in opposite directions:
//! `peer_t(i) = i + (−1)^i · ρ(t) (mod n)`.
//! On ring-shaped fabrics these small alternating distances keep traffic
//! local — the reason the paper evaluates Swing alongside halving-doubling
//! (§3.4).
//!
//! Slot ownership is derived from the *gather tree*: `R_t(i)` is the set of
//! nodes reachable from `i` using partners of steps `t, …, log−1`; node `i`
//! sends slots `R_{t+1}(peer_t(i))` at reduce-scatter step `t` and ends up
//! owning slot `i`. Construction validates that `R_0(i)` covers all nodes —
//! i.e. that the Swing peer sequence really induces a valid recursive
//! halving, which is exactly the property proved in the Swing paper.

use crate::builder::{assemble, check_message_bytes, exact_log2, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// The Swing distance `ρ(t) = (1 − (−2)^{t+1}) / 3`.
fn rho(t: u32) -> i64 {
    (1 - (-2i64).pow(t + 1)) / 3
}

/// Swing partner of node `i` at step `t` among `n` nodes.
fn peer(n: usize, t: u32, i: usize) -> usize {
    let sign = if i.is_multiple_of(2) { 1 } else { -1 };
    (i as i64 + sign * rho(t)).rem_euclid(n as i64) as usize
}

/// Builds Swing AllReduce over `n` nodes (`n` a power of two, `n ≥ 2`) for
/// an `m`-byte vector. Node `i` ends as the reduction owner of slot `i`.
///
/// # Errors
///
/// Rejects `n < 2`, non-power-of-two `n`, bad message sizes; fails with
/// [`CollectiveError::ConstructionInvariant`] if the peer sequence does not
/// form a valid recursive halving (never happens for power-of-two `n`).
pub fn build(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    let log = exact_log2(n)?;
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;

    // Verify the peer relation is a valid pairwise exchange at every step.
    for t in 0..log as u32 {
        for i in 0..n {
            let p = peer(n, t, i);
            if p == i || peer(n, t, p) != i {
                return Err(CollectiveError::ConstructionInvariant(
                    "swing peers must form a perfect pairwise matching",
                ));
            }
        }
    }

    // R[t][i]: slots node i is responsible for before step t (as sorted vec).
    let mut r: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; log + 1];
    for (i, slots) in r[log].iter_mut().enumerate() {
        *slots = vec![i];
    }
    for t in (0..log).rev() {
        for i in 0..n {
            let p = peer(n, t as u32, i);
            let mut merged: Vec<usize> = r[t + 1][i]
                .iter()
                .chain(r[t + 1][p].iter())
                .copied()
                .collect();
            merged.sort_unstable();
            merged.dedup();
            r[t][i] = merged;
        }
    }
    if (0..n).any(|i| r[0][i].len() != n) {
        return Err(CollectiveError::ConstructionInvariant(
            "swing gather tree does not cover all nodes",
        ));
    }

    let mut steps: Vec<StepSends> = Vec::with_capacity(2 * log);
    // Reduce-scatter: node i sends the partner's responsibility set.
    for t in 0..log {
        steps.push(
            (0..n)
                .map(|i| {
                    let p = peer(n, t as u32, i);
                    (i, p, r[t + 1][p].clone(), Combine::Reduce)
                })
                .collect(),
        );
    }
    // Allgather: retrace the pairings in reverse, sending completed blocks.
    for u in 0..log {
        let t = log - 1 - u;
        steps.push(
            (0..n)
                .map(|i| {
                    let p = peer(n, t as u32, i);
                    (i, p, r[t + 1][i].clone(), Combine::Replace)
                })
                .collect(),
        );
    }
    let initial = (0..n).map(|_| (0..n).collect()).collect();
    assemble(
        n,
        CollectiveKind::AllReduce,
        "swing",
        Semantics::AllReduce,
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_sequence() {
        let seq: Vec<i64> = (0..6).map(rho).collect();
        assert_eq!(seq, vec![1, -1, 3, -5, 11, -21]);
    }

    #[test]
    fn peers_are_mutual_and_odd_distance() {
        let n = 32;
        for t in 0..5u32 {
            for i in 0..n {
                let p = peer(n, t, i);
                assert_ne!(p, i);
                assert_eq!(peer(n, t, p), i, "t={t} i={i}");
            }
        }
    }

    #[test]
    fn verifies_for_powers_of_two() {
        for n in [2, 4, 8, 16, 32, 64, 128] {
            build(n, 128.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn volumes_match_halving_doubling() {
        let n = 16;
        let m = 1600.0;
        let swing = build(n, m).unwrap();
        let hd = super::super::halving_doubling::build(n, m).unwrap();
        let sv: Vec<f64> = swing
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        let hv: Vec<f64> = hd
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        for (a, b) in sv.iter().zip(&hv) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(
            (swing.schedule.total_bytes_per_node() - 2.0 * m * (n as f64 - 1.0) / n as f64).abs()
                < 1e-9
        );
    }

    #[test]
    fn ring_distances_stay_small() {
        // The defining property: max |distance| over the first steps follows
        // 1, 1, 3, 5, 11, 21 — much smaller than halving-doubling's n/2.
        let n = 64;
        let c = build(n, 64.0).unwrap();
        let dists: Vec<usize> = c
            .schedule
            .steps()
            .iter()
            .take(6)
            .map(|s| {
                s.matching
                    .pairs()
                    .map(|(a, b)| {
                        let fwd = (b + n - a) % n;
                        fwd.min(n - fwd)
                    })
                    .max()
                    .unwrap()
            })
            .collect();
        assert_eq!(dists, vec![1, 1, 3, 5, 11, 21]);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            build(10, 1.0),
            Err(CollectiveError::NotPowerOfTwo(10))
        ));
    }
}
