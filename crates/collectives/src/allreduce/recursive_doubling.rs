//! Full-vector recursive doubling AllReduce.
//!
//! `log₂ n` steps; at step `t` node `i` exchanges the *entire* `m`-byte
//! vector with partner `i ⊕ 2^t` and reduces. Latency-optimal (fewest steps)
//! but moves `m·log₂ n` bytes per node — the classic small-message choice in
//! the α–β model, and a pattern whose large XOR distances make the static
//! ring suffer (which is exactly what makes it interesting for
//! reconfiguration).

use crate::builder::{assemble, check_message_bytes, exact_log2, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Builds recursive-doubling AllReduce over `n` nodes (`n` a power of two,
/// `n ≥ 2`) for an `m`-byte vector.
///
/// # Errors
///
/// Rejects `n < 2`, non-power-of-two `n`, and bad message sizes.
pub fn build(n: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    let log = exact_log2(n)?;
    check_message_bytes(message_bytes)?;
    let steps: Vec<StepSends> = (0..log)
        .map(|t| {
            let mask = 1usize << t;
            (0..n)
                .map(|i| (i, i ^ mask, vec![0usize], Combine::Reduce))
                .collect()
        })
        .collect();
    let initial = (0..n).map(|_| vec![0usize]).collect();
    assemble(
        n,
        CollectiveKind::AllReduce,
        "recursive-doubling",
        Semantics::AllReduce,
        1,
        message_bytes,
        initial,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_for_powers_of_two() {
        for n in [2, 4, 8, 16, 32, 64] {
            build(n, 8.0)
                .unwrap()
                .check()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn structure() {
        let c = build(8, 100.0).unwrap();
        assert_eq!(c.schedule.num_steps(), 3);
        for (t, s) in c.schedule.steps().iter().enumerate() {
            assert_eq!(s.bytes_per_pair, 100.0);
            assert!(s.matching.is_pairwise_exchange());
            assert_eq!(s.matching.dst_of(0), Some(1 << t));
        }
        assert_eq!(c.schedule.total_bytes_per_node(), 300.0);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            build(6, 1.0),
            Err(CollectiveError::NotPowerOfTwo(6))
        ));
        assert!(matches!(
            build(1, 1.0),
            Err(CollectiveError::TooFewNodes { .. })
        ));
    }
}
