//! Scatter: the root distributes a distinct chunk to every node.
//!
//! Binomial scatter: the root first sends the "far half" of the chunks to
//! the node halfway around, then both recurse — `⌈log₂ n⌉` steps with
//! geometrically shrinking volumes. `message_bytes` is the root's full send
//! buffer (`n` chunks of `m/n` bytes; chunk `i` is destined for node `i`).

use crate::builder::{assemble, ceil_log2, check_message_bytes, StepSends};
use crate::collective::Collective;
use crate::dataflow::{Combine, Semantics};
use crate::error::CollectiveError;
use crate::schedule::CollectiveKind;

/// Builds a binomial scatter from `root` over `n ≥ 2` nodes (any `n`).
///
/// # Errors
///
/// Rejects `n < 2`, out-of-range roots, and bad message sizes.
pub fn binomial(n: usize, root: usize, message_bytes: f64) -> Result<Collective, CollectiveError> {
    if n < 2 {
        return Err(CollectiveError::TooFewNodes { n, min: 2 });
    }
    if root >= n {
        return Err(CollectiveError::RootOutOfRange { root, n });
    }
    check_message_bytes(message_bytes)?;
    let chunk_bytes = message_bytes / n as f64;
    let steps = binomial_scatter_steps(n, root);
    let mut initial = vec![Vec::new(); n];
    initial[root] = (0..n).collect();
    assemble(
        n,
        CollectiveKind::AllToAll, // chunk-addressed delivery; semantics below
        "binomial-scatter",
        Semantics::Scatter { root },
        n,
        chunk_bytes,
        initial,
        steps,
    )
}

/// The binomial scatter tree as per-step send lists, shared with the
/// scatter-allgather broadcast. Chunk `(root + q) % n` is destined for
/// relative rank `q`.
///
/// Works in root-relative rank space `r = (i − root) mod n` on the virtual
/// `2^⌈log₂ n⌉` tree: at step `t` every subtree owner forwards its
/// partner's (clipped) subtree block.
pub(crate) fn binomial_scatter_steps(n: usize, root: usize) -> Vec<StepSends> {
    let rounds = ceil_log2(n);
    let virt = 1usize << rounds;
    let mut steps: Vec<StepSends> = Vec::with_capacity(rounds);
    for t in 0..rounds {
        let reach = virt >> (t + 1); // distance sent at this step
        let mut sends: StepSends = Vec::new();
        for r in 0..n {
            // Rank r sends at step t iff r is a multiple of 2*reach (it
            // owns a subtree block of size 2*reach) and its partner exists.
            if r % (2 * reach) == 0 && r + reach < n {
                let dst_rank = r + reach;
                // Chunks for ranks [dst_rank, min(dst_rank + reach, n)).
                let hi = (dst_rank + reach).min(n);
                let chunks: Vec<usize> = (dst_rank..hi).map(|q| (root + q) % n).collect();
                sends.push((
                    (root + r) % n,
                    (root + dst_rank) % n,
                    chunks,
                    Combine::Replace,
                ));
            }
        }
        steps.push(sends);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_for_many_sizes_and_roots() {
        for n in [2, 3, 4, 5, 8, 11, 16] {
            for root in [0, n / 2, n - 1] {
                binomial(n, root, 640.0)
                    .unwrap()
                    .check()
                    .unwrap_or_else(|e| panic!("n={n} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn volumes_halve() {
        let c = binomial(8, 0, 800.0).unwrap();
        let vols: Vec<f64> = c
            .schedule
            .steps()
            .iter()
            .map(|s| s.bytes_per_pair)
            .collect();
        assert_eq!(vols, vec![400.0, 200.0, 100.0]);
        // Total bytes the ROOT sends: m/2 only in step 0; later steps are
        // parallel subtree sends.
        assert_eq!(c.schedule.num_steps(), 3);
    }

    #[test]
    fn first_step_is_single_pair() {
        let c = binomial(16, 5, 1600.0).unwrap();
        assert_eq!(c.schedule.steps()[0].matching.len(), 1);
        assert_eq!(c.schedule.steps()[0].matching.dst_of(5), Some(13));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(binomial(1, 0, 1.0).is_err());
        assert!(binomial(8, 8, 1.0).is_err());
        assert!(binomial(8, 0, -1.0).is_err());
    }
}
