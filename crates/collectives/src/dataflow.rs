//! Chunk-level data movement: what the matchings actually carry.
//!
//! A [`DataFlow`] refines a [`crate::Schedule`]: for every step it records
//! which chunks travel over each matched pair and whether the receiver
//! *reduces* them into its own copy or *replaces* it. The distinction
//! matters for verification: modelling an allgather copy as a reduction
//! would let a buggy algorithm pass by accumulating contributions the real
//! data movement would have overwritten.

/// How a received chunk combines with the receiver's copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Element-wise reduction: the receiver's contribution set becomes the
    /// union of both copies (reduce-scatter phases).
    Reduce,
    /// The received copy overwrites whatever the receiver held (allgather /
    /// broadcast / routing phases).
    Replace,
}

/// One point-to-point transfer within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Chunk ids moved (see [`Semantics`] for each collective's chunk space).
    pub chunks: Vec<usize>,
    /// Combination rule at the receiver.
    pub combine: Combine,
}

/// All transfers of one step. The `(src, dst)` pairs must form exactly the
/// step's matching; the verifier enforces this.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataFlowStep {
    /// The step's transfers, one per communicating pair.
    pub transfers: Vec<Transfer>,
}

/// The semantic contract the final state is checked against.
///
/// Chunk spaces:
///
/// * `AllReduce` / `ReduceScatter` — `num_chunks` slots of the vector; every
///   node initially holds every slot with only its own contribution.
/// * `AllGather` — chunk `c` is node `c`'s input; node `i` initially holds
///   chunk `i` only.
/// * `AllToAll` — chunk `s·n + d` is the block node `s` owes node `d`; node
///   `i` initially holds chunks `i·n + d` for all `d ≠ i` (plus `i·n+i`,
///   which never moves).
/// * `Broadcast` — a single chunk 0 held only by the root initially.
/// * `Barrier` — chunk `c` is node `c`'s arrival token; semantics require
///   every node to have heard (transitively) from every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Final: every node's every slot carries all `n` contributions.
    AllReduce,
    /// Final: node `i`'s slot `i` carries all `n` contributions.
    ReduceScatter,
    /// Final: every node holds chunk `c` with exactly `{c}` as contribution.
    AllGather,
    /// Final: node `d` holds chunk `s·n + d` for every `s`.
    AllToAll,
    /// Final: every node holds chunk 0 originating from `root`.
    Broadcast {
        /// The broadcasting node.
        root: usize,
    },
    /// Final: node `i` holds chunk `i`, which originated at `root`.
    Scatter {
        /// The distributing node.
        root: usize,
    },
    /// Final: `root` holds chunk `c` originating from node `c`, for all `c`.
    Gather {
        /// The collecting node.
        root: usize,
    },
    /// Sparse personalized exchange over the `n²` chunk space of
    /// [`Semantics::AllToAll`]: every chunk `s·n + d` *listed in the initial
    /// holdings of `s`* must end at `d` with contribution `{s}` — but unlike
    /// the dense All-to-All, pairs that never communicate are simply absent.
    /// Used by stencil/halo exchanges.
    SparsePersonalized,
    /// Final: every node's knowledge set contains every token.
    Barrier,
}

/// Chunk-level description of a collective execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFlow {
    /// Number of nodes.
    pub n: usize,
    /// Size of the chunk id space.
    pub num_chunks: usize,
    /// Bytes per chunk (ties chunk counts back to step volumes).
    pub chunk_bytes: f64,
    /// `initial[node]` lists the chunk ids the node holds before step 0
    /// (each with only its own contribution).
    pub initial: Vec<Vec<usize>>,
    /// Per-step transfers, aligned with the schedule's steps.
    pub steps: Vec<DataFlowStep>,
    /// The semantic contract to verify against.
    pub semantics: Semantics,
}

impl DataFlow {
    /// Largest number of chunks any single transfer of step `i` carries —
    /// the data volume the *pair* exchanges, in chunks.
    pub fn max_chunks_in_step(&self, i: usize) -> usize {
        self.steps
            .get(i)
            .map(|s| {
                s.transfers
                    .iter()
                    .map(|t| t.chunks.len())
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    /// Total chunk-transfers across all steps (a proxy for total traffic).
    pub fn total_chunk_transfers(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| s.transfers.iter())
            .map(|t| t.chunks.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_chunks_in_step_counts_per_pair() {
        let flow = DataFlow {
            n: 2,
            num_chunks: 4,
            chunk_bytes: 8.0,
            initial: vec![vec![0, 1], vec![2, 3]],
            steps: vec![DataFlowStep {
                transfers: vec![
                    Transfer {
                        src: 0,
                        dst: 1,
                        chunks: vec![0, 1],
                        combine: Combine::Replace,
                    },
                    Transfer {
                        src: 1,
                        dst: 0,
                        chunks: vec![2],
                        combine: Combine::Replace,
                    },
                ],
            }],
            semantics: Semantics::AllGather,
        };
        assert_eq!(flow.max_chunks_in_step(0), 2);
        assert_eq!(flow.max_chunks_in_step(7), 0);
        assert_eq!(flow.total_chunk_transfers(), 3);
    }
}
