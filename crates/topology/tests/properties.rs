//! Property-based tests for topology builders, paths and routing.

use aps_matrix::Matching;
use aps_topology::paths::{all_pairs_hops, diameter, shortest_path, shortest_path_weighted};
use aps_topology::routing::{link_loads, route_matching};
use aps_topology::{builders, properties, Topology};
use proptest::prelude::*;

/// Strategy: a random connected-ish directed graph built from a ring spine
/// plus random chords (the spine guarantees strong connectivity).
fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        3usize..14,
        proptest::collection::vec((0usize..14, 0usize..14), 0..20),
    )
        .prop_map(|(n, chords)| {
            let mut t = Topology::new(n, "random");
            for i in 0..n {
                t.add_link(i, (i + 1) % n, 1.0).unwrap();
            }
            for (a, b) in chords {
                let (a, b) = (a % n, b % n);
                if a != b {
                    t.add_link(a, b, 0.5).unwrap();
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spined_graphs_are_strongly_connected(t in arb_topology()) {
        prop_assert!(properties::is_strongly_connected(&t));
        prop_assert!(diameter(&t).is_some());
    }

    #[test]
    fn bfs_paths_are_valid_and_minimal(t in arb_topology(), s in 0usize..14, d in 0usize..14) {
        let (s, d) = (s % t.n(), d % t.n());
        if s != d {
            let p = shortest_path(&t, s, d).expect("spine guarantees a route");
            // Path validity: consecutive links chain from s to d.
            prop_assert_eq!(p.src(), s);
            prop_assert_eq!(p.dst(), d);
            for (i, &lid) in p.links.iter().enumerate() {
                prop_assert_eq!(t.link(lid).src, p.nodes[i]);
                prop_assert_eq!(t.link(lid).dst, p.nodes[i + 1]);
            }
            // Minimality: equals the all-pairs BFS distance.
            let hops = all_pairs_hops(&t);
            prop_assert_eq!(p.hops() as u32, hops[s][d].unwrap());
            // And equals Dijkstra with unit weights.
            let w = vec![1.0; t.num_links()];
            let (cost, wp) = shortest_path_weighted(&t, s, d, &w).unwrap();
            prop_assert!((cost - wp.hops() as f64).abs() < 1e-12);
            prop_assert_eq!(wp.hops(), p.hops());
        }
    }

    #[test]
    fn diameter_bounds_every_pair(t in arb_topology()) {
        let dia = diameter(&t).unwrap();
        let hops = all_pairs_hops(&t);
        for (i, row) in hops.iter().enumerate() {
            for (j, h) in row.iter().enumerate() {
                if i != j {
                    prop_assert!(h.unwrap() <= dia);
                }
            }
        }
    }

    #[test]
    fn routing_loads_account_for_every_hop(t in arb_topology(), k in 1usize..13) {
        let n = t.n();
        let k = (k % (n - 1)) + 1;
        let m = Matching::shift(n, k).unwrap();
        let flows = route_matching(&t, &m).unwrap();
        let loads = link_loads(&t, &flows);
        let total_hops: usize = flows.iter().map(|f| f.hops()).sum();
        let total_load: f64 = loads.iter().sum();
        prop_assert!((total_load - total_hops as f64).abs() < 1e-9);
    }

    #[test]
    fn builders_satisfy_their_invariants(n in 2usize..33) {
        let uni = builders::ring_unidirectional(n).unwrap();
        prop_assert!(properties::is_strongly_connected(&uni));
        prop_assert!(properties::is_circuit_configuration(&uni));
        prop_assert_eq!(diameter(&uni), Some(n as u32 - 1));
        if n >= 3 {
            let bi = builders::ring_bidirectional(n).unwrap();
            prop_assert!(properties::is_regular(&bi));
            prop_assert_eq!(diameter(&bi), Some((n / 2) as u32));
        }
        if n.is_power_of_two() {
            let h = builders::hypercube(n).unwrap();
            prop_assert_eq!(diameter(&h), Some(n.trailing_zeros()));
        }
        let mesh = builders::full_mesh(n).unwrap();
        prop_assert_eq!(diameter(&mesh), Some(1));
        // Egress budget: every builder splits one transceiver.
        for t in [&uni, &mesh] {
            for v in 0..n {
                prop_assert!(t.egress_capacity(v) <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn matched_topologies_route_their_matching_one_hop(k in 1usize..20, n in 2usize..24) {
        let k = (k % (n.max(2) - 1)).max(1);
        if k % n != 0 {
            let m = Matching::shift(n, k).unwrap();
            let t = builders::from_matching(&m);
            let flows = route_matching(&t, &m).unwrap();
            prop_assert!(flows.iter().all(|f| f.hops() == 1));
        }
    }
}
