//! Routing a communication step (a matching) over a topology.
//!
//! On the *base* topology most pairs are not directly connected: their
//! traffic is relayed through intermediate GPUs over multiple photonic hops.
//! This module computes deterministic shortest-path routes for every pair of
//! a matching and the per-link loads those routes induce — the inputs to the
//! forced-path throughput solver in `aps-flow` and to the flow-level
//! simulator in `aps-sim`.

use crate::error::TopologyError;
use crate::graph::Topology;
use crate::paths::{shortest_path, Path};
use aps_matrix::Matching;

/// The route assigned to one communicating pair of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPath {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// The path from `src` to `dst`.
    pub path: Path,
}

impl FlowPath {
    /// Number of photonic hops traversed.
    pub fn hops(&self) -> usize {
        self.path.hops()
    }
}

/// Routes every pair of `matching` along its (deterministic) shortest path.
///
/// # Errors
///
/// Returns [`TopologyError::Unreachable`] if some pair has no route — the
/// step simply cannot execute on this topology.
pub fn route_matching(
    topo: &Topology,
    matching: &Matching,
) -> Result<Vec<FlowPath>, TopologyError> {
    matching
        .pairs()
        .map(|(src, dst)| {
            shortest_path(topo, src, dst)
                .map(|path| FlowPath { src, dst, path })
                .ok_or(TopologyError::Unreachable { src, dst })
        })
        .collect()
}

/// Per-link load: the number of routed flows crossing each link (unit demand
/// per pair).
pub fn link_loads(topo: &Topology, flows: &[FlowPath]) -> Vec<f64> {
    let mut loads = vec![0.0; topo.num_links()];
    for f in flows {
        for &lid in &f.path.links {
            loads[lid] += 1.0;
        }
    }
    loads
}

/// Per-link load divided by link capacity: the utilization each link would
/// see if every pair pushed one unit. The maximum of this vector is the
/// inverse of the forced-path concurrent flow.
pub fn normalized_loads(topo: &Topology, flows: &[FlowPath]) -> Vec<f64> {
    link_loads(topo, flows)
        .into_iter()
        .enumerate()
        .map(|(lid, load)| load / topo.link(lid).capacity)
        .collect()
}

/// The largest hop count among the routed flows — the `ℓᵢ` of eq. (3): the
/// propagation-delay multiplier for the step.
pub fn max_hops(flows: &[FlowPath]) -> usize {
    flows.iter().map(FlowPath::hops).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn shift_on_uni_ring_loads_every_link_equally() {
        let t = builders::ring_unidirectional(8).unwrap();
        let m = Matching::shift(8, 3).unwrap();
        let flows = route_matching(&t, &m).unwrap();
        assert_eq!(flows.len(), 8);
        assert!(flows.iter().all(|f| f.hops() == 3));
        let loads = link_loads(&t, &flows);
        assert!(loads.iter().all(|&l| (l - 3.0).abs() < 1e-12));
        assert_eq!(max_hops(&flows), 3);
    }

    #[test]
    fn xor_on_uni_ring_has_wraparound_cost() {
        // i ↔ i+4 exchanges: forward sender travels 4 hops, the partner
        // must wrap all the way around (n - 4 hops).
        let t = builders::ring_unidirectional(8).unwrap();
        let m = Matching::xor(8, 4).unwrap();
        let flows = route_matching(&t, &m).unwrap();
        assert_eq!(max_hops(&flows), 4);
        // All 8 flows of length 4 → every link carries load 4.
        let loads = link_loads(&t, &flows);
        assert!(loads.iter().all(|&l| (l - 4.0).abs() < 1e-12));
    }

    #[test]
    fn xor_small_mask_on_uni_ring() {
        // i ↔ i+1 pairs: even senders go 1 hop, odd senders wrap n-1 hops.
        let t = builders::ring_unidirectional(8).unwrap();
        let m = Matching::xor(8, 1).unwrap();
        let flows = route_matching(&t, &m).unwrap();
        assert_eq!(max_hops(&flows), 7);
        let loads = link_loads(&t, &flows);
        // 4 long flows cover 7 links each + 4 short flows cover 1 link each:
        // total link-hops = 4*7 + 4 = 32 spread over 8 links = 4 avg. The
        // max load is 4 (each link: 3 or 4 long flows + 0 or 1 short).
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert_eq!(max, 4.0);
    }

    #[test]
    fn matched_topology_is_single_hop() {
        let m = Matching::shift(6, 2).unwrap();
        let t = builders::from_matching(&m);
        let flows = route_matching(&t, &m).unwrap();
        assert!(flows.iter().all(|f| f.hops() == 1));
        let norm = normalized_loads(&t, &flows);
        assert!(norm.iter().all(|&l| (l - 1.0).abs() < 1e-12));
    }

    #[test]
    fn unreachable_pair_is_an_error() {
        let m = Matching::shift(4, 2).unwrap();
        // Matched topology for shift(1) cannot route shift(2) pairs directly
        // but CAN relay: 0→1→2. So build a genuinely disconnected topology.
        let mut t = Topology::new(4, "islands");
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 0, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        t.add_link(3, 2, 1.0).unwrap();
        assert_eq!(
            route_matching(&t, &m),
            Err(TopologyError::Unreachable { src: 0, dst: 2 })
        );
    }

    #[test]
    fn relaying_on_circuit_topology() {
        // A circuit configuration can still carry other patterns multi-hop:
        // ring circuits relay shift(2) in two hops.
        let ring = builders::from_matching(&Matching::shift(4, 1).unwrap());
        let flows = route_matching(&ring, &Matching::shift(4, 2).unwrap()).unwrap();
        assert!(flows.iter().all(|f| f.hops() == 2));
        let norm = normalized_loads(&ring, &flows);
        assert!(norm.iter().all(|&l| (l - 2.0).abs() < 1e-12));
    }

    #[test]
    fn empty_matching_routes_trivially() {
        let t = builders::ring_unidirectional(4).unwrap();
        let flows = route_matching(&t, &Matching::empty(4)).unwrap();
        assert!(flows.is_empty());
        assert_eq!(max_hops(&flows), 0);
        assert!(link_loads(&t, &flows).iter().all(|&l| l == 0.0));
    }
}
