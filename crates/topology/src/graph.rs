//! The core directed, capacitated graph type.

use crate::error::TopologyError;

/// Index of a link within a [`Topology`].
pub type LinkId = usize;

/// A directed, capacitated link between two nodes.
///
/// Capacities are normalized to the transceiver bandwidth `b` (see the crate
/// docs): `capacity = 1.0` means the link can carry the node's full optical
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Normalized capacity (fraction of transceiver bandwidth `b`).
    pub capacity: f64,
}

/// A directed, capacitated multigraph over `n` nodes (GPUs).
///
/// Nodes are plain `usize` indices `0..n`. Links are stored in insertion
/// order and addressed by [`LinkId`]; adjacency lists are maintained for both
/// directions so BFS/Dijkstra and flow algorithms run without building
/// auxiliary structures.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n: usize,
    name: String,
    links: Vec<Link>,
    out_adj: Vec<Vec<LinkId>>,
    in_adj: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Creates an empty topology over `n` nodes.
    pub fn new(n: usize, name: impl Into<String>) -> Self {
        Self {
            n,
            name: name.into(),
            links: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Adds a directed link and returns its id.
    ///
    /// Parallel links are allowed (multigraph); self-loops are not, and
    /// capacities must be positive finite numbers.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range endpoints, self-loops, or a
    /// capacity that is not positive and finite (zero, negative, NaN, ±∞).
    pub fn add_link(
        &mut self,
        src: usize,
        dst: usize,
        capacity: f64,
    ) -> Result<LinkId, TopologyError> {
        if src >= self.n {
            return Err(TopologyError::NodeOutOfRange {
                node: src,
                n: self.n,
            });
        }
        if dst >= self.n {
            return Err(TopologyError::NodeOutOfRange {
                node: dst,
                n: self.n,
            });
        }
        if src == dst {
            return Err(TopologyError::SelfLoopLink(src));
        }
        if capacity <= 0.0 || !capacity.is_finite() {
            return Err(TopologyError::NonPositiveCapacity { src, dst, capacity });
        }
        let id = self.links.len();
        self.links.push(Link { src, dst, capacity });
        self.out_adj[src].push(id);
        self.in_adj[dst].push(id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Human-readable topology name (e.g. `"uni-ring(64)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All links in insertion order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id]
    }

    /// Ids of links leaving `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n`.
    pub fn out_links(&self, node: usize) -> &[LinkId] {
        &self.out_adj[node]
    }

    /// Ids of links entering `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n`.
    pub fn in_links(&self, node: usize) -> &[LinkId] {
        &self.in_adj[node]
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: usize) -> usize {
        self.out_adj[node].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: usize) -> usize {
        self.in_adj[node].len()
    }

    /// Total egress capacity of `node` (should be ≤ 1.0 under the
    /// transceiver-normalized convention).
    pub fn egress_capacity(&self, node: usize) -> f64 {
        self.out_adj[node]
            .iter()
            .map(|&l| self.links[l].capacity)
            .sum()
    }

    /// Total ingress capacity of `node`.
    pub fn ingress_capacity(&self, node: usize) -> f64 {
        self.in_adj[node]
            .iter()
            .map(|&l| self.links[l].capacity)
            .sum()
    }

    /// Smallest link capacity (useful as a scale for tolerances).
    pub fn min_capacity(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.capacity)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_link_maintains_adjacency() {
        let mut t = Topology::new(3, "test");
        let a = t.add_link(0, 1, 1.0).unwrap();
        let b = t.add_link(1, 2, 0.5).unwrap();
        let c = t.add_link(0, 2, 0.25).unwrap();
        assert_eq!(t.out_links(0), &[a, c]);
        assert_eq!(t.in_links(2), &[b, c]);
        assert_eq!(t.out_degree(0), 2);
        assert_eq!(t.in_degree(0), 0);
        assert!((t.egress_capacity(0) - 1.25).abs() < 1e-12);
        assert!((t.ingress_capacity(2) - 0.75).abs() < 1e-12);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.link(b).capacity, 0.5);
        assert_eq!(t.min_capacity(), 0.25);
    }

    #[test]
    fn rejects_bad_links() {
        let mut t = Topology::new(2, "test");
        assert!(matches!(
            t.add_link(0, 5, 1.0),
            Err(TopologyError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            t.add_link(9, 0, 1.0),
            Err(TopologyError::NodeOutOfRange { node: 9, .. })
        ));
        assert_eq!(t.add_link(1, 1, 1.0), Err(TopologyError::SelfLoopLink(1)));
        assert!(matches!(
            t.add_link(0, 1, 0.0),
            Err(TopologyError::NonPositiveCapacity { .. })
        ));
        assert!(matches!(
            t.add_link(0, 1, -2.0),
            Err(TopologyError::NonPositiveCapacity { .. })
        ));
        assert!(matches!(
            t.add_link(0, 1, f64::NAN),
            Err(TopologyError::NonPositiveCapacity { .. })
        ));
        assert!(matches!(
            t.add_link(0, 1, f64::INFINITY),
            Err(TopologyError::NonPositiveCapacity { .. })
        ));
    }

    #[test]
    fn parallel_links_allowed() {
        let mut t = Topology::new(2, "test");
        t.add_link(0, 1, 0.5).unwrap();
        t.add_link(0, 1, 0.5).unwrap();
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.out_degree(0), 2);
    }
}
