//! Shortest paths by hop count (BFS) and by arbitrary link weights
//! (Dijkstra).
//!
//! Tie-breaking is deterministic: BFS and Dijkstra explore out-links in link
//! insertion order, so two runs on the same topology always return the same
//! paths. Determinism matters because path choices feed both the cost model
//! (`ℓᵢ`, the propagation hop count of eq. (3)) and the flow-level simulator;
//! nondeterministic routing would make experiments unreproducible.

use crate::graph::{LinkId, Topology};

/// A directed path through a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Visited nodes, `nodes[0]` = source, `nodes.last()` = destination.
    pub nodes: Vec<usize>,
    /// Traversed links, `links.len() == nodes.len() - 1`.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Number of hops (links traversed).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Source node.
    ///
    /// # Panics
    ///
    /// Panics on an empty path (never produced by this module).
    pub fn src(&self) -> usize {
        self.nodes[0]
    }

    /// Destination node.
    ///
    /// # Panics
    ///
    /// Panics on an empty path (never produced by this module).
    pub fn dst(&self) -> usize {
        *self.nodes.last().expect("paths are non-empty")
    }
}

/// BFS shortest path from `src` to `dst` by hop count. Returns `None` when
/// unreachable or `src == dst`.
pub fn shortest_path(topo: &Topology, src: usize, dst: usize) -> Option<Path> {
    if src == dst || src >= topo.n() || dst >= topo.n() {
        return None;
    }
    let mut parent_link: Vec<Option<LinkId>> = vec![None; topo.n()];
    let mut visited = vec![false; topo.n()];
    visited[src] = true;
    let mut queue = std::collections::VecDeque::from([src]);
    'bfs: while let Some(u) = queue.pop_front() {
        for &lid in topo.out_links(u) {
            let v = topo.link(lid).dst;
            if !visited[v] {
                visited[v] = true;
                parent_link[v] = Some(lid);
                if v == dst {
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
    }
    if !visited[dst] {
        return None;
    }
    reconstruct(topo, src, dst, &parent_link)
}

/// Dijkstra shortest path under per-link weights `w` (must be non-negative,
/// one entry per link). Returns `(total_weight, path)`, or `None` when
/// unreachable or `src == dst`. Used as the shortest-path oracle of the
/// Garg–Könemann concurrent-flow solver in `aps-flow`.
pub fn shortest_path_weighted(
    topo: &Topology,
    src: usize,
    dst: usize,
    w: &[f64],
) -> Option<(f64, Path)> {
    assert_eq!(w.len(), topo.num_links(), "one weight per link required");
    if src == dst || src >= topo.n() || dst >= topo.n() {
        return None;
    }
    let n = topo.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_link: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[src] = 0.0;
    // Binary heap keyed on (dist, node); f64 wrapped as ordered bits.
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((ordered(0.0), src)));
    while let Some(std::cmp::Reverse((_, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        if u == dst {
            break;
        }
        for &lid in topo.out_links(u) {
            let v = topo.link(lid).dst;
            let nd = dist[u] + w[lid];
            if nd < dist[v] {
                dist[v] = nd;
                parent_link[v] = Some(lid);
                heap.push(std::cmp::Reverse((ordered(nd), v)));
            }
        }
    }
    if dist[dst].is_infinite() {
        return None;
    }
    reconstruct(topo, src, dst, &parent_link).map(|p| (dist[dst], p))
}

/// Monotone mapping of non-negative finite f64 to ordered u64 bits.
fn ordered(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    x.to_bits()
}

fn reconstruct(
    topo: &Topology,
    src: usize,
    dst: usize,
    parent_link: &[Option<LinkId>],
) -> Option<Path> {
    let mut links = Vec::new();
    let mut nodes = vec![dst];
    let mut cur = dst;
    while cur != src {
        let lid = parent_link[cur]?;
        links.push(lid);
        cur = topo.link(lid).src;
        nodes.push(cur);
    }
    links.reverse();
    nodes.reverse();
    Some(Path { nodes, links })
}

/// Hop distances from every node to every node; `None` when unreachable.
pub fn all_pairs_hops(topo: &Topology) -> Vec<Vec<Option<u32>>> {
    (0..topo.n())
        .map(|src| {
            let mut dist = vec![None; topo.n()];
            dist[src] = Some(0);
            let mut queue = std::collections::VecDeque::from([src]);
            while let Some(u) = queue.pop_front() {
                let du = dist[u].expect("queued nodes have distances");
                for &lid in topo.out_links(u) {
                    let v = topo.link(lid).dst;
                    if dist[v].is_none() {
                        dist[v] = Some(du + 1);
                        queue.push_back(v);
                    }
                }
            }
            dist
        })
        .collect()
}

/// The directed diameter (longest shortest path), or `None` if any ordered
/// pair is unreachable.
pub fn diameter(topo: &Topology) -> Option<u32> {
    let d = all_pairs_hops(topo);
    let mut best = 0;
    for (i, row) in d.iter().enumerate() {
        for (j, h) in row.iter().enumerate() {
            if i != j {
                best = best.max((*h)?);
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn uni_ring_paths_are_forced() {
        let t = builders::ring_unidirectional(8).unwrap();
        let p = shortest_path(&t, 2, 1).unwrap();
        assert_eq!(p.hops(), 7);
        assert_eq!(p.src(), 2);
        assert_eq!(p.dst(), 1);
        assert_eq!(p.nodes, vec![2, 3, 4, 5, 6, 7, 0, 1]);
        assert_eq!(diameter(&t), Some(7));
    }

    #[test]
    fn bi_ring_takes_short_side() {
        let t = builders::ring_bidirectional(8).unwrap();
        assert_eq!(shortest_path(&t, 0, 3).unwrap().hops(), 3);
        assert_eq!(shortest_path(&t, 0, 6).unwrap().hops(), 2);
        assert_eq!(diameter(&t), Some(4));
    }

    #[test]
    fn hypercube_distance_is_popcount() {
        let t = builders::hypercube(16).unwrap();
        for a in 0..16usize {
            for b in 0..16usize {
                if a != b {
                    let p = shortest_path(&t, a, b).unwrap();
                    assert_eq!(p.hops(), (a ^ b).count_ones() as usize);
                }
            }
        }
        assert_eq!(diameter(&t), Some(4));
    }

    #[test]
    fn same_node_and_out_of_range() {
        let t = builders::ring_unidirectional(4).unwrap();
        assert!(shortest_path(&t, 1, 1).is_none());
        assert!(shortest_path(&t, 0, 9).is_none());
        assert!(shortest_path_weighted(&t, 1, 1, &[1.0; 4]).is_none());
    }

    #[test]
    fn disconnected_reported() {
        let mut t = Topology::new(4, "two islands");
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        assert!(shortest_path(&t, 0, 3).is_none());
        assert_eq!(diameter(&t), None);
        let hops = all_pairs_hops(&t);
        assert_eq!(hops[0][1], Some(1));
        assert_eq!(hops[0][2], None);
    }

    #[test]
    fn weighted_prefers_cheap_detour() {
        // 0→1 direct (weight 10) vs 0→2→1 (weight 2).
        let mut t = Topology::new(3, "detour");
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(0, 2, 1.0).unwrap();
        t.add_link(2, 1, 1.0).unwrap();
        let (cost, p) = shortest_path_weighted(&t, 0, 1, &[10.0, 1.0, 1.0]).unwrap();
        assert!((cost - 2.0).abs() < 1e-12);
        assert_eq!(p.nodes, vec![0, 2, 1]);
        // With uniform weights the direct hop wins.
        let (cost, p) = shortest_path_weighted(&t, 0, 1, &[1.0, 1.0, 1.0]).unwrap();
        assert!((cost - 1.0).abs() < 1e-12);
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn bfs_deterministic_tie_break() {
        // Two equal-hop routes 0→1→3 and 0→2→3; link insertion order decides.
        let mut t = Topology::new(4, "diamond");
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(0, 2, 1.0).unwrap();
        t.add_link(1, 3, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        let p1 = shortest_path(&t, 0, 3).unwrap();
        let p2 = shortest_path(&t, 0, 3).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.nodes, vec![0, 1, 3]);
    }
}
