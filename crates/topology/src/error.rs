//! Error types for topology construction and routing.

use std::fmt;

/// Errors produced while building or routing on a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A node index was `>= n`.
    NodeOutOfRange {
        /// The offending node.
        node: usize,
        /// The node count.
        n: usize,
    },
    /// A link connected a node to itself.
    SelfLoopLink(usize),
    /// A link capacity was not a positive finite number.
    NonPositiveCapacity {
        /// Source node of the offending link.
        src: usize,
        /// Destination node of the offending link.
        dst: usize,
        /// The offending capacity.
        capacity: f64,
    },
    /// The topology needs at least `min` nodes.
    TooSmall {
        /// Requested node count.
        n: usize,
        /// Minimum supported node count.
        min: usize,
    },
    /// A ring stride must be coprime with the node count for connectivity.
    InvalidStride {
        /// The offending stride.
        stride: usize,
        /// The node count.
        n: usize,
    },
    /// A stride appeared twice in a co-prime ring union.
    DuplicateStride(usize),
    /// No strides were supplied for a ring union.
    EmptyStrides,
    /// A hypercube needs a power-of-two node count.
    NotPowerOfTwo(usize),
    /// No route exists between two endpoints that must communicate.
    Unreachable {
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
    },
    /// Torus dimensions must each be at least 1 and multiply to `n ≥ 2`.
    BadTorusDims {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for {n}-node topology")
            }
            Self::SelfLoopLink(v) => write!(f, "self-loop link at node {v}"),
            Self::NonPositiveCapacity { src, dst, capacity } => {
                write!(f, "link {src}->{dst} has invalid capacity {capacity} (must be positive and finite)")
            }
            Self::TooSmall { n, min } => {
                write!(f, "topology of {n} nodes is too small (minimum {min})")
            }
            Self::InvalidStride { stride, n } => {
                write!(
                    f,
                    "stride {stride} is not coprime with {n}; ring would be disconnected"
                )
            }
            Self::DuplicateStride(s) => write!(f, "duplicate ring stride {s}"),
            Self::EmptyStrides => write!(f, "at least one ring stride is required"),
            Self::NotPowerOfTwo(n) => write!(f, "{n} is not a power of two"),
            Self::Unreachable { src, dst } => write!(f, "no route from {src} to {dst}"),
            Self::BadTorusDims { rows, cols } => {
                write!(f, "invalid torus dimensions {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
