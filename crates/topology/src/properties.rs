//! Structural properties of topologies: connectivity, regularity, degree
//! statistics.

use crate::graph::Topology;

/// `true` when every node can reach every other node along directed links.
pub fn is_strongly_connected(topo: &Topology) -> bool {
    let n = topo.n();
    if n <= 1 {
        return true;
    }
    reaches_all(topo, false) && reaches_all(topo, true)
}

fn reaches_all(topo: &Topology, reversed: bool) -> bool {
    let n = topo.n();
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut count = 1;
    while let Some(u) = queue.pop_front() {
        let links = if reversed {
            topo.in_links(u)
        } else {
            topo.out_links(u)
        };
        for &lid in links {
            let l = topo.link(lid);
            let v = if reversed { l.src } else { l.dst };
            if !visited[v] {
                visited[v] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count == n
}

/// `true` when all nodes share the same out-degree and the same in-degree.
pub fn is_regular(topo: &Topology) -> bool {
    let n = topo.n();
    if n == 0 {
        return true;
    }
    let od = topo.out_degree(0);
    let id = topo.in_degree(0);
    (0..n).all(|v| topo.out_degree(v) == od && topo.in_degree(v) == id)
}

/// Maximum out-degree over all nodes.
pub fn max_out_degree(topo: &Topology) -> usize {
    (0..topo.n()).map(|v| topo.out_degree(v)).max().unwrap_or(0)
}

/// Minimum out-degree over all nodes.
pub fn min_out_degree(topo: &Topology) -> usize {
    (0..topo.n()).map(|v| topo.out_degree(v)).min().unwrap_or(0)
}

/// `true` when the topology is a valid single-transceiver circuit
/// configuration: every node has out-degree ≤ 1 and in-degree ≤ 1 — i.e. it
/// could be produced by [`crate::builders::from_matching`].
pub fn is_circuit_configuration(topo: &Topology) -> bool {
    (0..topo.n()).all(|v| topo.out_degree(v) <= 1 && topo.in_degree(v) <= 1)
}

/// Largest egress capacity excess over the transceiver budget of 1.0, as a
/// sanity diagnostic for hand-built topologies. Zero (within `tol`) for all
/// built-in builders.
pub fn egress_budget_violation(topo: &Topology, tol: f64) -> f64 {
    (0..topo.n())
        .map(|v| (topo.egress_capacity(v) - 1.0).max(0.0))
        .fold(0.0, f64::max)
        .max(0.0)
        - tol.min(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn ring_properties() {
        let t = builders::ring_unidirectional(6).unwrap();
        assert!(is_strongly_connected(&t));
        assert!(is_regular(&t));
        assert!(is_circuit_configuration(&t));
        assert_eq!(max_out_degree(&t), 1);
        assert_eq!(min_out_degree(&t), 1);
    }

    #[test]
    fn bi_ring_is_not_a_circuit_config() {
        let t = builders::ring_bidirectional(6).unwrap();
        assert!(is_strongly_connected(&t));
        assert!(is_regular(&t));
        assert!(!is_circuit_configuration(&t));
    }

    #[test]
    fn one_way_chain_is_not_strongly_connected() {
        let mut t = Topology::new(3, "chain");
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 2, 1.0).unwrap();
        assert!(!is_strongly_connected(&t));
        assert!(!is_regular(&t));
    }

    #[test]
    fn reverse_reachability_matters() {
        // Everyone can reach node 0's component forward, but node 2 has no
        // incoming edge: forward BFS from 0 finds all, reverse BFS does not.
        let mut t = Topology::new(3, "sink");
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 0, 1.0).unwrap();
        t.add_link(2, 0, 1.0).unwrap();
        assert!(!is_strongly_connected(&t));
    }

    #[test]
    fn empty_and_trivial() {
        assert!(is_strongly_connected(&Topology::new(0, "empty")));
        assert!(is_strongly_connected(&Topology::new(1, "solo")));
        assert!(is_regular(&Topology::new(0, "empty")));
        assert_eq!(max_out_degree(&Topology::new(0, "empty")), 0);
    }

    #[test]
    fn builders_respect_egress_budget() {
        for t in [
            builders::ring_unidirectional(8).unwrap(),
            builders::ring_bidirectional(8).unwrap(),
            builders::torus_2d(4, 4).unwrap(),
            builders::hypercube(8).unwrap(),
            builders::full_mesh(6).unwrap(),
            builders::coprime_rings(10, &[1, 3]).unwrap(),
        ] {
            assert!(egress_budget_violation(&t, 1e-9) < 1e-9, "{}", t.name());
        }
    }
}
