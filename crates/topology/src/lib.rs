//! # aps-topology — capacitated network topologies for scale-up domains
//!
//! Directed, capacitated graphs modelling the *physical* connectivity that a
//! photonic interconnect configuration induces between GPUs, plus the
//! structured base topologies the paper discusses (§3.1, §3.3):
//!
//! * unidirectional and bidirectional rings — "a common choice for scale-up
//!   photonic interconnects" and the base topology `G` of the paper's
//!   evaluation;
//! * 2-D tori, hypercubes and full meshes — classic scale-up fabrics that
//!   topology-aware collectives target;
//! * unions of co-prime rings — the multi-base extension the paper points to
//!   (citing TopoOpt);
//! * matched topologies built directly from a [`aps_matrix::Matching`] — the
//!   "reconfigure to the pattern" configurations with one dedicated circuit
//!   per communicating pair.
//!
//! **Capacity convention.** Link capacities are normalized to the
//! electrical-to-optical transceiver bandwidth `b` (§3.1): a node with
//! out-degree `d` splits its transceiver across `d` egress links of capacity
//! `1/d` each. A matched topology dedicates the full transceiver to one
//! circuit (capacity 1). With this convention the maximum concurrent flow
//! `θ(G, M)` computed by `aps-flow` plugs directly into the cost model's
//! congestion factor `1/θ` (eq. (3) of the paper).

pub mod builders;
pub mod error;
pub mod graph;
pub mod paths;
pub mod properties;
pub mod routing;

pub use error::TopologyError;
pub use graph::{Link, LinkId, Topology};
pub use paths::Path;
pub use routing::FlowPath;
