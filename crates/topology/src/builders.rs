//! Constructors for the structured topologies used by the paper and its
//! evaluation.
//!
//! All builders follow the transceiver-normalized capacity convention: each
//! node's egress capacity sums to 1.0 (one transceiver of bandwidth `b`,
//! split evenly across its egress links).

use crate::error::TopologyError;
use crate::graph::Topology;
use aps_matrix::Matching;

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Unidirectional ring `i → (i+1) mod n`, the paper's default base topology
/// `G` for single-fat-link GPUs (§3.4). Every link has the full transceiver
/// capacity 1.0.
///
/// # Errors
///
/// Requires `n ≥ 2`.
pub fn ring_unidirectional(n: usize) -> Result<Topology, TopologyError> {
    if n < 2 {
        return Err(TopologyError::TooSmall { n, min: 2 });
    }
    let mut t = Topology::new(n, format!("uni-ring({n})"));
    for i in 0..n {
        t.add_link(i, (i + 1) % n, 1.0)?;
    }
    Ok(t)
}

/// Bidirectional ring: each node splits its transceiver across the two
/// directions (capacity 0.5 per link). This is the natural habitat of the
/// Swing algorithm.
///
/// # Errors
///
/// Requires `n ≥ 3` (with `n = 2` the two directions collapse onto the same
/// neighbor; use [`ring_unidirectional`]).
pub fn ring_bidirectional(n: usize) -> Result<Topology, TopologyError> {
    if n < 3 {
        return Err(TopologyError::TooSmall { n, min: 3 });
    }
    let mut t = Topology::new(n, format!("bi-ring({n})"));
    for i in 0..n {
        t.add_link(i, (i + 1) % n, 0.5)?;
        t.add_link(i, (i + n - 1) % n, 0.5)?;
    }
    Ok(t)
}

/// Union of unidirectional rings with the given strides (the co-prime ring
/// pools of §3.3, after TopoOpt). Every stride must be coprime with `n`
/// (connectivity) and distinct; each node's transceiver is split evenly
/// across the `k` rings.
///
/// # Errors
///
/// Rejects empty or duplicate stride sets and strides not coprime with `n`.
pub fn coprime_rings(n: usize, strides: &[usize]) -> Result<Topology, TopologyError> {
    if n < 2 {
        return Err(TopologyError::TooSmall { n, min: 2 });
    }
    if strides.is_empty() {
        return Err(TopologyError::EmptyStrides);
    }
    let mut seen = std::collections::HashSet::new();
    for &s in strides {
        let s_mod = s % n;
        if s_mod == 0 || gcd(s_mod, n) != 1 {
            return Err(TopologyError::InvalidStride { stride: s, n });
        }
        if !seen.insert(s_mod) {
            return Err(TopologyError::DuplicateStride(s));
        }
    }
    let cap = 1.0 / strides.len() as f64;
    let mut t = Topology::new(n, format!("coprime-rings({n},{strides:?})"));
    for &s in strides {
        for i in 0..n {
            t.add_link(i, (i + s) % n, cap)?;
        }
    }
    Ok(t)
}

/// 2-D torus with wraparound in both dimensions. Node `(r, c)` is index
/// `r * cols + c`. Each node's transceiver is split evenly across its
/// distinct neighbors (4 in the general case; fewer when a dimension has
/// length ≤ 2).
///
/// # Errors
///
/// Requires `rows · cols ≥ 2` and both dimensions ≥ 1.
pub fn torus_2d(rows: usize, cols: usize) -> Result<Topology, TopologyError> {
    if rows == 0 || cols == 0 || rows * cols < 2 {
        return Err(TopologyError::BadTorusDims { rows, cols });
    }
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    // Collect distinct neighbors first so capacity = 1/degree is exact even
    // for degenerate dimensions (rows or cols ∈ {1, 2}).
    let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..rows {
        for c in 0..cols {
            let me = idx(r, c);
            let mut push = |v: usize| {
                if v != me && !nbrs[me].contains(&v) {
                    nbrs[me].push(v);
                }
            };
            if cols > 1 {
                push(idx(r, (c + 1) % cols));
                push(idx(r, (c + cols - 1) % cols));
            }
            if rows > 1 {
                push(idx((r + 1) % rows, c));
                push(idx((r + rows - 1) % rows, c));
            }
        }
    }
    let mut t = Topology::new(n, format!("torus({rows}x{cols})"));
    for (me, list) in nbrs.iter().enumerate() {
        let cap = 1.0 / list.len() as f64;
        for &v in list {
            t.add_link(me, v, cap)?;
        }
    }
    Ok(t)
}

/// `d`-dimensional hypercube over `n = 2^d` nodes; neighbors differ in one
/// bit; capacity `1/d` per link.
///
/// # Errors
///
/// Requires `n` to be a power of two, `n ≥ 2`.
pub fn hypercube(n: usize) -> Result<Topology, TopologyError> {
    if n < 2 {
        return Err(TopologyError::TooSmall { n, min: 2 });
    }
    if !n.is_power_of_two() {
        return Err(TopologyError::NotPowerOfTwo(n));
    }
    let d = n.trailing_zeros() as usize;
    let cap = 1.0 / d as f64;
    let mut t = Topology::new(n, format!("hypercube({n})"));
    for i in 0..n {
        for b in 0..d {
            t.add_link(i, i ^ (1 << b), cap)?;
        }
    }
    Ok(t)
}

/// Full mesh (every ordered pair directly connected); capacity `1/(n-1)` per
/// link. Models an electrically-switched all-to-all baseline.
///
/// # Errors
///
/// Requires `n ≥ 2`.
pub fn full_mesh(n: usize) -> Result<Topology, TopologyError> {
    if n < 2 {
        return Err(TopologyError::TooSmall { n, min: 2 });
    }
    let cap = 1.0 / (n - 1) as f64;
    let mut t = Topology::new(n, format!("mesh({n})"));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                t.add_link(i, j, cap)?;
            }
        }
    }
    Ok(t)
}

/// The *matched* topology for a communication step: one dedicated circuit of
/// full transceiver capacity per communicating pair (§3.3: "congestion and
/// path lengths can be reduced to 1").
pub fn from_matching(matching: &Matching) -> Topology {
    let n = matching.n();
    let mut t = Topology::new(n, format!("matched({n})"));
    for (s, d) in matching.pairs() {
        t.add_link(s, d, 1.0)
            .expect("matchings contain no self-loops or out-of-range endpoints");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn uni_ring_shape() {
        let t = ring_unidirectional(5).unwrap();
        assert_eq!(t.n(), 5);
        assert_eq!(t.num_links(), 5);
        assert!((0..5).all(|i| t.out_degree(i) == 1 && t.in_degree(i) == 1));
        assert!((t.egress_capacity(0) - 1.0).abs() < 1e-12);
        assert!(ring_unidirectional(1).is_err());
    }

    #[test]
    fn bi_ring_shape() {
        let t = ring_bidirectional(6).unwrap();
        assert_eq!(t.num_links(), 12);
        assert!((0..6).all(|i| t.out_degree(i) == 2));
        assert!((t.egress_capacity(3) - 1.0).abs() < 1e-12);
        assert!(ring_bidirectional(2).is_err());
    }

    #[test]
    fn coprime_rings_validation() {
        assert!(coprime_rings(8, &[]).is_err());
        assert!(matches!(
            coprime_rings(8, &[2]),
            Err(TopologyError::InvalidStride { stride: 2, n: 8 })
        ));
        assert!(matches!(
            coprime_rings(8, &[1, 9]),
            Err(TopologyError::DuplicateStride(9))
        ));
        let t = coprime_rings(8, &[1, 3]).unwrap();
        assert_eq!(t.num_links(), 16);
        assert!((t.egress_capacity(0) - 1.0).abs() < 1e-12);
        assert!(properties::is_strongly_connected(&t));
    }

    #[test]
    fn torus_degrees() {
        let t = torus_2d(4, 4).unwrap();
        assert_eq!(t.n(), 16);
        assert!((0..16).all(|i| t.out_degree(i) == 4));
        assert!((t.egress_capacity(5) - 1.0).abs() < 1e-12);
        // Degenerate: 2 rows → vertical +1 and -1 coincide.
        let t2 = torus_2d(2, 4).unwrap();
        assert!((0..8).all(|i| t2.out_degree(i) == 3));
        assert!((t2.egress_capacity(0) - 1.0).abs() < 1e-12);
        // 1-row torus degenerates to a bidirectional ring.
        let t3 = torus_2d(1, 5).unwrap();
        assert!((0..5).all(|i| t3.out_degree(i) == 2));
        assert!(torus_2d(0, 4).is_err());
        assert!(torus_2d(1, 1).is_err());
    }

    #[test]
    fn hypercube_shape() {
        let t = hypercube(8).unwrap();
        assert_eq!(t.num_links(), 24);
        assert!((0..8).all(|i| t.out_degree(i) == 3));
        assert!((t.egress_capacity(7) - 1.0).abs() < 1e-9);
        assert!(hypercube(6).is_err());
        assert!(hypercube(1).is_err());
    }

    #[test]
    fn mesh_shape() {
        let t = full_mesh(4).unwrap();
        assert_eq!(t.num_links(), 12);
        assert!((t.egress_capacity(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matched_topology_from_shift() {
        let m = Matching::shift(6, 2).unwrap();
        let t = from_matching(&m);
        assert_eq!(t.num_links(), 6);
        assert!((0..6).all(|i| t.out_degree(i) == 1));
        assert_eq!(t.link(t.out_links(0)[0]).dst, 2);
        assert_eq!(t.link(t.out_links(0)[0]).capacity, 1.0);
    }

    #[test]
    fn all_builders_strongly_connected() {
        for t in [
            ring_unidirectional(7).unwrap(),
            ring_bidirectional(7).unwrap(),
            coprime_rings(9, &[1, 2]).unwrap(),
            torus_2d(3, 3).unwrap(),
            hypercube(16).unwrap(),
            full_mesh(5).unwrap(),
        ] {
            assert!(properties::is_strongly_connected(&t), "{}", t.name());
        }
    }
}
