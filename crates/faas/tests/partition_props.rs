//! Property tests for the port-partition allocator: live partitions
//! never overlap, alloc→free→alloc replays deterministically, and the
//! generation counter catches every stale handle.

use aps_faas::{FaasError, PartitionAllocator, PartitionHandle};
use proptest::prelude::*;

/// One scripted allocator operation. `Alloc` sizes are interpreted
/// modulo the fabric; `Free` indices pick among currently live handles.
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc(usize),
    Free(usize),
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (
        2usize..24,
        proptest::collection::vec((0usize..2, 0usize..16), 1..80),
    )
        .prop_map(|(n, raw)| {
            let ops = raw
                .into_iter()
                .map(|(kind, x)| if kind == 0 { Op::Alloc(x) } else { Op::Free(x) })
                .collect();
            (n, ops)
        })
}

/// Runs the op script, checking the no-overlap invariant after every
/// step. Returns the full (handle, ports) trace for replay comparison.
fn run_script(n: usize, ops: &[Op]) -> Vec<(PartitionHandle, Vec<usize>)> {
    let mut alloc = PartitionAllocator::new(n);
    let mut live: Vec<PartitionHandle> = Vec::new();
    let mut trace = Vec::new();
    for &op in ops {
        match op {
            Op::Alloc(want) => {
                let want = (want % n).max(1);
                if let Some(h) = alloc.try_alloc(want) {
                    let ports = alloc.ports(h).unwrap().to_vec();
                    assert_eq!(ports.len(), want);
                    live.push(h);
                    trace.push((h, ports));
                }
            }
            Op::Free(i) => {
                if !live.is_empty() {
                    let h = live.remove(i % live.len());
                    assert!(alloc.reclaim(h).is_ok());
                }
            }
        }
        // Invariant: live partitions never overlap, and their union
        // plus the free count covers the fabric exactly.
        let mut owned = vec![false; n];
        for &h in &live {
            for &p in alloc.ports(h).unwrap() {
                assert!(!owned[p], "port {p} owned by two live partitions");
                owned[p] = true;
            }
        }
        let used = owned.iter().filter(|&&o| o).count();
        assert_eq!(used + alloc.free_ports(), n);
        assert_eq!(alloc.live_partitions(), live.len());
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn live_partitions_never_overlap((n, ops) in arb_ops()) {
        run_script(n, &ops);
    }

    #[test]
    fn alloc_free_alloc_replays_deterministically((n, ops) in arb_ops()) {
        // Same script, fresh allocator: identical handles AND identical
        // port sets, every time.
        let a = run_script(n, &ops);
        let b = run_script(n, &ops);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn generations_catch_stale_handles((n, ops) in arb_ops()) {
        // Every handle ever freed must stay dead: a later reuse of its
        // slot bumps the generation, so the old handle errors with
        // StaleHandle; before reuse it errors with DoubleReclaim.
        let mut alloc = PartitionAllocator::new(n);
        let mut live: Vec<PartitionHandle> = Vec::new();
        let mut dead: Vec<PartitionHandle> = Vec::new();
        for &op in &ops {
            match op {
                Op::Alloc(want) => {
                    if let Some(h) = alloc.try_alloc((want % n).max(1)) {
                        live.push(h);
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let h = live.remove(i % live.len());
                        alloc.reclaim(h).unwrap();
                        dead.push(h);
                    }
                }
            }
            for &h in &dead {
                let err = alloc.reclaim(h).unwrap_err();
                prop_assert!(
                    matches!(
                        err,
                        FaasError::DoubleReclaim { .. } | FaasError::StaleHandle { .. }
                    ),
                    "dead handle {h:?} must stay dead, got {err:?}"
                );
                prop_assert!(alloc.ports(h).is_err());
            }
        }
        // Nothing a dead handle did disturbed the live set.
        let mut owned = vec![false; n];
        for &h in &live {
            for &p in alloc.ports(h).unwrap() {
                prop_assert!(!owned[p]);
                owned[p] = true;
            }
        }
    }
}
