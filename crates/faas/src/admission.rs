//! Admission control policies for the service ingress.
//!
//! A job that does not fit at arrival (not enough free ports) meets one
//! of three policies:
//!
//! * [`AdmissionPolicy::Reject`] — turned away immediately with a typed
//!   [`RejectReason::PortsBusy`](crate::RejectReason::PortsBusy);
//! * [`AdmissionPolicy::Queue`] — waits in a bounded FIFO ingress queue;
//!   when the queue is full the job is rejected with
//!   [`RejectReason::QueueFull`](crate::RejectReason::QueueFull);
//! * [`AdmissionPolicy::Backpressure`] — waits in the same bounded queue,
//!   but when the queue is full the *source stalls*: the class's arrival
//!   process generates no further arrivals until its held job drains
//!   into the queue, modeling closed-loop clients.
//!
//! The queue is strictly FIFO with head-of-line blocking — a small job
//! never jumps a large head — which keeps admission order (and therefore
//! the whole run) deterministic. Jobs larger than the entire fabric are
//! always rejected up front with
//! [`RejectReason::TooLarge`](crate::RejectReason::TooLarge), under every
//! policy: no departure can ever make them fit.

/// What happens when an arriving job cannot be placed immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject immediately; nothing ever waits.
    Reject,
    /// Wait in a bounded FIFO ingress queue; reject when it is full.
    Queue {
        /// Maximum jobs waiting at once (0 degenerates to `Reject`).
        capacity: usize,
    },
    /// Wait in the bounded queue; when full, stall the arriving class's
    /// source instead of rejecting.
    Backpressure {
        /// Maximum jobs waiting at once. Must be at least 1: a stalled
        /// job can only resume by draining into the queue, so a
        /// zero-capacity queue would deadlock its class — the engine
        /// rejects it up front with
        /// [`FaasError::BadConfig`](crate::FaasError::BadConfig).
        capacity: usize,
    },
}

impl AdmissionPolicy {
    /// The ingress-queue capacity this policy grants (0 for `Reject`).
    pub fn queue_capacity(&self) -> usize {
        match self {
            Self::Reject => 0,
            Self::Queue { capacity } | Self::Backpressure { capacity } => *capacity,
        }
    }
}
