//! `aps-faas` — the fabric as a *service*: an open-system executor
//! where jobs arrive, are admitted onto a port partition, run their
//! collective workload on the shared photonic fabric, and depart.
//!
//! The closed-system executors in `aps-sim` answer "how long does this
//! fixed tenant mix take?". This crate answers the operator's question:
//! "what service does a *stream* of jobs get?" — goodput under an
//! admission policy, p50/p99 job-completion latency per tenant class,
//! and leximin fairness across classes, all folded into an O(1)
//! [`ServiceSummary`] so a million-job trace runs without materializing
//! anything per job.
//!
//! Layers:
//!
//! * arrivals — seeded Poisson / MMPP / trace interarrival generators
//!   (in `aps-collectives`, re-exported here for convenience);
//! * [`admission`] — reject / bounded queue / backpressure policies;
//! * [`partition`] — the port allocator with slot+generation handles
//!   and exactly-once reclaim;
//! * [`slo`] — fixed-bucket latency histograms, per-class counters,
//!   leximin comparison;
//! * [`engine`] — the event loop tying them together, byte-identical to
//!   the closed-system path when everything arrives at t = 0.

pub mod admission;
pub mod engine;
pub mod error;
pub mod partition;
pub mod slo;

pub use admission::AdmissionPolicy;
pub use engine::{
    run_service, run_service_recorded, JobDemand, ServiceConfig, ServiceJobRecord, ServiceReport,
    TenantClass,
};
pub use error::FaasError;
pub use partition::{PartitionAllocator, PartitionHandle};
pub use slo::{
    leximin_cmp, LatencyHistogram, RejectReason, ServiceSummary, TenantSlo, HISTOGRAM_BUCKETS,
};

pub use aps_collectives::workload::arrivals::{
    ArrivalProcess, MmppArrivals, PoissonArrivals, TraceArrivals,
};
pub use aps_sim::ServiceSwitching;
