//! Per-tenant SLO accounting: streaming quantiles, leximin fairness, and
//! the O(1) [`ServiceSummary`] fold.
//!
//! The engine never materializes per-job records (unless explicitly asked
//! to): every completed job folds into fixed-size state — a
//! [`LatencyHistogram`] with deterministic power-of-two buckets for
//! p50/p99 completion and queueing-wait quantiles, plus scalar counters
//! per tenant class. A million-job trace therefore costs O(#classes)
//! memory, and summaries from independent shards combine with
//! [`ServiceSummary::merge`] (a monoid fold, like
//! [`StreamSummary::merge`]).

use aps_cost::units::{picos_to_secs, Picos};
use aps_sim::StreamSummary;
use std::cmp::Ordering;

/// Histogram bucket count: one bucket per possible bit length of a `u64`
/// picosecond duration (0 through 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A deterministic fixed-bucket latency histogram: durations land in the
/// bucket of their bit length (powers of two), so recording is O(1),
/// memory is constant, and quantiles are exact bucket upper bounds —
/// identical on every machine and at any `APS_THREADS`.
///
/// ```
/// use aps_faas::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for ps in [10, 20, 30, 40, 1_000_000] {
///     h.record(ps);
/// }
/// assert_eq!(h.count(), 5);
/// // p50 falls in the bucket covering 16..=31 ps; p99 is clamped to the
/// // exact maximum.
/// assert_eq!(h.quantile(0.50), Some(31));
/// assert_eq!(h.quantile(0.99), Some(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_ps: u128,
    max_ps: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ps: 0,
            max_ps: 0,
        }
    }
}

/// Bucket index of a duration: its bit length.
fn bucket_of(ps: u64) -> usize {
    (u64::BITS - ps.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, the quantile representative.
fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl LatencyHistogram {
    /// Records one duration (picoseconds). O(1).
    pub fn record(&mut self, ps: u64) {
        self.buckets[bucket_of(ps)] += 1;
        self.count += 1;
        self.sum_ps += u128::from(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded duration, exact.
    pub fn max_ps(&self) -> u64 {
        self.max_ps
    }

    /// Mean duration in picoseconds, exact up to the final division.
    pub fn mean_ps(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ps as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// holding the rank-⌈q·count⌉ sample — an upper bound within 2× of
    /// the true value. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper(b).min(self.max_ps));
            }
        }
        Some(self.max_ps)
    }

    /// Median completion estimate (`quantile(0.50)`).
    pub fn p50_ps(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// Tail completion estimate (`quantile(0.99)`).
    pub fn p99_ps(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Folds another histogram in: bucket-wise addition. Associative and
    /// commutative with `Default` as identity.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.max_ps = self.max_ps.max(other.max_ps);
    }
}

/// Why the service turned a job away — the typed rejection taxonomy.
/// The engine constructs one of these for every rejection and folds it
/// into the per-class counters via [`TenantSlo::reject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The job wants more ports than the whole fabric has; no departure
    /// can ever make it fit.
    TooLarge {
        /// Ports the job asked for.
        wanted: usize,
        /// Ports the fabric has.
        fabric: usize,
    },
    /// Not enough free ports right now and the policy does not queue.
    PortsBusy {
        /// Ports the job asked for.
        wanted: usize,
        /// Free ports at arrival.
        free: usize,
    },
    /// The bounded ingress queue is full.
    QueueFull {
        /// The queue's capacity.
        capacity: usize,
    },
}

/// Per-tenant-class SLO accounting: constant-size, folded as jobs flow
/// through the service.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSlo {
    /// Jobs the class's arrival process offered.
    pub offered: u64,
    /// Jobs admitted (immediately or after queueing).
    pub admitted: u64,
    /// Jobs that waited in the ingress queue before admission.
    pub queued: u64,
    /// Arrivals that stalled the class's source (backpressure policy).
    pub backpressured: u64,
    /// Jobs rejected because they exceed the fabric size.
    pub rejected_too_large: u64,
    /// Jobs rejected because their ports were busy (reject policy).
    pub rejected_ports_busy: u64,
    /// Jobs rejected because the ingress queue was full.
    pub rejected_queue_full: u64,
    /// Admitted jobs that ran their demand stream to completion.
    pub completed: u64,
    /// Admitted jobs that stopped on a step error (fault isolation).
    pub failed: u64,
    /// Job completion time (arrival → departure, includes queueing).
    pub completion: LatencyHistogram,
    /// Queueing wait (arrival → service start).
    pub wait: LatencyHistogram,
}

impl TenantSlo {
    /// Accounts one rejection under its typed [`RejectReason`] — the
    /// single entry point the engine folds every turned-away job through,
    /// so the reason taxonomy and the counters cannot drift apart.
    pub fn reject(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::TooLarge { .. } => self.rejected_too_large += 1,
            RejectReason::PortsBusy { .. } => self.rejected_ports_busy += 1,
            RejectReason::QueueFull { .. } => self.rejected_queue_full += 1,
        }
    }

    /// Jobs rejected for any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_too_large + self.rejected_ports_busy + self.rejected_queue_full
    }

    /// Fraction of offered jobs that completed (1 when none offered) —
    /// the utility the leximin fairness order ranks.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Folds another class summary in (same class, different shard).
    pub fn merge(&mut self, other: &Self) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.queued += other.queued;
        self.backpressured += other.backpressured;
        self.rejected_too_large += other.rejected_too_large;
        self.rejected_ports_busy += other.rejected_ports_busy;
        self.rejected_queue_full += other.rejected_queue_full;
        self.completed += other.completed;
        self.failed += other.failed;
        self.completion.merge(&other.completion);
        self.wait.merge(&other.wait);
    }
}

/// The O(1) fold of a whole service run: per-class SLO state, the global
/// step totals, and the makespan. Size is O(#classes) — never O(#jobs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceSummary {
    /// Tenant class names, in engine input order.
    pub class_names: Vec<String>,
    /// Per-class SLO accounting, parallel to `class_names`.
    pub tenants: Vec<TenantSlo>,
    /// When the last job departed (global simulated clock).
    pub makespan_ps: Picos,
    /// Every executed step folded across all jobs (the
    /// [`StreamSummary::merge`] monoid).
    pub steps: StreamSummary,
}

impl ServiceSummary {
    /// Makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        picos_to_secs(self.makespan_ps)
    }

    /// Total jobs offered across classes.
    pub fn offered(&self) -> u64 {
        self.tenants.iter().map(|t| t.offered).sum()
    }

    /// Total jobs completed across classes.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Per-class goodput vector, the input to the leximin order.
    pub fn fairness_vector(&self) -> Vec<f64> {
        self.tenants.iter().map(TenantSlo::goodput).collect()
    }

    /// Folds another shard's summary in. Classes must match (or either
    /// side may be the empty identity). Associative, and
    /// `ServiceSummary::default()` is the identity.
    ///
    /// # Panics
    ///
    /// When both sides are non-empty with different class lists.
    pub fn merge(&mut self, other: &Self) {
        if other.tenants.is_empty() && other.class_names.is_empty() {
            self.makespan_ps = self.makespan_ps.max(other.makespan_ps);
            self.steps = self.steps.merge(other.steps);
            return;
        }
        if self.tenants.is_empty() && self.class_names.is_empty() {
            let steps = self.steps.merge(other.steps);
            let makespan = self.makespan_ps.max(other.makespan_ps);
            *self = other.clone();
            self.steps = steps;
            self.makespan_ps = makespan;
            return;
        }
        assert_eq!(
            self.class_names, other.class_names,
            "merging service summaries of different class lists"
        );
        for (a, b) in self.tenants.iter_mut().zip(&other.tenants) {
            a.merge(b);
        }
        self.makespan_ps = self.makespan_ps.max(other.makespan_ps);
        self.steps = self.steps.merge(other.steps);
    }
}

/// Leximin order on utility vectors: sort both ascending and compare
/// lexicographically — the vector whose worst-off entry is larger wins;
/// ties recurse to the next-worst. The standard max-min fairness ranking
/// across tenants.
///
/// ```
/// use aps_faas::leximin_cmp;
/// use std::cmp::Ordering;
///
/// // Raising the minimum beats raising the maximum.
/// assert_eq!(leximin_cmp(&[0.5, 0.9], &[0.4, 1.0]), Ordering::Greater);
/// assert_eq!(leximin_cmp(&[0.5, 0.9], &[0.9, 0.5]), Ordering::Equal);
/// ```
pub fn leximin_cmp(a: &[f64], b: &[f64]) -> Ordering {
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    for (x, y) in sa.iter().zip(&sb) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    sa.len().cmp(&sb.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_deterministic_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for ps in 1..=1000u64 {
            h.record(ps);
        }
        let p50 = h.p50_ps().unwrap();
        let p99 = h.p99_ps().unwrap();
        // Rank 500 lands in bucket 9 (256..=511); rank 990 in bucket 10.
        assert_eq!(p50, 511);
        assert_eq!(p99, 1000, "clamped to the exact max");
        assert_eq!(h.max_ps(), 1000);
        assert!((h.mean_ps() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_bucketwise_addition() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for ps in [3, 17, 900, 12_000] {
            a.record(ps);
            whole.record(ps);
        }
        for ps in [5, 5_000_000] {
            b.record(ps);
            whole.record(ps);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Identity.
        let mut c = whole;
        c.merge(&LatencyHistogram::default());
        assert_eq!(c, whole);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ps(), 0.0);
    }

    #[test]
    fn reject_reasons_fold_into_their_counters() {
        let mut t = TenantSlo::default();
        t.reject(RejectReason::TooLarge {
            wanted: 9,
            fabric: 8,
        });
        t.reject(RejectReason::PortsBusy { wanted: 4, free: 2 });
        t.reject(RejectReason::PortsBusy { wanted: 4, free: 0 });
        t.reject(RejectReason::QueueFull { capacity: 3 });
        assert_eq!(t.rejected_too_large, 1);
        assert_eq!(t.rejected_ports_busy, 2);
        assert_eq!(t.rejected_queue_full, 1);
        assert_eq!(t.rejected(), 4);
    }

    #[test]
    fn leximin_prefers_the_better_minimum() {
        use Ordering::*;
        assert_eq!(leximin_cmp(&[0.2, 1.0], &[0.3, 0.3]), Less);
        assert_eq!(leximin_cmp(&[1.0, 0.5], &[0.5, 1.0]), Equal);
        assert_eq!(leximin_cmp(&[0.5, 0.5], &[0.5, 0.4]), Greater);
        // Equal minima recurse to the next-worst entry.
        assert_eq!(leximin_cmp(&[0.4, 0.9], &[0.4, 0.8]), Greater);
    }

    #[test]
    fn service_summary_merge_has_identity_and_matches_whole() {
        let mut a = ServiceSummary {
            class_names: vec!["x".into()],
            tenants: vec![TenantSlo {
                offered: 3,
                completed: 2,
                ..TenantSlo::default()
            }],
            makespan_ps: 100,
            steps: StreamSummary::default(),
        };
        let b = ServiceSummary {
            class_names: vec!["x".into()],
            tenants: vec![TenantSlo {
                offered: 5,
                completed: 5,
                ..TenantSlo::default()
            }],
            makespan_ps: 70,
            steps: StreamSummary::default(),
        };
        let mut id_left = ServiceSummary::default();
        id_left.merge(&a);
        assert_eq!(id_left, a);
        let mut id_right = a.clone();
        id_right.merge(&ServiceSummary::default());
        assert_eq!(id_right, a);
        a.merge(&b);
        assert_eq!(a.tenants[0].offered, 8);
        assert_eq!(a.tenants[0].completed, 7);
        assert_eq!(a.makespan_ps, 100);
        assert_eq!(a.fairness_vector(), vec![7.0 / 8.0]);
    }
}
