//! Error types for the fabric-as-a-service engine.

use aps_sim::SimError;
use std::fmt;

/// Errors raised by the service engine and the partition allocator.
#[derive(Debug, Clone, PartialEq)]
pub enum FaasError {
    /// The service was started with no tenant classes.
    NoClasses,
    /// A tenant class is structurally invalid.
    BadClass {
        /// Class index in the engine input.
        class: usize,
        /// What is wrong with it.
        what: &'static str,
    },
    /// The service configuration is invalid (e.g. a backpressure policy
    /// with no queue slot, which could never drain a stalled source).
    BadConfig {
        /// What is wrong with it.
        what: &'static str,
    },
    /// A partition handle's generation does not match the slot's current
    /// incarnation: the handle is from an earlier tenancy of the slot.
    StaleHandle {
        /// Allocator slot the handle names.
        slot: usize,
        /// The slot's current generation.
        current: u32,
        /// The generation the handle carries.
        got: u32,
    },
    /// The partition named by the handle was already reclaimed — a
    /// second reclaim of the same incarnation. Departing jobs must
    /// release their partition exactly once.
    DoubleReclaim {
        /// Allocator slot the handle names.
        slot: usize,
        /// The (already freed) generation.
        generation: u32,
    },
    /// The handle names a slot the allocator never created.
    UnknownSlot {
        /// The out-of-range slot.
        slot: usize,
    },
    /// A simulation error that escaped job isolation (structural, not
    /// per-job).
    Sim(SimError),
}

impl fmt::Display for FaasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoClasses => write!(f, "a service needs at least one tenant class"),
            Self::BadClass { class, what } => write!(f, "tenant class {class}: {what}"),
            Self::BadConfig { what } => write!(f, "service config: {what}"),
            Self::StaleHandle { slot, current, got } => write!(
                f,
                "stale partition handle: slot {slot} is at generation {current}, handle \
                 carries {got}"
            ),
            Self::DoubleReclaim { slot, generation } => write!(
                f,
                "partition slot {slot} generation {generation} was already reclaimed"
            ),
            Self::UnknownSlot { slot } => {
                write!(f, "partition handle names unknown slot {slot}")
            }
            Self::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for FaasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for FaasError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}
