//! The service event loop: merged arrivals, admission, execution,
//! departure reclaim.
//!
//! [`run_service`] interleaves three deterministic event sources on one
//! simulated clock:
//!
//! 1. **Reclaims** — departed jobs release their partition (exactly
//!    once) and retry the ingress queue;
//! 2. **Arrivals** — the per-class [`ArrivalProcess`] streams, merged
//!    earliest-first (ties to the lowest class index);
//! 3. **Steps** — the earliest-request job executes its next step via
//!    [`ServiceExecutor`].
//!
//! Ties across sources resolve reclaim < arrival < step, so capacity
//! freed at instant *t* is visible to an arrival at *t*, and a job
//! admitted at *t* joins the scheduler before any step at *t* commits —
//! which is exactly what makes an all-arrive-at-t0 trace reproduce the
//! closed-system tenant executor byte for byte.
//!
//! Everything folds into the O(1) [`ServiceSummary`]: per-class SLO
//! counters and histograms, the global [`StreamSummary`](aps_sim::StreamSummary) step
//! totals,
//! and the makespan. Per-job records are materialized only when
//! [`ServiceConfig::keep_job_reports`] asks for them.

use crate::admission::AdmissionPolicy;
use crate::error::FaasError;
use crate::partition::{PartitionAllocator, PartitionHandle};
use crate::slo::{RejectReason, ServiceSummary, TenantSlo};
use aps_collectives::workload::arrivals::ArrivalProcess;
use aps_collectives::Workload;
use aps_cost::units::Picos;
use aps_fabric::Fabric;
use aps_matrix::Matching;
use aps_sim::record::RecordSink;
use aps_sim::{JobOutcome, RunConfig, ServiceExecutor, ServiceJobSpec, ServiceSwitching};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Builds one job's demand stream. Implemented for any
/// `FnMut(u64) -> Box<dyn Workload>`; the job id (global admission
/// counter) is the only input, so demand is a pure function of it and
/// the run replays bit-identically.
pub trait JobDemand {
    /// The demand stream for job `id`.
    fn build(&mut self, id: u64) -> Box<dyn Workload>;
}

impl<F: FnMut(u64) -> Box<dyn Workload>> JobDemand for F {
    fn build(&mut self, id: u64) -> Box<dyn Workload> {
        self(id)
    }
}

/// One tenant class: an arrival process paired with a demand generator
/// and the fabric footprint every job of the class occupies.
pub struct TenantClass {
    /// Class name, for reports.
    pub name: String,
    /// Ports each job of this class needs (its partition size).
    pub ports: usize,
    /// Base circuits of each job, in local coordinates over `ports`.
    pub base_config: Matching,
    /// Per-step base/matched choices for each job.
    pub switching: ServiceSwitching,
    /// When jobs of this class arrive.
    pub arrivals: Box<dyn ArrivalProcess>,
    /// What each job transfers once admitted.
    pub demand: Box<dyn JobDemand>,
}

impl TenantClass {
    /// A class whose every job runs the same demand; convenience over
    /// hand-writing the [`JobDemand`] closure.
    pub fn new(
        name: impl Into<String>,
        ports: usize,
        base_config: Matching,
        switching: ServiceSwitching,
        arrivals: Box<dyn ArrivalProcess>,
        demand: Box<dyn JobDemand>,
    ) -> Self {
        Self {
            name: name.into(),
            ports,
            base_config,
            switching,
            arrivals,
            demand,
        }
    }
}

/// Knobs of a service run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Step-engine configuration (shared with every closed-system
    /// executor).
    pub run: RunConfig,
    /// What happens when an arrival does not fit.
    pub admission: AdmissionPolicy,
    /// Stop offering new arrivals after this many jobs (`None` =
    /// unbounded — the arrival processes themselves must then be
    /// finite, or the run never ends).
    pub max_jobs: Option<u64>,
    /// Keep each job's full [`JobOutcome`] (including its per-step
    /// report) in the [`ServiceReport`]. Off by default: the steady
    /// state then materializes nothing per job.
    pub keep_job_reports: bool,
}

impl ServiceConfig {
    /// Paper-default step engine, reject admission, no job cap, O(1)
    /// accounting only.
    pub fn paper_defaults() -> Self {
        Self {
            run: RunConfig::paper_defaults(),
            admission: AdmissionPolicy::Reject,
            max_jobs: None,
            keep_job_reports: false,
        }
    }
}

/// A per-job record, kept only under
/// [`ServiceConfig::keep_job_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceJobRecord {
    /// Class index in the engine input.
    pub class: usize,
    /// When the job was offered (arrival instant).
    pub offered_ps: Picos,
    /// The executor's final accounting for the job.
    pub outcome: JobOutcome,
}

/// What a service run returns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    /// The O(1) fold: per-class SLO state, step totals, makespan.
    pub summary: ServiceSummary,
    /// Per-job outcomes in departure order; empty unless
    /// [`ServiceConfig::keep_job_reports`].
    pub jobs: Vec<ServiceJobRecord>,
}

/// A job offered but not yet admitted (queued or stalling its source).
struct PendingJob {
    id: u64,
    class: usize,
    offered_ps: Picos,
    workload: Box<dyn Workload>,
}

/// Arrival-side state of one class.
struct ClassState {
    /// Absolute time of the next arrival; `None` when exhausted or
    /// stalled.
    next_at: Option<Picos>,
    /// The job holding the class's source under backpressure.
    stalled: Option<PendingJob>,
}

/// Executor-slot-indexed bookkeeping the engine keeps per live job.
struct LiveJob {
    class: usize,
    handle: PartitionHandle,
    offered_ps: Picos,
}

/// Runs an open-system service to completion: see the module docs for
/// the event-loop semantics. Arrival processes are
/// [`reset`](ArrivalProcess::reset) up front, so repeated runs of the
/// same classes are bit-identical.
///
/// # Errors
///
/// Structural problems only ([`FaasError::NoClasses`],
/// [`FaasError::BadClass`]). Per-job failures — stuck ports, unroutable
/// pairs, malformed demand — are isolated into the SLO accounting
/// (`failed` counts) exactly like the tenant executor isolates tenant
/// errors.
pub fn run_service(
    fabric: &mut dyn Fabric,
    classes: &mut [TenantClass],
    cfg: &ServiceConfig,
) -> Result<ServiceReport, FaasError> {
    run_service_recorded(fabric, classes, cfg, None)
}

/// [`run_service`] with an optional [`RecordSink`] observing every
/// committed step in global execution order, each record tagged with the
/// executing job's slot — the hook deterministic replay attaches to.
///
/// # Errors
///
/// See [`run_service`].
pub fn run_service_recorded(
    fabric: &mut dyn Fabric,
    classes: &mut [TenantClass],
    cfg: &ServiceConfig,
    mut sink: Option<&mut dyn RecordSink>,
) -> Result<ServiceReport, FaasError> {
    if classes.is_empty() {
        return Err(FaasError::NoClasses);
    }
    if cfg.admission == (AdmissionPolicy::Backpressure { capacity: 0 }) {
        // A stalled job only drains through the queue, and a zero-capacity
        // queue never accepts it: the class would silently lose its whole
        // remaining arrival stream.
        return Err(FaasError::BadConfig {
            what: "backpressure needs a queue capacity of at least 1",
        });
    }
    let n = fabric.n();
    for (c, class) in classes.iter_mut().enumerate() {
        if class.ports == 0 {
            return Err(FaasError::BadClass {
                class: c,
                what: "jobs need at least one port",
            });
        }
        if class.base_config.n() != class.ports {
            return Err(FaasError::BadClass {
                class: c,
                what: "base config spans a different rank count than `ports`",
            });
        }
        class.arrivals.reset();
    }

    let mut exec = ServiceExecutor::new(n, cfg.run, cfg.keep_job_reports);
    let mut alloc = PartitionAllocator::new(n);
    let queue_cap = cfg.admission.queue_capacity();
    let mut queue: VecDeque<PendingJob> = VecDeque::new();
    let mut reclaims: BinaryHeap<Reverse<(Picos, u64, usize)>> = BinaryHeap::new();
    let mut reclaim_seq: u64 = 0;
    let mut live: Vec<Option<LiveJob>> = Vec::new();
    let mut slo: Vec<TenantSlo> = classes.iter().map(|_| TenantSlo::default()).collect();
    let mut jobs: Vec<ServiceJobRecord> = Vec::new();
    let mut makespan_ps: Picos = 0;
    let mut next_id: u64 = 0;

    let mut class_states: Vec<ClassState> = classes
        .iter_mut()
        .map(|class| ClassState {
            next_at: class.arrivals.next_gap_ps(),
            stalled: None,
        })
        .collect();

    // Records an admission into `exec`: wait-time accounting plus the
    // slot-side bookkeeping. A structurally failing admission (e.g. a
    // demand stream whose rank count disagrees with the class's ports)
    // reclaims the partition immediately and counts as a failed job.
    #[allow(clippy::too_many_arguments)]
    fn admit_job(
        exec: &mut ServiceExecutor,
        alloc: &mut PartitionAllocator,
        live: &mut Vec<Option<LiveJob>>,
        slo: &mut [TenantSlo],
        reclaims: &mut BinaryHeap<Reverse<(Picos, u64, usize)>>,
        reclaim_seq: &mut u64,
        classes: &[TenantClass],
        job: PendingJob,
        handle: PartitionHandle,
        now: Picos,
        makespan_ps: &mut Picos,
        jobs: &mut Vec<ServiceJobRecord>,
        keep: bool,
    ) {
        let c = job.class;
        let ports = alloc
            .ports(handle)
            .expect("freshly allocated partition is live")
            .to_vec();
        let spec = ServiceJobSpec {
            name: classes[c].name.clone(),
            ports,
            base_config: classes[c].base_config.clone(),
            workload: job.workload,
            switching: classes[c].switching.clone(),
        };
        slo[c].admitted += 1;
        slo[c].wait.record(now - job.offered_ps);
        match exec.admit(job.id, spec, now) {
            Ok(adm) => {
                if live.len() <= adm.slot {
                    live.resize_with(adm.slot + 1, || None);
                }
                live[adm.slot] = Some(LiveJob {
                    class: c,
                    handle,
                    offered_ps: job.offered_ps,
                });
                if !adm.has_work {
                    reclaims.push(Reverse((now, *reclaim_seq, adm.slot)));
                    *reclaim_seq += 1;
                }
            }
            Err(e) => {
                // Nothing took residence: release the partition now and
                // account the job as admitted-then-failed.
                alloc
                    .reclaim(handle)
                    .expect("failed admission reclaims its fresh partition once");
                slo[c].failed += 1;
                *makespan_ps = (*makespan_ps).max(now);
                if keep {
                    jobs.push(ServiceJobRecord {
                        class: c,
                        offered_ps: job.offered_ps,
                        outcome: JobOutcome {
                            id: job.id,
                            name: classes[c].name.clone(),
                            start_ps: now,
                            finish_ps: now,
                            steps: 0,
                            error: Some(e),
                            report: None,
                        },
                    });
                }
            }
        }
    }

    // Drains the ingress queue head-first into freed capacity, then
    // refills it from stalled (backpressured) classes in class order,
    // looping until neither makes progress.
    macro_rules! try_admissions {
        ($now:expr) => {{
            let now = $now;
            loop {
                let mut progress = false;
                while let Some(head) = queue.front() {
                    let want = classes[head.class].ports;
                    let Some(handle) = alloc.try_alloc(want) else {
                        break;
                    };
                    let job = queue.pop_front().expect("peeked head exists");
                    admit_job(
                        &mut exec,
                        &mut alloc,
                        &mut live,
                        &mut slo,
                        &mut reclaims,
                        &mut reclaim_seq,
                        classes,
                        job,
                        handle,
                        now,
                        &mut makespan_ps,
                        &mut jobs,
                        cfg.keep_job_reports,
                    );
                    progress = true;
                }
                for c in 0..classes.len() {
                    if queue.len() < queue_cap && class_states[c].stalled.is_some() {
                        let job = class_states[c].stalled.take().expect("checked");
                        slo[c].queued += 1;
                        queue.push_back(job);
                        // The source resumes: next interarrival gap is
                        // measured from the unstall instant. A gap that
                        // overflows the clock (saturated huge gaps from
                        // near-zero rates) exhausts the source.
                        class_states[c].next_at = classes[c]
                            .arrivals
                            .next_gap_ps()
                            .and_then(|g| now.checked_add(g));
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
        }};
    }

    loop {
        // Candidate events; priority reclaim < arrival < step on ties.
        let mut next: Option<(Picos, u8)> = reclaims.peek().map(|Reverse((t, _, _))| (*t, 0u8));
        let arrivals_open = cfg.max_jobs.is_none_or(|cap| next_id < cap);
        let mut arrival_class: Option<usize> = None;
        if arrivals_open {
            for (c, cs) in class_states.iter().enumerate() {
                let Some(t) = cs.next_at else { continue };
                if next.is_none_or(|(bt, _)| t < bt) {
                    next = Some((t, 1));
                    arrival_class = Some(c);
                }
            }
        }
        if let Some((t, _)) = exec.next_request_at() {
            if next.is_none_or(|(bt, _)| t < bt) {
                next = Some((t, 2));
            }
        }
        let Some((now, kind)) = next else {
            break; // arrivals exhausted, queue drained, every job removed
        };

        match kind {
            0 => {
                let Reverse((t, _, slot)) = reclaims.pop().expect("peeked reclaim exists");
                debug_assert_eq!(t, now);
                let lj = live[slot].take().expect("reclaimed job is live");
                let out = exec.remove(slot).expect("departed job occupies its slot");
                let c = lj.class;
                if out.error.is_some() {
                    slo[c].failed += 1;
                } else {
                    slo[c].completed += 1;
                    slo[c].completion.record(out.finish_ps - lj.offered_ps);
                }
                makespan_ps = makespan_ps.max(out.finish_ps);
                alloc
                    .reclaim(lj.handle)
                    .expect("departing job releases its partition exactly once");
                if cfg.keep_job_reports {
                    jobs.push(ServiceJobRecord {
                        class: c,
                        offered_ps: lj.offered_ps,
                        outcome: out,
                    });
                }
                try_admissions!(now);
            }
            1 => {
                let c = arrival_class.expect("arrival event names its class");
                let id = next_id;
                next_id += 1;
                slo[c].offered += 1;
                let workload = classes[c].demand.build(id);
                let job = PendingJob {
                    id,
                    class: c,
                    offered_ps: now,
                    workload,
                };
                let want = classes[c].ports;
                let mut stalled_source = false;
                if want > n {
                    slo[c].reject(RejectReason::TooLarge {
                        wanted: want,
                        fabric: n,
                    });
                } else if queue.is_empty() {
                    if let Some(handle) = alloc.try_alloc(want) {
                        admit_job(
                            &mut exec,
                            &mut alloc,
                            &mut live,
                            &mut slo,
                            &mut reclaims,
                            &mut reclaim_seq,
                            classes,
                            job,
                            handle,
                            now,
                            &mut makespan_ps,
                            &mut jobs,
                            cfg.keep_job_reports,
                        );
                    } else {
                        stalled_source = park(
                            job,
                            &cfg.admission,
                            queue_cap,
                            want,
                            alloc.free_ports(),
                            &mut queue,
                            &mut class_states[c],
                            &mut slo[c],
                        );
                    }
                } else {
                    // FIFO: a non-empty queue means this arrival waits
                    // behind it, even if it would fit right now.
                    stalled_source = park(
                        job,
                        &cfg.admission,
                        queue_cap,
                        want,
                        alloc.free_ports(),
                        &mut queue,
                        &mut class_states[c],
                        &mut slo[c],
                    );
                }
                if stalled_source {
                    class_states[c].next_at = None;
                } else {
                    // `checked_add`: a saturated gap (near-zero arrival
                    // rate) past the end of the u64 clock means the
                    // source never fires again.
                    class_states[c].next_at = classes[c]
                        .arrivals
                        .next_gap_ps()
                        .and_then(|g| now.checked_add(g));
                }
            }
            _ => {
                // Reborrow through the blanket `impl RecordSink for &mut S`
                // so the sink isn't held across loop iterations.
                let s = sink.as_mut().map(|s| s as &mut dyn RecordSink);
                if let Some(dep) = exec.execute_next(fabric, s) {
                    debug_assert!(
                        dep.finish_ps >= now,
                        "a departure cannot precede the step event that produced it"
                    );
                    reclaims.push(Reverse((dep.finish_ps, reclaim_seq, dep.slot)));
                    reclaim_seq += 1;
                }
            }
        }
    }

    debug_assert!(queue.is_empty(), "ingress queue drained at quiescence");
    debug_assert_eq!(exec.live_jobs(), 0, "every job departed and was removed");

    let summary = ServiceSummary {
        class_names: classes.iter().map(|c| c.name.clone()).collect(),
        tenants: slo,
        makespan_ps,
        steps: exec.stream_summary(),
    };
    Ok(ServiceReport { summary, jobs })
}

/// Parks a job that cannot be placed: queue it, stall its source, or
/// reject it, per policy — rejections fold through the typed
/// [`RejectReason`] taxonomy. Returns `true` when the class's source
/// stalls. `wanted`/`free` are the job's port demand and the free ports
/// at arrival, carried into the reject reasons.
#[allow(clippy::too_many_arguments)]
fn park(
    job: PendingJob,
    policy: &AdmissionPolicy,
    queue_cap: usize,
    wanted: usize,
    free: usize,
    queue: &mut VecDeque<PendingJob>,
    class_state: &mut ClassState,
    slo: &mut TenantSlo,
) -> bool {
    match policy {
        AdmissionPolicy::Reject => {
            slo.reject(RejectReason::PortsBusy { wanted, free });
            false
        }
        AdmissionPolicy::Queue { .. } => {
            if queue.len() < queue_cap {
                slo.queued += 1;
                queue.push_back(job);
            } else {
                slo.reject(RejectReason::QueueFull {
                    capacity: queue_cap,
                });
            }
            false
        }
        AdmissionPolicy::Backpressure { .. } => {
            if queue.len() < queue_cap {
                slo.queued += 1;
                queue.push_back(job);
                false
            } else {
                slo.backpressured += 1;
                class_state.stalled = Some(job);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::workload::arrivals::{PoissonArrivals, TraceArrivals};
    use aps_collectives::{allreduce, ScheduleStream};
    use aps_core::ConfigChoice;
    use aps_cost::units::MIB;
    use aps_cost::ReconfigModel;
    use aps_fabric::CircuitSwitch;

    fn fabric(n: usize) -> CircuitSwitch {
        CircuitSwitch::new(Matching::empty(n), ReconfigModel::constant(5e-6).unwrap())
    }

    fn class(name: &str, ports: usize, bytes: f64, gaps_ps: Vec<u64>) -> TenantClass {
        TenantClass::new(
            name,
            ports,
            Matching::shift(ports, 1).unwrap(),
            ServiceSwitching::Uniform(ConfigChoice::Matched),
            Box::new(TraceArrivals::new(gaps_ps)),
            Box::new(move |_id: u64| -> Box<dyn Workload> {
                Box::new(ScheduleStream::new(
                    allreduce::ring::build(ports, bytes).unwrap().schedule,
                ))
            }),
        )
    }

    #[test]
    fn no_classes_is_an_error() {
        let mut fab = fabric(4);
        let err = run_service(&mut fab, &mut [], &ServiceConfig::paper_defaults()).unwrap_err();
        assert_eq!(err, FaasError::NoClasses);
    }

    #[test]
    fn structurally_bad_classes_are_errors() {
        let mut fab = fabric(4);
        let mut zero = [class("z", 4, MIB, vec![0])];
        zero[0].ports = 0;
        assert!(matches!(
            run_service(&mut fab, &mut zero, &ServiceConfig::paper_defaults()),
            Err(FaasError::BadClass { class: 0, .. })
        ));
        let mut skew = [class("s", 4, MIB, vec![0])];
        skew[0].base_config = Matching::empty(2);
        assert!(matches!(
            run_service(&mut fab, &mut skew, &ServiceConfig::paper_defaults()),
            Err(FaasError::BadClass { class: 0, .. })
        ));
    }

    #[test]
    fn reject_policy_turns_away_what_does_not_fit() {
        // Three whole-fabric jobs at t = 0: the first occupies every
        // port, the other two find nothing free and are rejected.
        let mut fab = fabric(4);
        let mut classes = [class("full", 4, MIB, vec![0, 0, 0])];
        let rep = run_service(&mut fab, &mut classes, &ServiceConfig::paper_defaults()).unwrap();
        let t = &rep.summary.tenants[0];
        assert_eq!(t.offered, 3);
        assert_eq!(t.admitted, 1);
        assert_eq!(t.completed, 1);
        assert_eq!(t.rejected_ports_busy, 2);
        assert_eq!(t.rejected(), 2);
        assert!(rep.summary.makespan_ps > 0);
        assert!((t.goodput() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn queue_policy_completes_everything_in_order() {
        let mut fab = fabric(4);
        let mut classes = [class("full", 4, MIB, vec![0, 0, 0])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Queue { capacity: 8 },
            keep_job_reports: true,
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        let t = &rep.summary.tenants[0];
        assert_eq!(t.offered, 3);
        assert_eq!(t.admitted, 3);
        assert_eq!(t.completed, 3);
        assert_eq!(t.queued, 2);
        assert_eq!(t.rejected(), 0);
        assert!((t.goodput() - 1.0).abs() < 1e-12);
        // Whole-fabric jobs serialize: each starts where the previous
        // finished, in FIFO (arrival id) order.
        assert_eq!(rep.jobs.len(), 3);
        for w in rep.jobs.windows(2) {
            assert!(w[0].outcome.id < w[1].outcome.id, "FIFO departure order");
            assert_eq!(w[1].outcome.start_ps, w[0].outcome.finish_ps);
        }
        assert_eq!(
            rep.summary.makespan_ps,
            rep.jobs.last().unwrap().outcome.finish_ps
        );
        // The fold's wait histogram saw one zero-wait and two positive.
        assert_eq!(t.wait.count(), 3);
        assert_eq!(t.completion.count(), 3);
    }

    #[test]
    fn queue_overflow_rejects_with_typed_reason() {
        let mut fab = fabric(4);
        let mut classes = [class("full", 4, MIB, vec![0, 0, 0])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Queue { capacity: 1 },
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        let t = &rep.summary.tenants[0];
        assert_eq!(t.queued, 1);
        assert_eq!(t.rejected_queue_full, 1);
        assert_eq!(t.completed, 2);
    }

    #[test]
    fn backpressure_stalls_the_source_and_resumes_it() {
        let mut fab = fabric(4);
        let mut classes = [class("full", 4, MIB, vec![0, 0, 0, 0])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Backpressure { capacity: 1 },
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        let t = &rep.summary.tenants[0];
        // Job 0 runs, job 1 queues, job 2 stalls the source; each later
        // departure drains the stall and re-opens arrivals, so nothing
        // is ever lost.
        assert_eq!(t.offered, 4);
        assert_eq!(t.completed, 4);
        assert_eq!(t.rejected(), 0);
        assert!(t.backpressured >= 1, "the source stalled at least once");
    }

    #[test]
    fn failure_with_staggered_arrivals_keeps_the_clock_monotone() {
        // Job 0 is admitted at t = 0 onto a stuck fabric and fails at its
        // first step's *request instant* (barrier + α after t = 0). Job 1
        // arrives in that window (gap 1000 ps) and queues. The failure
        // departure must not reclaim in the past: job 1's admission wait
        // is `now - offered_ps` and would underflow if the clock ran
        // backwards to the victim's pre-failure `gpu_free`.
        let mut fab = fabric(4);
        fab.stick_port(0).unwrap();
        let mut classes = [class("storm", 4, MIB, vec![0, 1_000])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Queue { capacity: 4 },
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        let t = &rep.summary.tenants[0];
        assert_eq!(t.offered, 2);
        assert_eq!(t.admitted, 2, "the failed job released its partition");
        assert_eq!(t.failed, 2);
        assert_eq!(t.wait.count(), 2);
        // Job 1 waited from its arrival to job 0's failure departure — a
        // small positive span, not a wrapped-around u64.
        assert!(t.wait.max_ps() > 0);
        assert!(
            t.wait.max_ps() < 1_000_000_000,
            "wait {} ps looks like an underflow",
            t.wait.max_ps()
        );
        assert!(rep.summary.makespan_ps >= 1_000);
    }

    #[test]
    fn backpressure_with_zero_capacity_is_a_config_error() {
        // capacity 0 can never drain a stalled job (the refill needs a
        // free queue slot), so the engine refuses it up front instead of
        // silently losing the class's arrival stream.
        let mut fab = fabric(4);
        let mut classes = [class("z", 4, MIB, vec![0, 0])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Backpressure { capacity: 0 },
            ..ServiceConfig::paper_defaults()
        };
        let err = run_service(&mut fab, &mut classes, &cfg).unwrap_err();
        assert!(matches!(err, FaasError::BadConfig { .. }), "{err}");
    }

    #[test]
    fn interarrival_gap_past_the_clock_end_exhausts_the_source() {
        // A gap that would overflow the u64 picosecond clock means "never
        // again": the source is exhausted rather than wrapping into the
        // past (saturated gaps come from near-zero Poisson rates).
        let mut fab = fabric(4);
        let mut classes = [class("slow", 4, MIB, vec![1_000, u64::MAX])];
        let rep = run_service(&mut fab, &mut classes, &ServiceConfig::paper_defaults()).unwrap();
        let t = &rep.summary.tenants[0];
        assert_eq!(t.offered, 1, "the overflowing second arrival never fires");
        assert_eq!(t.completed, 1);
    }

    #[test]
    fn oversized_jobs_are_rejected_up_front() {
        let mut fab = fabric(4);
        let mut classes = [class("huge", 8, MIB, vec![0, 7])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Backpressure { capacity: 4 },
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        let t = &rep.summary.tenants[0];
        assert_eq!(t.offered, 2);
        assert_eq!(t.rejected_too_large, 2);
        assert_eq!(t.completed, 0);
        assert_eq!(rep.summary.makespan_ps, 0);
        assert_eq!(t.goodput(), 0.0);
    }

    #[test]
    fn queue_is_fifo_with_head_of_line_blocking() {
        // Class "big" wants 6 of 8 ports; class "small" wants 2. A
        // queued big job blocks the small one behind it even though two
        // ports sit free the whole time — strict FIFO admission.
        let mut fab = fabric(8);
        let mut classes = [
            class("big", 6, MIB, vec![0, 0]),
            class("small", 2, MIB / 4.0, vec![0]),
        ];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Queue { capacity: 4 },
            keep_job_reports: true,
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        assert_eq!(rep.summary.tenants[0].completed, 2);
        assert_eq!(rep.summary.tenants[1].completed, 1);
        let small = rep.jobs.iter().find(|j| j.class == 1).unwrap();
        let first_big = rep
            .jobs
            .iter()
            .filter(|j| j.class == 0)
            .map(|j| j.outcome.finish_ps)
            .min()
            .unwrap();
        assert_eq!(small.offered_ps, 0);
        assert_eq!(
            small.outcome.start_ps, first_big,
            "the small job waited behind the queued big one"
        );
    }

    #[test]
    fn max_jobs_caps_offered_arrivals() {
        let mut fab = fabric(4);
        let mut classes = [class("full", 4, MIB, vec![0; 10])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Queue { capacity: 16 },
            max_jobs: Some(3),
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        assert_eq!(rep.summary.offered(), 3);
        assert_eq!(rep.summary.completed(), 3);
    }

    #[test]
    fn poisson_service_reruns_bit_identically() {
        let mk = || {
            [
                TenantClass::new(
                    "a",
                    4,
                    Matching::shift(4, 1).unwrap(),
                    ServiceSwitching::Uniform(ConfigChoice::Matched),
                    Box::new(PoissonArrivals::new(2.0e6, Some(12), 7).unwrap()),
                    Box::new(|_id: u64| -> Box<dyn Workload> {
                        Box::new(ScheduleStream::new(
                            allreduce::halving_doubling::build(4, MIB).unwrap().schedule,
                        ))
                    }) as Box<dyn JobDemand>,
                ),
                TenantClass::new(
                    "b",
                    2,
                    Matching::shift(2, 1).unwrap(),
                    ServiceSwitching::Uniform(ConfigChoice::Base),
                    Box::new(PoissonArrivals::new(4.0e6, Some(12), 11).unwrap()),
                    Box::new(|_id: u64| -> Box<dyn Workload> {
                        Box::new(ScheduleStream::new(
                            allreduce::halving_doubling::build(2, 2.0 * MIB)
                                .unwrap()
                                .schedule,
                        ))
                    }) as Box<dyn JobDemand>,
                ),
            ]
        };
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Queue { capacity: 8 },
            keep_job_reports: true,
            ..ServiceConfig::paper_defaults()
        };
        let mut fab1 = fabric(8);
        let rep1 = run_service(&mut fab1, &mut mk(), &cfg).unwrap();
        let mut fab2 = fabric(8);
        let rep2 = run_service(&mut fab2, &mut mk(), &cfg).unwrap();
        assert_eq!(rep1, rep2, "same classes, same seed, same everything");
        assert_eq!(rep1.summary.offered(), 24);
        // And the arrival processes reset on entry, so reusing the very
        // same class array replays too.
        let mut classes = mk();
        let mut fab3 = fabric(8);
        let rep3 = run_service(&mut fab3, &mut classes, &cfg).unwrap();
        let mut fab4 = fabric(8);
        let rep4 = run_service(&mut fab4, &mut classes, &cfg).unwrap();
        assert_eq!(rep3, rep4, "reset-on-entry makes reruns replayable");
        assert_eq!(rep1, rep3);
    }

    #[test]
    fn summary_steps_fold_matches_job_reports() {
        let mut fab = fabric(4);
        let mut classes = [class("full", 4, MIB, vec![0, 0])];
        let cfg = ServiceConfig {
            admission: AdmissionPolicy::Queue { capacity: 4 },
            keep_job_reports: true,
            ..ServiceConfig::paper_defaults()
        };
        let rep = run_service(&mut fab, &mut classes, &cfg).unwrap();
        let steps: usize = rep.jobs.iter().map(|j| j.outcome.steps).sum();
        assert_eq!(rep.summary.steps.steps, steps);
        assert!(steps > 0);
        let fv = rep.summary.fairness_vector();
        assert_eq!(fv, vec![1.0]);
    }
}
