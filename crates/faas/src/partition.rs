//! Port-partition allocation with slot + generation handles.
//!
//! Every admitted job owns a contiguous *set* (not necessarily a
//! contiguous range) of the fabric's ports for its lifetime. The
//! allocator hands out a [`PartitionHandle`] — a slot index plus a
//! generation counter, the classic defense against use-after-free in
//! handle tables (cf. FFI handle-table designs): reclaiming a partition
//! keeps the slot's generation, and re-allocating the slot bumps it, so
//! a handle from an earlier tenancy can never free the current tenant's
//! ports. Double reclaims and stale handles surface as typed
//! [`FaasError`]s.
//!
//! Allocation is deterministic: the lowest-numbered free ports win, and
//! freed slots are reused LIFO — the same op sequence always produces
//! the same handles and port sets, on any machine.

use crate::error::FaasError;

/// A capability naming one live partition: allocator slot + generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionHandle {
    slot: u32,
    generation: u32,
}

impl PartitionHandle {
    /// The allocator slot this handle names.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The slot incarnation this handle belongs to.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// One allocator slot: the current incarnation and its port set.
#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    live: bool,
    ports: Vec<usize>,
}

/// Deterministic first-fit port-partition allocator over an `n`-port
/// fabric.
///
/// ```
/// use aps_faas::PartitionAllocator;
///
/// let mut alloc = PartitionAllocator::new(8);
/// let a = alloc.try_alloc(4).unwrap();
/// assert_eq!(alloc.ports(a).unwrap(), &[0, 1, 2, 3]);
/// let b = alloc.try_alloc(4).unwrap();
/// assert_eq!(alloc.ports(b).unwrap(), &[4, 5, 6, 7]);
/// assert!(alloc.try_alloc(1).is_none(), "fabric is full");
/// alloc.reclaim(a).unwrap();
/// let c = alloc.try_alloc(2).unwrap();
/// assert_eq!(alloc.ports(c).unwrap(), &[0, 1], "lowest free ports win");
/// assert!(alloc.reclaim(a).is_err(), "a's slot was re-allocated: stale");
/// ```
#[derive(Debug, Clone)]
pub struct PartitionAllocator {
    /// `port_free[p]` — whether global port `p` is unallocated.
    port_free: Vec<bool>,
    free_ports: usize,
    slots: Vec<Slot>,
    /// Vacant slot indices, reused LIFO.
    free_slots: Vec<u32>,
    live: usize,
}

impl PartitionAllocator {
    /// An allocator with all `n` ports free.
    pub fn new(n: usize) -> Self {
        Self {
            port_free: vec![true; n],
            free_ports: n,
            slots: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
        }
    }

    /// Total fabric ports.
    pub fn n(&self) -> usize {
        self.port_free.len()
    }

    /// Ports not owned by any live partition.
    pub fn free_ports(&self) -> usize {
        self.free_ports
    }

    /// Number of live partitions.
    pub fn live_partitions(&self) -> usize {
        self.live
    }

    /// Claims the `want` lowest-numbered free ports as a new partition.
    /// Returns `None` (claiming nothing) when fewer than `want` ports are
    /// free or `want` is zero.
    pub fn try_alloc(&mut self, want: usize) -> Option<PartitionHandle> {
        if want == 0 || want > self.free_ports {
            return None;
        }
        let mut ports = Vec::with_capacity(want);
        for (p, free) in self.port_free.iter_mut().enumerate() {
            if *free {
                *free = false;
                ports.push(p);
                if ports.len() == want {
                    break;
                }
            }
        }
        debug_assert_eq!(ports.len(), want);
        self.free_ports -= want;
        self.live += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                let entry = &mut self.slots[s as usize];
                entry.generation += 1;
                entry.live = true;
                entry.ports = ports;
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slot count fits u32");
                self.slots.push(Slot {
                    generation: 0,
                    live: true,
                    ports,
                });
                s
            }
        };
        Some(PartitionHandle {
            slot,
            generation: self.slots[slot as usize].generation,
        })
    }

    /// The global ports of a live partition.
    ///
    /// # Errors
    ///
    /// [`FaasError::UnknownSlot`], [`FaasError::StaleHandle`] (wrong
    /// incarnation), or [`FaasError::DoubleReclaim`] (right incarnation,
    /// already freed).
    pub fn ports(&self, handle: PartitionHandle) -> Result<&[usize], FaasError> {
        let slot = self.check(handle)?;
        Ok(&slot.ports)
    }

    /// Releases a live partition's ports. Exactly-once: a second reclaim
    /// of the same handle is a typed [`FaasError::DoubleReclaim`], and a
    /// handle from an earlier incarnation of the slot is a
    /// [`FaasError::StaleHandle`]. Returns the number of ports freed.
    ///
    /// # Errors
    ///
    /// See above; on error nothing is freed.
    pub fn reclaim(&mut self, handle: PartitionHandle) -> Result<usize, FaasError> {
        self.check(handle)?;
        let entry = &mut self.slots[handle.slot()];
        let freed = entry.ports.len();
        for &p in &entry.ports {
            debug_assert!(!self.port_free[p]);
            self.port_free[p] = true;
        }
        entry.live = false;
        entry.ports.clear();
        self.free_ports += freed;
        self.live -= 1;
        self.free_slots.push(handle.slot);
        Ok(freed)
    }

    /// Validates a handle against the slot table.
    fn check(&self, handle: PartitionHandle) -> Result<&Slot, FaasError> {
        let entry = self
            .slots
            .get(handle.slot())
            .ok_or(FaasError::UnknownSlot {
                slot: handle.slot(),
            })?;
        if handle.generation != entry.generation {
            return Err(FaasError::StaleHandle {
                slot: handle.slot(),
                current: entry.generation,
                got: handle.generation,
            });
        }
        if !entry.live {
            return Err(FaasError::DoubleReclaim {
                slot: handle.slot(),
                generation: handle.generation,
            });
        }
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_takes_lowest_free_ports() {
        let mut a = PartitionAllocator::new(6);
        let h1 = a.try_alloc(2).unwrap();
        let h2 = a.try_alloc(3).unwrap();
        assert_eq!(a.ports(h1).unwrap(), &[0, 1]);
        assert_eq!(a.ports(h2).unwrap(), &[2, 3, 4]);
        assert_eq!(a.free_ports(), 1);
        assert!(a.try_alloc(2).is_none());
        assert_eq!(a.free_ports(), 1, "failed alloc claims nothing");
    }

    #[test]
    fn reclaim_is_exactly_once() {
        let mut a = PartitionAllocator::new(4);
        let h = a.try_alloc(4).unwrap();
        assert_eq!(a.reclaim(h).unwrap(), 4);
        assert_eq!(a.free_ports(), 4);
        // Second reclaim of the same incarnation: typed double-reclaim.
        assert_eq!(
            a.reclaim(h),
            Err(FaasError::DoubleReclaim {
                slot: 0,
                generation: 0
            })
        );
        assert_eq!(a.free_ports(), 4, "double reclaim frees nothing");
    }

    #[test]
    fn generation_catches_stale_handles() {
        let mut a = PartitionAllocator::new(4);
        let old = a.try_alloc(2).unwrap();
        a.reclaim(old).unwrap();
        let new = a.try_alloc(2).unwrap();
        assert_eq!(old.slot(), new.slot(), "slot is reused LIFO");
        assert_ne!(old.generation(), new.generation());
        assert_eq!(
            a.reclaim(old),
            Err(FaasError::StaleHandle {
                slot: 0,
                current: 1,
                got: 0
            })
        );
        assert!(a.ports(old).is_err());
        assert_eq!(a.ports(new).unwrap(), &[0, 1]);
    }

    #[test]
    fn unknown_slots_are_rejected() {
        let mut a = PartitionAllocator::new(4);
        let h = a.try_alloc(1).unwrap();
        let mut b = PartitionAllocator::new(4);
        assert_eq!(b.reclaim(h), Err(FaasError::UnknownSlot { slot: 0 }));
        let _ = a;
    }

    #[test]
    fn zero_sized_partitions_are_refused() {
        let mut a = PartitionAllocator::new(4);
        assert!(a.try_alloc(0).is_none());
    }
}
