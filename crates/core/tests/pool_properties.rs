//! Property-based tests for the multi-base and multi-port extensions.

use aps_collectives::multiport::mirrored_ring_allreduce;
use aps_core::multibase::build_multibase;
use aps_core::multiport::build_multiport;
use aps_core::objective::ReconfigAccounting;
use aps_cost::{CostParams, ReconfigModel};
use aps_flow::solver::ThroughputSolver;
use aps_matrix::Matching;
use aps_topology::{builders, Topology};
use proptest::prelude::*;

fn random_shift_schedule(n: usize, shifts: &[usize], bytes: &[f64]) -> aps_collectives::Schedule {
    let steps = shifts
        .iter()
        .zip(bytes)
        .map(|(&k, &b)| aps_collectives::Step {
            matching: Matching::shift(n, (k % (n - 1)) + 1).unwrap(),
            bytes_per_pair: b,
        })
        .collect();
    aps_collectives::Schedule::new(
        n,
        aps_collectives::CollectiveKind::Composite,
        "random-shifts",
        steps,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn larger_base_pools_weakly_dominate(
        shifts in proptest::collection::vec(1usize..15, 1..12),
        bytes in proptest::collection::vec(1e2f64..1e8, 12),
        alpha_r in 1e-7f64..1e-3,
    ) {
        let n = 16;
        let schedule = random_shift_schedule(n, &shifts, &bytes[..shifts.len()]);
        let r1 = builders::ring_unidirectional(n).unwrap();
        let r3 = builders::coprime_rings(n, &[3]).unwrap();
        let r7 = builders::coprime_rings(n, &[7]).unwrap();
        let params = CostParams::paper_defaults();
        let reconfig = ReconfigModel::constant(alpha_r).unwrap();
        let acc = ReconfigAccounting::PaperConservative;
        let mut last = f64::INFINITY;
        // Pools grow by extension: {1} ⊆ {1,3} ⊆ {1,3,7}; optimal cost must
        // be non-increasing (start base 0 is in every pool).
        for pool in [vec![&r1], vec![&r1, &r3], vec![&r1, &r3, &r7]] {
            let mb = build_multibase(&pool, &schedule, params, reconfig,
                ThroughputSolver::ForcedPath, 0).unwrap();
            let (choices, cost) = mb.optimize(acc).unwrap();
            prop_assert!(cost <= last + 1e-12, "pool of {} worse: {cost} > {last}", pool.len());
            // DP output must price identically through the evaluator.
            let priced = mb.evaluate(&choices, acc).unwrap();
            prop_assert!((priced - cost).abs() < 1e-12 * (1.0 + cost));
            last = cost;
        }
    }

    #[test]
    fn multiport_optimum_dominates_pure_policies(
        m in 1e3f64..1e9,
        alpha_r in 1e-7f64..1e-3,
    ) {
        let n = 8;
        let mut base = Topology::new(n, "dual-ring");
        for i in 0..n {
            base.add_link(i, (i + 1) % n, 0.5).unwrap();
            base.add_link(i, (i + n - 1) % n, 0.5).unwrap();
        }
        let mp = mirrored_ring_allreduce(n, m).unwrap();
        let p = build_multiport(
            &base,
            &mp,
            ThroughputSolver::ForcedPath,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap();
        let s = p.num_steps();
        let (flags, opt) = p.optimize(ReconfigAccounting::PaperConservative);
        let all_base = p.evaluate(&vec![false; s]).unwrap();
        let all_matched = p.evaluate(&vec![true; s]).unwrap();
        prop_assert!(opt <= all_base + 1e-12);
        prop_assert!(opt <= all_matched + 1e-12);
        prop_assert!((p.evaluate(&flags).unwrap() - opt).abs() < 1e-12 * (1.0 + opt));
    }

    #[test]
    fn multiport_and_singleport_agree_for_one_plane(
        shifts in proptest::collection::vec(1usize..7, 1..8),
        bytes in proptest::collection::vec(1e3f64..1e7, 8),
        alpha_r in 1e-7f64..1e-4,
    ) {
        // A 1-plane multi-port problem is the ordinary problem: the DP
        // optima must coincide.
        let n = 8;
        let schedule = random_shift_schedule(n, &shifts, &bytes[..shifts.len()]);
        let base = builders::ring_unidirectional(n).unwrap();
        let params = CostParams::paper_defaults();
        let reconfig = ReconfigModel::constant(alpha_r).unwrap();
        let mp = aps_collectives::multiport::MultiPortSchedule::mirrored(
            std::slice::from_ref(&schedule),
        ).unwrap();
        let mpp = build_multiport(&base, &mp, ThroughputSolver::ForcedPath, params, reconfig)
            .unwrap();
        let (_, mp_cost) = mpp.optimize(ReconfigAccounting::PaperConservative);

        let mut cache = aps_flow::solver::ThetaCache::new(&base, ThroughputSolver::ForcedPath);
        let sp = aps_core::SwitchingProblem::build(&base, &schedule, &mut cache, params, reconfig)
            .unwrap();
        let (_, sp_report) =
            aps_core::dp::optimize(&sp, ReconfigAccounting::PaperConservative).unwrap();
        prop_assert!(
            (mp_cost - sp_report.total_s()).abs() < 1e-12 * (1.0 + mp_cost),
            "multiport {mp_cost} vs single {}", sp_report.total_s()
        );
    }
}
