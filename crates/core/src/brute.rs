//! Exhaustive reference solver: enumerates all `2^s` schedules.
//!
//! Exponential by construction — only usable for small step counts — and
//! kept solely to certify the DP solver (unit tests and proptest compare
//! them on every instance).

use crate::assignment::{ConfigChoice, SwitchSchedule};
use crate::error::CoreError;
use crate::objective::{evaluate, CostReport, ReconfigAccounting};
use crate::problem::SwitchingProblem;

/// Hard cap on the enumerable step count (`2^20` schedules).
pub const MAX_EXHAUSTIVE_STEPS: usize = 20;

/// Finds the optimum by enumeration.
///
/// # Errors
///
/// Fails when the problem has more than [`MAX_EXHAUSTIVE_STEPS`] steps.
pub fn optimize_exhaustive(
    problem: &SwitchingProblem,
    accounting: ReconfigAccounting,
) -> Result<(SwitchSchedule, CostReport), CoreError> {
    let s = problem.num_steps();
    if s > MAX_EXHAUSTIVE_STEPS {
        return Err(CoreError::TooManySteps {
            steps: s,
            limit: MAX_EXHAUSTIVE_STEPS,
        });
    }
    let mut best: Option<(SwitchSchedule, CostReport)> = None;
    for bits in 0u64..(1u64 << s) {
        let choices: Vec<ConfigChoice> = (0..s)
            .map(|i| {
                if bits >> i & 1 == 1 {
                    ConfigChoice::Matched
                } else {
                    ConfigChoice::Base
                }
            })
            .collect();
        let schedule = SwitchSchedule::new(choices);
        let report = evaluate(problem, &schedule, accounting)?;
        let better = match &best {
            None => true,
            Some((_, b)) => report.total_s() < b.total_s(),
        };
        if better {
            best = Some((schedule, report));
        }
    }
    Ok(best.expect("at least the all-base schedule was evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_cost::{CostParams, ReconfigModel};
    use aps_flow::solver::{ThetaCache, ThroughputSolver};
    use aps_topology::builders;

    #[test]
    fn refuses_large_problems() {
        let topo = builders::ring_unidirectional(4).unwrap();
        let c = allreduce::ring::build(64, 1e6).unwrap(); // 126 steps
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let topo64 = builders::ring_unidirectional(64).unwrap();
        let mut cache64 = ThetaCache::new(&topo64, ThroughputSolver::ForcedPath);
        let _ = (&topo, &mut cache);
        let p = SwitchingProblem::build(
            &topo64,
            &c.schedule,
            &mut cache64,
            CostParams::paper_defaults(),
            ReconfigModel::constant(1e-6).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            optimize_exhaustive(&p, Default::default()),
            Err(CoreError::TooManySteps { .. })
        ));
    }
}
