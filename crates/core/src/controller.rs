//! The open policy abstraction: a [`Controller`] observes one step at a
//! time — the step's demand (bytes, base-topology congestion `θ`, hop count
//! `ℓ`) and the fabric's state (the previous step's configuration choice) —
//! and answers the paper's central question for that step: does the fabric
//! *bend to the collective* (reconfigure, pay `α_r`) or stay put?
//!
//! Everything that chooses circuit configurations in this workspace is a
//! controller. The closed [`crate::policies::Policy`] enum, the sweep
//! engine, the simulator's adaptive runs and the multi-tenant scenario
//! planner all route through this trait, so a new scheduling idea is one
//! `impl Controller` away from every harness in the repo.
//!
//! Five controllers ship with the crate:
//!
//! | controller | `name()` | behavior |
//! |---|---|---|
//! | [`Static`] | `static` | never reconfigure (the §3.4 static-base baseline) |
//! | [`AlwaysReconfigure`] | `bvn` | reconfigure every step (the naive BvN schedule) |
//! | [`Threshold`] | `threshold` | per-step standalone gain vs worst-case `α_r` (§4 heuristic) |
//! | [`DpPlanned`] | `opt` | the exact eq. (7) optimum via [`crate::dp::optimize`] |
//! | [`Greedy`] | `greedy` | online myopic rule: cheapest next step given the fabric's state |
//!
//! The trait is object-safe: harnesses hold `&dyn Controller` (or
//! `Box<dyn Controller>`) and controllers are `Send + Sync`, so one
//! instance can serve a whole [`aps_par::Pool`].

use crate::assignment::{ConfigChoice, SwitchSchedule};
use crate::dp;
use crate::error::CoreError;
use crate::objective::{reconfig_charge, step_run_cost, ReconfigAccounting};
use crate::problem::SwitchingProblem;
use aps_cost::steptable::StepCosts;

/// Decision order shared with the DP trellis: `Base` first, so strict
/// `<`-improvement tie-breaks toward staying on the base topology exactly
/// like [`crate::dp::optimize`] does.
const STATES: [ConfigChoice; 2] = [ConfigChoice::Base, ConfigChoice::Matched];

/// What a controller sees before deciding step `step`: the observable
/// problem window (demand and pricing), the accounting rule in force, and
/// the fabric state it would transition from.
///
/// Materialized runs observe the *whole* problem, so `step` doubles as
/// the global step number. Streaming runs (`aps-sim`'s workload
/// executors) observe only a short trailing window of the stream: `step`
/// then indexes the window while [`StepObservation::stream_step`] carries
/// the global position — controllers must use `stream_step` whenever they
/// talk *about* a step (e.g. in [`Controller::explain`] rationales) and
/// `step` whenever they index `problem.steps`.
#[derive(Debug, Clone, Copy)]
pub struct StepObservation<'a> {
    /// The eq. (7) instance (or streaming window) being executed.
    pub problem: &'a SwitchingProblem,
    /// How reconfiguration events are priced.
    pub accounting: ReconfigAccounting,
    /// Index of the step being decided within `problem.steps`.
    pub step: usize,
    /// The previous step's choice — the configuration the fabric currently
    /// holds (`ConfigChoice::Base` before the first step, `x₀ = 1`).
    pub prev: ConfigChoice,
    /// Global index of the step in the demand stream; equals `step` for
    /// materialized runs.
    pub stream_step: usize,
}

impl<'a> StepObservation<'a> {
    /// A materialized-run observation: `step` indexes the full problem
    /// and is also the global step number.
    pub fn new(
        problem: &'a SwitchingProblem,
        accounting: ReconfigAccounting,
        step: usize,
        prev: ConfigChoice,
    ) -> Self {
        Self {
            problem,
            accounting,
            step,
            prev,
            stream_step: step,
        }
    }

    /// The same observation repositioned in a longer stream (streaming
    /// executors observe a window at global position `stream_step`).
    pub fn at_stream_step(mut self, stream_step: usize) -> Self {
        self.stream_step = stream_step;
        self
    }

    /// The observed step's demand: bytes, `θ`, `ℓ` and its matching.
    pub fn costs(&self) -> &'a StepCosts {
        &self.problem.steps[self.step]
    }

    /// Marginal cost of running the observed step under `choice` from the
    /// observed fabric state: run cost plus the reconfiguration charge of
    /// the transition.
    pub fn marginal_cost(&self, choice: ConfigChoice) -> f64 {
        step_run_cost(self.problem, self.step, choice)
            + reconfig_charge(self.problem, self.accounting, self.prev, choice, self.step)
    }
}

/// A circuit-switching controller: the open face of the paper's adaptive
/// vision. See the [module docs](self) for the shipped implementations.
pub trait Controller: Send + Sync {
    /// Stable name, used to label bench cells, traces and reports.
    fn name(&self) -> &str;

    /// Decides how the observed step runs, given the fabric state in
    /// `obs.prev`. Must be deterministic: the same observation always
    /// produces the same choice (the workspace-wide `APS_THREADS`
    /// bit-identity guarantee depends on it).
    fn decide(&self, obs: &StepObservation<'_>) -> ConfigChoice;

    /// Produces a whole switch schedule by folding [`Controller::decide`]
    /// over the steps, threading each decision into the next observation.
    /// Planning controllers (e.g. [`DpPlanned`]) may override this with a
    /// global solve.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from overriding implementations; the
    /// default fold is infallible.
    fn plan(
        &self,
        problem: &SwitchingProblem,
        accounting: ReconfigAccounting,
    ) -> Result<SwitchSchedule, CoreError> {
        let mut prev = ConfigChoice::Base;
        let mut choices = Vec::with_capacity(problem.num_steps());
        for step in 0..problem.num_steps() {
            let choice = self.decide(&StepObservation::new(problem, accounting, step, prev));
            choices.push(choice);
            prev = choice;
        }
        Ok(SwitchSchedule::new(choices))
    }

    /// One-line rationale for a decision, recorded in simulator traces.
    /// The default names the controller and the choice; implementations
    /// may add the quantities they compared.
    fn explain(&self, obs: &StepObservation<'_>, choice: ConfigChoice) -> String {
        format!(
            "{}: step {} runs {}",
            self.name(),
            obs.stream_step,
            choice_word(choice)
        )
    }
}

/// References forward to the referent, so harnesses can hold borrowed
/// controllers (e.g. the `shipped()` statics) wherever an owned
/// `impl Controller` is expected.
impl<C: Controller + ?Sized> Controller for &C {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&self, obs: &StepObservation<'_>) -> ConfigChoice {
        (**self).decide(obs)
    }

    fn plan(
        &self,
        problem: &SwitchingProblem,
        accounting: ReconfigAccounting,
    ) -> Result<SwitchSchedule, CoreError> {
        (**self).plan(problem, accounting)
    }

    fn explain(&self, obs: &StepObservation<'_>, choice: ConfigChoice) -> String {
        (**self).explain(obs, choice)
    }
}

fn choice_word(choice: ConfigChoice) -> &'static str {
    match choice {
        ConfigChoice::Base => "on base",
        ConfigChoice::Matched => "matched",
    }
}

/// Never reconfigure: every step runs on the base topology `G` (the
/// "static ring" baseline of §3.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct Static;

impl Controller for Static {
    fn name(&self) -> &str {
        "static"
    }

    fn decide(&self, _obs: &StepObservation<'_>) -> ConfigChoice {
        ConfigChoice::Base
    }
}

/// Reconfigure before every step to match its pattern — the naive BvN
/// schedule baseline (the collective's own matchings *are* its BvN
/// decomposition, applied unconditionally).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysReconfigure;

impl Controller for AlwaysReconfigure {
    fn name(&self) -> &str {
        "bvn"
    }

    fn decide(&self, _obs: &StepObservation<'_>) -> ConfigChoice {
        ConfigChoice::Matched
    }
}

/// The §4 per-step threshold heuristic: reconfigure iff the step's
/// *standalone* gain `β·mᵢ·(1/θᵢ − 1) + δ·(ℓᵢ − 1)` exceeds the
/// worst-case reconfiguration delay. Ignores schedule context (the cost of
/// returning to base, consecutive-matched savings), hence suboptimal — by
/// how much is quantified in the A1 ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Threshold;

impl Threshold {
    /// The step's standalone reconfiguration gain in seconds.
    fn gain(obs: &StepObservation<'_>) -> f64 {
        let p = &obs.problem.params;
        let s = obs.costs();
        p.beta_s_per_byte * s.bytes * (1.0 / s.theta_base - 1.0)
            + p.delta_s * (s.ell_base as f64 - 1.0).max(0.0)
    }

    /// The worst-case delay the gain is compared against.
    fn bar(obs: &StepObservation<'_>) -> f64 {
        obs.problem.reconfig.worst_case_delay_s(obs.problem.n)
    }
}

impl Controller for Threshold {
    fn name(&self) -> &str {
        "threshold"
    }

    fn decide(&self, obs: &StepObservation<'_>) -> ConfigChoice {
        if Self::gain(obs) > Self::bar(obs) {
            ConfigChoice::Matched
        } else {
            ConfigChoice::Base
        }
    }

    fn explain(&self, obs: &StepObservation<'_>, choice: ConfigChoice) -> String {
        format!(
            "threshold: step {} runs {} (standalone gain {:.3e} s vs α_r {:.3e} s)",
            obs.stream_step,
            choice_word(choice),
            Self::gain(obs),
            Self::bar(obs),
        )
    }
}

/// The exact eq. (7) optimum. [`Controller::plan`] delegates to the
/// `O(s)` dynamic program ([`crate::dp::optimize`]) — bit-identical to the
/// pre-trait planning path. [`Controller::decide`] answers online by
/// solving the *suffix* of the trellis from the observed fabric state
/// (principle of optimality), so stepping the decisions forward also
/// realizes an optimal-cost schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpPlanned;

impl Controller for DpPlanned {
    fn name(&self) -> &str {
        "opt"
    }

    fn decide(&self, obs: &StepObservation<'_>) -> ConfigChoice {
        let p = obs.problem;
        let s = p.num_steps();
        // v[state] = optimal cost of steps step+1‥s given step ran in `state`.
        let mut v = [0.0f64; 2];
        for j in ((obs.step + 1)..s).rev() {
            let mut w = [f64::INFINITY; 2];
            for (pi, &prev) in STATES.iter().enumerate() {
                for (ci, &cur) in STATES.iter().enumerate() {
                    let cand = step_run_cost(p, j, cur)
                        + reconfig_charge(p, obs.accounting, prev, cur, j)
                        + v[ci];
                    if cand < w[pi] {
                        w[pi] = cand;
                    }
                }
            }
            v = w;
        }
        let mut best = (f64::INFINITY, ConfigChoice::Base);
        for (ci, &cur) in STATES.iter().enumerate() {
            let cand = obs.marginal_cost(cur) + v[ci];
            if cand < best.0 {
                best = (cand, cur);
            }
        }
        best.1
    }

    fn plan(
        &self,
        problem: &SwitchingProblem,
        accounting: ReconfigAccounting,
    ) -> Result<SwitchSchedule, CoreError> {
        dp::optimize(problem, accounting).map(|(schedule, _)| schedule)
    }

    fn explain(&self, obs: &StepObservation<'_>, choice: ConfigChoice) -> String {
        format!(
            "opt: step {} runs {} (optimal completion of the remaining suffix)",
            obs.stream_step,
            choice_word(choice)
        )
    }
}

/// Online myopic controller: runs each step the cheapest way *given the
/// fabric's current state*, i.e. minimizes run cost plus the actual
/// transition charge (ties stay on base). Unlike [`Threshold`] it sees the
/// real `α_r` accounting and the previous configuration; unlike
/// [`DpPlanned`] it never looks ahead, so it can enter a matched
/// configuration without anticipating the cost of leaving it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Controller for Greedy {
    fn name(&self) -> &str {
        "greedy"
    }

    fn decide(&self, obs: &StepObservation<'_>) -> ConfigChoice {
        let mut best = (f64::INFINITY, ConfigChoice::Base);
        for &cur in &STATES {
            let cand = obs.marginal_cost(cur);
            if cand < best.0 {
                best = (cand, cur);
            }
        }
        best.1
    }

    fn explain(&self, obs: &StepObservation<'_>, choice: ConfigChoice) -> String {
        format!(
            "greedy: step {} runs {} (marginal base {:.3e} s vs matched {:.3e} s)",
            obs.stream_step,
            choice_word(choice),
            obs.marginal_cost(ConfigChoice::Base),
            obs.marginal_cost(ConfigChoice::Matched),
        )
    }
}

/// Every controller shipped with the crate, in presentation order.
pub fn shipped() -> [&'static dyn Controller; 5] {
    [&Static, &AlwaysReconfigure, &Threshold, &DpPlanned, &Greedy]
}

/// Looks a shipped controller up by its stable [`Controller::name`] — the
/// factor-injection hook declarative harnesses (the ablation registry,
/// config files) use to turn a string cell value into a controller.
pub fn by_name(name: &str) -> Option<&'static dyn Controller> {
    shipped().into_iter().find(|c| c.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use aps_collectives::{allreduce, alltoall};
    use aps_cost::{CostParams, ReconfigModel};
    use aps_flow::solver::{ThetaCache, ThroughputSolver};
    use aps_topology::builders;

    fn problem(n: usize, m: f64, alpha_r: f64) -> SwitchingProblem {
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::halving_doubling::build(n, m).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap()
    }

    /// Folds `decide` manually (bypassing any `plan` override).
    fn stepwise(
        c: &dyn Controller,
        p: &SwitchingProblem,
        accounting: ReconfigAccounting,
    ) -> SwitchSchedule {
        let mut prev = ConfigChoice::Base;
        let mut choices = Vec::new();
        for step in 0..p.num_steps() {
            let ch = c.decide(&StepObservation::new(p, accounting, step, prev));
            choices.push(ch);
            prev = ch;
        }
        SwitchSchedule::new(choices)
    }

    #[test]
    fn baseline_controllers_produce_the_baseline_schedules() {
        let p = problem(16, 1e6, 1e-6);
        let acc = ReconfigAccounting::default();
        assert_eq!(
            Static.plan(&p, acc).unwrap(),
            SwitchSchedule::all_base(p.num_steps())
        );
        assert_eq!(
            AlwaysReconfigure.plan(&p, acc).unwrap(),
            SwitchSchedule::all_matched(p.num_steps())
        );
    }

    #[test]
    fn dp_decide_forward_realizes_the_dp_optimum() {
        for (m, alpha_r) in [(1e3, 1e-8), (1e6, 1e-6), (1e8, 1e-4), (64.0, 1e-7)] {
            for acc in [
                ReconfigAccounting::PaperConservative,
                ReconfigAccounting::PhysicalDiff,
            ] {
                let p = problem(8, m, alpha_r);
                let (_, want) = dp::optimize(&p, acc).unwrap();
                let online = stepwise(&DpPlanned, &p, acc);
                let got = evaluate(&p, &online, acc).unwrap();
                assert!(
                    (got.total_s() - want.total_s()).abs() <= 1e-15 + 1e-9 * want.total_s(),
                    "m={m} αr={alpha_r} {acc:?}: online {} vs planned {}",
                    got.total_s(),
                    want.total_s()
                );
                // The override must agree with the raw DP.
                assert_eq!(
                    DpPlanned.plan(&p, acc).unwrap(),
                    dp::optimize(&p, acc).unwrap().0
                );
            }
        }
    }

    #[test]
    fn greedy_is_bounded_by_opt_and_reacts_to_fabric_state() {
        for m in [1e3, 1e6, 1e8] {
            for alpha_r in [1e-8, 1e-6, 1e-4] {
                let p = problem(16, m, alpha_r);
                let acc = ReconfigAccounting::default();
                let opt = evaluate(&p, &DpPlanned.plan(&p, acc).unwrap(), acc)
                    .unwrap()
                    .total_s();
                let greedy = evaluate(&p, &Greedy.plan(&p, acc).unwrap(), acc)
                    .unwrap()
                    .total_s();
                assert!(opt <= greedy + 1e-15, "m={m} αr={alpha_r}");
            }
        }
        // State sensitivity: once matched, staying matched is charged the
        // same α_r as returning to base, so greedy (unlike threshold) can
        // keep a configuration it would not have entered.
        let p = problem(16, 4e6, 2e-5);
        let acc = ReconfigAccounting::default();
        let greedy = Greedy.plan(&p, acc).unwrap();
        let threshold = Threshold.plan(&p, acc).unwrap();
        assert_ne!(
            greedy, threshold,
            "expected the regime to separate greedy from threshold"
        );
    }

    #[test]
    fn threshold_controller_matches_the_legacy_formula() {
        // All-to-all exercises a spread of θ/ℓ values.
        let topo = builders::ring_unidirectional(16).unwrap();
        let c = alltoall::linear_shift(16, 2e6).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let p = SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(1e-5).unwrap(),
        )
        .unwrap();
        let plan = Threshold.plan(&p, ReconfigAccounting::default()).unwrap();
        let alpha_r = p.reconfig.worst_case_delay_s(p.n);
        for (i, s) in p.steps.iter().enumerate() {
            let gain = p.params.beta_s_per_byte * s.bytes * (1.0 / s.theta_base - 1.0)
                + p.params.delta_s * (s.ell_base as f64 - 1.0).max(0.0);
            let want = if gain > alpha_r {
                ConfigChoice::Matched
            } else {
                ConfigChoice::Base
            };
            assert_eq!(plan.choice(i), want, "step {i}");
        }
        assert!(plan.matched_steps() > 0);
        assert!(plan.matched_steps() < plan.len());
    }

    #[test]
    fn names_and_rationales_are_stable() {
        let ctls = shipped();
        let names: Vec<&str> = ctls.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["static", "bvn", "threshold", "opt", "greedy"]);
        for c in ctls {
            assert_eq!(by_name(c.name()).unwrap().name(), c.name());
        }
        assert!(by_name("no-such-controller").is_none());
        let p = problem(8, 1e6, 1e-6);
        let obs = StepObservation::new(&p, ReconfigAccounting::default(), 0, ConfigChoice::Base);
        for c in shipped() {
            let choice = c.decide(&obs);
            let why = c.explain(&obs, choice);
            assert!(why.starts_with(c.name()), "{why}");
            assert!(why.contains("step 0"), "{why}");
        }
    }

    #[test]
    fn observation_exposes_demand_and_marginals() {
        let p = problem(8, 1e6, 1e-6);
        let obs = StepObservation::new(&p, ReconfigAccounting::default(), 0, ConfigChoice::Base);
        assert_eq!(obs.costs().bytes, p.steps[0].bytes);
        assert_eq!(obs.stream_step, obs.step);
        // Matched marginal from base includes the α_r charge.
        let base = obs.marginal_cost(ConfigChoice::Base);
        let matched = obs.marginal_cost(ConfigChoice::Matched);
        assert!(base.is_finite() && matched.is_finite());
        assert!(matched > 0.0 && base > 0.0);
    }
}
