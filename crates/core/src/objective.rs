//! The eq. (7) objective: pricing a switch schedule.
//!
//! This module is the single source of truth for what a schedule costs; the
//! DP solver, the exhaustive solver and all policies are validated against
//! [`evaluate`].

use crate::assignment::{ConfigChoice, SwitchSchedule};
use crate::error::CoreError;
use crate::problem::SwitchingProblem;

/// How reconfiguration events are priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconfigAccounting {
    /// The paper's eq. (7): a reconfiguration is charged whenever not both
    /// the current and previous step run on the base (`zᵢ = 0`), even if
    /// the physical configuration happens to be identical. Under the
    /// constant model this charges exactly `α_r` per event.
    #[default]
    PaperConservative,
    /// Physically-aware pricing: the charge is the delay model applied to
    /// the number of ports that actually change; identical consecutive
    /// configurations cost nothing (the "skip if unchanged" extension).
    PhysicalDiff,
}

/// Cost of a schedule, broken into the four terms of eq. (7).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// `s·α`.
    pub latency_s: f64,
    /// `δ·Σ (xᵢ·ℓᵢ + (1−xᵢ))`.
    pub propagation_s: f64,
    /// `β·Σ mᵢ·(xᵢ/θᵢ + (1−xᵢ))`.
    pub transmission_s: f64,
    /// `Σ (1−zᵢ)·α_r` (or its per-port refinement).
    pub reconfig_s: f64,
    /// Number of reconfiguration events charged.
    pub reconfig_events: usize,
}

impl CostReport {
    /// Total collective completion time.
    pub fn total_s(&self) -> f64 {
        self.latency_s + self.propagation_s + self.transmission_s + self.reconfig_s
    }
}

/// Number of ports whose circuits change when the fabric moves between two
/// (possibly unknown) configurations. Unknown (multi-circuit base) counts as
/// a full-fabric change.
fn ports_changed(
    problem: &SwitchingProblem,
    prev: Option<&aps_matrix::Matching>,
    next: Option<&aps_matrix::Matching>,
) -> usize {
    match (prev, next) {
        (Some(a), Some(b)) => a.tx_ports_changed(b),
        _ => problem.n,
    }
}

/// The reconfiguration charge for entering step `i` with choice `cur`, given
/// the previous step's choice.
pub(crate) fn reconfig_charge(
    problem: &SwitchingProblem,
    accounting: ReconfigAccounting,
    prev: ConfigChoice,
    cur: ConfigChoice,
    i: usize,
) -> f64 {
    // z_i = 1 ⇔ both this and the previous step run on the base.
    if prev == ConfigChoice::Base && cur == ConfigChoice::Base {
        return 0.0;
    }
    let prev_cfg = if i == 0 {
        problem.base_config.as_ref()
    } else {
        problem.config_at(i - 1, prev == ConfigChoice::Matched)
    };
    let cur_cfg = problem.config_at(i, cur == ConfigChoice::Matched);
    let diff = ports_changed(problem, prev_cfg, cur_cfg);
    match accounting {
        // Charge at least a one-port event even for a coincidentally
        // identical configuration: eq. (7) prices z_i = 0 unconditionally.
        ReconfigAccounting::PaperConservative => problem.reconfig.delay_s(diff.max(1)),
        ReconfigAccounting::PhysicalDiff => problem.reconfig.delay_s(diff),
    }
}

/// Per-step cost of running step `i` under `choice` (latency + propagation +
/// transmission, without the reconfiguration term).
pub(crate) fn step_run_cost(problem: &SwitchingProblem, i: usize, choice: ConfigChoice) -> f64 {
    let s = &problem.steps[i];
    let p = &problem.params;
    match choice {
        ConfigChoice::Base => {
            p.alpha_s + p.delta_s * s.ell_base as f64 + p.beta_s_per_byte * s.bytes / s.theta_base
        }
        ConfigChoice::Matched => {
            // Direct circuits: θ = 1, ℓ = 1 (§3.3: "congestion and path
            // lengths can be reduced to 1"). Empty steps keep ℓ = 0.
            let ell = if s.matching.is_empty() { 0.0 } else { 1.0 };
            p.alpha_s + p.delta_s * ell + p.beta_s_per_byte * s.bytes
        }
    }
}

/// Prices `schedule` on `problem` under the given accounting — the
/// literal objective of eq. (7), with the `z` variables eliminated through
/// their constraints.
///
/// # Errors
///
/// Fails when schedule and problem lengths disagree.
pub fn evaluate(
    problem: &SwitchingProblem,
    schedule: &SwitchSchedule,
    accounting: ReconfigAccounting,
) -> Result<CostReport, CoreError> {
    if schedule.len() != problem.num_steps() {
        return Err(CoreError::ScheduleLengthMismatch {
            expected: problem.num_steps(),
            got: schedule.len(),
        });
    }
    let p = &problem.params;
    let mut report = CostReport::default();
    let mut prev = ConfigChoice::Base; // x₀ = 1.
    for (i, s) in problem.steps.iter().enumerate() {
        let cur = schedule.choice(i);
        report.latency_s += p.alpha_s;
        match cur {
            ConfigChoice::Base => {
                report.propagation_s += p.delta_s * s.ell_base as f64;
                report.transmission_s += p.beta_s_per_byte * s.bytes / s.theta_base;
            }
            ConfigChoice::Matched => {
                let ell = if s.matching.is_empty() { 0.0 } else { 1.0 };
                report.propagation_s += p.delta_s * ell;
                report.transmission_s += p.beta_s_per_byte * s.bytes;
            }
        }
        // An event is counted whenever z_i = 0, even if the charge is 0
        // under PhysicalDiff (a no-op "reconfiguration").
        if !(prev == ConfigChoice::Base && cur == ConfigChoice::Base) {
            report.reconfig_events += 1;
        }
        report.reconfig_s += reconfig_charge(problem, accounting, prev, cur, i);
        prev = cur;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_cost::{CostParams, ReconfigModel};
    use aps_flow::solver::{ThetaCache, ThroughputSolver};
    use aps_topology::builders;

    fn problem(n: usize, m: f64, alpha_r: f64) -> SwitchingProblem {
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::halving_doubling::build(n, m).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn static_schedule_pays_no_reconfig() {
        let p = problem(8, 1e6, 1e-5);
        let r = evaluate(
            &p,
            &SwitchSchedule::all_base(p.num_steps()),
            Default::default(),
        )
        .unwrap();
        assert_eq!(r.reconfig_s, 0.0);
        assert_eq!(r.reconfig_events, 0);
        // Latency term is s·α.
        assert!((r.latency_s - 6.0 * 100e-9).abs() < 1e-15);
    }

    #[test]
    fn bvn_schedule_pays_every_step() {
        let p = problem(8, 1e6, 1e-5);
        let s = p.num_steps();
        let r = evaluate(&p, &SwitchSchedule::all_matched(s), Default::default()).unwrap();
        assert_eq!(r.reconfig_events, s);
        assert!((r.reconfig_s - s as f64 * 1e-5).abs() < 1e-12);
        // Matched transmission is β·Σmᵢ with no congestion.
        let total_bytes: f64 = p.steps.iter().map(|st| st.bytes).sum();
        assert!((r.transmission_s - total_bytes / 1e11).abs() < 1e-12);
    }

    #[test]
    fn mixed_schedule_charges_reentry() {
        use ConfigChoice::*;
        let p = problem(8, 1e6, 1e-5);
        // M G G M M G: events at steps 0 (G→M), 1 (M→G), 3 (G→M), 4 (M→M),
        // 5 (M→G) = 5 events.
        let s = SwitchSchedule::new(vec![Matched, Base, Base, Matched, Matched, Base]);
        let r = evaluate(&p, &s, Default::default()).unwrap();
        assert_eq!(r.reconfig_events, 5);
        assert!((r.reconfig_s - 5e-5).abs() < 1e-12);
        assert_eq!(s.reconfig_events(), 5);
    }

    #[test]
    fn physical_diff_skips_identical_configs() {
        // Ring allreduce's steps ARE the base ring configuration: under
        // PhysicalDiff, "reconfiguring" to them is free.
        let n = 8;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::ring::build(n, 1e6).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let p = SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(1e-5).unwrap(),
        )
        .unwrap();
        let s = SwitchSchedule::all_matched(p.num_steps());
        let paper = evaluate(&p, &s, ReconfigAccounting::PaperConservative).unwrap();
        let phys = evaluate(&p, &s, ReconfigAccounting::PhysicalDiff).unwrap();
        assert!(paper.reconfig_s > 0.0);
        assert_eq!(phys.reconfig_s, 0.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let p = problem(8, 1e6, 1e-5);
        assert!(matches!(
            evaluate(&p, &SwitchSchedule::all_base(3), Default::default()),
            Err(CoreError::ScheduleLengthMismatch {
                expected: 6,
                got: 3
            })
        ));
    }

    #[test]
    fn per_port_pricing_scales_with_diff() {
        let n = 8;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::halving_doubling::build(n, 1e6).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let p = SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::per_port(1e-6, 1e-7).unwrap(),
        )
        .unwrap();
        use ConfigChoice::*;
        let one = SwitchSchedule::new(vec![Matched, Base, Base, Base, Base, Base]);
        let r = evaluate(&p, &one, ReconfigAccounting::PhysicalDiff).unwrap();
        // Two events (enter + leave matched); xor(4) differs from shift(1)
        // on all 8 TX ports, so each costs 1µs + 8·0.1µs.
        assert_eq!(r.reconfig_events, 2);
        assert!((r.reconfig_s - 2.0 * (1e-6 + 8.0 * 1e-7)).abs() < 1e-12);
    }
}
