//! The optimization problem instance: step costs + cost parameters +
//! reconfiguration pricing.

use crate::error::CoreError;
use aps_collectives::workload::{materialize, Workload};
use aps_collectives::Schedule;
use aps_cost::steptable::{step_cost_table, StepCosts};
use aps_cost::{CostParams, ReconfigModel};
use aps_flow::solver::ThetaCache;
use aps_matrix::Matching;
use aps_topology::{properties, Topology};

/// A fully-evaluated instance of the eq. (7) program for one collective on
/// one scale-up domain.
#[derive(Debug, Clone)]
pub struct SwitchingProblem {
    /// Number of GPUs / fabric ports.
    pub n: usize,
    /// α, β, δ.
    pub params: CostParams,
    /// Reconfiguration delay pricing (α_r).
    pub reconfig: ReconfigModel,
    /// The physical circuit configuration realizing the base topology, when
    /// the base is a single-transceiver circuit configuration (e.g. the
    /// unidirectional ring). `None` for multi-circuit bases (bidirectional
    /// ring, torus, …), in which case per-port diffs against the base count
    /// all `n` ports.
    pub base_config: Option<Matching>,
    /// Per-step costs: `mᵢ`, `θ(G, Mᵢ)`, `ℓᵢ`, and the matching itself.
    pub steps: Vec<StepCosts>,
}

/// Extracts the circuit configuration a topology represents, when it is one
/// (out-degree and in-degree ≤ 1 everywhere).
pub fn config_of_topology(topo: &Topology) -> Option<Matching> {
    if !properties::is_circuit_configuration(topo) {
        return None;
    }
    let pairs: Vec<(usize, usize)> = topo.links().iter().map(|l| (l.src, l.dst)).collect();
    Matching::from_pairs(topo.n(), &pairs).ok()
}

impl SwitchingProblem {
    /// Evaluates `θ` and `ℓ` for every step of `schedule` on `base` and
    /// assembles the problem.
    ///
    /// # Errors
    ///
    /// Fails when a step cannot be routed on the base topology.
    pub fn build(
        base: &Topology,
        schedule: &Schedule,
        cache: &mut ThetaCache,
        params: CostParams,
        reconfig: ReconfigModel,
    ) -> Result<Self, CoreError> {
        let steps = step_cost_table(base, schedule, cache)?;
        Ok(Self {
            n: base.n(),
            params,
            reconfig,
            base_config: config_of_topology(base),
            steps,
        })
    }

    /// [`SwitchingProblem::build`] over workload-derived demand: drains up
    /// to `limit` steps of `workload` (from its current position) into a
    /// schedule and prices it. Planning needs the whole instance at once,
    /// so the stream is materialized here — truly open-ended workloads
    /// stay with the streaming executors in `aps-sim`.
    ///
    /// # Errors
    ///
    /// Fails when the workload exceeds `limit` steps, yields a malformed
    /// step, or a step cannot be routed on the base topology.
    pub fn from_workload(
        base: &Topology,
        workload: &mut dyn Workload,
        limit: usize,
        cache: &mut ThetaCache,
        params: CostParams,
        reconfig: ReconfigModel,
    ) -> Result<Self, CoreError> {
        let schedule = materialize(workload, limit).map_err(CoreError::Collective)?;
        Self::build(base, &schedule, cache, params, reconfig)
    }

    /// Number of steps `s`.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The physical configuration the fabric holds when step `i` runs under
    /// choice `matched` (`true` → the step's own matching, `false` → base).
    /// `None` means "the base, which is not a single circuit configuration".
    pub fn config_at(&self, i: usize, matched: bool) -> Option<&Matching> {
        if matched {
            Some(&self.steps[i].matching)
        } else {
            self.base_config.as_ref()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_flow::solver::ThroughputSolver;
    use aps_topology::builders;

    #[test]
    fn build_on_uni_ring() {
        let n = 8;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::halving_doubling::build(n, 1e6).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let p = SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(1e-6).unwrap(),
        )
        .unwrap();
        assert_eq!(p.n, n);
        assert_eq!(p.num_steps(), 6);
        // The uni ring IS a circuit configuration: shift(1).
        assert_eq!(p.base_config, Some(Matching::shift(n, 1).unwrap()));
        assert_eq!(p.config_at(0, true), Some(&c.schedule.steps()[0].matching));
        assert_eq!(p.config_at(0, false), Some(&Matching::shift(n, 1).unwrap()));
    }

    #[test]
    fn bidirectional_base_has_no_single_config() {
        let topo = builders::ring_bidirectional(8).unwrap();
        assert_eq!(config_of_topology(&topo), None);
        let uni = builders::ring_unidirectional(8).unwrap();
        assert_eq!(
            config_of_topology(&uni),
            Some(Matching::shift(8, 1).unwrap())
        );
        let matched = builders::from_matching(&Matching::xor(8, 2).unwrap());
        assert_eq!(
            config_of_topology(&matched),
            Some(Matching::xor(8, 2).unwrap())
        );
    }
}
