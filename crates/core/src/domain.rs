//! High-level facade: an adaptive photonic scale-up domain.
//!
//! [`ScaleupDomain`] bundles the base topology, cost parameters,
//! reconfiguration pricing and a θ memo into the object downstream users
//! interact with: hand it a collective, get back the optimal circuit-switch
//! schedule and a policy comparison.

use crate::assignment::SwitchSchedule;
use crate::controller::{Controller, DpPlanned};
use crate::error::CoreError;
use crate::objective::{evaluate, CostReport, ReconfigAccounting};
use crate::policies::{evaluate_policy, Policy};
use crate::problem::{config_of_topology, SwitchingProblem};
use aps_collectives::Schedule;
use aps_cost::steptable::step_cost_table;
use aps_cost::{CostParams, ReconfigModel};
use aps_flow::solver::{ThetaCache, ThroughputSolver};
use aps_topology::Topology;

/// Completion times of all policies on one collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyComparison {
    /// Never reconfigure.
    pub static_s: f64,
    /// Reconfigure every step.
    pub bvn_s: f64,
    /// Optimized (DP) schedule.
    pub opt_s: f64,
    /// Threshold heuristic.
    pub threshold_s: f64,
}

impl PolicyComparison {
    /// `t_static / t_opt`.
    pub fn speedup_vs_static(&self) -> f64 {
        self.static_s / self.opt_s
    }

    /// `t_bvn / t_opt`.
    pub fn speedup_vs_bvn(&self) -> f64 {
        self.bvn_s / self.opt_s
    }

    /// `min(static, bvn) / t_opt` — the Figure 2 metric.
    pub fn speedup_vs_best_of_both(&self) -> f64 {
        self.static_s.min(self.bvn_s) / self.opt_s
    }
}

/// An adaptive photonic scale-up domain: `n` GPUs behind one reconfigurable
/// fabric, a base topology, and the cost model of §3.
#[derive(Debug)]
pub struct ScaleupDomain {
    base: Topology,
    params: CostParams,
    reconfig: ReconfigModel,
    accounting: ReconfigAccounting,
    cache: ThetaCache,
}

impl ScaleupDomain {
    /// Creates a domain with the default (forced-path) throughput solver and
    /// the paper's conservative reconfiguration accounting.
    pub fn new(base: Topology, params: CostParams, reconfig: ReconfigModel) -> Self {
        let cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
        Self {
            base,
            params,
            reconfig,
            accounting: ReconfigAccounting::PaperConservative,
            cache,
        }
    }

    /// Selects a different throughput solver (e.g. the Garg–Könemann FPTAS
    /// for splittable routing on multi-path bases).
    pub fn with_solver(mut self, solver: ThroughputSolver) -> Self {
        self.cache = ThetaCache::new(&self.base, solver);
        self
    }

    /// Selects the reconfiguration accounting rule.
    pub fn with_accounting(mut self, accounting: ReconfigAccounting) -> Self {
        self.accounting = accounting;
        self
    }

    /// Number of GPUs in the domain.
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// The base topology.
    pub fn base(&self) -> &Topology {
        &self.base
    }

    /// The cost parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Builds the eq. (7) instance for a collective.
    ///
    /// # Errors
    ///
    /// Fails when a step cannot be routed on the base topology.
    pub fn problem(&mut self, schedule: &Schedule) -> Result<SwitchingProblem, CoreError> {
        let steps = step_cost_table(&self.base, schedule, &mut self.cache)?;
        Ok(SwitchingProblem {
            n: self.base.n(),
            params: self.params,
            reconfig: self.reconfig,
            base_config: config_of_topology(&self.base),
            steps,
        })
    }

    /// Builds the eq. (7) instance for workload-derived demand: drains up
    /// to `limit` steps of `workload` (from its current position). See
    /// [`SwitchingProblem::from_workload`].
    ///
    /// # Errors
    ///
    /// Fails when the workload exceeds `limit` steps, yields a malformed
    /// step, or a step cannot be routed on the base topology.
    pub fn problem_from_workload(
        &mut self,
        workload: &mut dyn aps_collectives::Workload,
        limit: usize,
    ) -> Result<SwitchingProblem, CoreError> {
        SwitchingProblem::from_workload(
            &self.base,
            workload,
            limit,
            &mut self.cache,
            self.params,
            self.reconfig,
        )
    }

    /// Lets `controller` plan workload-derived demand (≤ `limit` steps)
    /// and prices the result — [`ScaleupDomain::plan_with`] over a
    /// drained stream.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction and controller planning errors.
    pub fn plan_workload(
        &mut self,
        workload: &mut dyn aps_collectives::Workload,
        limit: usize,
        controller: &dyn Controller,
    ) -> Result<(SwitchSchedule, CostReport), CoreError> {
        let p = self.problem_from_workload(workload, limit)?;
        let switches = controller.plan(&p, self.accounting)?;
        let report = evaluate(&p, &switches, self.accounting)?;
        Ok((switches, report))
    }

    /// The reconfiguration accounting rule in force.
    pub fn accounting(&self) -> ReconfigAccounting {
        self.accounting
    }

    /// Computes the optimal circuit-switch schedule for a collective —
    /// [`ScaleupDomain::plan_with`] under the [`DpPlanned`] controller.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction errors.
    pub fn plan(&mut self, schedule: &Schedule) -> Result<(SwitchSchedule, CostReport), CoreError> {
        self.plan_with(schedule, &DpPlanned)
    }

    /// Lets `controller` choose the circuit-switch schedule for a
    /// collective and prices the result. This is the single planning
    /// entrypoint every policy routes through; [`ScaleupDomain::plan`] is
    /// the [`DpPlanned`] special case.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction and controller planning errors.
    pub fn plan_with(
        &mut self,
        schedule: &Schedule,
        controller: &dyn Controller,
    ) -> Result<(SwitchSchedule, CostReport), CoreError> {
        let p = self.problem(schedule)?;
        let switches = controller.plan(&p, self.accounting)?;
        let report = evaluate(&p, &switches, self.accounting)?;
        Ok((switches, report))
    }

    /// Prices the schedule `controller` chooses for a collective.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction and controller planning errors.
    pub fn evaluate_with(
        &mut self,
        schedule: &Schedule,
        controller: &dyn Controller,
    ) -> Result<CostReport, CoreError> {
        self.plan_with(schedule, controller).map(|(_, r)| r)
    }

    /// Prices all four policies on a collective.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction errors.
    pub fn compare(&mut self, schedule: &Schedule) -> Result<PolicyComparison, CoreError> {
        let p = self.problem(schedule)?;
        Ok(PolicyComparison {
            static_s: evaluate_policy(&p, Policy::StaticBase, self.accounting)?.total_s(),
            bvn_s: evaluate_policy(&p, Policy::AlwaysMatched, self.accounting)?.total_s(),
            opt_s: evaluate_policy(&p, Policy::Optimal, self.accounting)?.total_s(),
            threshold_s: evaluate_policy(&p, Policy::Threshold, self.accounting)?.total_s(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_cost::units::MIB;
    use aps_topology::builders;

    fn domain(n: usize, alpha_r: f64) -> ScaleupDomain {
        ScaleupDomain::new(
            builders::ring_unidirectional(n).unwrap(),
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
    }

    #[test]
    fn plan_and_compare_are_consistent() {
        let mut d = domain(16, 1e-6);
        let c = allreduce::halving_doubling::build(16, 4.0 * MIB).unwrap();
        let (schedule, report) = d.plan(&c.schedule).unwrap();
        let cmp = d.compare(&c.schedule).unwrap();
        assert!((report.total_s() - cmp.opt_s).abs() < 1e-15);
        assert!(cmp.speedup_vs_static() >= 1.0);
        assert!(cmp.speedup_vs_bvn() >= 1.0);
        assert!(cmp.speedup_vs_best_of_both() <= cmp.speedup_vs_static() + 1e-12);
        assert_eq!(schedule.len(), c.schedule.num_steps());
        assert_eq!(d.n(), 16);
    }

    #[test]
    fn large_messages_prefer_reconfiguration() {
        let mut d = domain(16, 1e-6);
        let big = allreduce::halving_doubling::build(16, 256.0 * MIB).unwrap();
        let (schedule, _) = d.plan(&big.schedule).unwrap();
        assert!(schedule.matched_steps() > 0);
        // A 64-byte message stays static once α_r dwarfs the propagation
        // savings (on a 16-ring the longest path saves only ~1.4 µs of δ).
        let mut d = domain(16, 1e-4);
        let small = allreduce::halving_doubling::build(16, 64.0).unwrap();
        let (schedule, _) = d.plan(&small.schedule).unwrap();
        assert_eq!(schedule.matched_steps(), 0);
    }

    #[test]
    fn tiny_alpha_r_lets_propagation_savings_justify_reconfig() {
        // With α_r = 1 µs and δ = 100 ns, steps with ring paths ≥ 11 hops
        // save more propagation than the reconfiguration costs — so even a
        // 64-byte collective reconfigures its long-distance steps. This is
        // the §4 "deeper understanding of the propagation delays" effect.
        let mut d = domain(16, 1e-6);
        let small = allreduce::halving_doubling::build(16, 64.0).unwrap();
        let (schedule, _) = d.plan(&small.schedule).unwrap();
        assert!(schedule.matched_steps() > 0);
    }

    #[test]
    fn plan_with_controllers_brackets_the_optimum() {
        use crate::controller::{shipped, DpPlanned};
        let c = allreduce::halving_doubling::build(16, 16.0 * MIB).unwrap();
        let mut d = domain(16, 1e-5);
        let (opt_sched, opt) = d.plan(&c.schedule).unwrap();
        // plan() is exactly plan_with(DpPlanned).
        let (sched2, rep2) = d.plan_with(&c.schedule, &DpPlanned).unwrap();
        assert_eq!(opt_sched, sched2);
        assert_eq!(opt, rep2);
        for ctl in shipped() {
            let r = d.evaluate_with(&c.schedule, ctl).unwrap();
            assert!(
                opt.total_s() <= r.total_s() + 1e-15,
                "{} beat the optimum",
                ctl.name()
            );
        }
    }

    #[test]
    fn accounting_switch_changes_pricing() {
        // Ring allreduce steps equal the base ring: PhysicalDiff makes
        // "matched" free, so BvN == static there.
        let c = allreduce::ring::build(8, MIB).unwrap();
        let mut paper = domain(8, 1e-4);
        let mut phys = domain(8, 1e-4).with_accounting(ReconfigAccounting::PhysicalDiff);
        let cp = paper.compare(&c.schedule).unwrap();
        let cf = phys.compare(&c.schedule).unwrap();
        assert!(cp.bvn_s > cf.bvn_s);
        assert!((cf.bvn_s - cf.static_s).abs() < 1e-12);
    }
}
