//! Multi-base-topology pools (§3.3 extension).
//!
//! The paper: "Our formulation can even be extended to account for a fixed
//! pool of base topologies instead of a single base topology G … e.g.,
//! using multiple co-prime rings as base topologies." The DP state simply
//! grows from `{base, matched}` to `{base₁, …, base_k, matched}`: still a
//! trellis shortest path, `O(s·(k+1)²)`.

use crate::error::CoreError;
use crate::objective::ReconfigAccounting;
use crate::problem::config_of_topology;
use aps_collectives::Schedule;
use aps_cost::steptable::step_cost_table;
use aps_cost::{CostParams, ReconfigModel};
use aps_flow::solver::{ThetaCache, ThroughputSolver};
use aps_matrix::Matching;
use aps_topology::Topology;

/// One base topology's per-step figures.
#[derive(Debug, Clone)]
pub struct BaseOption {
    /// Topology name (for reports).
    pub name: String,
    /// Physical circuit configuration, when the base is one.
    pub config: Option<Matching>,
    /// `(θ, ℓ)` per collective step on this base.
    pub per_step: Vec<(f64, usize)>,
}

/// Per-step choice in a multi-base schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiChoice {
    /// Run the step on base `k` of the pool.
    Base(usize),
    /// Reconfigure to the step's matched topology.
    Matched,
}

/// A multi-base instance of the switching problem.
#[derive(Debug, Clone)]
pub struct MultiBaseProblem {
    /// Number of fabric ports.
    pub n: usize,
    /// α, β, δ.
    pub params: CostParams,
    /// Reconfiguration pricing.
    pub reconfig: ReconfigModel,
    /// The pool of base topologies.
    pub bases: Vec<BaseOption>,
    /// Step volumes `mᵢ`.
    pub volumes: Vec<f64>,
    /// Step matchings (for per-port diffs and matched-state configs).
    pub matchings: Vec<Matching>,
    /// Index of the base the fabric holds before step 0.
    pub start_base: usize,
}

/// Evaluates every base in `pool` against `schedule` and assembles the
/// problem.
///
/// # Errors
///
/// Fails when the pool is empty, `start_base` is out of range, or a step is
/// unroutable on some base.
pub fn build_multibase(
    pool: &[&Topology],
    schedule: &Schedule,
    params: CostParams,
    reconfig: ReconfigModel,
    solver: ThroughputSolver,
    start_base: usize,
) -> Result<MultiBaseProblem, CoreError> {
    if pool.is_empty() {
        return Err(CoreError::NoBases);
    }
    if start_base >= pool.len() {
        return Err(CoreError::StartBaseOutOfRange {
            start: start_base,
            bases: pool.len(),
        });
    }
    let mut bases = Vec::with_capacity(pool.len());
    for topo in pool {
        let mut cache = ThetaCache::new(topo, solver);
        let table = step_cost_table(topo, schedule, &mut cache)?;
        bases.push(BaseOption {
            name: topo.name().to_string(),
            config: config_of_topology(topo),
            per_step: table.iter().map(|s| (s.theta_base, s.ell_base)).collect(),
        });
    }
    Ok(MultiBaseProblem {
        n: pool[0].n(),
        params,
        reconfig,
        bases,
        volumes: schedule.steps().iter().map(|s| s.bytes_per_pair).collect(),
        matchings: schedule
            .steps()
            .iter()
            .map(|s| s.matching.clone())
            .collect(),
        start_base,
    })
}

impl MultiBaseProblem {
    /// Number of steps.
    pub fn num_steps(&self) -> usize {
        self.volumes.len()
    }

    fn config_of(&self, i: Option<usize>, choice: MultiChoice) -> Option<&Matching> {
        match choice {
            MultiChoice::Base(k) => self.bases[k].config.as_ref(),
            MultiChoice::Matched => i.map(|i| &self.matchings[i]),
        }
    }

    fn run_cost(&self, i: usize, choice: MultiChoice) -> f64 {
        let p = &self.params;
        let m = self.volumes[i];
        match choice {
            MultiChoice::Base(k) => {
                let (theta, ell) = self.bases[k].per_step[i];
                p.alpha_s + p.delta_s * ell as f64 + p.beta_s_per_byte * m / theta
            }
            MultiChoice::Matched => {
                let ell = if self.matchings[i].is_empty() {
                    0.0
                } else {
                    1.0
                };
                p.alpha_s + p.delta_s * ell + p.beta_s_per_byte * m
            }
        }
    }

    fn transition_cost(
        &self,
        prev_step: Option<usize>,
        prev: MultiChoice,
        i: usize,
        cur: MultiChoice,
        accounting: ReconfigAccounting,
    ) -> f64 {
        // Staying on the *same* base never reconfigures (generalized z).
        if let (MultiChoice::Base(a), MultiChoice::Base(b)) = (prev, cur) {
            if a == b {
                return 0.0;
            }
        }
        let prev_cfg = self.config_of(prev_step, prev);
        let cur_cfg = self.config_of(Some(i), cur);
        let diff = match (prev_cfg, cur_cfg) {
            (Some(a), Some(b)) => a.tx_ports_changed(b),
            _ => self.n,
        };
        match accounting {
            ReconfigAccounting::PaperConservative => self.reconfig.delay_s(diff.max(1)),
            ReconfigAccounting::PhysicalDiff => self.reconfig.delay_s(diff),
        }
    }

    /// Prices an explicit multi-base schedule.
    ///
    /// # Errors
    ///
    /// Fails on length mismatch.
    pub fn evaluate(
        &self,
        choices: &[MultiChoice],
        accounting: ReconfigAccounting,
    ) -> Result<f64, CoreError> {
        if choices.len() != self.num_steps() {
            return Err(CoreError::ScheduleLengthMismatch {
                expected: self.num_steps(),
                got: choices.len(),
            });
        }
        let mut total = 0.0;
        let mut prev = MultiChoice::Base(self.start_base);
        let mut prev_step = None;
        for (i, &cur) in choices.iter().enumerate() {
            total +=
                self.run_cost(i, cur) + self.transition_cost(prev_step, prev, i, cur, accounting);
            prev = cur;
            prev_step = Some(i);
        }
        Ok(total)
    }

    /// Exact DP over the `(k+1)`-state trellis.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (none for well-formed problems).
    pub fn optimize(
        &self,
        accounting: ReconfigAccounting,
    ) -> Result<(Vec<MultiChoice>, f64), CoreError> {
        let s = self.num_steps();
        let k = self.bases.len();
        let states: Vec<MultiChoice> = (0..k)
            .map(MultiChoice::Base)
            .chain(std::iter::once(MultiChoice::Matched))
            .collect();
        if s == 0 {
            return Ok((vec![], 0.0));
        }
        let mut best = vec![vec![f64::INFINITY; states.len()]; s];
        let mut parent = vec![vec![0usize; states.len()]; s];
        for (ci, &cur) in states.iter().enumerate() {
            best[0][ci] = self.run_cost(0, cur)
                + self.transition_cost(
                    None,
                    MultiChoice::Base(self.start_base),
                    0,
                    cur,
                    accounting,
                );
        }
        for i in 1..s {
            for (ci, &cur) in states.iter().enumerate() {
                let run = self.run_cost(i, cur);
                for (pi, &prev) in states.iter().enumerate() {
                    let cand = best[i - 1][pi]
                        + run
                        + self.transition_cost(Some(i - 1), prev, i, cur, accounting);
                    if cand < best[i][ci] {
                        best[i][ci] = cand;
                        parent[i][ci] = pi;
                    }
                }
            }
        }
        let mut state = best[s - 1]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty state set");
        let total = best[s - 1][state];
        let mut choices = vec![MultiChoice::Matched; s];
        for i in (0..s).rev() {
            choices[i] = states[state];
            state = parent[i][state];
        }
        Ok((choices, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use crate::problem::SwitchingProblem;
    use aps_collectives::alltoall;
    use aps_topology::builders;

    fn params() -> CostParams {
        CostParams::paper_defaults()
    }

    #[test]
    fn single_base_pool_matches_two_state_dp() {
        let n = 16;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = alltoall::linear_shift(n, 1e6).unwrap();
        let reconfig = ReconfigModel::constant(2e-6).unwrap();
        let mb = build_multibase(
            &[&topo],
            &c.schedule,
            params(),
            reconfig,
            ThroughputSolver::ForcedPath,
            0,
        )
        .unwrap();
        let (_, mb_cost) = mb.optimize(Default::default()).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let p =
            SwitchingProblem::build(&topo, &c.schedule, &mut cache, params(), reconfig).unwrap();
        let (_, report) = dp::optimize(&p, Default::default()).unwrap();
        assert!((mb_cost - report.total_s()).abs() < 1e-12 * (1.0 + mb_cost));
    }

    #[test]
    fn second_coprime_ring_helps_alltoall() {
        // All-to-All's shift(k) steps: a stride-1 ring is terrible for large
        // k. Adding a stride-(n/2−1) ring lets the scheduler hop bases.
        let n = 16;
        let ring1 = builders::ring_unidirectional(n).unwrap();
        let ring7: Topology = {
            let mut t = Topology::new(n, "uni-ring-stride7(16)");
            for i in 0..n {
                t.add_link(i, (i + 7) % n, 1.0).unwrap();
            }
            t
        };
        let c = alltoall::linear_shift(n, 1e7).unwrap();
        let reconfig = ReconfigModel::constant(50e-6).unwrap();
        let single = build_multibase(
            &[&ring1],
            &c.schedule,
            params(),
            reconfig,
            ThroughputSolver::ForcedPath,
            0,
        )
        .unwrap();
        let pool = build_multibase(
            &[&ring1, &ring7],
            &c.schedule,
            params(),
            reconfig,
            ThroughputSolver::ForcedPath,
            0,
        )
        .unwrap();
        let (_, t_single) = single.optimize(Default::default()).unwrap();
        let (choices, t_pool) = pool.optimize(Default::default()).unwrap();
        assert!(
            t_pool < t_single,
            "pool {t_pool} should beat single {t_single}"
        );
        // The pool schedule actually uses the second base.
        assert!(choices.iter().any(|c| matches!(c, MultiChoice::Base(1))));
    }

    #[test]
    fn validation_errors() {
        let n = 8;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = alltoall::linear_shift(n, 1e6).unwrap();
        let reconfig = ReconfigModel::constant(1e-6).unwrap();
        assert!(matches!(
            build_multibase(&[], &c.schedule, params(), reconfig, Default::default(), 0),
            Err(CoreError::NoBases)
        ));
        assert!(matches!(
            build_multibase(
                &[&topo],
                &c.schedule,
                params(),
                reconfig,
                Default::default(),
                3
            ),
            Err(CoreError::StartBaseOutOfRange { start: 3, bases: 1 })
        ));
        let mb = build_multibase(
            &[&topo],
            &c.schedule,
            params(),
            reconfig,
            Default::default(),
            0,
        )
        .unwrap();
        assert!(mb.evaluate(&[], Default::default()).is_err());
    }

    #[test]
    fn optimize_agrees_with_evaluate() {
        let n = 8;
        let r1 = builders::ring_unidirectional(n).unwrap();
        let r3 = builders::coprime_rings(n, &[3]).unwrap();
        let c = alltoall::linear_shift(n, 1e5).unwrap();
        let mb = build_multibase(
            &[&r1, &r3],
            &c.schedule,
            params(),
            ReconfigModel::constant(1e-6).unwrap(),
            ThroughputSolver::ForcedPath,
            0,
        )
        .unwrap();
        let (choices, total) = mb.optimize(Default::default()).unwrap();
        let priced = mb.evaluate(&choices, Default::default()).unwrap();
        assert!((total - priced).abs() < 1e-12 * (1.0 + total));
    }
}
