//! Parameter sweeps over `α_r × message size` — the grid behind every
//! heatmap in the paper's Figure 1 and Figure 2.

use crate::error::CoreError;
use crate::objective::ReconfigAccounting;
use crate::policies::{evaluate_policy, Policy};
use crate::problem::SwitchingProblem;
use aps_collectives::{Collective, CollectiveError};
use aps_cost::steptable::step_cost_table;
use aps_cost::units::{GIB, KIB, MICROS, MILLIS, NANOS};
use aps_cost::{CostParams, ReconfigModel};
use aps_flow::solver::{CacheStats, ThetaCache, ThroughputSolver};
use aps_par::Pool;
use aps_topology::Topology;

/// The sweep axes: reconfiguration delays (columns) × message sizes (rows).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Reconfiguration delays `α_r` in seconds, ascending (x-axis).
    pub reconf_delays_s: Vec<f64>,
    /// Message sizes in bytes, ascending (y-axis).
    pub message_bytes: Vec<f64>,
}

impl SweepGrid {
    /// The grid used by the figure harnesses: `α_r` from 100 ns to 10 ms
    /// (decades) and messages from 1 KiB to 1 GiB (factor-16 steps) —
    /// covering the §3.4 regimes.
    pub fn paper_default() -> Self {
        Self {
            reconf_delays_s: vec![
                100.0 * NANOS,
                1.0 * MICROS,
                10.0 * MICROS,
                100.0 * MICROS,
                1.0 * MILLIS,
                10.0 * MILLIS,
            ],
            message_bytes: vec![
                KIB,
                16.0 * KIB,
                256.0 * KIB,
                4096.0 * KIB,
                64.0 * 1024.0 * KIB,
                GIB,
            ],
        }
    }

    /// Compact grid for tests.
    pub fn small() -> Self {
        Self {
            reconf_delays_s: vec![100.0 * NANOS, 10.0 * MICROS, 1.0 * MILLIS],
            message_bytes: vec![KIB, 1024.0 * KIB, GIB],
        }
    }
}

/// Completion times of the four policies at one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Static base topology (never reconfigure).
    pub t_static_s: f64,
    /// Per-step BvN reconfiguration.
    pub t_bvn_s: f64,
    /// Optimized schedule (DP).
    pub t_opt_s: f64,
    /// Threshold heuristic.
    pub t_threshold_s: f64,
}

impl SweepCell {
    /// `t_static / t_opt` — Figure 1 bottom row.
    pub fn speedup_vs_static(&self) -> f64 {
        self.t_static_s / self.t_opt_s
    }

    /// `t_bvn / t_opt` — Figure 1 top row.
    pub fn speedup_vs_bvn(&self) -> f64 {
        self.t_bvn_s / self.t_opt_s
    }

    /// `min(t_static, t_bvn) / t_opt` — Figure 2.
    pub fn speedup_vs_best_of_both(&self) -> f64 {
        self.t_static_s.min(self.t_bvn_s) / self.t_opt_s
    }

    /// `t_threshold / t_opt` — the A1 ablation's optimality gap.
    pub fn threshold_gap(&self) -> f64 {
        self.t_threshold_s / self.t_opt_s
    }
}

/// A completed sweep: `cells[row][col]` follows `grid.message_bytes[row]` ×
/// `grid.reconf_delays_s[col]`.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The axes.
    pub grid: SweepGrid,
    /// Row-major policy timings.
    pub cells: Vec<Vec<SweepCell>>,
    /// θ-cache counters, merged across the pool's per-worker caches.
    pub theta_stats: CacheStats,
}

impl SweepResult {
    /// Extracts a per-cell scalar (e.g. a speedup) as a row-major matrix.
    pub fn map(&self, f: impl Fn(&SweepCell) -> f64) -> Vec<Vec<f64>> {
        self.cells
            .iter()
            .map(|row| row.iter().map(&f).collect())
            .collect()
    }
}

/// Runs the sweep on a pool sized from `APS_THREADS` (see
/// [`aps_par::Pool::from_env`]); identical to [`run_sweep_on`] otherwise.
///
/// # Errors
///
/// Propagates collective construction and routing errors.
#[deprecated(
    since = "0.2.0",
    note = "use `adaptive_photonics::Experiment::…::sweep(grid)` or `run_sweep_on` with an explicit pool"
)]
pub fn run_sweep(
    base: &Topology,
    build: impl Fn(f64) -> Result<Collective, CollectiveError> + Sync,
    params: CostParams,
    grid: &SweepGrid,
    accounting: ReconfigAccounting,
    solver: ThroughputSolver,
) -> Result<SweepResult, CoreError> {
    run_sweep_on(
        &Pool::from_env(),
        base,
        build,
        params,
        grid,
        accounting,
        solver,
    )
}

/// Runs the sweep on `pool` in two parallel phases:
///
/// 1. **θ pricing** — the collectives of all rows are built, their step
///    matchings deduplicated, and each *unique* matching priced once,
///    distributed over the pool ([`ThetaCache::warm`]). This is the hot
///    part of a sweep and it parallelizes without redundancy — naively
///    parallelizing rows instead would re-price the same matchings once
///    per worker, because every message size reuses the same patterns.
/// 2. **cell evaluation** — rows are distributed over the pool; each
///    worker clones the warmed cache (all lookups hit) and evaluates the
///    four policies at every reconfiguration delay.
///
/// Results are **bit-identical at any thread count**: every θ solve and
/// every cell is a pure function of its inputs, and ordering is fixed by
/// [`aps_par::Pool::map_with`]'s chunked index assignment.
///
/// # Errors
///
/// Propagates collective construction and routing errors; when several rows
/// fail, the error of the lowest row index is returned.
pub fn run_sweep_on(
    pool: &Pool,
    base: &Topology,
    build: impl Fn(f64) -> Result<Collective, CollectiveError> + Sync,
    params: CostParams,
    grid: &SweepGrid,
    accounting: ReconfigAccounting,
    solver: ThroughputSolver,
) -> Result<SweepResult, CoreError> {
    // Phase 1: build each row's collective, then price the union of their
    // step matchings across the pool.
    let collectives = grid
        .message_bytes
        .iter()
        .map(|&m| build(m))
        .collect::<Result<Vec<_>, _>>()?;
    let warm = ThetaCache::warm(
        pool,
        base,
        solver,
        collectives
            .iter()
            .flat_map(|c| c.schedule.steps().iter().map(|s| &s.matching)),
    )?;

    // Phase 2: evaluate rows; every θ lookup hits the warmed cache.
    let sweep_row = |cache: &mut ThetaCache,
                     collective: &Collective|
     -> Result<Vec<SweepCell>, CoreError> {
        let table = step_cost_table(base, &collective.schedule, cache)?;
        let mut row = Vec::with_capacity(grid.reconf_delays_s.len());
        for &alpha_r in &grid.reconf_delays_s {
            let problem = SwitchingProblem {
                n: base.n(),
                params,
                reconfig: ReconfigModel::constant(alpha_r)?,
                base_config: crate::problem::config_of_topology(base),
                steps: table.clone(),
            };
            row.push(SweepCell {
                t_static_s: evaluate_policy(&problem, Policy::StaticBase, accounting)?.total_s(),
                t_bvn_s: evaluate_policy(&problem, Policy::AlwaysMatched, accounting)?.total_s(),
                t_opt_s: evaluate_policy(&problem, Policy::Optimal, accounting)?.total_s(),
                t_threshold_s: evaluate_policy(&problem, Policy::Threshold, accounting)?.total_s(),
            });
        }
        Ok(row)
    };
    let (rows, worker_caches) = pool.map_with(
        &collectives,
        || {
            let mut cache = warm.clone();
            cache.reset_stats();
            cache
        },
        |cache, _, collective| sweep_row(cache, collective),
    );
    let cells = rows.into_iter().collect::<Result<Vec<_>, _>>()?;

    // Pricing counted once (phase 1); workers contribute only lookups.
    let mut theta_stats = warm.stats();
    for c in &worker_caches {
        theta_stats.hits += c.stats().hits;
        theta_stats.misses += c.stats().misses;
    }
    Ok(SweepResult {
        grid: grid.clone(),
        cells,
        theta_stats,
    })
}

/// One independent planning job for [`plan_schedules_on`]: a collective
/// bound to the base topology it would run on (jobs may differ in size —
/// e.g. the tenants of a partitioned fabric).
#[derive(Debug, Clone)]
pub struct PlanJob {
    /// Base topology of the job's domain (or partition).
    pub base: Topology,
    /// The collective to plan.
    pub schedule: aps_collectives::Schedule,
}

impl PlanJob {
    /// A planning job over workload-derived demand: drains up to `limit`
    /// steps of `workload` (from its current position) into the job's
    /// schedule.
    ///
    /// # Errors
    ///
    /// Fails when the workload exceeds `limit` steps or yields a
    /// malformed step.
    pub fn from_workload(
        base: Topology,
        workload: &mut dyn aps_collectives::Workload,
        limit: usize,
    ) -> Result<Self, CoreError> {
        let schedule = aps_collectives::workload::materialize(workload, limit)
            .map_err(CoreError::Collective)?;
        Ok(Self { base, schedule })
    }
}

/// Lets `controller` plan every job on `pool`, one independent
/// [`crate::ScaleupDomain`] per job, under the given accounting rule and
/// θ solver. `plans[i]` belongs to `jobs[i]` at any thread count —
/// controllers are required to be deterministic and jobs share no state,
/// so the batch is bit-identical at any `APS_THREADS` setting.
///
/// This is the sweep engine's integration point for multi-tenant
/// scenarios: `aps-sim`'s scenario generator plans each tenant's switch
/// schedule here before handing the mix to the tenant executor.
///
/// # Errors
///
/// All jobs are evaluated; when several fail, the error of the lowest job
/// index is returned.
pub fn plan_jobs_on(
    pool: &Pool,
    jobs: &[PlanJob],
    controller: &dyn crate::controller::Controller,
    params: CostParams,
    reconfig: ReconfigModel,
    accounting: ReconfigAccounting,
    solver: ThroughputSolver,
) -> Result<Vec<(crate::SwitchSchedule, crate::CostReport)>, CoreError> {
    pool.try_map(jobs, |_, job| {
        let mut domain = crate::ScaleupDomain::new(job.base.clone(), params, reconfig)
            .with_solver(solver)
            .with_accounting(accounting);
        domain.plan_with(&job.schedule, controller)
    })
}

/// Plans the eq. (7) optimum for every job on `pool` —
/// [`plan_jobs_on`] under the [`crate::controller::DpPlanned`] controller.
///
/// # Errors
///
/// All jobs are evaluated; when several fail, the error of the lowest job
/// index is returned.
#[deprecated(
    since = "0.2.0",
    note = "use `plan_jobs_on` with an explicit controller (e.g. `&DpPlanned`)"
)]
pub fn plan_schedules_on(
    pool: &Pool,
    jobs: &[PlanJob],
    params: CostParams,
    reconfig: ReconfigModel,
) -> Result<Vec<(crate::SwitchSchedule, crate::CostReport)>, CoreError> {
    plan_jobs_on(
        pool,
        jobs,
        &crate::controller::DpPlanned,
        params,
        reconfig,
        ReconfigAccounting::PaperConservative,
        ThroughputSolver::ForcedPath,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_topology::builders;

    fn sweep_hd(n: usize) -> SweepResult {
        let topo = builders::ring_unidirectional(n).unwrap();
        run_sweep_on(
            &Pool::from_env(),
            &topo,
            |m| allreduce::halving_doubling::build(n, m),
            CostParams::paper_defaults(),
            &SweepGrid::small(),
            Default::default(),
            ThroughputSolver::ForcedPath,
        )
        .unwrap()
    }

    #[test]
    fn opt_dominates_everywhere() {
        let r = sweep_hd(16);
        for row in &r.cells {
            for c in row {
                assert!(c.speedup_vs_static() >= 1.0 - 1e-12);
                assert!(c.speedup_vs_bvn() >= 1.0 - 1e-12);
                assert!(c.speedup_vs_best_of_both() >= 1.0 - 1e-12);
                assert!(c.threshold_gap() >= 1.0 - 1e-12);
            }
        }
    }

    #[test]
    fn regimes_match_the_papers_story() {
        let r = sweep_hd(16);
        // Top-right of speedup-vs-bvn (small message, huge delay): naive
        // per-step reconfiguration is much worse than OPT.
        let vs_bvn_small_msg_big_delay = r.cells[0][2].speedup_vs_bvn();
        assert!(
            vs_bvn_small_msg_big_delay > 10.0,
            "expected large win over BvN, got {vs_bvn_small_msg_big_delay}"
        );
        // Large message, tiny delay: OPT ≈ BvN (both fully reconfigure) and
        // both crush the static ring.
        let c = &r.cells[2][0];
        assert!((c.speedup_vs_bvn() - 1.0).abs() < 0.05);
        assert!(c.speedup_vs_static() > 2.0);
        // Small message, tiny-delay corner: static is optimal → vs-static
        // speedup 1.
        let c = &r.cells[0][2];
        assert!((c.speedup_vs_static() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn map_extracts_matrices() {
        let r = sweep_hd(8);
        let m = r.map(SweepCell::speedup_vs_static);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].len(), 3);
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let topo = builders::ring_unidirectional(16).unwrap();
        let run = |threads: usize| {
            run_sweep_on(
                &Pool::new(threads),
                &topo,
                |m| allreduce::halving_doubling::build(16, m),
                CostParams::paper_defaults(),
                &SweepGrid::small(),
                Default::default(),
                ThroughputSolver::ForcedPath,
            )
            .unwrap()
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            assert_eq!(serial.cells, parallel.cells, "threads = {threads}");
            // The same lookups are served regardless of the partitioning.
            assert_eq!(serial.theta_stats.lookups(), parallel.theta_stats.lookups());
        }
        // Per-worker caches actually memoize: with every row on one worker
        // all repeated matchings hit.
        assert!(serial.theta_stats.hits > 0);
        assert!(serial.theta_stats.misses > 0);
    }

    #[test]
    fn plan_batch_matches_individual_plans_at_any_thread_count() {
        let jobs: Vec<PlanJob> = [(8usize, 4.0 * 1024.0 * 1024.0), (16, 64.0), (4, 1e9)]
            .into_iter()
            .map(|(n, bytes)| PlanJob {
                base: builders::ring_unidirectional(n).unwrap(),
                schedule: allreduce::halving_doubling::build(n, bytes)
                    .unwrap()
                    .schedule,
            })
            .collect();
        let params = CostParams::paper_defaults();
        let reconfig = ReconfigModel::constant(10e-6).unwrap();
        let ctl = crate::controller::DpPlanned;
        let serial = plan_jobs_on(
            &Pool::serial(),
            &jobs,
            &ctl,
            params,
            reconfig,
            Default::default(),
            ThroughputSolver::ForcedPath,
        )
        .unwrap();
        assert_eq!(serial.len(), jobs.len());
        for (job, (schedule, report)) in jobs.iter().zip(&serial) {
            let mut d = crate::ScaleupDomain::new(job.base.clone(), params, reconfig);
            let (want_s, want_r) = d.plan(&job.schedule).unwrap();
            assert_eq!(schedule, &want_s);
            assert_eq!(report, &want_r);
        }
        for threads in [2, 4] {
            let parallel = plan_jobs_on(
                &Pool::new(threads),
                &jobs,
                &ctl,
                params,
                reconfig,
                Default::default(),
                ThroughputSolver::ForcedPath,
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn controllers_plan_job_batches_deterministically() {
        let jobs: Vec<PlanJob> = [(8usize, 4.0 * 1024.0 * 1024.0), (16, 2e6)]
            .into_iter()
            .map(|(n, bytes)| PlanJob {
                base: builders::ring_unidirectional(n).unwrap(),
                schedule: allreduce::halving_doubling::build(n, bytes)
                    .unwrap()
                    .schedule,
            })
            .collect();
        let params = CostParams::paper_defaults();
        let reconfig = ReconfigModel::constant(10e-6).unwrap();
        for ctl in crate::controller::shipped() {
            let serial = plan_jobs_on(
                &Pool::serial(),
                &jobs,
                ctl,
                params,
                reconfig,
                Default::default(),
                ThroughputSolver::ForcedPath,
            )
            .unwrap();
            let parallel = plan_jobs_on(
                &Pool::new(3),
                &jobs,
                ctl,
                params,
                reconfig,
                Default::default(),
                ThroughputSolver::ForcedPath,
            )
            .unwrap();
            assert_eq!(serial, parallel, "{}", ctl.name());
        }
    }

    #[test]
    fn default_grids_are_sane() {
        let g = SweepGrid::paper_default();
        assert_eq!(g.reconf_delays_s.len(), 6);
        assert_eq!(g.message_bytes.len(), 6);
        assert!(g.reconf_delays_s.windows(2).all(|w| w[0] < w[1]));
        assert!(g.message_bytes.windows(2).all(|w| w[0] < w[1]));
    }
}
