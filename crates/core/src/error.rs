//! Error type for schedule optimization.

use std::fmt;

/// Errors produced by the scheduling layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Throughput evaluation failed (routing, cache, or FPTAS parameters).
    Flow(aps_flow::FlowError),
    /// Collective construction failed.
    Collective(aps_collectives::CollectiveError),
    /// Cost parameters were invalid.
    Params(aps_cost::params::ParamError),
    /// Reconfiguration model was invalid.
    Reconfig(aps_cost::reconfig::BadReconfigModel),
    /// A switch schedule's length does not match the problem's step count.
    ScheduleLengthMismatch {
        /// Steps in the problem.
        expected: usize,
        /// Choices in the schedule.
        got: usize,
    },
    /// Exhaustive search was asked to enumerate too many assignments.
    TooManySteps {
        /// Steps requested.
        steps: usize,
        /// Enumeration limit.
        limit: usize,
    },
    /// A multi-base problem needs at least one base topology.
    NoBases,
    /// A multi-base start index was out of range.
    StartBaseOutOfRange {
        /// Requested start base.
        start: usize,
        /// Number of bases.
        bases: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Flow(e) => write!(f, "throughput evaluation failed: {e}"),
            Self::Collective(e) => write!(f, "collective construction failed: {e}"),
            Self::Params(e) => write!(f, "invalid cost parameters: {e}"),
            Self::Reconfig(e) => write!(f, "invalid reconfiguration model: {e}"),
            Self::ScheduleLengthMismatch { expected, got } => {
                write!(f, "switch schedule has {got} choices for {expected} steps")
            }
            Self::TooManySteps { steps, limit } => {
                write!(
                    f,
                    "exhaustive search over {steps} steps exceeds limit {limit}"
                )
            }
            Self::NoBases => write!(f, "multi-base optimization needs at least one base"),
            Self::StartBaseOutOfRange { start, bases } => {
                write!(f, "start base {start} out of range for {bases} bases")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<aps_flow::FlowError> for CoreError {
    fn from(e: aps_flow::FlowError) -> Self {
        Self::Flow(e)
    }
}

impl From<aps_collectives::CollectiveError> for CoreError {
    fn from(e: aps_collectives::CollectiveError) -> Self {
        Self::Collective(e)
    }
}

impl From<aps_cost::params::ParamError> for CoreError {
    fn from(e: aps_cost::params::ParamError) -> Self {
        Self::Params(e)
    }
}

impl From<aps_cost::reconfig::BadReconfigModel> for CoreError {
    fn from(e: aps_cost::reconfig::BadReconfigModel) -> Self {
        Self::Reconfig(e)
    }
}
