//! Rendering and regime analysis for sweep results.
//!
//! The paper's Figure 1/2 heatmaps become ASCII tables (one number per
//! cell) and CSV files; [`classify`] reproduces the three-regime reading of
//! §3.4: static-optimal, BvN-optimal, and the transitional band where only
//! a mixed schedule wins.

use crate::sweep::{SweepCell, SweepGrid, SweepResult};
use aps_cost::units::{format_bytes, format_time};

/// Which §3.4 regime a grid cell falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// The static base topology is (essentially) optimal.
    StaticOptimal,
    /// Naive per-step reconfiguration is (essentially) optimal.
    BvnOptimal,
    /// Only a mixed schedule attains the optimum — the diagonal band of
    /// Figure 2.
    MixedWins,
}

impl Regime {
    /// Single-character cell marker for regime maps.
    pub fn glyph(self) -> char {
        match self {
            Regime::StaticOptimal => 'S',
            Regime::BvnOptimal => 'B',
            Regime::MixedWins => '*',
        }
    }
}

/// Classifies a cell: a baseline counts as "essentially optimal" when it is
/// within `tol` (relative) of the optimized schedule.
pub fn classify(cell: &SweepCell, tol: f64) -> Regime {
    let opt = cell.t_opt_s;
    let static_ok = cell.t_static_s <= opt * (1.0 + tol);
    let bvn_ok = cell.t_bvn_s <= opt * (1.0 + tol);
    match (static_ok, bvn_ok) {
        (true, _) => Regime::StaticOptimal,
        (false, true) => Regime::BvnOptimal,
        (false, false) => Regime::MixedWins,
    }
}

/// Renders a row-major value matrix as an ASCII heatmap with labelled axes
/// (message sizes down, `α_r` across; largest message first, like the
/// paper's heatmaps).
pub fn render_heatmap(title: &str, grid: &SweepGrid, values: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>10} |", "msg \\ α_r"));
    for &d in &grid.reconf_delays_s {
        out.push_str(&format!("{:>9}", format_time(d)));
    }
    out.push('\n');
    out.push_str(&"-".repeat(12 + 9 * grid.reconf_delays_s.len()));
    out.push('\n');
    for (ri, &m) in grid.message_bytes.iter().enumerate().rev() {
        out.push_str(&format!("{:>10} |", format_bytes(m)));
        for v in &values[ri] {
            out.push_str(&format!("{v:>9.2}"));
        }
        out.push('\n');
    }
    out
}

/// Renders the per-cell regime map (same orientation as
/// [`render_heatmap`]).
pub fn render_regimes(title: &str, result: &SweepResult, tol: f64) -> String {
    let grid = &result.grid;
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\n  S = static optimal, B = BvN optimal, * = only mixed wins\n");
    for (ri, &m) in grid.message_bytes.iter().enumerate().rev() {
        out.push_str(&format!("{:>10} |", format_bytes(m)));
        for cell in &result.cells[ri] {
            out.push_str(&format!("  {}", classify(cell, tol).glyph()));
        }
        out.push('\n');
    }
    // Column labels (α_r), abbreviated to fit the 3-char cells.
    out.push_str(&format!("{:>10}  ", ""));
    for &d in &grid.reconf_delays_s {
        let label: String = format_time(d).replace(' ', "").chars().take(3).collect();
        out.push_str(&format!("{label:>3}"));
    }
    out.push('\n');
    out
}

/// Serializes a value matrix to CSV (`message_bytes,reconf_delay_s,value`).
pub fn to_csv(grid: &SweepGrid, values: &[Vec<f64>]) -> String {
    let mut out = String::from("message_bytes,reconf_delay_s,value\n");
    for (ri, &m) in grid.message_bytes.iter().enumerate() {
        for (ci, &d) in grid.reconf_delays_s.iter().enumerate() {
            out.push_str(&format!("{m},{d},{}\n", values[ri][ci]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(st: f64, bvn: f64, opt: f64) -> SweepCell {
        SweepCell {
            t_static_s: st,
            t_bvn_s: bvn,
            t_opt_s: opt,
            t_threshold_s: opt,
        }
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&cell(1.0, 5.0, 1.0), 0.01), Regime::StaticOptimal);
        assert_eq!(classify(&cell(5.0, 1.0, 1.0), 0.01), Regime::BvnOptimal);
        assert_eq!(classify(&cell(2.0, 2.0, 1.0), 0.01), Regime::MixedWins);
        assert_eq!(Regime::MixedWins.glyph(), '*');
    }

    #[test]
    fn heatmap_rendering_includes_axes() {
        let grid = SweepGrid {
            reconf_delays_s: vec![1e-7, 1e-5],
            message_bytes: vec![1024.0, 1048576.0],
        };
        let values = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let s = render_heatmap("test", &grid, &values);
        assert!(s.contains("test"));
        assert!(s.contains("1 KiB"));
        assert!(s.contains("1 MiB"));
        assert!(s.contains("100 ns"));
        assert!(s.contains("10 µs"));
        // Largest message renders first.
        let mib = s.find("1 MiB").unwrap();
        let kib = s.find("1 KiB").unwrap();
        assert!(mib < kib);
    }

    #[test]
    fn csv_rendering() {
        let grid = SweepGrid {
            reconf_delays_s: vec![1e-7],
            message_bytes: vec![1024.0],
        };
        let csv = to_csv(&grid, &[vec![2.5]]);
        assert_eq!(
            csv,
            "message_bytes,reconf_delay_s,value\n1024,0.0000001,2.5\n"
        );
    }
}
